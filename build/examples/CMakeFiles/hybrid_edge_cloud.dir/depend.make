# Empty dependencies file for hybrid_edge_cloud.
# This may be replaced when dependencies are built.
