file(REMOVE_RECURSE
  "CMakeFiles/hybrid_edge_cloud.dir/hybrid_edge_cloud.cpp.o"
  "CMakeFiles/hybrid_edge_cloud.dir/hybrid_edge_cloud.cpp.o.d"
  "hybrid_edge_cloud"
  "hybrid_edge_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_edge_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
