# Empty compiler generated dependencies file for live_cluster.
# This may be replaced when dependencies are built.
