# Empty dependencies file for ar_assistance.
# This may be replaced when dependencies are built.
