file(REMOVE_RECURSE
  "CMakeFiles/ar_assistance.dir/ar_assistance.cpp.o"
  "CMakeFiles/ar_assistance.dir/ar_assistance.cpp.o.d"
  "ar_assistance"
  "ar_assistance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_assistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
