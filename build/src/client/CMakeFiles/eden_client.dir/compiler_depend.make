# Empty compiler generated dependencies file for eden_client.
# This may be replaced when dependencies are built.
