file(REMOVE_RECURSE
  "CMakeFiles/eden_client.dir/edge_client.cc.o"
  "CMakeFiles/eden_client.dir/edge_client.cc.o.d"
  "CMakeFiles/eden_client.dir/selection_policy.cc.o"
  "CMakeFiles/eden_client.dir/selection_policy.cc.o.d"
  "libeden_client.a"
  "libeden_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
