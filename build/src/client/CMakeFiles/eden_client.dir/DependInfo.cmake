
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/edge_client.cc" "src/client/CMakeFiles/eden_client.dir/edge_client.cc.o" "gcc" "src/client/CMakeFiles/eden_client.dir/edge_client.cc.o.d"
  "/root/repo/src/client/selection_policy.cc" "src/client/CMakeFiles/eden_client.dir/selection_policy.cc.o" "gcc" "src/client/CMakeFiles/eden_client.dir/selection_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eden_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eden_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
