file(REMOVE_RECURSE
  "libeden_client.a"
)
