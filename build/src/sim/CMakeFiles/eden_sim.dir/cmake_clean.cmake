file(REMOVE_RECURSE
  "CMakeFiles/eden_sim.dir/simulator.cc.o"
  "CMakeFiles/eden_sim.dir/simulator.cc.o.d"
  "libeden_sim.a"
  "libeden_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
