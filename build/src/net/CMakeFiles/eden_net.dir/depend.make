# Empty dependencies file for eden_net.
# This may be replaced when dependencies are built.
