file(REMOVE_RECURSE
  "CMakeFiles/eden_net.dir/network_model.cc.o"
  "CMakeFiles/eden_net.dir/network_model.cc.o.d"
  "CMakeFiles/eden_net.dir/sim_network.cc.o"
  "CMakeFiles/eden_net.dir/sim_network.cc.o.d"
  "CMakeFiles/eden_net.dir/trace_network.cc.o"
  "CMakeFiles/eden_net.dir/trace_network.cc.o.d"
  "libeden_net.a"
  "libeden_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
