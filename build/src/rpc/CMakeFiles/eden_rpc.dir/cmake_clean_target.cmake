file(REMOVE_RECURSE
  "libeden_rpc.a"
)
