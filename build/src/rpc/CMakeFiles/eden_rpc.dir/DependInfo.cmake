
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpc/connection.cc" "src/rpc/CMakeFiles/eden_rpc.dir/connection.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/connection.cc.o.d"
  "/root/repo/src/rpc/event_loop.cc" "src/rpc/CMakeFiles/eden_rpc.dir/event_loop.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/event_loop.cc.o.d"
  "/root/repo/src/rpc/live_runtime.cc" "src/rpc/CMakeFiles/eden_rpc.dir/live_runtime.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/live_runtime.cc.o.d"
  "/root/repo/src/rpc/messages.cc" "src/rpc/CMakeFiles/eden_rpc.dir/messages.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/messages.cc.o.d"
  "/root/repo/src/rpc/rpc_client.cc" "src/rpc/CMakeFiles/eden_rpc.dir/rpc_client.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/rpc_client.cc.o.d"
  "/root/repo/src/rpc/rpc_server.cc" "src/rpc/CMakeFiles/eden_rpc.dir/rpc_server.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/rpc_server.cc.o.d"
  "/root/repo/src/rpc/serialize.cc" "src/rpc/CMakeFiles/eden_rpc.dir/serialize.cc.o" "gcc" "src/rpc/CMakeFiles/eden_rpc.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/eden_node.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/eden_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/eden_client.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eden_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eden_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
