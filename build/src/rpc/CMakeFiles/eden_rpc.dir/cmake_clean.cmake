file(REMOVE_RECURSE
  "CMakeFiles/eden_rpc.dir/connection.cc.o"
  "CMakeFiles/eden_rpc.dir/connection.cc.o.d"
  "CMakeFiles/eden_rpc.dir/event_loop.cc.o"
  "CMakeFiles/eden_rpc.dir/event_loop.cc.o.d"
  "CMakeFiles/eden_rpc.dir/live_runtime.cc.o"
  "CMakeFiles/eden_rpc.dir/live_runtime.cc.o.d"
  "CMakeFiles/eden_rpc.dir/messages.cc.o"
  "CMakeFiles/eden_rpc.dir/messages.cc.o.d"
  "CMakeFiles/eden_rpc.dir/rpc_client.cc.o"
  "CMakeFiles/eden_rpc.dir/rpc_client.cc.o.d"
  "CMakeFiles/eden_rpc.dir/rpc_server.cc.o"
  "CMakeFiles/eden_rpc.dir/rpc_server.cc.o.d"
  "CMakeFiles/eden_rpc.dir/serialize.cc.o"
  "CMakeFiles/eden_rpc.dir/serialize.cc.o.d"
  "libeden_rpc.a"
  "libeden_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
