# Empty dependencies file for eden_rpc.
# This may be replaced when dependencies are built.
