file(REMOVE_RECURSE
  "CMakeFiles/eden_workload.dir/app_profile.cc.o"
  "CMakeFiles/eden_workload.dir/app_profile.cc.o.d"
  "libeden_workload.a"
  "libeden_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
