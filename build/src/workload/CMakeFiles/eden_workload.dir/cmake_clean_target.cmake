file(REMOVE_RECURSE
  "libeden_workload.a"
)
