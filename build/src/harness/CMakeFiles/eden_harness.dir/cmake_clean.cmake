file(REMOVE_RECURSE
  "CMakeFiles/eden_harness.dir/central_controller.cc.o"
  "CMakeFiles/eden_harness.dir/central_controller.cc.o.d"
  "CMakeFiles/eden_harness.dir/experiments.cc.o"
  "CMakeFiles/eden_harness.dir/experiments.cc.o.d"
  "CMakeFiles/eden_harness.dir/metrics.cc.o"
  "CMakeFiles/eden_harness.dir/metrics.cc.o.d"
  "CMakeFiles/eden_harness.dir/scenario.cc.o"
  "CMakeFiles/eden_harness.dir/scenario.cc.o.d"
  "CMakeFiles/eden_harness.dir/sim_stubs.cc.o"
  "CMakeFiles/eden_harness.dir/sim_stubs.cc.o.d"
  "libeden_harness.a"
  "libeden_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
