# Empty dependencies file for eden_harness.
# This may be replaced when dependencies are built.
