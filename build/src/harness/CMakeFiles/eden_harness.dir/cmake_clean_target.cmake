file(REMOVE_RECURSE
  "libeden_harness.a"
)
