file(REMOVE_RECURSE
  "libeden_baselines.a"
)
