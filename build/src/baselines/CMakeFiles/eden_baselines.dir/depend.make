# Empty dependencies file for eden_baselines.
# This may be replaced when dependencies are built.
