
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/assigners.cc" "src/baselines/CMakeFiles/eden_baselines.dir/assigners.cc.o" "gcc" "src/baselines/CMakeFiles/eden_baselines.dir/assigners.cc.o.d"
  "/root/repo/src/baselines/latency_model.cc" "src/baselines/CMakeFiles/eden_baselines.dir/latency_model.cc.o" "gcc" "src/baselines/CMakeFiles/eden_baselines.dir/latency_model.cc.o.d"
  "/root/repo/src/baselines/optimal.cc" "src/baselines/CMakeFiles/eden_baselines.dir/optimal.cc.o" "gcc" "src/baselines/CMakeFiles/eden_baselines.dir/optimal.cc.o.d"
  "/root/repo/src/baselines/static_client.cc" "src/baselines/CMakeFiles/eden_baselines.dir/static_client.cc.o" "gcc" "src/baselines/CMakeFiles/eden_baselines.dir/static_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eden_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/eden_client.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eden_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
