file(REMOVE_RECURSE
  "CMakeFiles/eden_baselines.dir/assigners.cc.o"
  "CMakeFiles/eden_baselines.dir/assigners.cc.o.d"
  "CMakeFiles/eden_baselines.dir/latency_model.cc.o"
  "CMakeFiles/eden_baselines.dir/latency_model.cc.o.d"
  "CMakeFiles/eden_baselines.dir/optimal.cc.o"
  "CMakeFiles/eden_baselines.dir/optimal.cc.o.d"
  "CMakeFiles/eden_baselines.dir/static_client.cc.o"
  "CMakeFiles/eden_baselines.dir/static_client.cc.o.d"
  "libeden_baselines.a"
  "libeden_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
