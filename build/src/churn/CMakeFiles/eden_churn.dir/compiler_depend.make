# Empty compiler generated dependencies file for eden_churn.
# This may be replaced when dependencies are built.
