file(REMOVE_RECURSE
  "libeden_churn.a"
)
