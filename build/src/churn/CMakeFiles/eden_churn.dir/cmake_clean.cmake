file(REMOVE_RECURSE
  "CMakeFiles/eden_churn.dir/churn.cc.o"
  "CMakeFiles/eden_churn.dir/churn.cc.o.d"
  "libeden_churn.a"
  "libeden_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
