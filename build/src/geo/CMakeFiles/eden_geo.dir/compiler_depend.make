# Empty compiler generated dependencies file for eden_geo.
# This may be replaced when dependencies are built.
