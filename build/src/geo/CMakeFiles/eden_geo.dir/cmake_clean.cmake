file(REMOVE_RECURSE
  "CMakeFiles/eden_geo.dir/geohash.cc.o"
  "CMakeFiles/eden_geo.dir/geohash.cc.o.d"
  "CMakeFiles/eden_geo.dir/geopoint.cc.o"
  "CMakeFiles/eden_geo.dir/geopoint.cc.o.d"
  "libeden_geo.a"
  "libeden_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
