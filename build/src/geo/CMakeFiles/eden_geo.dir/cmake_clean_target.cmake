file(REMOVE_RECURSE
  "libeden_geo.a"
)
