file(REMOVE_RECURSE
  "libeden_node.a"
)
