file(REMOVE_RECURSE
  "CMakeFiles/eden_node.dir/edge_node.cc.o"
  "CMakeFiles/eden_node.dir/edge_node.cc.o.d"
  "CMakeFiles/eden_node.dir/executor.cc.o"
  "CMakeFiles/eden_node.dir/executor.cc.o.d"
  "libeden_node.a"
  "libeden_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
