# Empty compiler generated dependencies file for eden_node.
# This may be replaced when dependencies are built.
