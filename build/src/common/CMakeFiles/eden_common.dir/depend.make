# Empty dependencies file for eden_common.
# This may be replaced when dependencies are built.
