file(REMOVE_RECURSE
  "CMakeFiles/eden_common.dir/logging.cc.o"
  "CMakeFiles/eden_common.dir/logging.cc.o.d"
  "CMakeFiles/eden_common.dir/rng.cc.o"
  "CMakeFiles/eden_common.dir/rng.cc.o.d"
  "CMakeFiles/eden_common.dir/stats.cc.o"
  "CMakeFiles/eden_common.dir/stats.cc.o.d"
  "CMakeFiles/eden_common.dir/table.cc.o"
  "CMakeFiles/eden_common.dir/table.cc.o.d"
  "libeden_common.a"
  "libeden_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
