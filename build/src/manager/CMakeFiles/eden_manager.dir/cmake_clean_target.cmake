file(REMOVE_RECURSE
  "libeden_manager.a"
)
