# Empty compiler generated dependencies file for eden_manager.
# This may be replaced when dependencies are built.
