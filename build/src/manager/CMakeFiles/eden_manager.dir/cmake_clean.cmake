file(REMOVE_RECURSE
  "CMakeFiles/eden_manager.dir/central_manager.cc.o"
  "CMakeFiles/eden_manager.dir/central_manager.cc.o.d"
  "CMakeFiles/eden_manager.dir/global_selection.cc.o"
  "CMakeFiles/eden_manager.dir/global_selection.cc.o.d"
  "CMakeFiles/eden_manager.dir/registry.cc.o"
  "CMakeFiles/eden_manager.dir/registry.cc.o.d"
  "libeden_manager.a"
  "libeden_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eden_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
