# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_edge_node[1]_include.cmake")
include("/root/repo/build/tests/test_manager[1]_include.cmake")
include("/root/repo/build/tests/test_selection_policy[1]_include.cmake")
include("/root/repo/build/tests/test_churn[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_optimal[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_failover[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_trace_network[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_event_loop[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_live[1]_include.cmake")
include("/root/repo/build/tests/test_central_controller[1]_include.cmake")
include("/root/repo/build/tests/test_flags[1]_include.cmake")
