
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/eden_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eden_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/eden_client.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/eden_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/eden_node.dir/DependInfo.cmake"
  "/root/repo/build/src/churn/CMakeFiles/eden_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eden_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/eden_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eden_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eden_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eden_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
