file(REMOVE_RECURSE
  "CMakeFiles/test_edge_node.dir/test_edge_node.cc.o"
  "CMakeFiles/test_edge_node.dir/test_edge_node.cc.o.d"
  "test_edge_node"
  "test_edge_node.pdb"
  "test_edge_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
