# Empty dependencies file for test_central_controller.
# This may be replaced when dependencies are built.
