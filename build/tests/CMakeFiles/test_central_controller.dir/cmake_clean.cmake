file(REMOVE_RECURSE
  "CMakeFiles/test_central_controller.dir/test_central_controller.cc.o"
  "CMakeFiles/test_central_controller.dir/test_central_controller.cc.o.d"
  "test_central_controller"
  "test_central_controller.pdb"
  "test_central_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_central_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
