# Empty dependencies file for test_trace_network.
# This may be replaced when dependencies are built.
