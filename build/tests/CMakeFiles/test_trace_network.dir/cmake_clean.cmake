file(REMOVE_RECURSE
  "CMakeFiles/test_trace_network.dir/test_trace_network.cc.o"
  "CMakeFiles/test_trace_network.dir/test_trace_network.cc.o.d"
  "test_trace_network"
  "test_trace_network.pdb"
  "test_trace_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
