file(REMOVE_RECURSE
  "CMakeFiles/test_live.dir/test_live.cc.o"
  "CMakeFiles/test_live.dir/test_live.cc.o.d"
  "test_live"
  "test_live.pdb"
  "test_live[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
