# Empty dependencies file for bench_fig07_optimal_gap.
# This may be replaced when dependencies are built.
