file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_pairwise.dir/bench_tab03_pairwise.cc.o"
  "CMakeFiles/bench_tab03_pairwise.dir/bench_tab03_pairwise.cc.o.d"
  "bench_tab03_pairwise"
  "bench_tab03_pairwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
