file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_manager.dir/bench_ablation_manager.cc.o"
  "CMakeFiles/bench_ablation_manager.dir/bench_ablation_manager.cc.o.d"
  "bench_ablation_manager"
  "bench_ablation_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
