file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_client.dir/bench_ablation_client.cc.o"
  "CMakeFiles/bench_ablation_client.dir/bench_ablation_client.cc.o.d"
  "bench_ablation_client"
  "bench_ablation_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
