# Empty compiler generated dependencies file for bench_ablation_client.
# This may be replaced when dependencies are built.
