file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_single_user_cdf.dir/bench_fig03_single_user_cdf.cc.o"
  "CMakeFiles/bench_fig03_single_user_cdf.dir/bench_fig03_single_user_cdf.cc.o.d"
  "bench_fig03_single_user_cdf"
  "bench_fig03_single_user_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_single_user_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
