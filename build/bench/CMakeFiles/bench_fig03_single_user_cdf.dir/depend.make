# Empty dependencies file for bench_fig03_single_user_cdf.
# This may be replaced when dependencies are built.
