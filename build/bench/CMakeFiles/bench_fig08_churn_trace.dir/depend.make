# Empty dependencies file for bench_fig08_churn_trace.
# This may be replaced when dependencies are built.
