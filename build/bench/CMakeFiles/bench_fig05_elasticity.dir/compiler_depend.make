# Empty compiler generated dependencies file for bench_fig05_elasticity.
# This may be replaced when dependencies are built.
