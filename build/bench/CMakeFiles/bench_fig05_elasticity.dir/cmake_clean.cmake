file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_elasticity.dir/bench_fig05_elasticity.cc.o"
  "CMakeFiles/bench_fig05_elasticity.dir/bench_fig05_elasticity.cc.o.d"
  "bench_fig05_elasticity"
  "bench_fig05_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
