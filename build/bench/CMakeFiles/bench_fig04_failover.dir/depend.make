# Empty dependencies file for bench_fig04_failover.
# This may be replaced when dependencies are built.
