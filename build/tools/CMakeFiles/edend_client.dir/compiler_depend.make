# Empty compiler generated dependencies file for edend_client.
# This may be replaced when dependencies are built.
