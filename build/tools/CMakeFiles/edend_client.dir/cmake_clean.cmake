file(REMOVE_RECURSE
  "CMakeFiles/edend_client.dir/eden_client.cc.o"
  "CMakeFiles/edend_client.dir/eden_client.cc.o.d"
  "edend_client"
  "edend_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edend_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
