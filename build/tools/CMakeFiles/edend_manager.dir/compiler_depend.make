# Empty compiler generated dependencies file for edend_manager.
# This may be replaced when dependencies are built.
