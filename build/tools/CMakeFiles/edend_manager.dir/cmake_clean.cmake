file(REMOVE_RECURSE
  "CMakeFiles/edend_manager.dir/eden_manager.cc.o"
  "CMakeFiles/edend_manager.dir/eden_manager.cc.o.d"
  "edend_manager"
  "edend_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edend_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
