file(REMOVE_RECURSE
  "CMakeFiles/edend_node.dir/eden_node.cc.o"
  "CMakeFiles/edend_node.dir/eden_node.cc.o.d"
  "edend_node"
  "edend_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edend_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
