# Empty dependencies file for edend_node.
# This may be replaced when dependencies are built.
