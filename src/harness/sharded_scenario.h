// ShardedScenario: the geohash-partitioned counterpart of Scenario. The
// world is split into shard domains — each with its own sim::Simulator,
// SimNetwork fabric, host table, fault injector and fleets — advanced in
// conservative-lookahead windows: every domain runs [w0, w1) (half-open)
// independently, then a single-threaded barrier injects the cross-shard
// messages buffered by the ShardRouter into their destination domains'
// delivery lanes. The window length never exceeds the minimum possible
// cross-shard one-way delay (lookahead()), so no injected message can land
// inside a window its destination already executed — the classic
// conservative parallel-DES contract.
//
// Determinism: fabrics run in deterministic-delivery mode (canonical
// delivery keys + counter-based jitter; see SimNetwork), host→shard
// placement is a pure function of position (geohash cell hash), and the
// manager is pinned to domain 0. The merged run — traces canonicalized by
// obs::merge_shard_traces, metrics merged in domain order, fleet stats
// aggregated in global client order — is bitwise identical across shard
// counts, which eden::check's shard witness pins against the one-shard
// sequential reference.
//
// Threading: domains within a window run on a persistent WindowPool;
// threads == 1 (the default) runs them inline. Everything between windows
// (barriers, build calls, fault injection, stat readers) is
// single-threaded by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "client/edge_client.h"
#include "common/rng.h"
#include "common/types.h"
#include "geo/geohash.h"
#include "harness/fleet.h"
#include "harness/scenario.h"
#include "harness/sim_stubs.h"
#include "harness/window_pool.h"
#include "manager/central_manager.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/shard_router.h"
#include "net/sim_network.h"
#include "node/edge_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden::harness {

struct ShardedConfig {
  ScenarioConfig base{};
  // Number of shard domains; 0 is clamped to 1. shards == 1 without
  // force_windows degenerates to a windowless sequential run (the witness
  // reference).
  unsigned shards{1};
  // WindowPool threads for the per-window domain fan-out (0 = hardware).
  unsigned threads{1};
  // Geohash prefix length hashed for host→shard placement. Coarser than
  // the protocol's discovery precision: co-located hosts MUST share a
  // shard (zero-distance pairs have no cross-shard delay floor).
  int cell_precision{4};
  // Fixed window length override; 0 derives the window from lookahead().
  // A nonzero value is still clamped to the lookahead bound.
  SimDuration window{0};
  // Exercise the window/barrier machinery even when no cross-shard pair
  // exists (shards == 1): windows shrink to the all-pairs delay floor
  // instead of one giant window per run_until() call.
  bool force_windows{false};
};

// Per-domain event-loop counters for bench reporting.
struct ShardStats {
  std::vector<std::uint64_t> events_per_domain;
  std::uint64_t windows{0};                 // barrier count
  std::uint64_t stalled_domain_windows{0};  // (domain, window) pairs idle
  std::uint64_t cross_shard_messages{0};
  SimDuration window_length{0};             // last derived window
};

class ShardedScenario {
 public:
  explicit ShardedScenario(ShardedConfig config, NetKind kind = NetKind::kGeo,
                           double default_rtt_ms = 20.0,
                           double default_bw_mbps = 100.0,
                           double jitter_sigma = 0.05);

  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  // ---- infrastructure ----
  [[nodiscard]] std::size_t shard_count() const { return domains_.size(); }
  [[nodiscard]] const ShardedConfig& config() const { return config_; }
  [[nodiscard]] manager::CentralManager& central_manager() { return *manager_; }
  [[nodiscard]] HostId manager_host() const { return manager_host_; }
  [[nodiscard]] SimTime now() const { return cursor_; }
  [[nodiscard]] sim::Simulator& simulator_of(std::size_t domain) {
    return domains_[domain].sim;
  }
  // The shared-topology GeoNetwork (domain 0's instance), null for kMatrix.
  [[nodiscard]] net::GeoNetwork* geo_network();
  // Domain 0's model; base RTTs are identical in every domain by
  // construction (shared topology for kGeo, identical parameters for
  // kMatrix).
  [[nodiscard]] const net::NetworkModel& network_model() const {
    return *domains_[0].model;
  }

  // ---- nodes (global indices, in add order across all domains) ----
  std::size_t add_node(const NodeSpec& spec);
  using NodePlacementFn = std::function<void(std::size_t, NodeSpec&)>;
  std::size_t add_nodes(const NodeSpec& base, std::size_t count,
                        const NodePlacementFn& placement = {});
  [[nodiscard]] std::size_t node_count() const { return node_refs_.size(); }
  [[nodiscard]] node::EdgeNode& node(std::size_t index);
  [[nodiscard]] const NodeSpec& node_spec(std::size_t index) const;
  [[nodiscard]] NodeId node_id(std::size_t index) const;
  [[nodiscard]] std::uint32_t node_domain(std::size_t index) const {
    return node_refs_[index].domain;
  }

  void start_node(std::size_t index);
  void stop_node(std::size_t index, bool graceful);
  void schedule_node_start(std::size_t index, SimTime at);
  void schedule_node_stop(std::size_t index, SimTime at, bool graceful);
  // Run `fn(node)` on the node's own domain at time `at`.
  void schedule_at_node(std::size_t index, SimTime at,
                        std::function<void(node::EdgeNode&)> fn);

  // Route-loss simulation (see Scenario::set_route). Build-time /
  // between-windows only: resolvers on every domain read this set.
  void set_route(NodeId id, bool routed);

  // ---- clients (global indices) ----
  std::size_t add_edge_client(const ClientSpot& spot,
                              client::ClientConfig config);
  using ClientSpotFn = std::function<ClientSpot(std::size_t)>;
  using ClientConfigFn = std::function<client::ClientConfig(std::size_t)>;
  std::size_t add_edge_clients(const ClientSpotFn& spot_fn,
                               const ClientConfigFn& config_fn,
                               std::size_t count);
  [[nodiscard]] std::size_t edge_client_count() const {
    return client_refs_.size();
  }
  [[nodiscard]] client::EdgeClient& edge_client(std::size_t index);
  [[nodiscard]] std::uint32_t client_domain(std::size_t index) const {
    return client_refs_[index].domain;
  }
  // Run `fn(client)` on the client's own domain at time `at`.
  void schedule_at_client(std::size_t index, SimTime at,
                          std::function<void(client::EdgeClient&)> fn);

  // ---- faults (fan out to every domain's injector) ----
  void cut_link(HostId a, HostId b, SimTime from, SimTime until);
  void partition(HostId a, HostId b, SimTime from, SimTime until);
  void slow_link(HostId a, HostId b, double factor, SimTime from,
                 SimTime until);
  void isolate_host(HostId host, SimTime from, SimTime until);

  // ---- execution ----
  // Advance every domain to `horizon` in conservative windows. Equivalent
  // to the sequential run_until(horizon): every message arriving at or
  // before the horizon has been delivered when this returns.
  void run_until(SimTime horizon);

  // The conservative window bound: the largest window length guaranteed
  // not to miss a cross-shard arrival, derived from the minimum possible
  // cross-shard one-way delay (exact over pairs for small worlds, a
  // last-mile tier bound for large ones; times the deterministic-jitter
  // floor exp(-kDetJitterZClamp * sigma) and the smallest injected
  // slow-link factor). Throws std::runtime_error if the floor collapses
  // to zero ticks.
  [[nodiscard]] SimDuration lookahead() const;

  // ---- merged results (identical across shard counts) ----
  [[nodiscard]] FleetStats fleet_stats() const;
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  // Per-shard traces merged into canonical (time, site) order; empty when
  // tracing is off.
  [[nodiscard]] std::vector<obs::TraceEvent> canonical_trace() const;
  void require_nonvacuous_run() const;

  [[nodiscard]] ShardStats shard_stats() const;
  [[nodiscard]] std::string geohash_of(const geo::GeoPoint& position) const;

 private:
  struct Domain {
    sim::Simulator sim;
    sim::SimScheduler scheduler{sim};
    std::unique_ptr<net::NetworkModel> model;
    net::HostTable hosts;
    net::FaultInjector faults;
    std::unique_ptr<net::SimNetwork> fabric;
    std::unique_ptr<obs::TraceRecorder> trace;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::optional<SimManagerStub> manager_stub;
    NodeFleet nodes;
    ClientFleet clients;
    // Per-domain stubs for nodes owned elsewhere (lazy; the rpc rides this
    // domain's fabric, the server closure ships to the owner's domain).
    std::deque<SimNodeStub> remote_stubs;
    std::unordered_map<NodeId, net::NodeApi*> stub_cache;
    std::uint64_t stalled_windows{0};
  };
  struct EntityRef {
    std::uint32_t domain;
    std::uint32_t index;
  };

  [[nodiscard]] std::uint32_t domain_of_position(
      const geo::GeoPoint& position) const;
  void register_position(HostId host, const geo::GeoPoint& position,
                         net::AccessTier tier, double extra_rtt_ms,
                         const std::string& network_tag);
  [[nodiscard]] node::EdgeNodeConfig make_node_config(const NodeSpec& spec,
                                                      HostId host) const;
  [[nodiscard]] net::NodeApi* node_api_for(std::uint32_t domain, NodeId id);
  [[nodiscard]] client::NodeResolver resolver(std::uint32_t domain);
  [[nodiscard]] bool cross_domain_pairs_exist() const;

  ShardedConfig config_;
  NetKind kind_;
  double default_rtt_ms_;
  Rng rng_;
  net::ShardRouter router_;
  std::deque<Domain> domains_;
  std::unique_ptr<manager::CentralManager> manager_;
  HostId manager_host_;
  std::uint32_t next_host_{0};
  std::vector<std::uint32_t> host_domain_;  // indexed by host id
  std::vector<EntityRef> node_refs_;        // global node index → (domain, i)
  std::vector<EntityRef> client_refs_;
  std::unordered_map<NodeId, std::size_t> node_index_by_id_;
  std::unordered_set<NodeId> unrouted_;
  std::unique_ptr<WindowPool> pool_;
  SimTime cursor_{0};
  std::uint64_t windows_{0};
  SimDuration last_window_{0};
  double min_last_mile_ms_{1e30};  // over registered hosts (tier bound)
  double min_slow_factor_{1.0};    // over injected slow_link windows
};

}  // namespace eden::harness
