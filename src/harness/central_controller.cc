#include "harness/central_controller.h"

namespace eden::harness {

CentralController::CentralController(
    Scenario& scenario, std::vector<baselines::StaticClient*> clients,
    Options options)
    : scenario_(&scenario),
      clients_(std::move(clients)),
      options_(options),
      rng_(options.seed) {}

void CentralController::start() {
  if (running_) return;
  running_ = true;
  reoptimize();
  arm_timer();
}

void CentralController::stop() {
  if (!running_) return;
  running_ = false;
  if (timer_ != sim::kInvalidEvent) scenario_->scheduler().cancel(timer_);
}

void CentralController::arm_timer() {
  timer_ = scenario_->scheduler().schedule_after(options_.period, [this] {
    if (!running_) return;
    reoptimize();
    arm_timer();
  });
}

void CentralController::reoptimize() {
  ++rounds_;

  // Server-side world view: currently-running nodes only. (Between rounds
  // the controller is blind to churn — its structural handicap.)
  std::vector<std::size_t> running_nodes;
  for (std::size_t i = 0; i < scenario_->node_count(); ++i) {
    if (scenario_->node(i).running()) running_nodes.push_back(i);
  }
  if (running_nodes.empty() || clients_.empty()) return;

  std::vector<HostId> hosts;
  hosts.reserve(clients_.size());
  for (const auto* client : clients_) hosts.push_back(client->id());

  // Full prediction input, then cut down to the running columns.
  auto full = scenario_->predict_input(hosts, options_.fps, options_.frame_bytes);
  baselines::PredictInput input;
  input.fps = full.fps;
  for (const std::size_t j : running_nodes) input.nodes.push_back(full.nodes[j]);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::vector<double> rtt;
    std::vector<double> trans;
    for (const std::size_t j : running_nodes) {
      rtt.push_back(full.rtt_ms[i][j]);
      trans.push_back(full.trans_ms[i][j]);
    }
    input.rtt_ms.push_back(std::move(rtt));
    input.trans_ms.push_back(std::move(trans));
  }

  const auto solution =
      baselines::solve_optimal(input, rng_, options_.solver);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const NodeId target =
        scenario_->node_id(running_nodes[solution.assignment[i]]);
    if (clients_[i]->current_node() == target) continue;
    clients_[i]->reassign(target);
    ++reassignments_;
  }
}

}  // namespace eden::harness
