// Structure-of-arrays fleet storage for the harness. PR 3 stored one
// value-typed record per entity (spec + host + link + node + stub glued
// into a struct); at 10^5-10^6 entities the mixed-field records waste
// cache on every column-wise pass (stats aggregation touches only the
// client column, shard partitioning only the host column). The fleets
// below keep each column in its own deque — stable addresses, one
// allocation per block — and grow all columns in lockstep through
// emplace(). Indices are positional and permanent: column i of every
// deque describes entity i.
//
// NodeSpec / ClientSpot / FleetStats / NetKind live here (not in
// scenario.h) so the sharded runner can describe fleets without pulling
// in the full sequential Scenario.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "baselines/static_client.h"
#include "client/edge_client.h"
#include "common/types.h"
#include "geo/geopoint.h"
#include "harness/sim_stubs.h"
#include "manager/central_manager.h"
#include "net/network_model.h"
#include "node/edge_node.h"

namespace eden::harness {

struct NodeSpec {
  std::string name;
  geo::GeoPoint position{44.9778, -93.2650};  // Minneapolis by default
  net::AccessTier tier{net::AccessTier::kCable};
  int cores{2};
  double base_frame_ms{30.0};
  bool dedicated{false};
  bool is_cloud{false};
  bool burstable{false};
  double burst_baseline{0.4};
  double initial_credits_core_sec{30.0};
  double contention_alpha{0.04};
  double background_load{0.0};
  double extra_rtt_ms{0.0};  // GeoNetwork only: fixed backbone penalty
  std::string network_tag;
  SimDuration heartbeat_period{sec(1.0)};
  // Application server types deployed on the node; empty = serves all.
  std::vector<std::string> app_types;
  // Attached-user idle eviction TTL (see EdgeNodeConfig::user_idle_ttl).
  SimDuration user_idle_ttl{sec(15.0)};
  // Fuzzer-only seeded fault (see EdgeNodeConfig::chaos_freeze_seq_num).
  bool chaos_freeze_seq_num{false};
};

struct ClientSpot {
  std::string name;
  geo::GeoPoint position{44.9778, -93.2650};
  net::AccessTier tier{net::AccessTier::kCable};
  std::string network_tag;
};

// Fleet-wide aggregate of every edge client's counters and frame
// latencies. Percentiles use the same interpolation as Samples.
struct FleetStats {
  std::size_t clients{0};
  client::ClientStats totals{};
  std::size_t latency_count{0};
  double latency_mean_ms{0};
  double latency_p50_ms{0};
  double latency_p90_ms{0};
  double latency_p99_ms{0};
  double latency_max_ms{0};
};

enum class NetKind { kGeo, kMatrix };

// Edge-node columns: spec, host, manager link, node, RPC stub. The link
// must outlive the node (the node holds a ManagerLink*), and the stub
// references the node — emplace() constructs them in that order.
struct NodeFleet {
  std::size_t emplace(NodeSpec spec, HostId host, net::SimNetwork& fabric,
                      manager::CentralManager& manager, HostId manager_host,
                      sim::Scheduler& scheduler,
                      const node::EdgeNodeConfig& node_config,
                      StubTimeouts timeouts, WireSizes sizes) {
    specs.push_back(std::move(spec));
    hosts.push_back(host);
    links.emplace_back(fabric, manager, manager_host, host, sizes, timeouts);
    nodes.emplace_back(scheduler, node_config, &links.back());
    stubs.emplace_back(fabric, nodes.back(), host, timeouts, sizes);
    return nodes.size() - 1;
  }
  [[nodiscard]] std::size_t size() const { return nodes.size(); }
  [[nodiscard]] bool empty() const { return nodes.empty(); }

  std::deque<NodeSpec> specs;
  std::vector<HostId> hosts;
  std::deque<SimManagerLink> links;
  std::deque<node::EdgeNode> nodes;
  std::deque<SimNodeStub> stubs;
};

// Edge-client columns: spot, host, client.
struct ClientFleet {
  std::size_t emplace(ClientSpot spot, HostId host, sim::Scheduler& scheduler,
                      net::ManagerApi& manager, client::NodeResolver resolver,
                      client::ClientConfig config) {
    spots.push_back(std::move(spot));
    hosts.push_back(host);
    clients.emplace_back(scheduler, manager, std::move(resolver),
                         std::move(config));
    return clients.size() - 1;
  }
  [[nodiscard]] std::size_t size() const { return clients.size(); }
  [[nodiscard]] bool empty() const { return clients.empty(); }

  std::deque<ClientSpot> spots;
  std::vector<HostId> hosts;
  std::deque<client::EdgeClient> clients;
};

// Static-baseline client columns.
struct StaticFleet {
  std::size_t emplace(ClientSpot spot, HostId host, sim::Scheduler& scheduler,
                      client::NodeResolver resolver, workload::AppProfile app) {
    spots.push_back(std::move(spot));
    hosts.push_back(host);
    clients.emplace_back(scheduler, std::move(resolver), host, std::move(app));
    return clients.size() - 1;
  }
  [[nodiscard]] std::size_t size() const { return clients.size(); }
  [[nodiscard]] bool empty() const { return clients.empty(); }

  std::deque<ClientSpot> spots;
  std::vector<HostId> hosts;
  std::deque<baselines::StaticClient> clients;
};

// Incremental FleetStats aggregation shared by the sequential Scenario
// and the sharded runner (which feeds clients in global order so the
// percentile inputs are identical across shard layouts).
class FleetStatsBuilder {
 public:
  void add(const client::EdgeClient& client);
  [[nodiscard]] FleetStats finish();

 private:
  FleetStats out_{};
  std::vector<double> all_;
  double sum_{0.0};
};

}  // namespace eden::harness
