#include "harness/window_pool.h"

#include <utility>

namespace eden::harness {

unsigned resolve_thread_count(unsigned requested, unsigned hardware) {
  if (requested != 0) return requested;
  return hardware == 0 ? 1u : hardware;
}

unsigned resolve_thread_count(unsigned requested) {
  return resolve_thread_count(requested,
                              std::thread::hardware_concurrency());
}

WindowPool::WindowPool(unsigned threads)
    : threads_(resolve_thread_count(threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WindowPool::~WindowPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WindowPool::drain() {
  for (;;) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*fn_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WindowPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void WindowPool::for_each(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    // Inline path: no workers to synchronize with, no fence needed.
    n_ = n;
    fn_ = &fn;
    cursor_.store(0, std::memory_order_relaxed);
    drain();
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    n_ = n;
    fn_ = &fn;
    cursor_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  drain();  // the caller is a participant too
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace eden::harness
