#include "harness/metrics.h"

#include <cmath>
#include <limits>

namespace eden::harness {

StreamingStats fleet_window(const std::vector<const TimeSeries*>& series,
                            SimTime begin, SimTime end) {
  StreamingStats stats;
  for (const auto* s : series) stats.merge(s->window(begin, end));
  return stats;
}

double fairness_stddev(const std::vector<const TimeSeries*>& series,
                       SimTime begin, SimTime end) {
  Samples means;
  for (const auto* s : series) {
    const StreamingStats w = s->window(begin, end);
    if (w.count() > 0) means.add(w.mean());
  }
  return means.stddev();
}

std::vector<std::pair<SimTime, double>> fleet_trace(
    const std::vector<const TimeSeries*>& series, SimTime begin, SimTime end,
    SimDuration bucket) {
  std::vector<std::pair<SimTime, double>> out;
  if (bucket <= 0 || end <= begin) return out;
  double last = std::numeric_limits<double>::quiet_NaN();
  for (SimTime t = begin; t < end; t += bucket) {
    const StreamingStats w = fleet_window(series, t, t + bucket);
    if (w.count() > 0) last = w.mean();
    out.emplace_back(t, last);
  }
  return out;
}

}  // namespace eden::harness
