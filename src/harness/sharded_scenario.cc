#include "harness/sharded_scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/trace_merge.h"

namespace eden::harness {

namespace {
// Window length used when no cross-shard pair exists and windows are not
// forced: one giant window per run_until() call.
constexpr SimDuration kHugeWindow =
    std::numeric_limits<SimDuration>::max() / 4;
// Exact O(hosts^2) lookahead only below this host count; larger worlds use
// the closed-form tier bound.
constexpr std::uint32_t kExactLookaheadHosts = 256;
}  // namespace

ShardedScenario::ShardedScenario(ShardedConfig config, NetKind kind,
                                 double default_rtt_ms,
                                 double default_bw_mbps, double jitter_sigma)
    : config_(std::move(config)),
      kind_(kind),
      default_rtt_ms_(default_rtt_ms),
      rng_(config_.base.seed) {
  const unsigned shards = std::max(1u, config_.shards);
  pool_ = std::make_unique<WindowPool>(
      std::max(1u, resolve_thread_count(config_.threads)));
  for (unsigned s = 0; s < shards; ++s) {
    Domain& d = domains_.emplace_back();
    if (kind_ == NetKind::kGeo) {
      if (s == 0) {
        d.model = std::make_unique<net::GeoNetwork>(jitter_sigma);
      } else {
        // Views share domain 0's host map; each keeps a private pair memo.
        auto* base = static_cast<net::GeoNetwork*>(domains_[0].model.get());
        d.model = base->shared_view();
      }
    } else {
      // Fresh per-domain matrix with identical parameters. ShardedScenario
      // exposes no matrix mutators, so the instances never diverge.
      d.model = std::make_unique<net::MatrixNetwork>(
          default_rtt_ms, default_bw_mbps, jitter_sigma);
    }
    d.fabric = std::make_unique<net::SimNetwork>(d.sim, *d.model, d.hosts,
                                                 rng_.fork("fabric"));
    // Same seed everywhere: a message's jitter must not depend on which
    // domain sampled it.
    d.fabric->enable_deterministic_delivery(config_.base.seed);
    d.fabric->set_fault_injector(&d.faults);
    const net::ShardRouter::ShardId id = router_.add_shard(d.fabric.get(),
                                                           &d.sim);
    d.fabric->set_shard_router(&router_, id);
    if (config_.base.trace) {
      d.trace = std::make_unique<obs::TraceRecorder>();
      d.metrics = std::make_unique<obs::MetricsRegistry>();
    }
  }

  // Manager: always domain 0, host 0 — the same wiring (and the same host
  // id sequence) as the sequential Scenario.
  manager_host_ = HostId{next_host_++};
  host_domain_.push_back(0);
  router_.set_shard(manager_host_, 0);
  domains_[0].hosts.set_alive(manager_host_, true);
  register_position(manager_host_, geo::GeoPoint{44.9778, -93.2650},
                    net::AccessTier::kLocalZone, 0.0, {});
  manager_ = std::make_unique<manager::CentralManager>(
      domains_[0].scheduler, config_.base.manager_policy,
      config_.base.heartbeat_ttl);
  if (config_.base.load_feedback) {
    manager::OverloadPolicy policy = config_.base.overload;
    policy.enabled = true;
    manager_->set_overload_policy(policy);
  }
  if (config_.base.trace) {
    manager_->set_observability(domains_[0].trace.get(),
                                domains_[0].metrics.get());
  }
  for (Domain& d : domains_) {
    d.manager_stub.emplace(*d.fabric, *manager_, manager_host_, ClientId{},
                           config_.base.timeouts, config_.base.wire_sizes);
  }
}

net::GeoNetwork* ShardedScenario::geo_network() {
  return dynamic_cast<net::GeoNetwork*>(domains_[0].model.get());
}

std::string ShardedScenario::geohash_of(const geo::GeoPoint& position) const {
  return geo::geohash_encode(position, config_.base.geohash_precision);
}

std::uint32_t ShardedScenario::domain_of_position(
    const geo::GeoPoint& position) const {
  if (domains_.size() == 1) return 0;
  // FNV-1a over the shard cell (a geohash prefix coarser than the protocol
  // precision): co-located hosts always land in the same cell, hence the
  // same shard, so zero-distance pairs never cross a shard boundary.
  const std::string cell =
      geo::geohash_encode(position, config_.cell_precision);
  std::uint32_t h = 2166136261u;
  for (const char c : cell) {
    h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
  }
  return h % static_cast<std::uint32_t>(domains_.size());
}

void ShardedScenario::register_position(HostId host,
                                        const geo::GeoPoint& position,
                                        net::AccessTier tier,
                                        double extra_rtt_ms,
                                        const std::string& network_tag) {
  min_last_mile_ms_ =
      std::min(min_last_mile_ms_, net::GeoNetwork::tier_latency_ms(tier));
  auto* geo_net = dynamic_cast<net::GeoNetwork*>(domains_[0].model.get());
  if (geo_net == nullptr) return;
  // Same tag→isp hash as Scenario::register_position.
  int isp = -1;
  if (!network_tag.empty()) {
    std::uint32_t h = 2166136261u;
    for (const char c : network_tag) {
      h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
    }
    isp = static_cast<int>(h & 0x7fffffff);
  }
  geo_net->add_host(host, position, tier, isp);
  if (extra_rtt_ms > 0) geo_net->set_extra_rtt_ms(host, extra_rtt_ms);
}

node::EdgeNodeConfig ShardedScenario::make_node_config(const NodeSpec& spec,
                                                       HostId host) const {
  node::EdgeNodeConfig node_config;
  node_config.id = host;  // NodeId == HostId by convention
  node_config.geohash = geohash_of(spec.position);
  node_config.network_tag = spec.network_tag;
  node_config.dedicated = spec.dedicated;
  node_config.is_cloud = spec.is_cloud;
  node_config.heartbeat_period = spec.heartbeat_period;
  node_config.app_types = spec.app_types;
  node_config.user_idle_ttl = spec.user_idle_ttl;
  node_config.chaos_freeze_seq_num = spec.chaos_freeze_seq_num;
  node_config.load_feedback = config_.base.load_feedback;
  node_config.executor.shed_on_throttle = config_.base.load_feedback;
  node_config.executor.cores = spec.cores;
  node_config.executor.base_frame_ms = spec.base_frame_ms;
  node_config.executor.contention_alpha = spec.contention_alpha;
  node_config.executor.burstable = spec.burstable;
  node_config.executor.burst_baseline = spec.burst_baseline;
  node_config.executor.initial_credits_core_sec = spec.initial_credits_core_sec;
  node_config.executor.background_load = spec.background_load;
  return node_config;
}

std::size_t ShardedScenario::add_node(const NodeSpec& spec) {
  const HostId host{next_host_++};
  const std::uint32_t dom = domain_of_position(spec.position);
  host_domain_.push_back(dom);
  router_.set_shard(host, dom);
  register_position(host, spec.position, spec.tier, spec.extra_rtt_ms,
                    spec.network_tag);
  Domain& d = domains_[dom];
  const std::size_t local = d.nodes.emplace(
      spec, host, *d.fabric, *manager_, manager_host_, d.scheduler,
      make_node_config(spec, host), config_.base.timeouts,
      config_.base.wire_sizes);
  node::EdgeNode& node = d.nodes.nodes[local];
  if (d.trace) node.set_observability(d.trace.get());
  node_refs_.push_back(
      EntityRef{dom, static_cast<std::uint32_t>(local)});
  node_index_by_id_[node.id()] = node_refs_.size() - 1;
  return node_refs_.size() - 1;
}

std::size_t ShardedScenario::add_nodes(const NodeSpec& base, std::size_t count,
                                       const NodePlacementFn& placement) {
  const std::size_t first = node_refs_.size();
  NodeSpec spec;
  for (std::size_t i = 0; i < count; ++i) {
    spec = base;
    if (placement) placement(i, spec);
    add_node(spec);
  }
  return first;
}

node::EdgeNode& ShardedScenario::node(std::size_t index) {
  const EntityRef ref = node_refs_[index];
  return domains_[ref.domain].nodes.nodes[ref.index];
}

const NodeSpec& ShardedScenario::node_spec(std::size_t index) const {
  const EntityRef ref = node_refs_[index];
  return domains_[ref.domain].nodes.specs[ref.index];
}

NodeId ShardedScenario::node_id(std::size_t index) const {
  const EntityRef ref = node_refs_[index];
  return domains_[ref.domain].nodes.hosts[ref.index];
}

void ShardedScenario::start_node(std::size_t index) {
  const EntityRef ref = node_refs_[index];
  Domain& d = domains_[ref.domain];
  d.hosts.set_alive(d.nodes.hosts[ref.index], true);
  d.nodes.nodes[ref.index].start();
}

void ShardedScenario::stop_node(std::size_t index, bool graceful) {
  const EntityRef ref = node_refs_[index];
  Domain& d = domains_[ref.domain];
  d.nodes.nodes[ref.index].stop(graceful);
  d.hosts.set_alive(d.nodes.hosts[ref.index], false);
}

void ShardedScenario::schedule_node_start(std::size_t index, SimTime at) {
  const EntityRef ref = node_refs_[index];
  domains_[ref.domain].sim.schedule_at(at, [this, index] {
    start_node(index);
  });
}

void ShardedScenario::schedule_node_stop(std::size_t index, SimTime at,
                                         bool graceful) {
  const EntityRef ref = node_refs_[index];
  domains_[ref.domain].sim.schedule_at(at, [this, index, graceful] {
    stop_node(index, graceful);
  });
}

void ShardedScenario::schedule_at_node(std::size_t index, SimTime at,
                                       std::function<void(node::EdgeNode&)> fn) {
  const EntityRef ref = node_refs_[index];
  domains_[ref.domain].sim.schedule_at(
      at, [this, index, fn = std::move(fn)] { fn(node(index)); });
}

void ShardedScenario::set_route(NodeId id, bool routed) {
  if (routed) {
    unrouted_.erase(id);
  } else {
    unrouted_.insert(id);
  }
}

net::NodeApi* ShardedScenario::node_api_for(std::uint32_t domain, NodeId id) {
  if (unrouted_.count(id) != 0) return nullptr;
  Domain& d = domains_[domain];
  const auto cached = d.stub_cache.find(id);
  if (cached != d.stub_cache.end()) return cached->second;
  const auto it = node_index_by_id_.find(id);
  if (it == node_index_by_id_.end()) return nullptr;
  const EntityRef ref = node_refs_[it->second];
  net::NodeApi* api;
  if (ref.domain == domain) {
    api = &d.nodes.stubs[ref.index];
  } else {
    // Rpc rides THIS domain's fabric (the caller's shard samples the
    // delay); the server closure ships to the owner's domain, where the
    // node object actually runs.
    Domain& owner = domains_[ref.domain];
    d.remote_stubs.emplace_back(*d.fabric, owner.nodes.nodes[ref.index],
                                owner.nodes.hosts[ref.index],
                                config_.base.timeouts,
                                config_.base.wire_sizes);
    api = &d.remote_stubs.back();
  }
  d.stub_cache[id] = api;
  return api;
}

client::NodeResolver ShardedScenario::resolver(std::uint32_t domain) {
  return [this, domain](NodeId id) -> net::NodeApi* {
    return node_api_for(domain, id);
  };
}

std::size_t ShardedScenario::add_edge_client(const ClientSpot& spot,
                                             client::ClientConfig config) {
  const HostId host{next_host_++};
  const std::uint32_t dom = domain_of_position(spot.position);
  host_domain_.push_back(dom);
  router_.set_shard(host, dom);
  Domain& d = domains_[dom];
  d.hosts.set_alive(host, true);
  register_position(host, spot.position, spot.tier, 0.0, spot.network_tag);

  config.id = host;
  if (config.geohash.empty()) config.geohash = geohash_of(spot.position);
  if (config.network_tag.empty()) config.network_tag = spot.network_tag;

  const std::size_t local =
      d.clients.emplace(spot, host, d.scheduler, *d.manager_stub,
                        resolver(dom), std::move(config));
  if (d.trace) {
    d.clients.clients[local].set_observability(d.trace.get(),
                                               d.metrics.get());
  }
  client_refs_.push_back(EntityRef{dom, static_cast<std::uint32_t>(local)});
  return client_refs_.size() - 1;
}

std::size_t ShardedScenario::add_edge_clients(const ClientSpotFn& spot_fn,
                                              const ClientConfigFn& config_fn,
                                              std::size_t count) {
  const std::size_t first = client_refs_.size();
  for (std::size_t i = 0; i < count; ++i) {
    add_edge_client(spot_fn(i), config_fn(i));
  }
  return first;
}

client::EdgeClient& ShardedScenario::edge_client(std::size_t index) {
  const EntityRef ref = client_refs_[index];
  return domains_[ref.domain].clients.clients[ref.index];
}

void ShardedScenario::schedule_at_client(
    std::size_t index, SimTime at,
    std::function<void(client::EdgeClient&)> fn) {
  const EntityRef ref = client_refs_[index];
  domains_[ref.domain].sim.schedule_at(
      at, [this, index, fn = std::move(fn)] { fn(edge_client(index)); });
}

void ShardedScenario::cut_link(HostId a, HostId b, SimTime from,
                               SimTime until) {
  for (Domain& d : domains_) d.faults.cut_link(a, b, from, until);
}

void ShardedScenario::partition(HostId a, HostId b, SimTime from,
                                SimTime until) {
  for (Domain& d : domains_) d.faults.partition(a, b, from, until);
}

void ShardedScenario::slow_link(HostId a, HostId b, double factor,
                                SimTime from, SimTime until) {
  min_slow_factor_ = std::min(min_slow_factor_, factor);
  for (Domain& d : domains_) d.faults.slow_link(a, b, factor, from, until);
}

void ShardedScenario::isolate_host(HostId host, SimTime from, SimTime until) {
  for (Domain& d : domains_) d.faults.isolate_host(host, from, until);
}

bool ShardedScenario::cross_domain_pairs_exist() const {
  if (domains_.size() < 2) return false;
  const std::uint32_t first = host_domain_.empty() ? 0 : host_domain_[0];
  for (const std::uint32_t dom : host_domain_) {
    if (dom != first) return true;
  }
  return false;
}

SimDuration ShardedScenario::lookahead() const {
  const bool cross = cross_domain_pairs_exist();
  if (!cross && !config_.force_windows) return kHugeWindow;

  const net::NetworkModel& model = *domains_[0].model;
  double min_owd_us = 1e30;
  if (next_host_ <= kExactLookaheadHosts) {
    // Exact: minimum base one-way delay over every relevant pair (cached
    // per pair inside domain 0's model). With force_windows and no cross
    // pair, every pair is "relevant" so the window still has a real floor.
    for (std::uint32_t a = 0; a < next_host_; ++a) {
      for (std::uint32_t b = a + 1; b < next_host_; ++b) {
        if (cross && host_domain_[a] == host_domain_[b]) continue;
        const double owd_us =
            static_cast<double>(model.base_rtt(HostId{a}, HostId{b})) / 2.0;
        min_owd_us = std::min(min_owd_us, owd_us);
      }
    }
  } else if (dynamic_cast<const net::GeoNetwork*>(&model) != nullptr) {
    // Tier bound: rtt >= 0.25 * (2*lm_a + 2*lm_b) even for well-peered
    // pairs, so owd >= 0.5 * min last-mile latency across the fleet.
    min_owd_us = 0.5 * min_last_mile_ms_ * 1000.0;
  } else {
    // MatrixNetwork without exposed mutators: every pair sits at the
    // default rtt.
    min_owd_us = default_rtt_ms_ * 1000.0 / 2.0;
  }
  if (min_owd_us >= 1e30) return kHugeWindow;  // no relevant pair at all

  // Deterministic jitter is clamped at +/- kDetJitterZClamp sigma, so the
  // factor never drops below exp(-clamp * sigma); slow_link factors < 1
  // (never injected by the stock harnesses, but legal) shrink the floor
  // further.
  const double jitter_floor =
      std::exp(-net::SimNetwork::kDetJitterZClamp * model.jitter_sigma());
  const double slow_floor = std::min(1.0, min_slow_factor_);
  const auto ticks = static_cast<SimDuration>(
      min_owd_us * jitter_floor * slow_floor);
  if (ticks <= 0) {
    throw std::runtime_error(
        "ShardedScenario::lookahead: the cross-shard delay floor is below "
        "one tick — this topology cannot be sharded conservatively");
  }
  return ticks;
}

void ShardedScenario::run_until(SimTime horizon) {
  SimDuration window = lookahead();
  if (config_.window > 0) window = std::min(window, config_.window);
  last_window_ = window;
  const std::size_t count = domains_.size();
  while (cursor_ < horizon) {
    const SimTime w_end =
        (horizon - cursor_ > window) ? cursor_ + window : horizon;
    // Envelopes posted during the previous window arrive at or after its
    // start + lookahead >= this window's start; flushing here (before the
    // window runs) therefore never injects into executed time.
    router_.flush(cursor_);
    // Half-open [cursor_, w_end): run_until is inclusive, so stop one tick
    // short — except at the horizon, which the sequential contract
    // includes. Cross-shard arrivals land at >= w_end, so an arrival at
    // exactly w_end still precedes every w_end event on the destination
    // (deliveries beat events at equal times; none have run yet).
    const SimTime stop = (w_end == horizon) ? horizon : w_end - 1;
    ++windows_;
    pool_->for_each(count, [this, stop](std::size_t i) {
      Domain& d = domains_[i];
      const std::uint64_t before = d.sim.events_processed();
      d.sim.run_until(stop);
      if (d.sim.events_processed() == before) ++d.stalled_windows;
    });
    cursor_ = w_end;
  }
}

FleetStats ShardedScenario::fleet_stats() const {
  FleetStatsBuilder builder;
  // Global add order, so the percentile input sequence is identical for
  // every shard count.
  for (const EntityRef ref : client_refs_) {
    builder.add(domains_[ref.domain].clients.clients[ref.index]);
  }
  return builder.finish();
}

obs::MetricsSnapshot ShardedScenario::metrics_snapshot() const {
  obs::MetricsSnapshot merged;
  for (const Domain& d : domains_) {
    if (d.metrics) merged.merge(d.metrics->snapshot());
  }
  return merged;
}

std::vector<obs::TraceEvent> ShardedScenario::canonical_trace() const {
  std::vector<const std::vector<obs::TraceEvent>*> parts;
  parts.reserve(domains_.size());
  for (const Domain& d : domains_) {
    if (d.trace) parts.push_back(&d.trace->events());
  }
  if (parts.empty()) return {};
  return obs::merge_shard_traces(parts, manager_host_);
}

void ShardedScenario::require_nonvacuous_run() const {
  if (client_refs_.empty()) {
    throw std::runtime_error(
        "vacuous scenario: no edge clients were ever added");
  }
  bool any_sender = false;
  std::uint64_t frames_sent = 0;
  for (const EntityRef ref : client_refs_) {
    const auto& client = domains_[ref.domain].clients.clients[ref.index];
    any_sender = any_sender || client.config().send_frames;
    frames_sent += client.stats().frames_sent;
  }
  if (any_sender && frames_sent == 0) {
    throw std::runtime_error(
        "vacuous scenario: frame-sending clients exist but zero frames were "
        "sent over the whole run");
  }
}

ShardStats ShardedScenario::shard_stats() const {
  ShardStats out;
  out.events_per_domain.reserve(domains_.size());
  for (const Domain& d : domains_) {
    out.events_per_domain.push_back(d.sim.events_processed());
    out.stalled_domain_windows += d.stalled_windows;
  }
  out.windows = windows_;
  out.cross_shard_messages = router_.messages_routed();
  out.window_length = last_window_;
  return out;
}

}  // namespace eden::harness
