#include "harness/scenario.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace eden::harness {

namespace {

std::unique_ptr<net::NetworkModel> make_builtin_model(NetKind kind,
                                                      double default_rtt_ms,
                                                      double default_bw_mbps,
                                                      double jitter_sigma) {
  if (kind == NetKind::kGeo) {
    return std::make_unique<net::GeoNetwork>(jitter_sigma);
  }
  return std::make_unique<net::MatrixNetwork>(default_rtt_ms, default_bw_mbps,
                                              jitter_sigma);
}

}  // namespace

Scenario::Scenario(ScenarioConfig config, NetKind kind, double default_rtt_ms,
                   double default_bw_mbps, double jitter_sigma)
    : Scenario(config, [&](sim::Clock&) {
        return make_builtin_model(kind, default_rtt_ms, default_bw_mbps,
                                  jitter_sigma);
      }) {}

Scenario::Scenario(ScenarioConfig config, const ModelFactory& factory)
    : config_(config), scheduler_(simulator_), rng_(config.seed) {
  model_ = factory(scheduler_);
  fabric_ = std::make_unique<net::SimNetwork>(simulator_, *model_, hosts_,
                                              rng_.fork("fabric"));
  manager_host_ = allocate_host();
  hosts_.set_alive(manager_host_, true);
  // The manager sits in a well-connected datacenter position.
  register_position(manager_host_, geo::GeoPoint{44.9778, -93.2650},
                    net::AccessTier::kLocalZone);
  manager_ = std::make_unique<manager::CentralManager>(
      scheduler_, config_.manager_policy, config_.heartbeat_ttl);
  if (config_.load_feedback) {
    manager::OverloadPolicy policy = config_.overload;
    policy.enabled = true;
    manager_->set_overload_policy(policy);
  }
  manager_stub_.emplace(*fabric_, *manager_, manager_host_, ClientId{},
                        config_.timeouts, config_.wire_sizes);
  route_ = ManagerRoute{manager_host_, manager_.get()};
  manager_stub_->set_route(&route_);
  if (config_.standby.enabled) build_standby();
  if (config_.trace) enable_observability();
}

void Scenario::build_standby() {
  journal_backend_ = std::make_unique<journal::MemoryBackend>();
  manager_journal_ = std::make_unique<journal::ManagerJournal>(
      *journal_backend_, &scheduler_, config_.standby.journal);
  manager_->set_mutation_sink(manager_journal_.get());
  // The standby host comes right after the primary, before any node or
  // client — a fixed address clients can re-resolve to.
  standby_host_ = allocate_host();
  hosts_.set_alive(standby_host_, true);
  register_position(standby_host_, geo::GeoPoint{44.9778, -93.2650},
                    net::AccessTier::kLocalZone);
  standby_manager_ = std::make_unique<manager::CentralManager>(
      scheduler_, config_.manager_policy, config_.heartbeat_ttl);
  if (config_.load_feedback) {
    manager::OverloadPolicy policy = config_.overload;
    policy.enabled = true;
    standby_manager_->set_overload_policy(policy);
  }
  standby_ = std::make_unique<journal::StandbyManager>(
      *journal_backend_, *standby_manager_, config_.standby.standby_options);
  standby_tail_active_ = true;
  schedule_standby_tail();
}

void Scenario::schedule_standby_tail() {
  simulator_.schedule_after(config_.standby.tail_period, [this] {
    if (!standby_tail_active_ || takeover_done_) return;
    standby_->tail();
    schedule_standby_tail();
  });
}

void Scenario::schedule_manager_crash(SimTime at, journal::CrashPoint point,
                                      SimDuration takeover_delay) {
  if (standby_ == nullptr) {
    throw std::logic_error(
        "schedule_manager_crash requires StandbyConfig::enabled");
  }
  takeover_delay_ = takeover_delay;
  simulator_.schedule_at(at, [this, point] { on_crash_trigger(point); });
}

void Scenario::on_crash_trigger(journal::CrashPoint point) {
  if (crashed_) return;
  if (point == journal::CrashPoint::kAfterAppend) {
    crash_primary(point);
    return;
  }
  // Arm the journal: the crash fires inside the next group commit, so
  // mid-batch / torn-tail surgery hits a batch that really was in flight.
  manager_journal_->arm_crash(point, [this, point] { crash_primary(point); });
  // Idle-registry fallback: if no commit arrives within a second, flush
  // whatever is staged and die — the crash must not silently not happen.
  simulator_.schedule_after(sec(1.0), [this, point] {
    if (!crashed_) {
      manager_journal_->flush_now(simulator_.now());
      crash_primary(point);
    }
  });
}

void Scenario::crash_primary(journal::CrashPoint point) {
  if (crashed_) return;
  crashed_ = true;
  const SimTime now = simulator_.now();
  if (point == journal::CrashPoint::kAfterAppend) {
    manager_journal_->flush_now(now);
  }
  manager_journal_->disable();
  manager_->set_mutation_sink(nullptr);
  hosts_.set_alive(manager_host_, false);
  // Killing the host drops arrivals; the isolate window also drops the
  // dead primary's own in-flight sends (e.g. the heartbeat ack a crashing
  // commit would otherwise still emit) at send time.
  if (crash_faults_ != nullptr) {
    crash_faults_->isolate_host(manager_host_, now,
                                std::numeric_limits<SimTime>::max());
  }
  if (trace_recorder_) {
    trace_recorder_->record({now, obs::EventKind::kManagerCrash, manager_host_,
                             {}, 0, static_cast<double>(static_cast<int>(point))});
  }
  simulator_.schedule_after(takeover_delay_, [this] { do_takeover(); });
}

void Scenario::do_takeover() {
  const SimTime now = simulator_.now();
  // Witness "expected" side first: a fresh, chaos-free one-shot replay of
  // the surviving journal bytes — computed before take_over() mutates the
  // backend (torn-tail truncation cannot change the clean prefix).
  std::string bytes;
  journal_backend_->read_all(bytes);
  const journal::ScanResult scanned = journal::scan(bytes);
  journal::RegistryImage expected;
  for (const journal::JournalRecord& r : scanned.records) expected.apply(r);
  expected_dump_ = expected.canonical_dump();

  const journal::TakeoverResult result = standby_->take_over(now);
  standby_dump_ = result.dump;
  recovered_lsn_ = result.recovered_lsn;

  // The standby adopts journaling where the primary stopped: same log,
  // next LSN strictly above everything recovered.
  standby_journal_ = std::make_unique<journal::ManagerJournal>(
      *journal_backend_, &scheduler_, config_.standby.journal,
      result.recovered_lsn + 1);
  if (trace_recorder_) {
    standby_journal_->set_observability(trace_recorder_.get(), standby_host_);
    trace_recorder_->record({now, obs::EventKind::kManagerTakeover,
                             standby_host_, manager_host_, 0,
                             static_cast<double>(recovered_lsn_)});
  }
  standby_manager_->set_mutation_sink(standby_journal_.get());
  takeover_done_ = true;
  // Re-resolve every stub and link: from here on, clients and nodes talk
  // to the standby.
  route_ = ManagerRoute{standby_host_, standby_manager_.get()};
}

void Scenario::enable_observability() {
  if (trace_recorder_) return;
  trace_recorder_ = std::make_unique<obs::TraceRecorder>();
  metrics_registry_ = std::make_unique<obs::MetricsRegistry>();
  manager_->set_observability(trace_recorder_.get(), metrics_registry_.get());
  if (standby_manager_) {
    standby_manager_->set_observability(trace_recorder_.get(),
                                        metrics_registry_.get());
  }
  if (manager_journal_) {
    manager_journal_->set_observability(trace_recorder_.get(), manager_host_);
  }
  for (auto& node : nodes_.nodes) {
    node.set_observability(trace_recorder_.get());
  }
  for (auto& client : edge_clients_.clients) {
    client.set_observability(trace_recorder_.get(), metrics_registry_.get());
  }
}

void Scenario::set_route(NodeId id, bool routed) {
  if (routed) {
    unrouted_.erase(id);
  } else {
    unrouted_.insert(id);
  }
}

HostId Scenario::allocate_host() { return HostId{next_host_++}; }

void Scenario::register_position(HostId host, const geo::GeoPoint& position,
                                 net::AccessTier tier, double extra_rtt_ms,
                                 const std::string& network_tag) {
  if (auto* geo_net = dynamic_cast<net::GeoNetwork*>(model_.get())) {
    // Network tags double as ISP groups: same tag => same access provider
    // => potentially well-peered paths the manager's affinity hint can
    // surface.
    int isp = -1;
    if (!network_tag.empty()) {
      std::uint32_t h = 2166136261u;
      for (const char c : network_tag) {
        h = (h ^ static_cast<std::uint8_t>(c)) * 16777619u;
      }
      isp = static_cast<int>(h & 0x7fffffff);
    }
    geo_net->add_host(host, position, tier, isp);
    if (extra_rtt_ms > 0) geo_net->set_extra_rtt_ms(host, extra_rtt_ms);
  }
}

net::GeoNetwork* Scenario::geo_network() {
  return dynamic_cast<net::GeoNetwork*>(model_.get());
}

net::MatrixNetwork* Scenario::matrix_network() {
  return dynamic_cast<net::MatrixNetwork*>(model_.get());
}

std::string Scenario::geohash_of(const geo::GeoPoint& position) const {
  return geo::geohash_encode(position, config_.geohash_precision);
}

node::EdgeNodeConfig Scenario::make_node_config(const NodeSpec& spec,
                                                HostId host) const {
  node::EdgeNodeConfig node_config;
  node_config.id = host;  // NodeId == HostId by convention
  node_config.geohash = geohash_of(spec.position);
  node_config.network_tag = spec.network_tag;
  node_config.dedicated = spec.dedicated;
  node_config.is_cloud = spec.is_cloud;
  node_config.heartbeat_period = spec.heartbeat_period;
  node_config.app_types = spec.app_types;
  node_config.user_idle_ttl = spec.user_idle_ttl;
  node_config.chaos_freeze_seq_num = spec.chaos_freeze_seq_num;
  node_config.load_feedback = config_.load_feedback;
  node_config.executor.shed_on_throttle = config_.load_feedback;
  node_config.executor.cores = spec.cores;
  node_config.executor.base_frame_ms = spec.base_frame_ms;
  node_config.executor.contention_alpha = spec.contention_alpha;
  node_config.executor.burstable = spec.burstable;
  node_config.executor.burst_baseline = spec.burst_baseline;
  node_config.executor.initial_credits_core_sec = spec.initial_credits_core_sec;
  node_config.executor.background_load = spec.background_load;
  return node_config;
}

std::size_t Scenario::add_node(const NodeSpec& spec) {
  const HostId host = allocate_host();
  register_position(host, spec.position, spec.tier, spec.extra_rtt_ms,
                    spec.network_tag);
  const std::size_t index = nodes_.emplace(
      spec, host, *fabric_, *manager_, manager_host_, scheduler_,
      make_node_config(spec, host), config_.timeouts, config_.wire_sizes);
  node::EdgeNode& node = nodes_.nodes[index];
  nodes_.links.back().set_route(&route_);
  if (trace_recorder_) node.set_observability(trace_recorder_.get());
  stubs_by_id_[node.id()] = &nodes_.stubs[index];
  node_index_by_id_[node.id()] = index;
  return index;
}

std::size_t Scenario::add_nodes(const NodeSpec& base, std::size_t count,
                                const NodePlacementFn& placement) {
  const std::size_t first = nodes_.size();
  NodeSpec spec;
  for (std::size_t i = 0; i < count; ++i) {
    spec = base;
    if (placement) placement(i, spec);
    add_node(spec);
  }
  return first;
}

net::NodeApi* Scenario::node_api(NodeId id) {
  if (unrouted_.count(id) != 0) return nullptr;
  const auto it = stubs_by_id_.find(id);
  return it == stubs_by_id_.end() ? nullptr : it->second;
}

std::optional<std::size_t> Scenario::node_index(NodeId id) const {
  const auto it = node_index_by_id_.find(id);
  if (it == node_index_by_id_.end()) return std::nullopt;
  return it->second;
}

void Scenario::start_node(std::size_t index) {
  hosts_.set_alive(nodes_.hosts[index], true);
  nodes_.nodes[index].start();
}

void Scenario::stop_node(std::size_t index, bool graceful) {
  nodes_.nodes[index].stop(graceful);
  hosts_.set_alive(nodes_.hosts[index], false);
}

void Scenario::schedule_node_start(std::size_t index, SimTime at) {
  simulator_.schedule_at(at, [this, index] { start_node(index); });
}

void Scenario::schedule_node_stop(std::size_t index, SimTime at, bool graceful) {
  simulator_.schedule_at(at, [this, index, graceful] {
    stop_node(index, graceful);
  });
}

client::NodeResolver Scenario::resolver() {
  return [this](NodeId id) -> net::NodeApi* { return node_api(id); };
}

client::EdgeClient& Scenario::add_edge_client(const ClientSpot& spot,
                                              client::ClientConfig config) {
  const HostId host = allocate_host();
  hosts_.set_alive(host, true);
  register_position(host, spot.position, spot.tier, 0.0, spot.network_tag);

  config.id = host;
  if (config.geohash.empty()) config.geohash = geohash_of(spot.position);
  if (config.network_tag.empty()) config.network_tag = spot.network_tag;

  const std::size_t index = edge_clients_.emplace(
      spot, host, scheduler_, *manager_stub_, resolver(), std::move(config));
  client::EdgeClient& client = edge_clients_.clients[index];
  if (trace_recorder_) {
    client.set_observability(trace_recorder_.get(), metrics_registry_.get());
  }
  return client;
}

std::size_t Scenario::add_edge_clients(const ClientSpotFn& spot_fn,
                                       const ClientConfigFn& config_fn,
                                       std::size_t count) {
  const std::size_t first = edge_clients_.size();
  for (std::size_t i = 0; i < count; ++i) {
    add_edge_client(spot_fn(i), config_fn(i));
  }
  return first;
}

baselines::StaticClient& Scenario::add_static_client(const ClientSpot& spot,
                                                     workload::AppProfile app) {
  const HostId host = allocate_host();
  hosts_.set_alive(host, true);
  register_position(host, spot.position, spot.tier, 0.0, spot.network_tag);
  const std::size_t index =
      static_clients_.emplace(spot, host, scheduler_, resolver(),
                              std::move(app));
  return static_clients_.clients[index];
}

std::vector<baselines::NodeInfo> Scenario::node_infos() const {
  std::vector<baselines::NodeInfo> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeSpec& spec = nodes_.specs[i];
    baselines::NodeInfo info;
    info.id = nodes_.nodes[i].id();
    info.name = spec.name;
    info.position = spec.position;
    info.cores = spec.cores;
    info.base_frame_ms = spec.base_frame_ms;
    info.dedicated = spec.dedicated;
    info.is_cloud = spec.is_cloud;
    info.burstable = spec.burstable;
    info.burst_baseline = spec.burst_baseline;
    info.contention_alpha = spec.contention_alpha;
    out.push_back(std::move(info));
  }
  return out;
}

baselines::PredictInput Scenario::predict_input(
    const std::vector<HostId>& clients, double fps, double frame_bytes) const {
  baselines::PredictInput input;
  input.nodes = node_infos();
  input.fps = fps;
  for (const HostId client : clients) {
    std::vector<double> rtt_row;
    std::vector<double> trans_row;
    rtt_row.reserve(nodes_.size());
    trans_row.reserve(nodes_.size());
    for (const HostId node_host : nodes_.hosts) {
      rtt_row.push_back(to_ms(model_->base_rtt(client, node_host)));
      trans_row.push_back(
          to_ms(model_->transfer_delay(client, node_host, frame_bytes)));
    }
    input.rtt_ms.push_back(std::move(rtt_row));
    input.trans_ms.push_back(std::move(trans_row));
  }
  return input;
}

void Scenario::require_nonvacuous_run() const {
  if (edge_clients_.empty()) {
    throw std::runtime_error(
        "vacuous scenario: no edge clients were ever added");
  }
  bool any_sender = false;
  std::uint64_t frames_sent = 0;
  for (const auto& client : edge_clients_.clients) {
    any_sender = any_sender || client.config().send_frames;
    frames_sent += client.stats().frames_sent;
  }
  if (any_sender && frames_sent == 0) {
    throw std::runtime_error(
        "vacuous scenario: frame-sending clients exist but zero frames were "
        "sent over the whole run");
  }
}

FleetStats Scenario::fleet_stats() const {
  FleetStatsBuilder builder;
  for (const auto& client : edge_clients_.clients) {
    builder.add(client);
  }
  return builder.finish();
}

}  // namespace eden::harness
