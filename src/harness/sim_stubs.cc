#include "harness/sim_stubs.h"

namespace eden::harness {

// Every `done` below is a move-only net::Done (sim::Func); it moves whole
// into the network's pooled rpc slot — the stubs add no allocation and no
// wrapper std::function on the request path. Wire sizes and timeouts are
// the only policy the stubs contribute.

void SimNodeStub::rtt_probe(ClientId from, net::Done<bool> done) {
  network_->rpc<bool>(
      from, node_host_, sizes_.probe_request, sizes_.probe_request,
      timeouts_.probe, [] { return true; },
      [done = std::move(done)](std::optional<bool> ok) mutable {
        done(ok.has_value());
      });
}

void SimNodeStub::process_probe(
    ClientId from, net::Done<std::optional<net::ProcessProbeResponse>> done) {
  network_->rpc<net::ProcessProbeResponse>(
      from, node_host_, sizes_.probe_request, sizes_.probe_response,
      timeouts_.probe,
      [node = node_, from] { return node->handle_process_probe(from); },
      std::move(done));
}

void SimNodeStub::join(const net::JoinRequest& request,
                       net::Done<std::optional<net::JoinResponse>> done) {
  network_->rpc<net::JoinResponse>(
      request.client, node_host_, sizes_.join_request, sizes_.join_response,
      timeouts_.join,
      [node = node_, request] { return node->handle_join(request); },
      std::move(done));
}

void SimNodeStub::unexpected_join(const net::JoinRequest& request,
                                  net::Done<bool> done) {
  network_->rpc<bool>(
      request.client, node_host_, sizes_.join_request, sizes_.join_response,
      timeouts_.join,
      [node = node_, request] { return node->handle_unexpected_join(request); },
      [done = std::move(done)](std::optional<bool> ok) mutable {
        done(ok.value_or(false));
      });
}

void SimNodeStub::leave(ClientId client) {
  network_->deliver(client, node_host_, sizes_.leave,
                    [node = node_, client] { node->handle_leave(client); });
}

void SimNodeStub::offload(const net::FrameRequest& request,
                          net::Done<std::optional<net::FrameResponse>> done) {
  // Capture fields, not the whole FrameRequest: `bytes` is the request's
  // wire size, fully consumed by the transport argument below and never
  // read by the node-side handler. Dropping it keeps the network's
  // request-leg closure within the inline-callback capacity, so the
  // per-frame hot path stays allocation-free.
  network_->rpc_async<net::FrameResponse>(
      request.client, node_host_, request.bytes, sizes_.frame_response,
      timeouts_.frame,
      [node = node_, client = request.client, frame_id = request.frame_id,
       cost = request.cost](auto reply) {
        node->handle_offload(net::FrameRequest{client, frame_id, 0.0, cost},
                             std::move(reply));
      },
      std::move(done));
}

void SimManagerStub::discover(
    const net::DiscoveryRequest& request,
    net::Done<std::optional<net::DiscoveryResponse>> done) {
  const double response_bytes =
      sizes_.discovery_response_per_candidate * std::max(1, request.top_n);
  const ClientId source =
      request.client.valid() ? request.client : default_client_host_;
  network_->rpc<net::DiscoveryResponse>(
      source, mgr_host(), sizes_.discovery_request, response_bytes,
      timeouts_.discovery,
      [manager = mgr(), request] {
        return manager->handle_discover(request);
      },
      std::move(done));
}

void SimManagerLink::register_node(const net::NodeStatus& status) {
  network_->deliver(node_host_, mgr_host(), sizes_.heartbeat,
                    [manager = mgr(), status] {
                      manager->handle_register(status);
                    });
}

void SimManagerLink::heartbeat(const net::NodeStatus& status) {
  network_->deliver(node_host_, mgr_host(), sizes_.heartbeat,
                    [manager = mgr(), status] {
                      manager->handle_heartbeat(status);
                    });
}

void SimManagerLink::heartbeat_feedback(
    const net::NodeStatus& status,
    net::Done<std::optional<net::HeartbeatAck>> done) {
  network_->rpc<net::HeartbeatAck>(
      node_host_, mgr_host(), sizes_.heartbeat, sizes_.heartbeat_ack,
      timeouts_.heartbeat,
      [manager = mgr(), status] { return manager->handle_heartbeat(status); },
      std::move(done));
}

void SimManagerLink::deregister(NodeId node) {
  network_->deliver(node_host_, mgr_host(), sizes_.heartbeat,
                    [manager = mgr(), node] {
                      manager->handle_deregister(node);
                    });
}

}  // namespace eden::harness
