// ParallelRunner: fan independent simulation replicates across a
// std::thread pool. Each replicate (policy, seed, scenario config) builds
// its own Scenario — simulator, network model, RNG streams and all — so
// jobs share no mutable state and every replicate is bitwise identical to
// a sequential run of the same job. Results are deposited by job index,
// which keeps output ordering independent of thread interleaving; the only
// nondeterminism a pool can introduce is *which core* runs a replicate,
// and the discrete-event simulator never reads wall-clock time.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace eden::harness {

class ParallelRunner {
 public:
  // threads == 0 picks std::thread::hardware_concurrency(), clamped to a
  // minimum of 1 when the platform cannot report its parallelism — see
  // resolve_thread_count() in harness/window_pool.h for the shared
  // contract.
  explicit ParallelRunner(unsigned threads = 0);

  [[nodiscard]] unsigned threads() const { return threads_; }

  // Run every job to completion, distributing them across the pool. Jobs
  // must be independent. The first exception thrown by any job is
  // rethrown on the calling thread after all workers finish.
  void run(std::vector<std::function<void()>> jobs) const;

  // Run jobs that produce a value; out[i] is jobs[i]'s result regardless
  // of execution order. R must be default-constructible and movable.
  template <typename R>
  std::vector<R> map(std::vector<std::function<R()>> jobs) const {
    std::vector<R> out(jobs.size());
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      wrapped.emplace_back(
          [&out, i, job = std::move(jobs[i])] { out[i] = job(); });
    }
    run(std::move(wrapped));
    return out;
  }

 private:
  unsigned threads_;
};

}  // namespace eden::harness
