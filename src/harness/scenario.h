// Scenario: one-stop wiring of a full EDEN deployment inside the
// discrete-event simulator — central manager, edge nodes, clients, network
// model, host liveness — with helpers for scheduling node churn and
// building the optimal-solver inputs. Every bench and integration test is
// a Scenario plus a policy choice.
//
// Scale architecture: node/client runtimes live in structure-of-arrays
// fleets (harness/fleet.h — one deque per column, stable addresses, one
// allocation per block instead of per entity), all edge clients share one
// SimManagerStub parameterised by the caller id carried in each request,
// and bulk builders (add_nodes / add_edge_clients) construct whole fleets
// without per-entity call overhead. fleet_stats() aggregates across the
// fleet without copying per-client sample vectors around.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/node_info.h"
#include "baselines/latency_model.h"
#include "baselines/static_client.h"
#include "client/edge_client.h"
#include "common/rng.h"
#include "common/types.h"
#include "geo/geohash.h"
#include "harness/fleet.h"
#include "harness/sim_stubs.h"
#include "journal/backend.h"
#include "journal/manager_journal.h"
#include "journal/standby.h"
#include "manager/central_manager.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/sim_network.h"
#include "node/edge_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden::harness {

// Durable-manager failover wiring (DESIGN.md §15). When enabled the
// scenario journals every registry mutation to an in-memory byte log,
// allocates a warm-standby manager host that tails it, and can inject a
// deterministic manager crash + takeover (schedule_manager_crash). Off by
// default: a non-standby scenario builds no journal and stays
// byte-identical to the pre-failover harness.
struct StandbyConfig {
  bool enabled{false};
  journal::JournalOptions journal{};
  // Warm-tail period: how often the standby applies new committed batches.
  SimDuration tail_period{msec(500.0)};
  journal::StandbyOptions standby_options{};
};

struct ScenarioConfig {
  std::uint64_t seed{42};
  manager::GlobalPolicy manager_policy{};
  SimDuration heartbeat_ttl{sec(3.0)};
  StubTimeouts timeouts{};
  WireSizes wire_sizes{};
  int geohash_precision{6};
  // Opt-in observability: when true the scenario owns a TraceRecorder +
  // MetricsRegistry and wires them through every component it builds.
  bool trace{false};
  // Load-feedback elasticity (phase switching): enables the manager's
  // overload policy, heartbeat feedback acks on every node, executor
  // shedding under throttle, and fast-fail dropped-frame responses. Off by
  // default — with it off, every run is byte-identical to the pre-feedback
  // harness (same RNG draws, same traces).
  bool load_feedback{false};
  manager::OverloadPolicy overload{};
  StandbyConfig standby{};
};

// NodeSpec, ClientSpot, FleetStats and NetKind moved to harness/fleet.h
// (shared with the sharded runner); they remain visible here unchanged.

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config, NetKind kind = NetKind::kGeo,
                    double default_rtt_ms = 20.0, double default_bw_mbps = 100.0,
                    double jitter_sigma = 0.05);

  // Custom network model (e.g. net::TraceNetwork): the factory receives the
  // scenario's clock, since trace replay is time-dependent.
  using ModelFactory =
      std::function<std::unique_ptr<net::NetworkModel>(sim::Clock&)>;
  Scenario(ScenarioConfig config, const ModelFactory& factory);

  // ---- infrastructure access ----
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] sim::SimScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] net::SimNetwork& fabric() { return *fabric_; }
  [[nodiscard]] net::HostTable& hosts() { return hosts_; }
  [[nodiscard]] manager::CentralManager& central_manager() { return *manager_; }
  // The manager currently owning the registry: the primary until a
  // takeover completes, the standby after.
  [[nodiscard]] manager::CentralManager& active_manager() {
    return takeover_done_ ? *standby_manager_ : *manager_;
  }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  // Concrete network model (null if the other kind was chosen).
  [[nodiscard]] net::GeoNetwork* geo_network();
  [[nodiscard]] net::MatrixNetwork* matrix_network();
  [[nodiscard]] const net::NetworkModel& network_model() const { return *model_; }

  // ---- nodes ----
  std::size_t add_node(const NodeSpec& spec);
  // Bulk construction: `count` nodes cloned from `base`; `placement`
  // (optional) mutates the spec for each index — position, name, tier...
  // Returns the index of the first node added.
  using NodePlacementFn = std::function<void(std::size_t, NodeSpec&)>;
  std::size_t add_nodes(const NodeSpec& base, std::size_t count,
                        const NodePlacementFn& placement = {});
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] node::EdgeNode& node(std::size_t index) {
    return nodes_.nodes[index];
  }
  [[nodiscard]] const NodeSpec& node_spec(std::size_t index) const {
    return nodes_.specs[index];
  }
  [[nodiscard]] NodeId node_id(std::size_t index) const {
    return nodes_.nodes[index].id();
  }
  [[nodiscard]] net::NodeApi* node_api(NodeId id);
  // Index of the node with this id, if any.
  [[nodiscard]] std::optional<std::size_t> node_index(NodeId id) const;

  void start_node(std::size_t index);
  void stop_node(std::size_t index, bool graceful);
  void schedule_node_start(std::size_t index, SimTime at);
  void schedule_node_stop(std::size_t index, SimTime at, bool graceful);

  // ---- clients ----
  client::EdgeClient& add_edge_client(const ClientSpot& spot,
                                      client::ClientConfig config);
  // Bulk construction: `count` clients, spot and config produced per index.
  // Returns the index of the first client added.
  using ClientSpotFn = std::function<ClientSpot(std::size_t)>;
  using ClientConfigFn = std::function<client::ClientConfig(std::size_t)>;
  std::size_t add_edge_clients(const ClientSpotFn& spot_fn,
                               const ClientConfigFn& config_fn,
                               std::size_t count);
  baselines::StaticClient& add_static_client(const ClientSpot& spot,
                                             workload::AppProfile app);
  [[nodiscard]] std::size_t edge_client_count() const {
    return edge_clients_.size();
  }
  [[nodiscard]] client::EdgeClient& edge_client(std::size_t index) {
    return edge_clients_.clients[index];
  }
  [[nodiscard]] baselines::StaticClient& static_client(std::size_t index) {
    return static_clients_.clients[index];
  }
  [[nodiscard]] std::size_t static_client_count() const {
    return static_clients_.size();
  }
  [[nodiscard]] HostId client_host(const ClientId& id) const { return id; }

  [[nodiscard]] client::NodeResolver resolver();

  // ---- analytics ----
  [[nodiscard]] std::vector<baselines::NodeInfo> node_infos() const;
  // Prediction input for the optimal solver over the given client hosts
  // (uses base RTTs — no jitter — like an offline profile would).
  [[nodiscard]] baselines::PredictInput predict_input(
      const std::vector<HostId>& clients, double fps,
      double frame_bytes) const;

  // Merged counters + latency distribution across every edge client.
  [[nodiscard]] FleetStats fleet_stats() const;

  // Guard against vacuous runs greenwashing a fuzz sweep: throws
  // std::runtime_error when the scenario has no edge clients at all, or
  // when frame-sending clients exist but not a single frame ever left one
  // (e.g. every node spec churned away before any client attached). Call
  // after run_until(horizon); a passing run returns silently.
  void require_nonvacuous_run() const;

  [[nodiscard]] std::string geohash_of(const geo::GeoPoint& position) const;

  void run_until(SimTime t) { simulator_.run_until(t); }

  // ---- observability ----
  // Turns on tracing + metrics after construction (idempotent; implied by
  // ScenarioConfig::trace). Wires the manager and every node/client built
  // so far and from now on.
  void enable_observability();
  // Null unless observability is enabled.
  [[nodiscard]] obs::TraceRecorder* trace_recorder() {
    return trace_recorder_.get();
  }
  [[nodiscard]] obs::MetricsRegistry* metrics_registry() {
    return metrics_registry_.get();
  }
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return metrics_registry_ ? metrics_registry_->snapshot()
                             : obs::MetricsSnapshot{};
  }
  // Simulates losing/regaining the route to a node: with the route cut,
  // node_api() (and thus every client resolver) returns nullptr for it —
  // the "deregistered node still held by a client" liveness case.
  void set_route(NodeId id, bool routed);

  // ---- durable manager + warm-standby failover (StandbyConfig) ----
  //
  // Kill the primary at `at` with one of the four deterministic crash
  // points, then hand the registry to the standby `takeover_delay` later.
  // kBeforeAck/kMidBatch/kTornTail arm the journal and fire inside the
  // next group commit (with a 1 s flush-and-die fallback when the registry
  // is idle); kAfterAppend force-flushes and kills immediately. Requires
  // StandbyConfig::enabled.
  void schedule_manager_crash(SimTime at, journal::CrashPoint point,
                              SimDuration takeover_delay);
  // Mutable fault injector used to silence the dead primary's in-flight
  // sends (the fabric's own injector pointer is const). Must be the same
  // injector attached to the fabric, and must outlive the scenario.
  void set_crash_fault_injector(net::FaultInjector* injector) {
    crash_faults_ = injector;
  }
  // Ends the warm-tail timer loop; call before draining the simulator to
  // completion (run_all) in a standby scenario that never crashes.
  void stop_standby_tail() { standby_tail_active_ = false; }

  [[nodiscard]] bool standby_enabled() const { return standby_ != nullptr; }
  [[nodiscard]] bool manager_crashed() const { return crashed_; }
  [[nodiscard]] bool takeover_done() const { return takeover_done_; }
  [[nodiscard]] HostId standby_host() const { return standby_host_; }
  [[nodiscard]] std::uint64_t recovered_lsn() const { return recovered_lsn_; }
  // Replay-determinism witness: the standby's incrementally-tailed dump vs
  // a fresh chaos-free replay of the surviving journal bytes, both taken
  // at the takeover instant. Empty until a takeover happened.
  [[nodiscard]] const std::string& standby_dump() const {
    return standby_dump_;
  }
  [[nodiscard]] const std::string& expected_dump() const {
    return expected_dump_;
  }
  [[nodiscard]] journal::ManagerJournal* manager_journal() {
    return manager_journal_.get();
  }

 private:
  void build_standby();
  void schedule_standby_tail();
  void on_crash_trigger(journal::CrashPoint point);
  void crash_primary(journal::CrashPoint point);
  void do_takeover();
  HostId allocate_host();
  void register_position(HostId host, const geo::GeoPoint& position,
                         net::AccessTier tier, double extra_rtt_ms = 0.0,
                         const std::string& network_tag = {});
  [[nodiscard]] node::EdgeNodeConfig make_node_config(const NodeSpec& spec,
                                                      HostId host) const;

  ScenarioConfig config_;
  sim::Simulator simulator_;
  sim::SimScheduler scheduler_;
  std::unique_ptr<net::NetworkModel> model_;
  net::HostTable hosts_;
  Rng rng_;
  std::unique_ptr<net::SimNetwork> fabric_;
  HostId manager_host_;
  std::unique_ptr<manager::CentralManager> manager_;
  // One manager stub for the whole client fleet (the wire source comes
  // from each request's client id); constructed right after the manager.
  std::optional<SimManagerStub> manager_stub_;
  // Mutable manager address every stub/link resolves per send; flipped to
  // the standby at takeover. Always initialized (to the primary), so
  // non-standby runs behave identically to the fixed wiring.
  ManagerRoute route_{};
  // Standby state; all null unless StandbyConfig::enabled.
  std::unique_ptr<journal::MemoryBackend> journal_backend_;
  std::unique_ptr<journal::ManagerJournal> manager_journal_;
  std::unique_ptr<journal::ManagerJournal> standby_journal_;
  std::unique_ptr<manager::CentralManager> standby_manager_;
  std::unique_ptr<journal::StandbyManager> standby_;
  HostId standby_host_;
  net::FaultInjector* crash_faults_{nullptr};
  SimDuration takeover_delay_{msec(500.0)};
  bool standby_tail_active_{false};
  bool crashed_{false};
  bool takeover_done_{false};
  std::uint64_t recovered_lsn_{0};
  std::string standby_dump_;
  std::string expected_dump_;
  std::uint32_t next_host_{0};
  std::unique_ptr<obs::TraceRecorder> trace_recorder_;
  std::unique_ptr<obs::MetricsRegistry> metrics_registry_;
  NodeFleet nodes_;
  std::unordered_map<NodeId, SimNodeStub*> stubs_by_id_;
  std::unordered_map<NodeId, std::size_t> node_index_by_id_;
  std::unordered_set<NodeId> unrouted_;
  ClientFleet edge_clients_;
  StaticFleet static_clients_;
};

}  // namespace eden::harness
