// Server-centric periodic re-optimization baseline, in the spirit of the
// user-allocation literature the paper contrasts against ([13]-[15]):
// every period a central controller recomputes the edge assignment with
// the analytic latency model over its (server-side) view of the world and
// pushes reassignments to the clients. Its structural weaknesses — stale
// global view between rounds, reassignment churn, no client-side what-if
// feedback — are exactly what §II-B argues; bench_centralized quantifies
// them against the distributed client-centric protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/optimal.h"
#include "baselines/static_client.h"
#include "harness/scenario.h"

namespace eden::harness {

class CentralController {
 public:
  struct Options {
    SimDuration period{sec(10.0)};   // re-optimization cadence
    double fps{20.0};                // nominal per-user rate for the model
    double frame_bytes{20'000};
    baselines::OptimalConfig solver{};
    std::uint64_t seed{17};
  };

  CentralController(Scenario& scenario,
                    std::vector<baselines::StaticClient*> clients,
                    Options options);
  CentralController(Scenario& scenario,
                    std::vector<baselines::StaticClient*> clients)
      : CentralController(scenario, std::move(clients), Options()) {}

  // Begin periodic re-optimization (first round immediately).
  void start();
  void stop();

  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t reassignments() const { return reassignments_; }

 private:
  void reoptimize();
  void arm_timer();

  Scenario* scenario_;
  std::vector<baselines::StaticClient*> clients_;
  Options options_;
  Rng rng_;
  bool running_{false};
  sim::EventId timer_{sim::kInvalidEvent};
  std::uint64_t rounds_{0};
  std::uint64_t reassignments_{0};
};

}  // namespace eden::harness
