// Transport stubs binding the protocol state machines to the simulated
// network: SimNodeStub exposes an EdgeNode behind net::NodeApi, and
// SimManagerStub / SimManagerLink expose the CentralManager behind
// net::ManagerApi / net::ManagerLink. All delays, jitter, message loss on
// dead hosts and timeouts come from SimNetwork.
//
// Host addressing convention: ClientId/NodeId double as transport HostIds
// (the Scenario allocates them from one sequence).
#pragma once

#include "manager/central_manager.h"
#include "net/api.h"
#include "net/sim_network.h"
#include "node/edge_node.h"

namespace eden::harness {

// Approximate wire sizes (bytes) of the control messages; only the frame
// payload is big enough to matter, but modelling the rest keeps D_trans
// honest for probe-heavy configurations.
struct WireSizes {
  double probe_request{120};
  double probe_response{280};
  double join_request{200};
  double join_response{120};
  double leave{100};
  double discovery_request{250};
  double discovery_response_per_candidate{150};
  double frame_response{200};
  double heartbeat{300};
  double heartbeat_ack{120};
};

struct StubTimeouts {
  SimDuration probe{msec(400.0)};
  SimDuration join{msec(400.0)};
  // Frames wait much longer: an overloaded node still answers eventually,
  // and node death is detected by the client's keepalive, not by frame
  // timeouts.
  SimDuration frame{msec(3000.0)};
  SimDuration discovery{msec(500.0)};
  // Feedback heartbeats are periodic anyway; a lost ack just waits for the
  // next beat, so the timeout only bounds slot occupancy.
  SimDuration heartbeat{msec(500.0)};
};

class SimNodeStub final : public net::NodeApi {
 public:
  SimNodeStub(net::SimNetwork& network, node::EdgeNode& node, HostId node_host,
              StubTimeouts timeouts = {}, WireSizes sizes = {})
      : network_(&network),
        node_(&node),
        node_host_(node_host),
        timeouts_(timeouts),
        sizes_(sizes) {}

  [[nodiscard]] NodeId id() const override { return node_->id(); }

  void rtt_probe(ClientId from, net::Done<bool> done) override;
  void process_probe(
      ClientId from,
      net::Done<std::optional<net::ProcessProbeResponse>> done) override;
  void join(const net::JoinRequest& request,
            net::Done<std::optional<net::JoinResponse>> done) override;
  void unexpected_join(const net::JoinRequest& request,
                       net::Done<bool> done) override;
  void leave(ClientId client) override;
  void offload(const net::FrameRequest& request,
               net::Done<std::optional<net::FrameResponse>> done) override;

 private:
  net::SimNetwork* network_;
  node::EdgeNode* node_;
  HostId node_host_;
  StubTimeouts timeouts_;
  WireSizes sizes_;
};

// Mutable manager address: a stub or link holding a route pointer resolves
// the manager at each send, so flipping the route re-targets every
// subsequent rpc — how clients and nodes re-resolve to the warm standby
// after a failover. A null route falls back to the fixed manager captured
// at construction (byte-identical to the pre-failover wiring; the sharded
// runner stays on this path).
struct ManagerRoute {
  HostId host;
  manager::CentralManager* manager{nullptr};
};

// One stub serves a whole client fleet: the wire source host of each call
// is taken from the request's client id (every client addresses the
// network by its own ClientId == HostId). `default_client_host` only backs
// callers that leave request.client unset.
class SimManagerStub final : public net::ManagerApi {
 public:
  SimManagerStub(net::SimNetwork& network, manager::CentralManager& manager,
                 HostId manager_host, ClientId default_client_host = {},
                 StubTimeouts timeouts = {}, WireSizes sizes = {})
      : network_(&network),
        manager_(&manager),
        manager_host_(manager_host),
        default_client_host_(default_client_host),
        timeouts_(timeouts),
        sizes_(sizes) {}

  void discover(
      const net::DiscoveryRequest& request,
      net::Done<std::optional<net::DiscoveryResponse>> done) override;

  // The route must outlive the stub (the Scenario owns both).
  void set_route(const ManagerRoute* route) { route_ = route; }

 private:
  [[nodiscard]] manager::CentralManager* mgr() const {
    return route_ != nullptr ? route_->manager : manager_;
  }
  [[nodiscard]] HostId mgr_host() const {
    return route_ != nullptr ? route_->host : manager_host_;
  }

  net::SimNetwork* network_;
  manager::CentralManager* manager_;
  HostId manager_host_;
  const ManagerRoute* route_{nullptr};
  ClientId default_client_host_;
  StubTimeouts timeouts_;
  WireSizes sizes_;
};

class SimManagerLink final : public net::ManagerLink {
 public:
  SimManagerLink(net::SimNetwork& network, manager::CentralManager& manager,
                 HostId manager_host, HostId node_host, WireSizes sizes = {},
                 StubTimeouts timeouts = {})
      : network_(&network),
        manager_(&manager),
        manager_host_(manager_host),
        node_host_(node_host),
        sizes_(sizes),
        timeouts_(timeouts) {}

  void register_node(const net::NodeStatus& status) override;
  void heartbeat(const net::NodeStatus& status) override;
  void heartbeat_feedback(const net::NodeStatus& status,
                          net::Done<std::optional<net::HeartbeatAck>> done)
      override;
  void deregister(NodeId node) override;

  // The route must outlive the link (the Scenario owns both).
  void set_route(const ManagerRoute* route) { route_ = route; }

 private:
  [[nodiscard]] manager::CentralManager* mgr() const {
    return route_ != nullptr ? route_->manager : manager_;
  }
  [[nodiscard]] HostId mgr_host() const {
    return route_ != nullptr ? route_->host : manager_host_;
  }

  net::SimNetwork* network_;
  manager::CentralManager* manager_;
  HostId manager_host_;
  const ManagerRoute* route_{nullptr};
  HostId node_host_;
  WireSizes sizes_;
  StubTimeouts timeouts_;
};

}  // namespace eden::harness
