#include "harness/experiments.h"

#include <algorithm>
#include <cmath>

namespace eden::harness {
namespace {

constexpr geo::GeoPoint kMspCenter{44.9778, -93.2650};

}  // namespace

// Uniform random point within `max_km` of `center` (small-angle approx is
// fine at metro scale).
geo::GeoPoint random_point_near(const geo::GeoPoint& center, double max_km,
                                Rng& rng) {
  const double r = max_km * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0, 2 * 3.14159265358979323846);
  const double dlat = (r * std::cos(theta)) / 111.0;
  const double dlon =
      (r * std::sin(theta)) / (111.0 * std::cos(center.lat * 3.14159265 / 180.0));
  return {center.lat + dlat, center.lon + dlon};
}

// The paper's tc-shaped emulation RTTs: 8-55 ms, correlated with distance
// so that the locality baseline remains meaningful.
double emulation_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                        Rng& rng) {
  const double km = geo::haversine_km(a, b);
  const double rtt = 8.0 + 0.55 * km + rng.normal(0.0, 2.0);
  return std::clamp(rtt, 8.0, 55.0);
}

namespace {

net::AccessTier user_tier(std::size_t index) {
  // Heterogeneous home access: a few fiber households, mostly cable, some
  // DSL — mirrors the spread of Fig 1's participants.
  if (index % 5 == 0) return net::AccessTier::kFiber;
  if (index % 5 == 4) return net::AccessTier::kDsl;
  return net::AccessTier::kCable;
}

}  // namespace

std::vector<std::size_t> RealWorldSetup::all_nodes() const {
  std::vector<std::size_t> out = volunteers;
  out.insert(out.end(), dedicated.begin(), dedicated.end());
  out.push_back(cloud);
  return out;
}

RealWorldSetup make_realworld_setup(std::uint64_t seed) {
  RealWorldSetup setup;
  ScenarioConfig config;
  config.seed = seed;
  setup.scenario = std::make_unique<Scenario>(config, NetKind::kGeo,
                                              /*default_rtt_ms=*/20.0,
                                              /*default_bw_mbps=*/100.0,
                                              /*jitter_sigma=*/0.08);
  Scenario& s = *setup.scenario;
  Rng rng = Rng(seed).fork("realworld-layout");

  // ---- Table II volunteers ----
  struct VolunteerSpec {
    const char* name;
    int cores;
    double frame_ms;
    net::AccessTier tier;
  };
  const VolunteerSpec volunteers[] = {
      {"V1", 8, 24.0, net::AccessTier::kFiber},
      {"V2", 6, 32.0, net::AccessTier::kCable},
      {"V3", 6, 31.0, net::AccessTier::kCable},
      {"V4", 4, 45.0, net::AccessTier::kCable},
      {"V5", 2, 49.0, net::AccessTier::kDsl},
  };
  // Residential hosts carry their ISP as the network-affiliation tag
  // (§IV-B): users on the same provider as a volunteer enjoy well-peered
  // local-loop paths, and the manager's affinity scoring can surface them.
  const char* isps[] = {"isp-a", "isp-b", "isp-c", "isp-d"};
  int volunteer_index = 0;
  for (const auto& v : volunteers) {
    NodeSpec spec;
    spec.name = v.name;
    spec.position = random_point_near(kMspCenter, 14.0, rng);
    spec.tier = v.tier;
    spec.cores = v.cores;
    spec.base_frame_ms = v.frame_ms;
    spec.network_tag = isps[volunteer_index++ % 4];
    setup.volunteers.push_back(s.add_node(spec));
  }

  // ---- D6-D9: AWS Local Zone t3.xlarge (standard burst mode: credits
  // drain under sustained load) ----
  const geo::GeoPoint local_zone{44.8848, -93.2223};  // MSP Local Zone
  for (int i = 6; i <= 9; ++i) {
    NodeSpec spec;
    spec.name = "D" + std::to_string(i);
    spec.position = local_zone;
    spec.tier = net::AccessTier::kLocalZone;
    spec.cores = 4;  // t3.xlarge
    spec.base_frame_ms = 30.0;
    spec.dedicated = true;
    spec.burstable = true;
    spec.burst_baseline = 0.38;
    spec.initial_credits_core_sec = 15.0;
    setup.dedicated.push_back(s.add_node(spec));
  }

  // ---- Closest cloud: us-east-2, ~75 ms RTT from the metro. The paper's
  // cloud instance is a t3.xlarge too, but regional instances run in
  // unlimited-burst mode, so it never throttles (see DESIGN.md). ----
  {
    NodeSpec spec;
    spec.name = "Cloud";
    spec.position = geo::GeoPoint{39.9612, -82.9988};  // Columbus, OH
    spec.tier = net::AccessTier::kCloud;
    // The paper's cloud line stays flat as users grow: regional clouds
    // scale out behind the endpoint. Modelled as ample parallel capacity
    // at the same per-frame time - cloud latency is RTT-dominated.
    spec.cores = 16;
    spec.base_frame_ms = 30.0;
    spec.is_cloud = true;
    spec.extra_rtt_ms = 10.0;  // inter-region backbone on top of distance
    setup.cloud = s.add_node(spec);
  }

  // ---- 15 participants on home broadband within ~10 miles ----
  for (int i = 1; i <= 15; ++i) {
    ClientSpot spot;
    spot.name = "U" + std::to_string(i);
    spot.position = random_point_near(kMspCenter, 14.0, rng);
    spot.tier = user_tier(static_cast<std::size_t>(i));
    spot.network_tag = isps[i % 4];
    setup.user_spots.push_back(spot);
  }
  return setup;
}

void start_all_nodes(Scenario& scenario) {
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    scenario.start_node(i);
  }
}

NodeSpec t2_medium_spec(const std::string& name) {
  NodeSpec spec;
  spec.name = name;
  spec.cores = 2;
  spec.base_frame_ms = 55.0;  // t2.medium application profile
  return spec;
}

NodeSpec t2_xlarge_spec(const std::string& name) {
  NodeSpec spec;
  spec.name = name;
  spec.cores = 4;
  spec.base_frame_ms = 30.0;  // t2.xlarge application profile
  return spec;
}

NodeSpec t2_2xlarge_spec(const std::string& name) {
  NodeSpec spec;
  spec.name = name;
  spec.cores = 8;
  spec.base_frame_ms = 20.0;  // t2.2xlarge application profile
  return spec;
}

void EmulationSetup::wire_client(HostId client_host,
                                 std::size_t user_index) const {
  auto* matrix = scenario->matrix_network();
  for (std::size_t j = 0; j < scenario->node_count(); ++j) {
    matrix->set_rtt_ms(client_host, scenario->node_id(j),
                       rtt_ms[user_index][j]);
  }
}

EmulationSetup make_emulation_setup(std::uint64_t seed, int users) {
  EmulationSetup setup;
  ScenarioConfig config;
  config.seed = seed;
  setup.scenario = std::make_unique<Scenario>(config, NetKind::kMatrix,
                                              /*default_rtt_ms=*/25.0,
                                              /*default_bw_mbps=*/50.0,
                                              /*jitter_sigma=*/0.05);
  Scenario& s = *setup.scenario;
  Rng rng = Rng(seed).fork("emulation-layout");

  // 9 static nodes within a ~50-mile area (§V-D1).
  std::vector<NodeSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(t2_medium_spec("t2.medium-" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    specs.push_back(t2_xlarge_spec("t2.xlarge-" + std::to_string(i)));
  }
  specs.push_back(t2_2xlarge_spec("t2.2xlarge-0"));

  std::vector<geo::GeoPoint> node_positions;
  for (auto& spec : specs) {
    spec.position = random_point_near(kMspCenter, 40.0, rng);
    node_positions.push_back(spec.position);
    s.add_node(spec);
  }

  for (int i = 0; i < users; ++i) {
    ClientSpot spot;
    spot.name = "user-" + std::to_string(i);
    spot.position = random_point_near(kMspCenter, 40.0, rng);
    spot.tier = user_tier(static_cast<std::size_t>(i));
    setup.user_spots.push_back(spot);

    std::vector<double> row;
    row.reserve(node_positions.size());
    for (const auto& node_pos : node_positions) {
      row.push_back(emulation_rtt_ms(spot.position, node_pos, rng));
    }
    setup.rtt_ms.push_back(std::move(row));
  }
  return setup;
}

std::vector<NodeSpec> churn_node_specs(int count) {
  // §V-D2: 8x t2.medium, 8x t2.xlarge, 2x t2.2xlarge matched onto the 18
  // churn slots; the pattern repeats for other counts.
  std::vector<NodeSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::string name = "churn-" + std::to_string(i);
    if (i % 9 == 8) {
      specs.push_back(t2_2xlarge_spec(name));
    } else if (i % 2 == 0) {
      specs.push_back(t2_medium_spec(name));
    } else {
      specs.push_back(t2_xlarge_spec(name));
    }
  }
  return specs;
}

}  // namespace eden::harness
