// Fleet-level metric aggregation over per-client latency series: windowed
// averages (Fig 5/7/9c), cross-user fairness (Fig 9d) and bucketed traces
// (Fig 4/6/8).
#pragma once

#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace eden::harness {

// All frame latencies of all clients within [begin, end).
[[nodiscard]] StreamingStats fleet_window(
    const std::vector<const TimeSeries*>& series, SimTime begin, SimTime end);

// Standard deviation of per-client mean latencies within the window — the
// paper's fairness metric (Fig 9d). Clients with no samples are skipped.
[[nodiscard]] double fairness_stddev(
    const std::vector<const TimeSeries*>& series, SimTime begin, SimTime end);

// Average latency across every client's frames per time bucket; buckets
// with no frames carry the previous value (NaN before the first sample).
[[nodiscard]] std::vector<std::pair<SimTime, double>> fleet_trace(
    const std::vector<const TimeSeries*>& series, SimTime begin, SimTime end,
    SimDuration bucket);

}  // namespace eden::harness
