#include "harness/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "harness/window_pool.h"

namespace eden::harness {

ParallelRunner::ParallelRunner(unsigned threads)
    : threads_(resolve_thread_count(threads)) {}

void ParallelRunner::run(std::vector<std::function<void()>> jobs) const {
  const std::size_t count = jobs.size();
  if (count == 0) return;

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        jobs[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t pool =
      std::min<std::size_t>(threads_, count);
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace eden::harness
