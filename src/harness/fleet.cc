#include "harness/fleet.h"

#include <algorithm>

namespace eden::harness {

namespace {
// Same interpolation as Samples::percentile, over an already-sorted buffer.
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

void FleetStatsBuilder::add(const client::EdgeClient& client) {
  ++out_.clients;
  out_.totals += client.stats();
  for (const double v : client.latency_samples().values()) {
    all_.push_back(v);
    sum_ += v;
  }
}

FleetStats FleetStatsBuilder::finish() {
  out_.latency_count = all_.size();
  if (!all_.empty()) {
    std::sort(all_.begin(), all_.end());
    out_.latency_mean_ms = sum_ / static_cast<double>(all_.size());
    out_.latency_p50_ms = percentile_sorted(all_, 50.0);
    out_.latency_p90_ms = percentile_sorted(all_, 90.0);
    out_.latency_p99_ms = percentile_sorted(all_, 99.0);
    out_.latency_max_ms = all_.back();
  }
  return out_;
}

}  // namespace eden::harness
