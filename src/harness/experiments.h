// Canned experiment configurations matching the paper's evaluation
// deployments: the Table II real-world Minneapolis deployment and the §V-D
// AWS emulation. Benches and integration tests build on these so that each
// policy comparison reruns an identical world.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace eden::harness {

// ---- Real-world deployment (Table II, Figs 1/3/5, Table III) ----
//
// 5 volunteer laptops (V1-V5) in the Minneapolis-Saint Paul metro, 4 AWS
// Local Zone t3.xlarge instances (D6-D9), 1 regional-cloud node (us-east-2,
// ~75 ms RTT from the metro), and 15 participant locations on home
// broadband.
struct RealWorldSetup {
  std::unique_ptr<Scenario> scenario;
  std::vector<std::size_t> volunteers;  // node indices of V1..V5
  std::vector<std::size_t> dedicated;   // node indices of D6..D9
  std::size_t cloud{0};                 // node index of the cloud
  std::vector<ClientSpot> user_spots;   // the 15 participants
  // All node indices in Table II order (V1..V5, D6..D9, Cloud).
  [[nodiscard]] std::vector<std::size_t> all_nodes() const;
};

RealWorldSetup make_realworld_setup(std::uint64_t seed);

// Start every node immediately (paper: all nodes up for the whole run).
void start_all_nodes(Scenario& scenario);

// ---- Emulation deployment (§V-D1, Figs 6/7) ----
//
// 9 static heterogeneous nodes (4x t2.medium, 4x t2.xlarge, 1x t2.2xlarge)
// and up to 15 users; pairwise RTTs are distance-derived in [8, 55] ms as
// in the paper's tc configuration.
struct EmulationSetup {
  std::unique_ptr<Scenario> scenario;
  std::vector<ClientSpot> user_spots;
  // rtt_ms[user][node], fixed across policies for a given seed.
  std::vector<std::vector<double>> rtt_ms;
  // Call right after creating the client for `user_index` to install its
  // pairwise RTTs in the matrix network.
  void wire_client(HostId client_host, std::size_t user_index) const;
};

EmulationSetup make_emulation_setup(std::uint64_t seed, int users = 15);

// Node specs for the churn emulation (§V-D2): 8x t2.medium, 8x t2.xlarge,
// 2x t2.2xlarge, matched round-robin onto churn node indices.
std::vector<NodeSpec> churn_node_specs(int count);

// The t2/t3 instance-type profiles used by both emulation setups.
NodeSpec t2_medium_spec(const std::string& name);
NodeSpec t2_xlarge_spec(const std::string& name);
NodeSpec t2_2xlarge_spec(const std::string& name);

// Layout helpers shared with the churn benches: a uniform random point
// within `max_km` of `center`, and the paper's tc-style distance-derived
// RTT in [8, 55] ms.
geo::GeoPoint random_point_near(const geo::GeoPoint& center, double max_km,
                                Rng& rng);
double emulation_rtt_ms(const geo::GeoPoint& a, const geo::GeoPoint& b,
                        Rng& rng);

}  // namespace eden::harness
