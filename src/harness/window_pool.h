// WindowPool: persistent fork-join worker pool for the sharded runner's
// window loop. ParallelRunner spawns a fresh std::thread per worker per
// run() call — fine when each job is a minutes-long replicate, hopeless
// when the "job" is one conservative-lookahead window and a run has
// ~1e5 of them. WindowPool keeps (threads - 1) workers parked on a
// condition variable between windows; for_each(n, fn) bumps a
// generation counter to wake them, every participant (caller included)
// pulls indices from a shared atomic cursor, and the call returns once
// all n indices completed. threads == 1 keeps zero workers and runs
// everything inline on the caller — the single-core fast path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eden::harness {

// Thread-count contract shared by ParallelRunner and WindowPool:
// requested == 0 means "use the hardware parallelism". The standard
// allows std::thread::hardware_concurrency() to return 0 when the
// platform cannot report a value, so the result is clamped to >= 1 —
// callers may always divide work by the resolved count.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested,
                                            unsigned hardware);
// Convenience overload over std::thread::hardware_concurrency().
[[nodiscard]] unsigned resolve_thread_count(unsigned requested);

class WindowPool {
 public:
  // threads == 0 resolves via resolve_thread_count().
  explicit WindowPool(unsigned threads);
  ~WindowPool();
  WindowPool(const WindowPool&) = delete;
  WindowPool& operator=(const WindowPool&) = delete;

  [[nodiscard]] unsigned threads() const { return threads_; }

  // Runs fn(i) for every i in [0, n), distributing indices across the
  // pool; returns after all complete. The first exception thrown by any
  // index is rethrown on the caller after the barrier. Not reentrant.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void drain();  // pull indices until the cursor passes n_

  unsigned threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_{0};
  std::size_t n_{0};
  const std::function<void(std::size_t)>* fn_{nullptr};
  std::atomic<std::size_t> cursor_{0};
  std::size_t active_{0};  // workers still inside the current generation
  std::exception_ptr error_;
  bool stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace eden::harness
