// Core vocabulary types shared by every EDEN module: simulated time and
// strongly-typed host identifiers.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace eden {

// Simulated time. All timestamps are microseconds from simulation start;
// durations use the same unit. Integer microseconds keep event ordering
// exact and platform-independent.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

constexpr SimDuration kUsec = 1;
constexpr SimDuration kMsec = 1000;
constexpr SimDuration kSec = 1000 * 1000;

constexpr SimDuration usec(std::int64_t v) { return v; }
constexpr SimDuration msec(double v) {
  return static_cast<SimDuration>(v * 1000.0 + (v >= 0 ? 0.5 : -0.5));
}
constexpr SimDuration sec(double v) {
  return static_cast<SimDuration>(v * 1e6 + (v >= 0 ? 0.5 : -0.5));
}
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / 1e6; }

// Transport-level endpoint identifier. Every addressable entity (manager,
// edge node, client) owns one. Domain aliases below exist for readability;
// they are the same type on purpose so that wiring stays trivial.
struct HostId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value{kInvalid};

  constexpr HostId() = default;
  constexpr explicit HostId(std::uint32_t v) : value(v) {}
  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  auto operator<=>(const HostId&) const = default;
};

using NodeId = HostId;
using ClientId = HostId;

[[nodiscard]] inline std::string to_string(HostId id) {
  return id.valid() ? std::to_string(id.value) : std::string("<invalid>");
}

}  // namespace eden

template <>
struct std::hash<eden::HostId> {
  std::size_t operator()(const eden::HostId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
