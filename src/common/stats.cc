#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace eden {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Samples::clear() {
  values_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size()));
}

double Samples::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::vector<std::pair<double, double>> Samples::cdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const auto n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    // Collapse runs of equal values to their final cumulative fraction.
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

void TimeSeries::add(SimTime t, double value) { points_.emplace_back(t, value); }

namespace {

// First point with timestamp >= t; points are time-ordered by contract.
std::vector<std::pair<SimTime, double>>::const_iterator first_at_or_after(
    const std::vector<std::pair<SimTime, double>>& points, SimTime t) {
  return std::lower_bound(
      points.begin(), points.end(), t,
      [](const std::pair<SimTime, double>& p, SimTime v) { return p.first < v; });
}

}  // namespace

StreamingStats TimeSeries::window(SimTime begin, SimTime end) const {
  StreamingStats stats;
  for (auto it = first_at_or_after(points_, begin);
       it != points_.end() && it->first < end; ++it) {
    stats.add(it->second);
  }
  return stats;
}

std::vector<std::pair<SimTime, double>> TimeSeries::bucketed(
    SimTime begin, SimTime end, SimDuration bucket) const {
  std::vector<std::pair<SimTime, double>> out;
  if (bucket <= 0 || end <= begin) return out;
  double last = std::numeric_limits<double>::quiet_NaN();
  // One forward pass: consume each bucket's run of points from where the
  // previous bucket stopped instead of re-scanning the whole vector per
  // bucket (the old O(points x buckets) behaviour).
  auto it = first_at_or_after(points_, begin);
  for (SimTime t = begin; t < end; t += bucket) {
    const SimTime bucket_end = t + bucket;
    StreamingStats w;
    for (; it != points_.end() && it->first < bucket_end; ++it) {
      w.add(it->second);
    }
    if (w.count() > 0) last = w.mean();
    out.emplace_back(t, last);
  }
  return out;
}

}  // namespace eden
