// ASCII table / CSV rendering for bench output. Every experiment binary
// prints its figure or table through this so the output format is uniform.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace eden {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);

  // Render with aligned columns; returns the rendered string.
  [[nodiscard]] std::string render() const;
  // Print to `out`. When the EDEN_CSV_DIR environment variable is set,
  // additionally writes the table as table_NNN.csv into that directory
  // (sequential NNN per process) so benches double as data exporters.
  void print(std::FILE* out = stdout) const;
  // RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section header used between sub-figures in bench output.
void print_section(const std::string& title, std::FILE* out = stdout);

}  // namespace eden
