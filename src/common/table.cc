#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace eden {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : headers_[i];
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "|";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(headers_);
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print(std::FILE* out) const {
  std::fputs(render().c_str(), out);
  if (const char* dir = std::getenv("EDEN_CSV_DIR")) {
    static int counter = 0;
    char path[4096];
    std::snprintf(path, sizeof(path), "%s/table_%03d.csv", dir, counter++);
    if (std::FILE* csv = std::fopen(path, "w")) {
      std::fputs(to_csv().c_str(), csv);
      std::fclose(csv);
    }
  }
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    return q + "\"";
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void print_section(const std::string& title, std::FILE* out) {
  std::fprintf(out, "\n=== %s ===\n", title.c_str());
}

}  // namespace eden
