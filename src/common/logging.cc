#include "common/logging.h"

#include <atomic>

namespace eden {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace eden
