// Minimal leveled logging. Off by default so benches stay clean; tests and
// examples can raise the level to trace protocol decisions.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace eden {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define EDEN_LOG_ERROR(...) ::eden::log_message(::eden::LogLevel::kError, __VA_ARGS__)
#define EDEN_LOG_WARN(...) ::eden::log_message(::eden::LogLevel::kWarn, __VA_ARGS__)
#define EDEN_LOG_INFO(...) ::eden::log_message(::eden::LogLevel::kInfo, __VA_ARGS__)
#define EDEN_LOG_DEBUG(...) ::eden::log_message(::eden::LogLevel::kDebug, __VA_ARGS__)

}  // namespace eden
