// Deterministic random number generation for EDEN.
//
// Every experiment owns a root Rng seeded from one experiment seed; each
// stochastic component draws from a named child stream (`fork`), so adding a
// component never perturbs the draws of the others and all benches are
// bit-reproducible across runs and platforms.
#pragma once

#include <cstdint>
#include <string_view>

namespace eden {

// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
// implementation) seeded through splitmix64. Self-contained so results do
// not depend on the standard library's unspecified distribution algorithms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Independent child stream derived from this stream's seed and `name`.
  // Forking does not consume randomness from the parent.
  [[nodiscard]] Rng fork(std::string_view name) const;

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Log-normal parameterised by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);
  // Exponential with the given mean (= 1/lambda).
  double exponential(double mean);
  // Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);
  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 60).
  std::uint32_t poisson(double mean);
  // True with probability p.
  bool bernoulli(double p);

  // UniformRandomBitGenerator interface, so std::shuffle works.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4]{};
  std::uint64_t seed_{0};
  double cached_normal_{0};
  bool has_cached_normal_{false};
};

}  // namespace eden
