// Deterministic random number generation for EDEN.
//
// Every experiment owns a root Rng seeded from one experiment seed; each
// stochastic component draws from a named child stream (`fork`), so adding a
// component never perturbs the draws of the others and all benches are
// bit-reproducible across runs and platforms.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace eden {

// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
// implementation) seeded through splitmix64. Self-contained so results do
// not depend on the standard library's unspecified distribution algorithms.
//
// The draws on the per-message hot path (next_u64 / uniform / normal /
// lognormal) are header-inline: every simulated delivery samples jitter, so
// the lognormal draw sits directly on the event-engine's critical path.
// The expressions are byte-for-byte the ones previously in the .cc —
// inlining must not (and does not) change any stream's values.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Independent child stream derived from this stream's seed and `name`.
  // Forking does not consume randomness from the parent.
  [[nodiscard]] Rng fork(std::string_view name) const;

  // Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }
  // Log-normal parameterised by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }
  // Exponential with the given mean (= 1/lambda).
  double exponential(double mean);
  // Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);
  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 60).
  std::uint32_t poisson(double mean);
  // True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // UniformRandomBitGenerator interface, so std::shuffle works.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  std::uint64_t seed_{0};
  double cached_normal_{0};
  bool has_cached_normal_{false};
};

}  // namespace eden
