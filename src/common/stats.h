// Statistics helpers used by the metrics collector and every bench:
// streaming moments (Welford), sample sets with percentiles/CDFs, and
// timestamped series with windowed aggregation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace eden {

// Numerically stable streaming mean/variance/min/max.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  // Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_{0};
  double mean_{0};
  double m2_{0};
  double min_{0};
  double max_{0};
};

// A bag of samples supporting exact percentiles and CDF extraction.
class Samples {
 public:
  void add(double x);
  void clear();

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // p in [0, 100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  // (value, cumulative fraction) pairs at each distinct sample.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf() const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_{false};
};

// Timestamped scalar series (e.g. per-frame latency over simulated time).
// Points must be added in non-decreasing time order — simulation time only
// moves forward — which lets window()/bucketed() binary-search instead of
// scanning.
class TimeSeries {
 public:
  void add(SimTime t, double value);

  [[nodiscard]] std::size_t count() const { return points_.size(); }
  [[nodiscard]] const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }
  // Stats over points with t in [begin, end).
  [[nodiscard]] StreamingStats window(SimTime begin, SimTime end) const;
  // Average value per fixed-width bucket across [begin, end); buckets with
  // no samples repeat the previous bucket's value (NaN if none yet).
  [[nodiscard]] std::vector<std::pair<SimTime, double>> bucketed(
      SimTime begin, SimTime end, SimDuration bucket) const;

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

}  // namespace eden
