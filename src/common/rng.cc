#include "common/rng.h"

#include <cmath>

namespace eden {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// FNV-1a over a string, used to derive child-stream seeds from names.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  has_cached_normal_ = false;
}

Rng Rng::fork(std::string_view name) const {
  return Rng(seed_ ^ hash_name(name) ^ 0x6a09e667f3bcc908ull);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - ~0ull % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -mean * std::log(u);
}

double Rng::weibull(double shape, double scale) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

std::uint32_t Rng::poisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 60.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint32_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
}

}  // namespace eden
