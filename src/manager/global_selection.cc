#include "manager/global_selection.h"

#include <algorithm>

#include "geo/geohash.h"

namespace eden::manager {

double GlobalSelector::score(const net::DiscoveryRequest& request,
                             const net::NodeStatus& node,
                             double uptime_sec) const {
  // Proximity from the geohash cell centers: smooth distance decay (~full
  // credit within a few km, fading over tens of km). Falls back to prefix
  // matching when a hash does not decode.
  double proximity = 0.0;
  const auto user_pos = geo::geohash_decode_center(request.geohash);
  const auto node_pos = geo::geohash_decode_center(node.geohash);
  if (user_pos && node_pos) {
    const double km = geo::haversine_km(*user_pos, *node_pos);
    proximity = 1.0 / (1.0 + km / 15.0);
  } else if (!request.geohash.empty()) {
    const int shared = geo::common_prefix_len(request.geohash, node.geohash);
    proximity = static_cast<double>(shared) /
                static_cast<double>(request.geohash.size());
  }
  const double availability = std::clamp(1.0 - node.utilization, 0.0, 1.0);
  // cores per millisecond of frame time, squashed to ~[0, 1].
  const double raw_capacity =
      static_cast<double>(node.cores) / std::max(1.0, node.base_frame_ms);
  const double capacity = raw_capacity / (raw_capacity + 0.1);
  const double affinity = (!request.network_tag.empty() &&
                           request.network_tag == node.network_tag)
                              ? 1.0
                              : 0.0;
  const double load = static_cast<double>(node.attached_users) /
                      std::max(1, node.cores);

  double s = policy_.w_proximity * proximity +
             policy_.w_availability * availability +
             policy_.w_capacity * capacity + policy_.w_affinity * affinity -
             policy_.w_load * load;
  if (policy_.w_reliability != 0.0) {
    const double reliability =
        uptime_sec / (uptime_sec + std::max(1e-9, policy_.reliability_halflife_sec));
    s += policy_.w_reliability * reliability;
  }
  if (node.is_cloud) s -= policy_.cloud_penalty;
  return s;
}

net::DiscoveryResponse GlobalSelector::select(
    const net::DiscoveryRequest& request,
    const std::vector<RegistryEntry>& nodes, SimTime now) const {
  const int top_n = std::max(1, request.top_n);

  // Geo-proximity filter with widening: accept nodes within a search
  // radius, widening the radius until enough qualify (remote nodes remain
  // reachable as a last resort). Distances come from the geohash cell
  // centers — a raw prefix filter would drop close nodes that fall across
  // a cell boundary; prefix matching is only the fallback for hashes that
  // do not decode.
  // Application filter first: a node qualifies when it hosts the requested
  // app type (an empty list means it serves everything, the paper's
  // single-app deployments).
  auto serves_app = [&](const net::NodeStatus& status) {
    if (request.app_type.empty() || status.app_types.empty()) return true;
    for (const auto& app : status.app_types) {
      if (app == request.app_type) return true;
    }
    return false;
  };

  std::vector<const RegistryEntry*> qualified;
  const auto user_center = geo::geohash_decode_center(request.geohash);
  const double radii_km[] = {10.0, 25.0, 60.0, 150.0, 1e9};
  for (const double radius : radii_km) {
    qualified.clear();
    for (const auto& entry : nodes) {
      if (!serves_app(entry.status)) continue;
      bool in_range = false;
      const auto node_center = geo::geohash_decode_center(entry.status.geohash);
      if (user_center && node_center) {
        in_range = geo::haversine_km(*user_center, *node_center) <= radius;
      } else {
        const int needed =
            std::max(0, policy_.initial_prefix -
                            static_cast<int>(&radius - radii_km));
        in_range = geo::common_prefix_len(request.geohash,
                                          entry.status.geohash) >= needed;
      }
      if (in_range) qualified.push_back(&entry);
    }
    if (static_cast<double>(qualified.size()) >= policy_.widen_factor * top_n) {
      break;
    }
  }

  std::vector<std::pair<double, const net::NodeStatus*>> ranked;
  ranked.reserve(qualified.size());
  for (const auto* entry : qualified) {
    const double uptime_sec =
        std::max<double>(0.0, to_sec(now - entry->registered_at));
    ranked.emplace_back(score(request, entry->status, uptime_sec),
                        &entry->status);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second->node < b.second->node;  // deterministic tie-break
  });

  net::DiscoveryResponse response;
  for (const auto& [s, status] : ranked) {
    if (static_cast<int>(response.candidates.size()) >= top_n) break;
    response.candidates.push_back(
        net::CandidateInfo{status->node, status->geohash, s, status->endpoint});
  }
  return response;
}

}  // namespace eden::manager
