#include "manager/global_selection.h"

#include <algorithm>
#include <iterator>

#include "geo/geohash.h"

namespace eden::manager {

namespace {

// Widening search radii (km): metro out to "anything, anywhere".
constexpr double kRadiiKm[] = {10.0, 25.0, 60.0, 150.0, 1e9};

// A node qualifies when it hosts the requested app type (an empty list
// means it serves everything, the paper's single-app deployments).
bool serves_app(const net::DiscoveryRequest& request,
                const net::NodeStatus& status) {
  if (request.app_type.empty() || status.app_types.empty()) return true;
  for (const auto& app : status.app_types) {
    if (app == request.app_type) return true;
  }
  return false;
}

}  // namespace

double GlobalSelector::score_with_centers(
    const net::DiscoveryRequest& request, const net::NodeStatus& node,
    double uptime_sec, const std::optional<geo::GeoPoint>& user_center,
    const std::optional<geo::GeoPoint>& node_center) const {
  // Proximity from the geohash cell centers: smooth distance decay (~full
  // credit within a few km, fading over tens of km). Falls back to prefix
  // matching when a hash does not decode.
  double proximity = 0.0;
  if (user_center && node_center) {
    const double km = geo::haversine_km(*user_center, *node_center);
    proximity = 1.0 / (1.0 + km / 15.0);
  } else if (!request.geohash.empty()) {
    const int shared = geo::common_prefix_len(request.geohash, node.geohash);
    proximity = static_cast<double>(shared) /
                static_cast<double>(request.geohash.size());
  }
  return score_with_proximity(request, node, uptime_sec, proximity);
}

double GlobalSelector::score_with_proximity(const net::DiscoveryRequest& request,
                                            const net::NodeStatus& node,
                                            double uptime_sec,
                                            double proximity) const {
  const double availability = std::clamp(1.0 - node.utilization, 0.0, 1.0);
  // cores per millisecond of frame time, squashed to ~[0, 1].
  const double raw_capacity =
      static_cast<double>(node.cores) / std::max(1.0, node.base_frame_ms);
  const double capacity = raw_capacity / (raw_capacity + 0.1);
  const double affinity = (!request.network_tag.empty() &&
                           request.network_tag == node.network_tag)
                              ? 1.0
                              : 0.0;
  const double load = static_cast<double>(node.attached_users) /
                      std::max(1, node.cores);

  double s = policy_.w_proximity * proximity +
             policy_.w_availability * availability +
             policy_.w_capacity * capacity + policy_.w_affinity * affinity -
             policy_.w_load * load;
  if (policy_.w_reliability != 0.0) {
    const double reliability =
        uptime_sec / (uptime_sec + std::max(1e-9, policy_.reliability_halflife_sec));
    s += policy_.w_reliability * reliability;
  }
  if (node.is_cloud) s -= policy_.cloud_penalty;
  return s;
}

double GlobalSelector::score(const net::DiscoveryRequest& request,
                             const net::NodeStatus& node,
                             double uptime_sec) const {
  return score_with_centers(request, node, uptime_sec,
                            geo::geohash_decode_center(request.geohash),
                            geo::geohash_decode_center(node.geohash));
}

void GlobalSelector::rank(const net::DiscoveryRequest& request,
                          std::vector<Candidate>& qualified, SimTime now,
                          bool shed_to_cloud,
                          net::DiscoveryResponse& out) const {
  const int top_n = std::max(1, request.top_n);
  auto& ranked = rank_scratch_;
  ranked.clear();
  ranked.reserve(qualified.size());
  for (const Candidate& candidate : qualified) {
    const double uptime_sec =
        std::max<double>(0.0, to_sec(now - candidate.entry->registered_at));
    // Reuse the distance the in-range filter already paid for; a negative
    // user_km marks the prefix-matching fallback (either center missing).
    // Same expressions as score_with_centers, so scores are bit-identical.
    double proximity = 0.0;
    if (candidate.user_km >= 0.0) {
      proximity = 1.0 / (1.0 + candidate.user_km / 15.0);
    } else if (!request.geohash.empty()) {
      const int shared = geo::common_prefix_len(request.geohash,
                                                candidate.entry->status.geohash);
      proximity = static_cast<double>(shared) /
                  static_cast<double>(request.geohash.size());
    }
    double s = score_with_proximity(request, candidate.entry->status,
                                    uptime_sec, proximity);
    // Load-feedback steering: push overloaded nodes down, and when the
    // whole cell is hot, give cloud fallbacks their penalty back so the
    // shed actually has somewhere to land. Both branches are dead (and the
    // scores bit-identical to the pre-feedback selector) unless the
    // manager's overload policy set the flags.
    if (candidate.entry->overloaded) s -= policy_.overload_penalty;
    if (shed_to_cloud && candidate.entry->status.is_cloud) {
      s += policy_.cloud_penalty;
    }
    ranked.emplace_back(s, &candidate.entry->status);
  }
  // Bounded top-n selection: (score desc, node id asc) is a strict total
  // order over distinct nodes, so the first top_n elements are exactly what
  // a full sort would produce.
  const auto keep = std::min<std::size_t>(static_cast<std::size_t>(top_n),
                                          ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                    ranked.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second->node < b.second->node;
                    });

  out.candidates.clear();
  out.candidates.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& [s, status] = ranked[i];
    out.candidates.push_back(
        net::CandidateInfo{status->node, status->geohash, s, status->endpoint});
  }
}

net::DiscoveryResponse GlobalSelector::select(
    const net::DiscoveryRequest& request,
    const std::vector<RegistryEntry>& nodes, SimTime now,
    bool shed_to_cloud) const {
  const int top_n = std::max(1, request.top_n);
  const auto user_center = geo::geohash_decode_center(request.geohash);

  // Decode every node hash once; the widening loop below rescans the list
  // up to five times and must see identical centers each pass.
  std::vector<std::optional<geo::GeoPoint>> centers;
  centers.reserve(nodes.size());
  for (const auto& entry : nodes) {
    centers.push_back(geo::geohash_decode_center(entry.status.geohash));
  }

  // Geo-proximity filter with widening: accept nodes within a search
  // radius, widening the radius until enough qualify (remote nodes remain
  // reachable as a last resort). Distances come from the geohash cell
  // centers — a raw prefix filter would drop close nodes that fall across
  // a cell boundary; prefix matching is only the fallback for hashes that
  // do not decode, needing one fewer shared character per widening step.
  auto& qualified = qualified_scratch_;
  for (std::size_t ri = 0; ri < std::size(kRadiiKm); ++ri) {
    const double radius = kRadiiKm[ri];
    const int needed =
        std::max(0, policy_.initial_prefix - static_cast<int>(ri));
    qualified.clear();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& entry = nodes[i];
      if (!serves_app(request, entry.status)) continue;
      bool in_range = false;
      double user_km = -1.0;
      if (user_center && centers[i]) {
        user_km = geo::haversine_km(*user_center, *centers[i]);
        in_range = user_km <= radius;
      } else {
        in_range = geo::common_prefix_len(request.geohash,
                                          entry.status.geohash) >= needed;
      }
      if (in_range) qualified.push_back(Candidate{&entry, centers[i], user_km});
    }
    // Widening stops once enough *spare* (non-overloaded) candidates
    // qualify: a saturated metro cell must not satisfy the quota and hide
    // the healthy nodes one radius step further out. With no overloaded
    // entries (feedback off) every candidate is spare — loop unchanged.
    std::size_t spare = 0;
    for (const Candidate& c : qualified) {
      if (!c.entry->overloaded) ++spare;
    }
    if (static_cast<double>(spare) >= policy_.widen_factor * top_n) {
      break;
    }
  }
  net::DiscoveryResponse response;
  rank(request, qualified, now, shed_to_cloud, response);
  return response;
}

net::DiscoveryResponse GlobalSelector::select(
    const net::DiscoveryRequest& request, Registry& registry,
    SimTime now, bool shed_to_cloud) const {
  net::DiscoveryResponse response;
  select_into(request, registry, response, now, shed_to_cloud);
  return response;
}

void GlobalSelector::select_into(const net::DiscoveryRequest& request,
                                 Registry& registry,
                                 net::DiscoveryResponse& out, SimTime now,
                                 bool shed_to_cloud) const {
  const int top_n = std::max(1, request.top_n);
  const auto user_center = geo::geohash_decode_center(request.geohash);

  // Same widening filter as the linear overload, but each radius step only
  // visits registry buckets that can intersect the search disc (plus the
  // no-geohash fallback bucket); the exact per-node check is unchanged, so
  // the qualified set — and therefore the response — is byte-identical.
  auto& qualified = qualified_scratch_;
  for (std::size_t ri = 0; ri < std::size(kRadiiKm); ++ri) {
    const double radius = kRadiiKm[ri];
    const int needed =
        std::max(0, policy_.initial_prefix - static_cast<int>(ri));
    qualified.clear();
    if (user_center) {
      registry.for_each_candidate(
          *user_center, radius, now,
          [&](const RegistryEntry& entry,
              const std::optional<geo::GeoPoint>& center) {
            if (!serves_app(request, entry.status)) return;
            bool in_range = false;
            double user_km = -1.0;
            if (center) {
              user_km = geo::haversine_km(*user_center, *center);
              in_range = user_km <= radius;
            } else {
              in_range = geo::common_prefix_len(request.geohash,
                                                entry.status.geohash) >= needed;
            }
            if (in_range) {
              qualified.push_back(Candidate{&entry, center, user_km});
            }
          });
    } else {
      // Undecodable request hash: every node falls back to prefix matching
      // against the first `needed` characters. Nothing can share more
      // characters than the request has, so deeper prefixes match nobody.
      if (needed > static_cast<int>(request.geohash.size())) continue;
      registry.for_each_live(
          std::string_view(request.geohash).substr(0, static_cast<std::size_t>(needed)),
          now,
          [&](const RegistryEntry& entry,
              const std::optional<geo::GeoPoint>& center) {
            if (!serves_app(request, entry.status)) return;
            qualified.push_back(Candidate{&entry, center});
          });
    }
    // Same spare-candidate widening rule as the linear overload.
    std::size_t spare = 0;
    for (const Candidate& c : qualified) {
      if (!c.entry->overloaded) ++spare;
    }
    if (static_cast<double>(spare) >= policy_.widen_factor * top_n) {
      break;
    }
  }
  rank(request, qualified, now, shed_to_cloud, out);
}

}  // namespace eden::manager
