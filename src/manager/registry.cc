#include "manager/registry.h"

#include <algorithm>

namespace eden::manager {

void Registry::upsert(const net::NodeStatus& status, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(status.node);
  it->second.status = status;
  it->second.last_heartbeat = now;
  if (inserted) it->second.registered_at = now;
}

void Registry::remove(NodeId node) { entries_.erase(node); }

std::vector<NodeId> Registry::expire(SimTime now) {
  std::vector<NodeId> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_heartbeat > heartbeat_ttl_) {
      expired.push_back(it->first);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

std::optional<RegistryEntry> Registry::get(NodeId node) const {
  const auto it = entries_.find(node);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<RegistryEntry> Registry::snapshot(SimTime now) {
  expire(now);
  std::vector<RegistryEntry> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(entry);
  return out;
}

}  // namespace eden::manager
