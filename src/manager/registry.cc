#include "manager/registry.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace eden::manager {

namespace {

// Matches the sphere used by geo::haversine_km, so the bucket bound below
// is valid for the same metric.
constexpr double kKmPerDegree = 6371.0088 * std::numbers::pi / 180.0;

// Upper bound on the great-circle distance from the cell center to any
// point of the cell: meridian leg (latitude half-span) plus a parallel leg
// at the latitude where the cell is widest. Padded for fp slop; only used
// for conservative pruning, never for the exact in-range check.
double cell_radius_bound_km(const geo::GeoBox& box) {
  const double lat_half = (box.max_lat - box.min_lat) / 2.0;
  const double lon_half = (box.max_lon - box.min_lon) / 2.0;
  double max_cos = 1.0;
  if (box.min_lat > 0.0 || box.max_lat < 0.0) {
    const double edge = std::min(std::abs(box.min_lat), std::abs(box.max_lat));
    max_cos = std::cos(edge * std::numbers::pi / 180.0);
  }
  return kKmPerDegree * (lat_half + lon_half * max_cos) + 1e-6;
}

}  // namespace

void Registry::index_insert(NodeId /*id*/, Slot& slot) {
  slot.center = geo::geohash_decode_center(slot.entry.status.geohash);
  if (!slot.center) {
    slot.fallback = true;
    slot.bucket_key.clear();
    slot.bucket_pos = static_cast<std::uint32_t>(fallback_.size());
    fallback_.push_back(&slot);
    return;
  }
  slot.fallback = false;
  const std::string& hash = slot.entry.status.geohash;
  slot.bucket_key = hash.substr(
      0, std::min<std::size_t>(hash.size(), kBucketPrecision));
  auto [it, inserted] = buckets_.try_emplace(slot.bucket_key);
  if (inserted) {
    // A prefix of a decodable hash always decodes.
    const auto box = *geo::geohash_decode(it->first);
    it->second.center = box.center();
    it->second.radius_km = cell_radius_bound_km(box);
  }
  slot.bucket_pos = static_cast<std::uint32_t>(it->second.slots.size());
  it->second.slots.push_back(&slot);
}

void Registry::index_remove(const Slot& slot) {
  std::vector<Slot*>* slots = nullptr;
  if (slot.fallback) {
    slots = &fallback_;
  } else {
    slots = &buckets_.find(slot.bucket_key)->second.slots;
  }
  // Swap-erase; fix up the slot of the entry that moved into our position.
  const std::uint32_t pos = slot.bucket_pos;
  (*slots)[pos] = slots->back();
  slots->pop_back();
  if (pos < slots->size()) {
    (*slots)[pos]->bucket_pos = pos;
  }
  if (!slot.fallback && slots->empty()) buckets_.erase(slot.bucket_key);
}

void Registry::erase_entry(NodeId id, const Slot& slot) {
  index_remove(slot);
  slots_.erase(id);
}

void Registry::upsert(const net::NodeStatus& status, SimTime now) {
  auto [it, inserted] = slots_.try_emplace(status.node);
  Slot& slot = it->second;
  if (inserted) {
    slot.entry.registered_at = now;
    slot.entry.status = status;
    index_insert(status.node, slot);
  } else if (slot.entry.status.geohash != status.geohash) {
    // The node moved buckets; reindex under the new hash.
    index_remove(slot);
    slot.entry.status = status;
    index_insert(status.node, slot);
  } else {
    slot.entry.status = status;
  }
  slot.entry.last_heartbeat = now;
  deadlines_.emplace(now, status.node);
}

void Registry::remove(NodeId node) {
  const auto it = slots_.find(node);
  if (it == slots_.end()) return;
  erase_entry(node, it->second);
}

std::vector<NodeId> Registry::expire(SimTime now) {
  std::vector<NodeId> expired;
  while (!deadlines_.empty()) {
    const auto [heartbeat, id] = deadlines_.top();
    if (now - heartbeat <= heartbeat_ttl_) break;  // freshest deadline first
    deadlines_.pop();
    const auto it = slots_.find(id);
    // Skip deadlines superseded by a newer heartbeat or an explicit
    // remove(); the current heartbeat (if any) is still in the heap.
    if (it == slots_.end() || it->second.entry.last_heartbeat != heartbeat) {
      continue;
    }
    expired.push_back(id);
    erase_entry(id, it->second);
  }
  std::sort(expired.begin(), expired.end());
  return expired;
}

std::optional<RegistryEntry> Registry::get(NodeId node) const {
  const auto it = slots_.find(node);
  if (it == slots_.end()) return std::nullopt;
  return it->second.entry;
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::vector<RegistryEntry> Registry::snapshot(SimTime now) {
  expire(now);
  std::vector<RegistryEntry> out;
  out.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) out.push_back(slot.entry);
  return out;
}
#pragma GCC diagnostic pop

}  // namespace eden::manager
