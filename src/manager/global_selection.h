// Global (manager-side) edge selection: step one of the paper's 2-step
// approach. Applies a GeoHash proximity filter with widening, then ranks
// the surviving nodes by resource availability, processing capacity and
// network affiliation, and returns the TopN candidate edge list. The
// ranking is deliberately coarse — final decisions are client-side — so it
// only needs to be "high tolerance to inaccuracy and mismatch" (§IV-B).
#pragma once

#include <optional>
#include <vector>

#include "geo/geopoint.h"
#include "manager/registry.h"
#include "net/protocol.h"

namespace eden::manager {

struct GlobalPolicy {
  // Start matching this many geohash prefix characters and widen (shorten)
  // until enough candidates qualify. 4 chars ~ a metro area (~20 km cells).
  int initial_prefix{4};
  // Stop widening once at least this multiple of TopN nodes qualify.
  double widen_factor{2.0};

  // Ranking weights.
  double w_proximity{1.0};     // shared-prefix length, normalised
  double w_availability{1.0};  // 1 - utilization
  double w_capacity{0.6};      // cores / base_frame_ms, normalised
  double w_affinity{0.8};      // matching network tag
  // Cloud nodes are a last resort: flat score penalty.
  double cloud_penalty{1.5};
  // Soft load penalty per attached user relative to core count. Relatively
  // strong so that successive discovery queries steer late joiners away
  // from already-popular nodes (the coarse resource-awareness of step 1).
  double w_load{1.2};
  // Flat score penalty for nodes in the manager's overload set (the
  // load-feedback control loop). Only ever applied to entries whose
  // `overloaded` flag is set, which requires the manager's OverloadPolicy
  // to be enabled — selection with the feature off is bit-identical.
  double overload_penalty{2.0};
  // Extension (off by default): weight for a reputation-style reliability
  // score derived from observed uptime — the paper points at
  // reputation-based scheduling [33] for tuning selection to volunteer
  // reliability. Whether uptime predicts residual lifetime depends on the
  // churn's hazard shape; see bench_ablation_manager.
  double w_reliability{0.0};
  // Uptime at which the reliability score reaches 0.5.
  double reliability_halflife_sec{60.0};
};

class GlobalSelector {
 public:
  explicit GlobalSelector(GlobalPolicy policy = {}) : policy_(policy) {}

  // Index-backed selection: queries the registry's geohash buckets per
  // widening radius instead of scanning every node. Expires stale entries
  // as a side effect. Byte-identical responses to the vector overload.
  // `shed_to_cloud` is the manager's hot-cell verdict: it cancels the
  // cloud penalty so cloud/LZ fallbacks outrank saturated volunteers.
  [[nodiscard]] net::DiscoveryResponse select(
      const net::DiscoveryRequest& request, Registry& registry,
      SimTime now = 0, bool shed_to_cloud = false) const;

  // Out-parameter variant of the index-backed overload: fills `out`
  // (clearing its candidate list first) so a caller-owned response's
  // capacity is reused across queries — the live manager's discovery hot
  // path performs no per-query allocation at steady state.
  void select_into(const net::DiscoveryRequest& request, Registry& registry,
                   net::DiscoveryResponse& out, SimTime now = 0,
                   bool shed_to_cloud = false) const;

  // Linear-scan selection over a materialized entry list (tests, ablation
  // studies, equivalence checks).
  [[nodiscard]] net::DiscoveryResponse select(
      const net::DiscoveryRequest& request,
      const std::vector<RegistryEntry>& nodes, SimTime now = 0,
      bool shed_to_cloud = false) const;

  [[nodiscard]] const GlobalPolicy& policy() const { return policy_; }

  // Exposed for tests: the composite score of one node for one request.
  // `uptime_sec` feeds the (optional) reliability term.
  [[nodiscard]] double score(const net::DiscoveryRequest& request,
                             const net::NodeStatus& node,
                             double uptime_sec = 0.0) const;

 private:
  // Qualified candidate: the entry plus its (possibly absent) geohash cell
  // center, so ranking never re-decodes hashes. `user_km` carries the
  // haversine distance already computed by the in-range filter (negative
  // when the filter fell back to prefix matching), so ranking never
  // re-evaluates the trig either.
  struct Candidate {
    const RegistryEntry* entry;
    std::optional<geo::GeoPoint> center;
    double user_km{-1.0};
  };

  [[nodiscard]] double score_with_centers(
      const net::DiscoveryRequest& request, const net::NodeStatus& node,
      double uptime_sec, const std::optional<geo::GeoPoint>& user_center,
      const std::optional<geo::GeoPoint>& node_center) const;

  // The score given an already-resolved proximity term (shared tail of
  // score_with_centers and the ranking fast path).
  [[nodiscard]] double score_with_proximity(const net::DiscoveryRequest& request,
                                            const net::NodeStatus& node,
                                            double uptime_sec,
                                            double proximity) const;

  // Rank `qualified` and emit the TopN response into `out` (bounded
  // partial sort with the deterministic node-id tie-break).
  void rank(const net::DiscoveryRequest& request,
            std::vector<Candidate>& qualified, SimTime now,
            bool shed_to_cloud, net::DiscoveryResponse& out) const;

  GlobalPolicy policy_;

  // Per-query working sets, reused across select() calls so the discovery
  // hot path performs no growth allocations at steady state. Selection is
  // logically const; these are pure scratch. Not thread-safe — one
  // selector belongs to one manager, driven from one loop (or the
  // single-threaded simulator).
  mutable std::vector<Candidate> qualified_scratch_;
  mutable std::vector<std::pair<double, const net::NodeStatus*>> rank_scratch_;
};

}  // namespace eden::manager
