#include "manager/central_manager.h"

#include <algorithm>
#include <string_view>

namespace eden::manager {

void CentralManager::handle_register(const net::NodeStatus& status) {
  ++stats_.registrations;
  const SimTime now = clock_->now();
  if (sink_ != nullptr) sink_->on_register(status, now, /*rejoin=*/false);
  registry_.upsert(status, now);
  if (sink_ != nullptr) sink_->commit(now);
}

net::HeartbeatAck CentralManager::handle_heartbeat(
    const net::NodeStatus& status) {
  ++stats_.heartbeats;
  const SimTime now = clock_->now();
  net::HeartbeatAck ack;

  // Rejoin detection: a heartbeat for a node the registry no longer holds
  // (TTL-expired and removed, or never registered — e.g. the registration
  // was lost in a fault window), or whose entry is stale past the TTL and
  // only survived because nothing forced the lazy expiry yet. Both used to
  // take a silent resurrection path through upsert(); now the rejoin is an
  // explicit re-registration — traced, counted, uptime reset — and the
  // feedback ack tells the node to invalidate pre-gap seqNums.
  const RegistryEntry* existing = registry_.find(status.node);
  const bool stale = existing != nullptr &&
                     now - existing->last_heartbeat > registry_.heartbeat_ttl();
  if (existing == nullptr || stale) {
    if (stale) {
      // The entry was dead-but-unobserved; retire it through the normal
      // expiry path so the departure stays visible before the rejoin.
      note_expired(registry_.expire(now));
      // A refresh inside the same tick (now - last == ttl boundary) can
      // keep the entry alive; only then is this not a rejoin.
      existing = registry_.find(status.node);
    }
    if (existing == nullptr) {
      ++stats_.rejoins;
      if (rejoins_ != nullptr) rejoins_->inc();
      if (trace_ != nullptr) {
        trace_->record({now, obs::EventKind::kNodeRejoin, status.node, {},
                        0, stale ? 1.0 : 0.0});
      }
      ack.rejoined = true;
    }
  }
  if (sink_ != nullptr) {
    if (ack.rejoined) {
      sink_->on_register(status, now, /*rejoin=*/true);
    } else {
      sink_->on_heartbeat(status, now);
    }
  }
  registry_.upsert(status, now);

  if (overload_policy_.enabled) {
    const OverloadState& st = update_overload(status, now);
    registry_.set_overloaded(status.node, st.overloaded);
    ack.degraded = st.overloaded;
    ack.phase_epoch = st.epoch;
  }
  if (sink_ != nullptr) sink_->commit(now);
  return ack;
}

const CentralManager::OverloadState& CentralManager::update_overload(
    const net::NodeStatus& status, SimTime now) {
  OverloadState& st = overload_[status.node];
  const double cores = static_cast<double>(std::max(1, status.cores));
  const double queue_per_core = static_cast<double>(status.queue_depth) / cores;
  const double p95_factor =
      status.base_frame_ms > 0 ? status.p95_proc_ms / status.base_frame_ms
                               : 0.0;
  const bool credits_low =
      status.burst_credits < overload_policy_.min_burst_credits;
  const bool enter_pressure =
      queue_per_core >= overload_policy_.enter_queue_per_core ||
      p95_factor >= overload_policy_.enter_p95_factor ||
      (credits_low && queue_per_core >= 1.0);
  // Credit starvation blocks the exit only while work is actually waiting
  // — mirroring the enter rule. A drained idle node must be able to leave
  // the set even when its credit ceiling sits below min_burst_credits
  // (small burstable instances can never accumulate that much).
  const bool exit_clear =
      queue_per_core <= overload_policy_.exit_queue_per_core &&
      p95_factor <= overload_policy_.exit_p95_factor &&
      (!credits_low || status.queue_depth == 0);
  const bool dwell_ok = st.last_transition < 0 ||
                        now - st.last_transition >= overload_policy_.min_dwell;
  if (!st.overloaded && enter_pressure && dwell_ok) {
    st.overloaded = true;
    st.last_transition = now;
    ++st.epoch;
    if (sink_ != nullptr) sink_->on_epoch(status.node, st.epoch, true, now);
    ++stats_.overload_enters;
    if (overload_enters_ != nullptr) overload_enters_->inc();
    if (trace_ != nullptr) {
      trace_->record({now, obs::EventKind::kOverloadEnter, status.node, {},
                      0, static_cast<double>(st.epoch)});
    }
  } else if (st.overloaded && exit_clear && dwell_ok) {
    st.overloaded = false;
    if (sink_ != nullptr) sink_->on_epoch(status.node, st.epoch, false, now);
    const double dwelled = to_sec(now - st.last_transition);
    st.last_transition = now;
    ++stats_.overload_exits;
    if (trace_ != nullptr) {
      trace_->record({now, obs::EventKind::kOverloadExit, status.node, {},
                      0, dwelled});
    }
  }
  return st;
}

void CentralManager::handle_deregister(NodeId node) {
  ++stats_.deregistrations;
  const SimTime now = clock_->now();
  if (sink_ != nullptr) sink_->on_leave(node, now);
  registry_.remove(node);
  if (sink_ != nullptr) sink_->commit(now);
}

net::DiscoveryResponse CentralManager::handle_discover(
    const net::DiscoveryRequest& request) {
  net::DiscoveryResponse response;
  handle_discover(request, response);
  return response;
}

void CentralManager::handle_discover(const net::DiscoveryRequest& request,
                                     net::DiscoveryResponse& out) {
  ++stats_.discovery_queries;
  if (discoveries_ != nullptr) discoveries_->inc();
  // Expire explicitly (the selector's internal expire then finds nothing)
  // so heartbeat-timeout departures are observable at the moment the
  // manager acts on them. The selector then answers from the registry's
  // geohash-bucket index — no snapshot copy.
  const SimTime now = clock_->now();
  note_expired(registry_.expire(now));
  if (sink_ != nullptr) sink_->commit(now);
  int hot = 0;
  if (overload_policy_.enabled && (hot = cell_hot(request, now)) > 0) {
    ++stats_.cell_sheds;
    if (cell_sheds_ != nullptr) cell_sheds_->inc();
    if (trace_ != nullptr) {
      trace_->record({now, obs::EventKind::kCellShed, request.client, {}, 0,
                      static_cast<double>(hot)});
    }
  }
  selector_.select_into(request, registry_, out, now, hot > 0);
}

int CentralManager::cell_hot(const net::DiscoveryRequest& request,
                             SimTime now) {
  if (request.geohash.empty()) return 0;
  const auto prefix_len = std::min<std::size_t>(
      request.geohash.size(), static_cast<std::size_t>(Registry::kBucketPrecision));
  int volunteers = 0;
  int hot = 0;
  registry_.for_each_live(
      std::string_view(request.geohash).substr(0, prefix_len), now,
      [&](const RegistryEntry& entry, const auto& /*center*/) {
        if (entry.status.is_cloud) return;  // the shed target, not a source
        ++volunteers;
        if (entry.overloaded) ++hot;
      });
  return (volunteers > 0 && hot == volunteers) ? hot : 0;
}

void CentralManager::set_observability(obs::TraceRecorder* trace,
                                       obs::MetricsRegistry* metrics) {
  trace_ = trace;
  expirations_ =
      metrics != nullptr ? &metrics->counter("manager.expirations") : nullptr;
  discoveries_ =
      metrics != nullptr ? &metrics->counter("manager.discoveries") : nullptr;
  rejoins_ = metrics != nullptr ? &metrics->counter("manager.rejoins") : nullptr;
  overload_enters_ = metrics != nullptr
                         ? &metrics->counter("manager.overload_enters")
                         : nullptr;
  cell_sheds_ =
      metrics != nullptr ? &metrics->counter("manager.cell_sheds") : nullptr;
}

void CentralManager::note_expired(const std::vector<NodeId>& expired) {
  if (expirations_ != nullptr) expirations_->inc(expired.size());
  if (sink_ != nullptr) {
    for (const NodeId node : expired) {
      sink_->on_expire(node, clock_->now());
    }
  }
  if (trace_ == nullptr) return;
  for (const NodeId node : expired) {
    trace_->record(
        {clock_->now(), obs::EventKind::kNodeExpire, node, {}, 0, 0.0});
  }
}

}  // namespace eden::manager
