#include "manager/central_manager.h"

namespace eden::manager {

void CentralManager::handle_register(const net::NodeStatus& status) {
  ++stats_.registrations;
  registry_.upsert(status, clock_->now());
}

void CentralManager::handle_heartbeat(const net::NodeStatus& status) {
  ++stats_.heartbeats;
  registry_.upsert(status, clock_->now());
}

void CentralManager::handle_deregister(NodeId node) {
  ++stats_.deregistrations;
  registry_.remove(node);
}

net::DiscoveryResponse CentralManager::handle_discover(
    const net::DiscoveryRequest& request) {
  ++stats_.discovery_queries;
  return selector_.select(request, registry_.snapshot(clock_->now()),
                          clock_->now());
}

}  // namespace eden::manager
