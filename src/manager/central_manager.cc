#include "manager/central_manager.h"

namespace eden::manager {

void CentralManager::handle_register(const net::NodeStatus& status) {
  ++stats_.registrations;
  registry_.upsert(status, clock_->now());
}

void CentralManager::handle_heartbeat(const net::NodeStatus& status) {
  ++stats_.heartbeats;
  registry_.upsert(status, clock_->now());
}

void CentralManager::handle_deregister(NodeId node) {
  ++stats_.deregistrations;
  registry_.remove(node);
}

net::DiscoveryResponse CentralManager::handle_discover(
    const net::DiscoveryRequest& request) {
  ++stats_.discovery_queries;
  if (discoveries_ != nullptr) discoveries_->inc();
  // Expire explicitly (the selector's internal expire then finds nothing)
  // so heartbeat-timeout departures are observable at the moment the
  // manager acts on them. The selector then answers from the registry's
  // geohash-bucket index — no snapshot copy.
  note_expired(registry_.expire(clock_->now()));
  return selector_.select(request, registry_, clock_->now());
}

void CentralManager::set_observability(obs::TraceRecorder* trace,
                                       obs::MetricsRegistry* metrics) {
  trace_ = trace;
  expirations_ =
      metrics != nullptr ? &metrics->counter("manager.expirations") : nullptr;
  discoveries_ =
      metrics != nullptr ? &metrics->counter("manager.discoveries") : nullptr;
}

void CentralManager::note_expired(const std::vector<NodeId>& expired) {
  if (expirations_ != nullptr) expirations_->inc(expired.size());
  if (trace_ == nullptr) return;
  for (const NodeId node : expired) {
    trace_->record(
        {clock_->now(), obs::EventKind::kNodeExpire, node, {}, 0, 0.0});
  }
}

}  // namespace eden::manager
