// Node registry kept by the central manager: the latest status reported by
// every edge node plus heartbeat freshness. Stale entries (missed
// heartbeats) are expired lazily on access — exactly how the manager learns
// about abrupt volunteer departures.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/protocol.h"

namespace eden::manager {

struct RegistryEntry {
  net::NodeStatus status;
  SimTime last_heartbeat{0};
  SimTime registered_at{0};
};

class Registry {
 public:
  explicit Registry(SimDuration heartbeat_ttl = sec(3.0))
      : heartbeat_ttl_(heartbeat_ttl) {}

  void upsert(const net::NodeStatus& status, SimTime now);
  void remove(NodeId node);
  // Drop every entry whose heartbeat is older than the TTL; returns the
  // expired ids sorted ascending so callers can observe departures
  // deterministically.
  std::vector<NodeId> expire(SimTime now);

  [[nodiscard]] std::optional<RegistryEntry> get(NodeId node) const;
  // Live entries as of `now` (expires first).
  [[nodiscard]] std::vector<RegistryEntry> snapshot(SimTime now);
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] SimDuration heartbeat_ttl() const { return heartbeat_ttl_; }

 private:
  SimDuration heartbeat_ttl_;
  std::unordered_map<NodeId, RegistryEntry> entries_;
};

}  // namespace eden::manager
