// Node registry kept by the central manager: the latest status reported by
// every edge node plus heartbeat freshness. Stale entries (missed
// heartbeats) are expired lazily on access — exactly how the manager learns
// about abrupt volunteer departures.
//
// Scale architecture: entries are spatially indexed by truncated-geohash
// buckets (nodes whose hash does not decode land in a fallback bucket), so
// discovery queries visit candidate buckets instead of every node, and a
// deadline min-heap makes expire() proportional to the number of nodes that
// actually time out, not the registry size. snapshot() survives as a
// copying compatibility shim; hot paths use the copy-free visitation API.
#pragma once

#include <map>
#include <optional>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "geo/geohash.h"
#include "geo/geopoint.h"
#include "net/protocol.h"

namespace eden::manager {

struct RegistryEntry {
  net::NodeStatus status;
  SimTime last_heartbeat{0};
  SimTime registered_at{0};
  // Manager-side overload verdict (hysteresis lives in CentralManager; the
  // registry only mirrors the flag so selection can read it in place).
  // Deliberately not part of the status assignment in upsert().
  bool overloaded{false};
};

class Registry {
 public:
  // Bucket key length in geohash characters: ~39 km cells at the equator,
  // comfortably finer than the widening radii the selector probes with.
  static constexpr int kBucketPrecision = 4;

  explicit Registry(SimDuration heartbeat_ttl = sec(3.0))
      : heartbeat_ttl_(heartbeat_ttl) {}

  void upsert(const net::NodeStatus& status, SimTime now);
  void remove(NodeId node);
  // Drop every entry whose heartbeat is older than the TTL; returns the
  // expired ids sorted ascending so callers can observe departures
  // deterministically.
  std::vector<NodeId> expire(SimTime now);

  [[nodiscard]] std::optional<RegistryEntry> get(NodeId node) const;
  // Copy-free lookup (no expiry side effect); nullptr when absent. The
  // heartbeat hot path uses this to detect rejoins without copying the
  // entry's strings.
  [[nodiscard]] const RegistryEntry* find(NodeId node) const {
    const auto it = slots_.find(node);
    return it == slots_.end() ? nullptr : &it->second.entry;
  }
  // Mirror the manager's overload verdict into the entry; no-op when the
  // node is not registered.
  void set_overloaded(NodeId node, bool overloaded) {
    const auto it = slots_.find(node);
    if (it != slots_.end()) it->second.entry.overloaded = overloaded;
  }
  // Live entries as of `now` (expires first). Compatibility shim: copies
  // every entry — every in-tree hot path has moved to the visitation API
  // below; the shim survives only for the legacy-selector equivalence
  // tests and benchmarks, which pin the copying behavior on purpose.
  [[deprecated(
      "copies every entry; use for_each_live/for_each_candidate")]]  //
  [[nodiscard]] std::vector<RegistryEntry>
  snapshot(SimTime now);
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] SimDuration heartbeat_ttl() const { return heartbeat_ttl_; }

  // ---- copy-free visitation (expires first) ----
  //
  // Visitors receive (const RegistryEntry&, const std::optional<GeoPoint>&):
  // the entry plus its geohash cell center, decoded once at upsert time
  // (nullopt when the hash does not decode).

  // Every live entry whose geohash starts with `prefix` (an empty prefix
  // visits everything, including entries with no usable geohash).
  template <typename Visitor>
  void for_each_live(std::string_view prefix, SimTime now, Visitor&& visit) {
    expire(now);
    if (prefix.empty()) {
      for (const auto& [key, bucket] : buckets_) {
        for (const Slot* slot : bucket.slots) visit(slot->entry, slot->center);
      }
    } else if (prefix.size() <= kBucketPrecision) {
      // Bucket keys are hash prefixes, so every matching entry lives in a
      // bucket whose key itself starts with `prefix`: one ordered range.
      for (auto it = buckets_.lower_bound(prefix);
           it != buckets_.end() && starts_with(it->first, prefix); ++it) {
        for (const Slot* slot : it->second.slots) {
          visit(slot->entry, slot->center);
        }
      }
    } else {
      const auto it = buckets_.find(prefix.substr(0, kBucketPrecision));
      if (it != buckets_.end()) {
        for (const Slot* slot : it->second.slots) {
          if (starts_with(slot->entry.status.geohash, prefix)) {
            visit(slot->entry, slot->center);
          }
        }
      }
    }
    // Undecodable hashes can still match textually (e.g. a valid prefix
    // followed by garbage), so the fallback bucket is always scanned.
    for (const Slot* slot : fallback_) {
      if (prefix.empty() ||
          starts_with(slot->entry.status.geohash, prefix)) {
        visit(slot->entry, slot->center);
      }
    }
  }

  // Every live entry that could lie within `radius_km` of `center`
  // (a conservative superset: buckets are pruned by a lower bound on the
  // distance from `center` to any point of the bucket cell, and entries
  // with no usable geohash are always visited). Callers apply the exact
  // per-entry check themselves.
  template <typename Visitor>
  void for_each_candidate(const geo::GeoPoint& center, double radius_km,
                          SimTime now, Visitor&& visit) {
    expire(now);
    for (const auto& [key, bucket] : buckets_) {
      if (geo::haversine_km(center, bucket.center) >
          radius_km + bucket.radius_km) {
        continue;  // no point of this cell can be within radius_km
      }
      for (const Slot* slot : bucket.slots) visit(slot->entry, slot->center);
    }
    for (const Slot* slot : fallback_) visit(slot->entry, slot->center);
  }

 private:
  struct Slot {
    RegistryEntry entry;
    // Cell center of the full geohash; nullopt when it does not decode
    // (then the node lives in the fallback bucket).
    std::optional<geo::GeoPoint> center;
    std::string bucket_key;     // key into buckets_; unused for fallback
    std::uint32_t bucket_pos{0};
    bool fallback{false};
  };
  struct Bucket {
    // Direct slot pointers: unordered_map nodes are address-stable, so
    // visitation never pays a per-entry hash lookup. index_remove() fixes
    // bucket_pos through the pointer after a swap-erase.
    std::vector<Slot*> slots;
    geo::GeoPoint center;  // cell center of the bucket's key
    double radius_km{0};   // upper bound on center -> any cell point
  };
  // Min-heap of (last_heartbeat, node); entries go stale when a newer
  // heartbeat arrives and are discarded lazily on pop.
  using Deadline = std::pair<SimTime, NodeId>;

  static bool starts_with(const std::string& s, std::string_view prefix) {
    return s.size() >= prefix.size() &&
           std::string_view(s).substr(0, prefix.size()) == prefix;
  }

  void index_insert(NodeId id, Slot& slot);
  void index_remove(const Slot& slot);
  void erase_entry(NodeId id, const Slot& slot);

  SimDuration heartbeat_ttl_;
  std::unordered_map<NodeId, Slot> slots_;
  // Ordered so prefix queries are one lower_bound plus a range walk, and
  // visitation order is deterministic for a given upsert/remove history.
  std::map<std::string, Bucket, std::less<>> buckets_;
  std::vector<Slot*> fallback_;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<Deadline>>
      deadlines_;
};

}  // namespace eden::manager
