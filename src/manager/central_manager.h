// CentralManager: serves edge-discovery queries (step one of the 2-step
// selection) from real-time node status collected via registration and
// heartbeats. Transport-agnostic like EdgeNode — the harness and the TCP
// runtime wrap the handlers behind net::ManagerApi / net::ManagerLink.
#pragma once

#include <cstdint>

#include "manager/global_selection.h"
#include "manager/registry.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace eden::manager {

struct ManagerStats {
  std::uint64_t discovery_queries{0};
  std::uint64_t registrations{0};
  std::uint64_t heartbeats{0};
  std::uint64_t deregistrations{0};
};

class CentralManager {
 public:
  CentralManager(sim::Clock& clock, GlobalPolicy policy = {},
                 SimDuration heartbeat_ttl = sec(3.0))
      : clock_(&clock), registry_(heartbeat_ttl), selector_(policy) {}

  // ---- handlers ----
  void handle_register(const net::NodeStatus& status);
  void handle_heartbeat(const net::NodeStatus& status);
  void handle_deregister(NodeId node);
  [[nodiscard]] net::DiscoveryResponse handle_discover(
      const net::DiscoveryRequest& request);

  // Swap the global selection policy (e.g. for ablations); takes effect
  // on the next discovery query.
  void set_policy(GlobalPolicy policy) { selector_ = GlobalSelector(policy); }

  // Opt-in tracing/metrics; either pointer may be null and both must
  // outlive the manager.
  void set_observability(obs::TraceRecorder* trace,
                         obs::MetricsRegistry* metrics);

  // ---- introspection ----
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const GlobalSelector& selector() const { return selector_; }
  [[nodiscard]] const ManagerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_nodes() {
    note_expired(registry_.expire(clock_->now()));
    return registry_.size();
  }

 private:
  // Traces/counts nodes the registry just expired (missed heartbeats) —
  // the only way the manager learns about abrupt departures.
  void note_expired(const std::vector<NodeId>& expired);

  sim::Clock* clock_;
  Registry registry_;
  GlobalSelector selector_;
  ManagerStats stats_;
  obs::TraceRecorder* trace_{nullptr};
  obs::Counter* expirations_{nullptr};
  obs::Counter* discoveries_{nullptr};
};

}  // namespace eden::manager
