// CentralManager: serves edge-discovery queries (step one of the 2-step
// selection) from real-time node status collected via registration and
// heartbeats. Transport-agnostic like EdgeNode — the harness and the TCP
// runtime wrap the handlers behind net::ManagerApi / net::ManagerLink.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "manager/global_selection.h"
#include "manager/registry.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace eden::manager {

struct ManagerStats {
  std::uint64_t discovery_queries{0};
  std::uint64_t registrations{0};
  std::uint64_t heartbeats{0};
  std::uint64_t deregistrations{0};
  std::uint64_t rejoins{0};          // heartbeats that re-registered a node
  std::uint64_t overload_enters{0};  // overload-set entries
  std::uint64_t overload_exits{0};   // overload-set exits
  std::uint64_t cell_sheds{0};       // discoveries answered in shed mode
};

// Overload-set hysteresis over the heartbeat telemetry (queue depth, burst
// credits, p95 processing time). A node *enters* the set when any enter
// threshold trips, *exits* only when every exit threshold clears, and no
// transition happens within min_dwell of the previous one — so telemetry
// oscillating across one boundary cannot flap the set every heartbeat.
struct OverloadPolicy {
  bool enabled{false};
  // Queue depth per core: enter above, exit at or below.
  double enter_queue_per_core{3.0};
  double exit_queue_per_core{1.0};
  // p95 processing time as a multiple of the node's idle base_frame_ms.
  double enter_p95_factor{6.0};
  double exit_p95_factor{2.5};
  // A burstable node about to throttle (credits below this, in
  // core-seconds) counts as overloaded once frames are actually waiting —
  // and, symmetrically, starved credits only hold a node in the set while
  // its queue is nonempty.
  double min_burst_credits{1.0};
  // Minimum time in either state before the next transition.
  SimDuration min_dwell{sec(2.0)};
};

// Durability hook (src/journal implements this as a write-ahead journal):
// the manager reports every registry mutation to the sink from inside the
// handler that performs it, then calls commit() once before the handler's
// effects become visible to the caller — so anything a peer could have
// observed (an ack, a discovery answer) is covered by a commit. A null
// sink costs one branch per mutation.
class RegistryMutationSink {
 public:
  virtual ~RegistryMutationSink() = default;
  // `rejoin` marks the heartbeat-path re-registration of an expired or
  // unknown node (vs an explicit register_node).
  virtual void on_register(const net::NodeStatus& status, SimTime now,
                           bool rejoin) = 0;
  virtual void on_heartbeat(const net::NodeStatus& status, SimTime now) = 0;
  virtual void on_leave(NodeId node, SimTime now) = 0;
  virtual void on_expire(NodeId node, SimTime now) = 0;
  virtual void on_epoch(NodeId node, std::uint64_t epoch, bool overloaded,
                        SimTime now) = 0;
  virtual void commit(SimTime now) = 0;
};

class CentralManager {
 public:
  CentralManager(sim::Clock& clock, GlobalPolicy policy = {},
                 SimDuration heartbeat_ttl = sec(3.0))
      : clock_(&clock), registry_(heartbeat_ttl), selector_(policy) {}

  // ---- handlers ----
  void handle_register(const net::NodeStatus& status);
  // Returns the feedback ack (rejoin detection + overload phase). One-way
  // transports simply discard it; the feedback rpc ships it to the node.
  net::HeartbeatAck handle_heartbeat(const net::NodeStatus& status);
  void handle_deregister(NodeId node);
  [[nodiscard]] net::DiscoveryResponse handle_discover(
      const net::DiscoveryRequest& request);
  // Out-parameter variant: fills `out` (clearing its candidate list) so a
  // transport-owned response's capacity is reused across queries. The
  // by-value overload delegates here.
  void handle_discover(const net::DiscoveryRequest& request,
                       net::DiscoveryResponse& out);

  // Swap the global selection policy (e.g. for ablations); takes effect
  // on the next discovery query.
  void set_policy(GlobalPolicy policy) { selector_ = GlobalSelector(policy); }

  // Enable/replace the overload-set policy (load-feedback elasticity).
  void set_overload_policy(OverloadPolicy policy) {
    overload_policy_ = policy;
  }
  [[nodiscard]] const OverloadPolicy& overload_policy() const {
    return overload_policy_;
  }
  // Whether `node` is currently held in the overload set.
  [[nodiscard]] bool overloaded(NodeId node) const {
    const auto it = overload_.find(node);
    return it != overload_.end() && it->second.overloaded;
  }

  // Opt-in tracing/metrics; either pointer may be null and both must
  // outlive the manager.
  void set_observability(obs::TraceRecorder* trace,
                         obs::MetricsRegistry* metrics);

  // Opt-in durability: journal every registry mutation through `sink`
  // (null to detach). The sink must outlive the manager or be detached
  // before it dies.
  void set_mutation_sink(RegistryMutationSink* sink) { sink_ = sink; }

  // ---- failover seeding (standby takeover) ----
  // Install a replayed registry entry / overload phase as-of the journaled
  // timestamps, bypassing the mutation path: no sink call, no stats, no
  // trace — the primary already journaled these facts.
  void seed_entry(const net::NodeStatus& status, SimTime last_heartbeat) {
    registry_.upsert(status, last_heartbeat);
  }
  void seed_overload(NodeId node, std::uint64_t epoch, bool overloaded) {
    OverloadState& st = overload_[node];
    st.epoch = epoch;
    st.overloaded = overloaded;
    st.last_transition = -1;  // dwell waived: the journal has no dwell clock
    registry_.set_overloaded(node, overloaded);
  }

  // ---- introspection ----
  [[nodiscard]] Registry& registry() { return registry_; }
  [[nodiscard]] const GlobalSelector& selector() const { return selector_; }
  [[nodiscard]] const ManagerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t live_nodes() {
    note_expired(registry_.expire(clock_->now()));
    if (sink_ != nullptr) sink_->commit(clock_->now());
    return registry_.size();
  }

 private:
  // Traces/counts nodes the registry just expired (missed heartbeats) —
  // the only way the manager learns about abrupt departures.
  void note_expired(const std::vector<NodeId>& expired);

  // Per-node hysteresis state. The epoch counts overload episodes and
  // never resets (clients honor a re-discover hint once per epoch, so the
  // counter must stay monotone across rejoins).
  struct OverloadState {
    bool overloaded{false};
    SimTime last_transition{-1};  // <0: no transition yet, dwell waived
    std::uint64_t epoch{0};
  };
  // Advance the hysteresis for one heartbeat; returns the node's state.
  const OverloadState& update_overload(const net::NodeStatus& status,
                                       SimTime now);
  // The shed-to-cloud trigger: when every live non-cloud node of the
  // request's registry cell is overloaded (and there is at least one),
  // returns how many; otherwise 0.
  [[nodiscard]] int cell_hot(const net::DiscoveryRequest& request,
                             SimTime now);

  sim::Clock* clock_;
  Registry registry_;
  GlobalSelector selector_;
  ManagerStats stats_;
  OverloadPolicy overload_policy_;
  std::unordered_map<NodeId, OverloadState> overload_;
  RegistryMutationSink* sink_{nullptr};
  obs::TraceRecorder* trace_{nullptr};
  obs::Counter* expirations_{nullptr};
  obs::Counter* discoveries_{nullptr};
  obs::Counter* rejoins_{nullptr};
  obs::Counter* overload_enters_{nullptr};
  obs::Counter* cell_sheds_{nullptr};
};

}  // namespace eden::manager
