// Application model for the paper's AR-based cognitive assistance workload
// (§V-A): clients stream video frames at up to 20 FPS; every frame is
// 0.02 MB after encoding; responses are lightweight instructions.
#pragma once

#include <string>

#include "common/types.h"

namespace eden::workload {

struct AppProfile {
  // Application server type this client needs (§III-B); empty = the
  // default single-app deployment of the paper's evaluation.
  std::string app_type;
  // Per-frame compute cost in units of the standard test frame — apps
  // heavier than the baseline object detector cost > 1.
  double frame_cost{1.0};
  double frame_bytes{20'000};     // 0.02 MB per encoded frame
  double response_bytes{200};     // negligible instruction payload
  double max_fps{20.0};
  double min_fps{2.0};
  // Adaptive rate control: back off when observed end-to-end latency
  // exceeds the target, recover when comfortably below it. The paper's
  // Fig 6 traces show users sustained well above 150 ms before the rate
  // controller reins them in, so the default backoff threshold is loose.
  double target_latency_ms{250.0};
  bool adaptive_rate{true};

  [[nodiscard]] SimDuration frame_interval(double fps) const {
    return sec(1.0 / (fps <= 0 ? max_fps : fps));
  }
};

// AIMD-style sending-rate controller (per client). The paper notes that
// request rates "can adaptively decrease based on the network and
// processing performance"; this reproduces that behaviour.
class RateController {
 public:
  explicit RateController(const AppProfile& profile)
      : profile_(profile), fps_(profile.max_fps) {}

  // Report the latency of a completed frame (ms); returns the updated rate.
  double on_frame_latency(double latency_ms);
  // A timed-out / failed frame counts as a strong congestion signal.
  double on_frame_failure();

  [[nodiscard]] double fps() const { return fps_; }
  [[nodiscard]] double smoothed_latency_ms() const { return ema_ms_; }
  void reset() {
    fps_ = profile_.max_fps;
    ema_ms_ = 0;
    has_ema_ = false;
  }

 private:
  AppProfile profile_;
  double fps_;
  double ema_ms_{0};
  bool has_ema_{false};
};

}  // namespace eden::workload
