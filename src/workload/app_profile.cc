#include "workload/app_profile.h"

#include <algorithm>

namespace eden::workload {

double RateController::on_frame_latency(double latency_ms) {
  constexpr double kEmaAlpha = 0.2;
  ema_ms_ = has_ema_ ? (1 - kEmaAlpha) * ema_ms_ + kEmaAlpha * latency_ms
                     : latency_ms;
  has_ema_ = true;
  if (!profile_.adaptive_rate) return fps_;
  if (ema_ms_ > profile_.target_latency_ms) {
    fps_ *= 0.8;  // multiplicative decrease
  } else if (ema_ms_ < 0.7 * profile_.target_latency_ms) {
    fps_ += 1.0;  // additive recovery
  }
  fps_ = std::clamp(fps_, profile_.min_fps, profile_.max_fps);
  return fps_;
}

double RateController::on_frame_failure() {
  if (!profile_.adaptive_rate) return fps_;
  fps_ = std::max(profile_.min_fps, fps_ * 0.5);
  return fps_;
}

}  // namespace eden::workload
