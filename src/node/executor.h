// Simulated frame executor of an edge node: `cores` parallel workers over a
// FIFO queue. Queueing delay, contention slowdown, burstable-CPU throttling
// (t2/t3-style credits) and host background load all emerge here — this is
// what makes D_proc depend on the node's hardware and current workload.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/callback.h"
#include "sim/clock.h"

namespace eden::node {

struct ExecutorConfig {
  int cores{1};
  double base_frame_ms{30.0};
  // Memory/cache contention: each additional busy core stretches service
  // time by this fraction.
  double contention_alpha{0.04};
  // Burstable instances (t2/t3): when CPU credits run out, service times
  // stretch by 1/burst_baseline (the instance is throttled to its baseline
  // share).
  bool burstable{false};
  double burst_baseline{0.4};
  double initial_credits_core_sec{30.0};
  // Fraction of compute taken by higher-priority host workloads (volunteer
  // machines run their owners' tasks too).
  double background_load{0.0};
  // Admission bound: jobs arriving at a longer queue are shed — their
  // completion fires immediately with kShedMs. Keeps an overloaded node's
  // backlog — and the latency of whatever it still completes — finite,
  // like a real server shedding stale frames.
  int max_queue{64};
  // When a burstable executor runs out of credits, also shed arrivals
  // beyond the baseline share of the queue (max_queue * burst_baseline):
  // a throttled instance can't drain a full-depth backlog before every
  // entry is stale. Opt-in because it changes admission behavior.
  //
  // The flag also *latches* the throttle: once credits hit zero the
  // executor stays throttled until the balance recovers to rearm_credits
  // (clamped to the initial balance). Instantaneous sampling lets a node
  // under sub-core load ride the zero floor — a few idle milliseconds
  // before each submit earn just enough credit to dodge the throttle
  // forever, which no real burstable instance can do. Legacy mode keeps
  // the historical instantaneous check byte-for-byte.
  bool shed_on_throttle{false};
  double rearm_credits{1.0};
};

class Executor {
 public:
  // `done(proc_ms)` receives queueing + service time for the job, or
  // kShedMs when the executor refused it (queue full / credit throttle).
  // Every submitted job's completion fires exactly once — except across
  // reset(), which deliberately silences the generation it cut off.
  // Capacity 96 because the offload completion nests a whole
  // net::Done<FrameResponse> (a 64-byte object: 56-byte inline buffer +
  // ops pointer) next to the node pointer, frame id and client id (88
  // bytes, padded to 96 by the Done's 16-byte alignment) — move-only SBO
  // keeps that chain of callbacks allocation-free end to end, once per
  // frame on every node.
  using Completion = sim::BasicFunc<96, double /*proc_ms*/>;

  // Sentinel passed to a shed job's completion; any negative proc_ms means
  // "not processed".
  static constexpr double kShedMs = -1.0;

  Executor(sim::Scheduler& scheduler, ExecutorConfig config);

  // Submit a job costing `cost` standard frames (1.0 = one app frame).
  void submit(double cost, Completion done);

  // Drop queued jobs and suppress completions of in-flight ones (node
  // death / shutdown).
  void reset();

  void set_background_load(double fraction);

  // Bring the lazy credit/utilization accounting up to now. Telemetry
  // readers (heartbeat status) call this before sampling — an idle
  // executor otherwise reports the credits it had when its last job
  // finished, which can hold a recovered node in the overload set forever.
  void refresh() { account(scheduler_->now()); }

  [[nodiscard]] int busy() const { return busy_; }
  [[nodiscard]] int queued() const { return static_cast<int>(queue_.size()); }
  // Exponentially smoothed busy-core fraction in [0, 1].
  [[nodiscard]] double utilization() const;
  [[nodiscard]] double credits_core_sec() const { return credits_; }
  [[nodiscard]] bool throttled() const;
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  // Jobs shed at admission: queue-full drops plus (when shed_on_throttle)
  // arrivals refused while credit-throttled.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const ExecutorConfig& config() const { return config_; }

 private:
  struct Job {
    double cost{0};
    Completion done;
    SimTime enqueued_at{0};
  };

  // FIFO ring over a power-of-two vector. A std::deque allocates a fresh
  // node every few pushes as its cursor walks forward — even at constant
  // queue depth — which shows up as steady-state allocations on the frame
  // path. The ring reuses its slots; it only allocates on capacity growth.
  class JobRing {
   public:
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    void push_back(Job job) {
      if (size_ == slots_.size()) grow();
      slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(job);
      ++size_;
    }

    Job pop_front() {
      Job job = std::move(slots_[head_]);
      head_ = (head_ + 1) & (slots_.size() - 1);
      --size_;
      return job;
    }

    // Drops every queued job (destroying its completion) but keeps the
    // slot storage for reuse.
    void clear() {
      for (std::size_t i = 0; i < size_; ++i) {
        slots_[(head_ + i) & (slots_.size() - 1)] = Job{};
      }
      head_ = 0;
      size_ = 0;
    }

   private:
    void grow() {
      std::vector<Job> next(slots_.empty() ? 8 : slots_.size() * 2);
      for (std::size_t i = 0; i < size_; ++i) {
        next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
      }
      slots_ = std::move(next);
      head_ = 0;
    }

    std::vector<Job> slots_;
    std::size_t head_{0};
    std::size_t size_{0};
  };
  // In-flight jobs parked in a free-listed slab so the scheduled completion
  // event captures only {executor, generation, slot} — small enough to
  // live inline in the scheduler's callback storage.
  struct InFlight {
    Completion done;
    SimTime enqueued_at{0};
    std::uint32_t next_free{0};
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  void start(Job job);
  std::uint32_t acquire_inflight(Completion done, SimTime enqueued_at);
  void finish_inflight(std::uint64_t generation, std::uint32_t slot);
  void on_complete(std::uint64_t generation, SimTime enqueued_at, Completion done);
  // Accrue burst credits and the utilization EMA for the elapsed interval.
  void account(SimTime now);
  [[nodiscard]] double service_multiplier() const;

  sim::Scheduler* scheduler_;
  ExecutorConfig config_;
  JobRing queue_;
  std::vector<InFlight> inflight_;
  std::uint32_t inflight_free_head_{kNoFreeSlot};
  int busy_{0};
  bool throttle_latched_{false};  // shed_on_throttle mode only
  std::uint64_t generation_{0};
  std::uint64_t completed_{0};
  std::uint64_t dropped_{0};
  double credits_;
  double util_ema_{0};
  SimTime last_account_{0};
};

}  // namespace eden::node
