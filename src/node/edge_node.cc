#include "node/edge_node.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eden::node {

EdgeNode::EdgeNode(sim::Scheduler& scheduler, EdgeNodeConfig config,
                   net::ManagerLink* manager)
    : scheduler_(&scheduler),
      config_(std::move(config)),
      manager_(manager),
      executor_(scheduler, config_.executor),
      whatif_ms_(config_.executor.base_frame_ms) {}

void EdgeNode::start() {
  if (running_) return;
  running_ = true;
  if (trace_ != nullptr) {
    trace_->record({scheduler_->now(), obs::EventKind::kNodeRegister,
                    config_.id, {}, 0, 0.0});
  }
  if (manager_ != nullptr) manager_->register_node(status());
  arm_heartbeat();
  invoke_test_workload(0);  // establish the initial what-if baseline
}

void EdgeNode::stop(bool graceful) {
  if (!running_) return;
  running_ = false;
  if (trace_ != nullptr) {
    trace_->record({scheduler_->now(),
                    graceful ? obs::EventKind::kNodeDeregister
                             : obs::EventKind::kNodeDeath,
                    config_.id, {}, 0,
                    static_cast<double>(attached_.size())});
  }
  executor_.reset();
  attached_.clear();
  if (heartbeat_event_ != sim::kInvalidEvent) {
    scheduler_->cancel(heartbeat_event_);
    heartbeat_event_ = sim::kInvalidEvent;
  }
  test_pending_ = false;
  test_rerun_ = false;
  if (graceful && manager_ != nullptr) manager_->deregister(config_.id);
}

net::NodeStatus EdgeNode::status() const {
  net::NodeStatus s;
  s.node = config_.id;
  s.geohash = config_.geohash;
  s.cores = config_.executor.cores;
  s.base_frame_ms = config_.executor.base_frame_ms;
  s.attached_users = attached_users();
  s.utilization = executor_.utilization();
  s.dedicated = config_.dedicated;
  s.is_cloud = config_.is_cloud;
  s.network_tag = config_.network_tag;
  s.endpoint = config_.endpoint;
  s.app_types = config_.app_types;
  s.queue_depth = executor_.queued();
  s.burst_credits = executor_.credits_core_sec();
  s.p95_proc_ms = p95_proc_ms();
  return s;
}

void EdgeNode::record_proc_sample(double proc_ms) {
  proc_samples_[proc_sample_next_] = proc_ms;
  proc_sample_at_[proc_sample_next_] = scheduler_->now();
  proc_sample_next_ = (proc_sample_next_ + 1) % kP95Window;
  proc_sample_count_ = std::min(proc_sample_count_ + 1, kP95Window);
}

double EdgeNode::p95_proc_ms() const {
  // Only samples fresh enough to describe the node's current condition
  // count; once the feedback loop steers clients away, the last hot frames
  // must not pin the reported p95 (and the overload set) high forever.
  const SimTime now = scheduler_->now();
  std::array<double, kP95Window> fresh;
  std::ptrdiff_t n = 0;
  for (std::size_t i = 0; i < proc_sample_count_; ++i) {
    if (now - proc_sample_at_[i] <= kP95FreshFor) fresh[n++] = proc_samples_[i];
  }
  if (n == 0) return 0.0;
  const std::ptrdiff_t rank = (n * 95 + 99) / 100 - 1;  // ceil(0.95 n) - 1
  std::nth_element(fresh.begin(), fresh.begin() + rank, fresh.begin() + n);
  return fresh[static_cast<std::size_t>(rank)];
}

void EdgeNode::trace_event(obs::EventKind kind, HostId subject,
                           std::uint64_t span, double value) {
  if (trace_ == nullptr) return;
  trace_->record({scheduler_->now(), kind, config_.id, subject, span, value});
}

std::vector<ClientId> EdgeNode::attached_ids() const {
  std::vector<ClientId> out;
  out.reserve(attached_.size());
  for (const auto& [client, info] : attached_) out.push_back(client);
  std::sort(out.begin(), out.end(),
            [](ClientId a, ClientId b) { return a.value < b.value; });
  return out;
}

double EdgeNode::current_ms() const {
  // Before any live frame completes, the cached what-if value is the best
  // estimate of what existing users experience.
  return has_current_ema_ ? current_ema_ms_ : whatif_ms_;
}

net::ProcessProbeResponse EdgeNode::handle_process_probe(ClientId from) {
  ++stats_.probes_received;
  if (const auto it = attached_.find(from); it != attached_.end()) {
    it->second.last_seen = scheduler_->now();
  }
  net::ProcessProbeResponse resp;
  resp.whatif_ms = whatif_ms_;
  resp.current_ms = current_ms();
  resp.attached_users = attached_users();
  resp.seq_num = seq_num_;
  return resp;
}

net::JoinResponse EdgeNode::handle_join(const net::JoinRequest& request) {
  // Algorithm 1: accept only when the node state is unchanged since the
  // client's probe, so the what-if prediction the client acted on is still
  // valid.
  if (!running_ || request.seq_num != seq_num_) {
    ++stats_.joins_rejected;
    trace_event(obs::EventKind::kNodeJoinReject, request.client, seq_num_);
    return {false, seq_num_};
  }
  trace_event(obs::EventKind::kNodeJoinAccept, request.client, seq_num_);
  attached_[request.client] = UserInfo{request.rate_fps, scheduler_->now()};
  ++stats_.joins_accepted;
  bump_state(config_.test_workload_delay);
  return {true, seq_num_};
}

bool EdgeNode::handle_unexpected_join(const net::JoinRequest& request) {
  if (!running_) return false;
  // Failover joins cannot be rejected (Table I): a client that just lost
  // its node must not be stranded.
  trace_event(obs::EventKind::kNodeUnexpectedJoin, request.client, seq_num_);
  attached_[request.client] = UserInfo{request.rate_fps, scheduler_->now()};
  ++stats_.unexpected_joins;
  bump_state(config_.test_workload_delay);
  return true;
}

void EdgeNode::handle_leave(ClientId client) {
  if (attached_.erase(client) == 0) return;
  trace_event(obs::EventKind::kNodeLeave, client);
  ++stats_.leaves;
  bump_state(0);
}

void EdgeNode::handle_offload(const net::FrameRequest& request,
                              net::Done<net::FrameResponse> done) {
  if (!running_) return;
  if (const auto it = attached_.find(request.client); it != attached_.end()) {
    it->second.last_seen = scheduler_->now();
  }
  executor_.submit(request.cost, [this, frame_id = request.frame_id,
                                  client = request.client,
                                  done = std::move(done)](double proc_ms) mutable {
    if (!running_) return;
    if (proc_ms < 0) {
      // The executor shed the frame. With load feedback on, tell the client
      // immediately (it fails the frame without burning its rpc timeout);
      // legacy mode keeps the historical go-dark behavior byte-for-byte.
      if (!config_.load_feedback) return;
      ++stats_.frames_shed;
      trace_event(obs::EventKind::kNodeShed, client, 0,
                  static_cast<double>(frame_id));
      net::FrameResponse resp{frame_id, proc_ms};
      resp.dropped = true;
      if (degraded_) resp.redisc_epoch = phase_epoch_;
      done(resp);
      return;
    }
    record_proc_sample(proc_ms);
    ++stats_.frames_processed;
    current_ema_ms_ = has_current_ema_
                          ? (1 - config_.current_ema_alpha) * current_ema_ms_ +
                                config_.current_ema_alpha * proc_ms
                          : proc_ms;
    has_current_ema_ = true;
    // Performance-monitor trigger: live times drifted away from the cached
    // what-if value (rate changes, host workloads, throttling...).
    const double reference = std::max(1e-6, whatif_ms_);
    const double drift = std::abs(current_ema_ms_ - whatif_ms_) / reference;
    if (drift > config_.perf_change_threshold && !test_pending_ &&
        scheduler_->now() - last_test_at_ >= config_.min_perf_test_interval) {
      bump_state(0);
    }
    net::FrameResponse resp{frame_id, proc_ms};
    // Piggyback the manager's re-discover hint on successful frames too —
    // a degraded node that still completes work should shed load before it
    // starts dropping. degraded_ is only ever set via the feedback ack, so
    // this is dead when load_feedback is off.
    if (degraded_) resp.redisc_epoch = phase_epoch_;
    done(resp);
  });
}

void EdgeNode::bump_state(SimDuration delay) {
  // "seqNum is updated along with test workload invocation" — one shared
  // critical section for all three triggers. chaos_freeze_seq_num is the
  // fuzzer's seeded fault: the test workload still runs, but the seqNum
  // guard of Algorithm 1 stops advancing.
  if (!config_.chaos_freeze_seq_num) {
    ++seq_num_;
    trace_event(obs::EventKind::kSeqNumBump, {}, 0,
                static_cast<double>(seq_num_));
  }
  invoke_test_workload(delay);
}

void EdgeNode::invoke_test_workload(SimDuration delay) {
  if (test_pending_) {
    test_rerun_ = true;  // coalesce: re-measure once the current run lands
    return;
  }
  test_pending_ = true;
  scheduler_->schedule_after(delay, [this] {
    if (!running_) return;
    last_test_at_ = scheduler_->now();
    ++stats_.test_invocations;
    executor_.submit(1.0, [this](double proc_ms) {
      if (!running_) return;
      if (proc_ms < 0) {
        // The executor shed the test frame (saturated admission queue).
        // Before refusals surfaced through the completion this silently
        // wedged the what-if cache: test_pending_ stayed true forever and
        // the node never re-measured. Retry once the pressure has had a
        // chance to ease.
        test_pending_ = false;
        test_rerun_ = false;
        invoke_test_workload(config_.min_perf_test_interval);
        return;
      }
      whatif_ms_ = proc_ms;
      test_pending_ = false;
      if (test_rerun_) {
        test_rerun_ = false;
        invoke_test_workload(0);
      }
    });
  });
}

void EdgeNode::evict_idle_users() {
  bool evicted = false;
  for (auto it = attached_.begin(); it != attached_.end();) {
    if (scheduler_->now() - it->second.last_seen > config_.user_idle_ttl) {
      trace_event(obs::EventKind::kNodeEvict, it->first);
      it = attached_.erase(it);
      ++stats_.evictions;
      evicted = true;
    } else {
      ++it;
    }
  }
  // An eviction is a workload decrease — same critical section as Leave().
  if (evicted) bump_state(0);
}

void EdgeNode::send_heartbeat() {
  evict_idle_users();
  if (trace_ != nullptr) {
    trace_->record({scheduler_->now(), obs::EventKind::kNodeHeartbeat,
                    config_.id, {}, 0,
                    static_cast<double>(attached_.size())});
  }
  if (manager_ == nullptr) return;
  if (!config_.load_feedback) {
    manager_->heartbeat(status());
    return;
  }
  // Telemetry must describe the node *now*: the executor's accounting is
  // lazy (runs on submit/complete), so an idle node would otherwise report
  // the zero credit balance of its last busy moment forever — and the
  // manager's exit thresholds could never clear.
  executor_.refresh();
  manager_->heartbeat_feedback(
      status(), [this](std::optional<net::HeartbeatAck> ack) {
        if (!running_ || !ack) return;
        degraded_ = ack->degraded;
        phase_epoch_ = ack->phase_epoch;
        if (ack->rejoined) {
          // The manager had expired us: whatever seqNum clients observed
          // before the gap must not admit them now. Same critical section
          // as every other state change, so no seqNum value is reused
          // across the rejoin. (The manager records the kNodeRejoin event.)
          ++stats_.rejoins;
          bump_state(0);
        }
      });
}

void EdgeNode::arm_heartbeat() {
  heartbeat_event_ =
      scheduler_->schedule_after(config_.heartbeat_period, [this] {
        if (!running_) return;
        send_heartbeat();
        arm_heartbeat();
      });
}

void EdgeNode::set_background_load(double fraction) {
  executor_.set_background_load(fraction);
  // Host workloads change the node's performance envelope — same critical
  // section as the other state changes.
  if (running_) bump_state(0);
}

}  // namespace eden::node
