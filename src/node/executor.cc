#include "node/executor.h"

#include <algorithm>
#include <cmath>

namespace eden::node {

Executor::Executor(sim::Scheduler& scheduler, ExecutorConfig config)
    : scheduler_(&scheduler),
      config_(config),
      credits_(config.initial_credits_core_sec),
      last_account_(scheduler.now()) {}

void Executor::account(SimTime now) {
  const double dt = to_sec(now - last_account_);
  if (dt <= 0) return;
  last_account_ = now;
  const double busy_frac =
      static_cast<double>(busy_) / std::max(1, config_.cores);
  if (config_.burstable) {
    // Earn baseline share, spend what's busy; clamp to [0, initial].
    credits_ += dt * (config_.burst_baseline * config_.cores -
                      static_cast<double>(busy_));
    credits_ = std::clamp(credits_, 0.0, config_.initial_credits_core_sec);
    if (config_.shed_on_throttle) {
      const double rearm =
          std::min(config_.rearm_credits, config_.initial_credits_core_sec);
      if (credits_ <= 0.0) {
        throttle_latched_ = true;
      } else if (credits_ >= rearm) {
        throttle_latched_ = false;
      }
    }
  }
  constexpr double kTauSec = 2.0;
  const double decay = std::exp(-dt / kTauSec);
  util_ema_ = util_ema_ * decay + busy_frac * (1.0 - decay);
}

double Executor::utilization() const { return util_ema_; }

bool Executor::throttled() const {
  if (!config_.burstable) return false;
  if (config_.shed_on_throttle) return throttle_latched_ || credits_ <= 0.0;
  return credits_ <= 0.0;
}

double Executor::service_multiplier() const {
  double mult = 1.0 + config_.contention_alpha * std::max(0, busy_ - 1);
  const double bg = std::clamp(config_.background_load, 0.0, 0.9);
  mult /= (1.0 - bg);
  if (throttled()) mult /= config_.burst_baseline;
  return mult;
}

void Executor::set_background_load(double fraction) {
  account(scheduler_->now());
  config_.background_load = fraction;
}

void Executor::submit(double cost, Completion done) {
  account(scheduler_->now());
  Job job{cost, std::move(done), scheduler_->now()};
  // A throttled burstable instance drains at burst_baseline speed, so only
  // the matching share of the queue can be served before it goes stale.
  int limit = config_.max_queue;
  if (config_.shed_on_throttle && throttled() && limit > 0) {
    limit = std::max(
        1, static_cast<int>(limit * std::clamp(config_.burst_baseline, 0.0, 1.0)));
  }
  if (busy_ < config_.cores) {
    start(std::move(job));
  } else if (config_.max_queue <= 0 || static_cast<int>(queue_.size()) < limit) {
    queue_.push_back(std::move(job));
  } else {
    // Shed load. The refusal is reported through the completion (exactly
    // once, like every other outcome) so the layer above can fail the frame
    // fast instead of leaving the sender to its timeout.
    ++dropped_;
    if (job.done) job.done(kShedMs);
  }
}

void Executor::start(Job job) {
  ++busy_;  // counted before computing the multiplier: this job contends too
  const double service_ms =
      config_.base_frame_ms * job.cost * service_multiplier();
  const std::uint64_t gen = generation_;
  const std::uint32_t slot =
      acquire_inflight(std::move(job.done), job.enqueued_at);
  scheduler_->schedule_after(msec(service_ms), [this, gen, slot] {
    finish_inflight(gen, slot);
  });
}

std::uint32_t Executor::acquire_inflight(Completion done, SimTime enqueued_at) {
  std::uint32_t slot;
  if (inflight_free_head_ != kNoFreeSlot) {
    slot = inflight_free_head_;
    inflight_free_head_ = inflight_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(inflight_.size());
    inflight_.emplace_back();
  }
  inflight_[slot].done = std::move(done);
  inflight_[slot].enqueued_at = enqueued_at;
  return slot;
}

void Executor::finish_inflight(std::uint64_t generation, std::uint32_t slot) {
  // Every started job owns exactly one slot and one scheduled event, so the
  // slot is always live here; move the callback out before releasing so a
  // re-entrant submit() from inside it cannot clobber the storage.
  Completion done = std::move(inflight_[slot].done);
  const SimTime enqueued_at = inflight_[slot].enqueued_at;
  inflight_[slot].done.reset();
  inflight_[slot].next_free = inflight_free_head_;
  inflight_free_head_ = slot;
  on_complete(generation, enqueued_at, std::move(done));
}

void Executor::on_complete(std::uint64_t generation, SimTime enqueued_at,
                           Completion done) {
  if (generation != generation_) return;  // executor was reset; job vanished
  account(scheduler_->now());
  --busy_;
  ++completed_;
  const double proc_ms = to_ms(scheduler_->now() - enqueued_at);
  if (!queue_.empty()) {
    start(queue_.pop_front());
  }
  if (done) done(proc_ms);
}

void Executor::reset() {
  account(scheduler_->now());
  ++generation_;
  queue_.clear();
  busy_ = 0;
}

}  // namespace eden::node
