// EdgeNode: the server-side runtime of the EDEN protocol. Implements the
// probing APIs of Table I in the paper (RTT_probe, Process_probe, Join,
// Unexpected_join, Leave), the what-if test-workload cache with its three
// invocation triggers (§IV-C2), the seqNum join synchronization of
// Algorithm 1, the performance monitor, and heartbeats to the central
// manager.
//
// The class is transport-agnostic: handlers are plain synchronous methods;
// the simulation harness and the TCP runtime wrap them behind net::NodeApi.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/api.h"
#include "net/protocol.h"
#include "node/executor.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace eden::node {

struct EdgeNodeConfig {
  NodeId id;
  std::string geohash;
  std::string network_tag;
  // Transport address advertised through registration/heartbeats; used by
  // the live TCP runtime, ignored by the simulator.
  std::string endpoint;
  // Application server types deployed on this node; empty = serves all.
  std::vector<std::string> app_types;
  bool dedicated{false};
  bool is_cloud{false};
  ExecutorConfig executor;
  SimDuration heartbeat_period{sec(1.0)};
  // Algorithm 1 line 5: the post-join test workload runs after roughly two
  // common user RTTs, so it observes the new user's traffic.
  SimDuration test_workload_delay{msec(30.0)};
  // Performance-monitor trigger (§IV-C2 scenario 3): re-run the test
  // workload when live processing times drift this fraction away from the
  // cached what-if value...
  double perf_change_threshold{0.25};
  // ...but no more often than this.
  SimDuration min_perf_test_interval{msec(500.0)};
  double current_ema_alpha{0.2};
  // Attached users that have been silent (no frames, no probes) this long
  // are evicted — they crashed or failed over elsewhere without a Leave().
  SimDuration user_idle_ttl{sec(15.0)};
  // Overload-aware elasticity: heartbeats ride the feedback rpc (telemetry
  // up, HeartbeatAck back), shed frames are fast-failed to the client, and
  // frame responses carry the manager's re-discover hint while degraded.
  // Off by default — the legacy one-way heartbeat path draws the exact
  // same RNG sequence as before.
  bool load_feedback{false};
  // Verification-harness fault: freeze seqNum so every state change keeps
  // the same value. Breaks the Algorithm 1 exactly-one-admission invariant
  // on purpose — eden::check's selftest proves its oracles catch it. Never
  // set outside the fuzzer.
  bool chaos_freeze_seq_num{false};
};

struct EdgeNodeStats {
  std::uint64_t probes_received{0};
  std::uint64_t test_invocations{0};
  std::uint64_t frames_processed{0};
  std::uint64_t joins_accepted{0};
  std::uint64_t joins_rejected{0};
  std::uint64_t unexpected_joins{0};
  std::uint64_t leaves{0};
  std::uint64_t evictions{0};  // idle users dropped without a Leave()
  std::uint64_t frames_shed{0};  // executor refusals fast-failed to clients
  std::uint64_t rejoins{0};      // manager-signaled re-registrations
};

class EdgeNode {
 public:
  EdgeNode(sim::Scheduler& scheduler, EdgeNodeConfig config,
           net::ManagerLink* manager = nullptr);

  // Register with the manager, begin heartbeats, measure the initial
  // what-if performance.
  void start();
  // Leave the system. Graceful stop deregisters from the manager; an
  // abrupt stop (node churn, crash) just goes dark — in-flight work is
  // dropped and the manager learns via missed heartbeats.
  void stop(bool graceful);
  [[nodiscard]] bool running() const { return running_; }

  // ---- Table I handlers (server side) ----
  // `from` (when valid) refreshes the prober's liveness if it is attached —
  // selection-only clients stay attached through their periodic probes.
  [[nodiscard]] net::ProcessProbeResponse handle_process_probe(
      ClientId from = ClientId{});
  [[nodiscard]] net::JoinResponse handle_join(const net::JoinRequest& request);
  bool handle_unexpected_join(const net::JoinRequest& request);
  void handle_leave(ClientId client);
  void handle_offload(const net::FrameRequest& request,
                      net::Done<net::FrameResponse> done);

  // ---- Introspection ----
  [[nodiscard]] NodeId id() const { return config_.id; }
  [[nodiscard]] const EdgeNodeConfig& config() const { return config_; }
  [[nodiscard]] int attached_users() const {
    return static_cast<int>(attached_.size());
  }
  // Sorted ids of the currently attached users (end-of-run oracle input).
  [[nodiscard]] std::vector<ClientId> attached_ids() const;
  [[nodiscard]] std::uint64_t seq_num() const { return seq_num_; }
  [[nodiscard]] double whatif_ms() const { return whatif_ms_; }
  [[nodiscard]] double current_ms() const;
  [[nodiscard]] const EdgeNodeStats& stats() const { return stats_; }
  [[nodiscard]] net::NodeStatus status() const;
  [[nodiscard]] Executor& executor() { return executor_; }
  // p95 over the recent-frame window, 0 before any frame completed.
  [[nodiscard]] double p95_proc_ms() const;
  // Manager-declared overload phase, as of the last heartbeat ack.
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::uint64_t phase_epoch() const { return phase_epoch_; }

  // Simulate the owner starting higher-priority host workloads.
  void set_background_load(double fraction);

  // Set the advertised transport address (live runtime learns its port
  // only after binding). Call before start().
  void set_endpoint(std::string endpoint) {
    config_.endpoint = std::move(endpoint);
  }

  // Opt-in lifecycle tracing (register/heartbeat/death/deregister); the
  // recorder must outlive the node. Null disables.
  void set_observability(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  // Shared tail of the three state-change triggers: bump seqNum and
  // (re-)measure the what-if performance after `delay`.
  void bump_state(SimDuration delay);
  void invoke_test_workload(SimDuration delay);
  void trace_event(obs::EventKind kind, HostId subject = {},
                   std::uint64_t span = 0, double value = 0.0);
  void send_heartbeat();
  void arm_heartbeat();

  sim::Scheduler* scheduler_;
  EdgeNodeConfig config_;
  net::ManagerLink* manager_;
  Executor executor_;

  struct UserInfo {
    double rate_fps{0};
    SimTime last_seen{0};
  };
  void evict_idle_users();
  std::unordered_map<ClientId, UserInfo> attached_;

  // Sliding window of recent frame processing times feeding the p95 the
  // heartbeat telemetry reports. Fixed ring: no allocation, and 32 frames
  // of history reacts within a second or two at typical offload rates.
  // Samples age out after kP95FreshFor — a node clients were steered away
  // from stops reporting its last hot frames forever, so the manager's
  // exit thresholds can actually clear once the backlog drains.
  static constexpr std::size_t kP95Window = 32;
  static constexpr SimDuration kP95FreshFor = sec(10.0);
  void record_proc_sample(double proc_ms);

  bool running_{false};
  bool degraded_{false};          // per last HeartbeatAck
  std::uint64_t phase_epoch_{0};  // per last HeartbeatAck
  std::array<double, kP95Window> proc_samples_{};
  std::array<SimTime, kP95Window> proc_sample_at_{};
  std::size_t proc_sample_count_{0};
  std::size_t proc_sample_next_{0};
  std::uint64_t seq_num_{0};
  double whatif_ms_;
  bool test_pending_{false};
  bool test_rerun_{false};
  SimTime last_test_at_{0};
  double current_ema_ms_{0};
  bool has_current_ema_{false};
  sim::EventId heartbeat_event_{sim::kInvalidEvent};
  obs::TraceRecorder* trace_{nullptr};
  EdgeNodeStats stats_;
};

}  // namespace eden::node
