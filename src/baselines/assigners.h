// Baseline user-to-edge assignment policies from §V-B of the paper. All of
// them are server-centric: they decide from static/aggregate information,
// never from client-side probing.
#pragma once

#include <optional>
#include <vector>

#include "baselines/node_info.h"
#include "common/types.h"
#include "geo/geopoint.h"

namespace eden::baselines {

class Assigner {
 public:
  virtual ~Assigner() = default;
  // Pick a node for a newly arriving user at `position`; nullopt when no
  // eligible node exists.
  virtual std::optional<NodeId> assign(const geo::GeoPoint& position) = 0;
  virtual void reset() {}
};

// "Geo-proximity": each user goes to the geographically closest non-cloud
// node; latency is assumed proportional to distance and capacity is
// ignored.
class GeoProximityAssigner final : public Assigner {
 public:
  explicit GeoProximityAssigner(std::vector<NodeInfo> nodes);
  std::optional<NodeId> assign(const geo::GeoPoint& position) override;

 private:
  std::vector<NodeInfo> nodes_;
};

// "Resource-aware weighted round robin": users are spread over all edge
// nodes proportionally to capacity weight = cores / base_frame_ms (the
// smooth WRR algorithm, as used by e.g. nginx).
class WeightedRoundRobinAssigner final : public Assigner {
 public:
  // `dedicated_only` restricts the pool to dedicated edge infrastructure
  // (the "Dedicated-only" baseline).
  explicit WeightedRoundRobinAssigner(std::vector<NodeInfo> nodes,
                                      bool dedicated_only = false);
  std::optional<NodeId> assign(const geo::GeoPoint& position) override;
  void reset() override;

 private:
  struct Entry {
    NodeInfo info;
    double weight{0};
    double current{0};
  };
  std::vector<Entry> entries_;
};

// "Closest cloud": everyone offloads to the cloud region.
class ClosestCloudAssigner final : public Assigner {
 public:
  explicit ClosestCloudAssigner(std::vector<NodeInfo> nodes);
  std::optional<NodeId> assign(const geo::GeoPoint& position) override;

 private:
  std::vector<NodeInfo> clouds_;
};

}  // namespace eden::baselines
