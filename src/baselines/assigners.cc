#include "baselines/assigners.h"

#include <algorithm>
#include <limits>

namespace eden::baselines {

GeoProximityAssigner::GeoProximityAssigner(std::vector<NodeInfo> nodes)
    : nodes_(std::move(nodes)) {}

std::optional<NodeId> GeoProximityAssigner::assign(
    const geo::GeoPoint& position) {
  std::optional<NodeId> best;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& node : nodes_) {
    if (node.is_cloud) continue;
    const double km = geo::haversine_km(position, node.position);
    if (km < best_km) {
      best_km = km;
      best = node.id;
    }
  }
  return best;
}

WeightedRoundRobinAssigner::WeightedRoundRobinAssigner(
    std::vector<NodeInfo> nodes, bool dedicated_only) {
  for (auto& node : nodes) {
    if (node.is_cloud) continue;
    if (dedicated_only && !node.dedicated) continue;
    Entry entry;
    entry.weight =
        static_cast<double>(node.cores) / std::max(1.0, node.base_frame_ms);
    entry.info = std::move(node);
    entries_.push_back(std::move(entry));
  }
}

std::optional<NodeId> WeightedRoundRobinAssigner::assign(
    const geo::GeoPoint& /*position*/) {
  if (entries_.empty()) return std::nullopt;
  // Smooth weighted round robin: bump every node by its weight, pick the
  // highest accumulator, then charge it the total weight.
  double total = 0;
  Entry* best = nullptr;
  for (auto& entry : entries_) {
    entry.current += entry.weight;
    total += entry.weight;
    if (best == nullptr || entry.current > best->current) best = &entry;
  }
  best->current -= total;
  return best->info.id;
}

void WeightedRoundRobinAssigner::reset() {
  for (auto& entry : entries_) entry.current = 0;
}

ClosestCloudAssigner::ClosestCloudAssigner(std::vector<NodeInfo> nodes) {
  for (auto& node : nodes) {
    if (node.is_cloud) clouds_.push_back(std::move(node));
  }
}

std::optional<NodeId> ClosestCloudAssigner::assign(
    const geo::GeoPoint& position) {
  std::optional<NodeId> best;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& cloud : clouds_) {
    const double km = geo::haversine_km(position, cloud.position);
    if (km < best_km) {
      best_km = km;
      best = cloud.id;
    }
  }
  return best;
}

}  // namespace eden::baselines
