// Static node descriptions shared by the baseline assigners and the
// optimal-assignment solver (which are server-centric by design — exactly
// the property the paper contrasts against).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "geo/geopoint.h"

namespace eden::baselines {

struct NodeInfo {
  NodeId id;
  std::string name;
  geo::GeoPoint position;
  int cores{1};
  double base_frame_ms{30.0};
  bool dedicated{false};
  bool is_cloud{false};
  // Burstable-instance parameters mirrored from ExecutorConfig, so the
  // analytic predictor can anticipate credit-exhaustion throttling.
  bool burstable{false};
  double burst_baseline{0.4};
  double contention_alpha{0.04};
};

}  // namespace eden::baselines
