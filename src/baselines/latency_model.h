// Analytic end-to-end latency predictor used by the optimal-assignment
// solver (and by ablation benches). D_proc is approximated with an M/M/c
// queue (Erlang C) over the node's effective per-frame service time,
// including contention slowdown and burstable-CPU throttling, so the
// predictor matches the behaviour of the simulated Executor.
#pragma once

#include <vector>

#include "baselines/node_info.h"

namespace eden::baselines {

// Erlang C: probability that an arriving job must queue in an M/M/c system
// with offered load a = lambda/mu and c servers. Returns 1.0 when a >= c.
[[nodiscard]] double erlang_c(int servers, double offered_load);

// Expected in-node time (queue wait + service) in ms for one frame on
// `node` when `k_users` users send `fps` frames per second each.
[[nodiscard]] double predicted_proc_ms(const NodeInfo& node, int k_users,
                                       double fps);

// The full prediction input for an n-user / m-node assignment problem.
struct PredictInput {
  std::vector<NodeInfo> nodes;
  // Per user x node: RTT propagation (ms) and data-transfer delay (ms).
  std::vector<std::vector<double>> rtt_ms;
  std::vector<std::vector<double>> trans_ms;
  double fps{20.0};

  [[nodiscard]] std::size_t users() const { return rtt_ms.size(); }
};

// P(EA): average end-to-end latency of the assignment
// (assignment[i] = node index of user i), per §III-C.
[[nodiscard]] double average_latency_ms(const PredictInput& input,
                                        const std::vector<int>& assignment);

}  // namespace eden::baselines
