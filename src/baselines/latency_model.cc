#include "baselines/latency_model.h"

#include <algorithm>
#include <cmath>

namespace eden::baselines {

double erlang_c(int servers, double offered_load) {
  if (servers <= 0) return 1.0;
  if (offered_load <= 0) return 0.0;
  if (offered_load >= servers) return 1.0;
  // Iterative Erlang B, then convert to Erlang C.
  double b = 1.0;
  for (int i = 1; i <= servers; ++i) {
    b = offered_load * b / (static_cast<double>(i) + offered_load * b);
  }
  const double rho = offered_load / servers;
  return b / (1.0 - rho * (1.0 - b));
}

double predicted_proc_ms(const NodeInfo& node, int k_users, double fps) {
  if (k_users <= 0) return node.base_frame_ms;
  const int c = std::max(1, node.cores);

  // Effective service time: contention stretches frames once several cores
  // are busy. Expected concurrency is bounded by both users and cores.
  const int expected_busy = std::min(k_users, c);
  double service_ms =
      node.base_frame_ms *
      (1.0 + node.contention_alpha * std::max(0, expected_busy - 1));

  // Burstable instances: sustained demand above the baseline share drains
  // credits, after which the instance runs at its baseline speed.
  const double demand_cores =
      static_cast<double>(k_users) * fps * service_ms / 1000.0;
  if (node.burstable && demand_cores > node.burst_baseline * c) {
    service_ms /= node.burst_baseline;
  }

  const double lambda_per_ms = static_cast<double>(k_users) * fps / 1000.0;
  const double offered = lambda_per_ms * service_ms;  // in units of servers
  const double rho = offered / c;
  if (rho >= 0.999) {
    // Saturated: the queue grows without bound. Return a finite but
    // steeply-increasing penalty so the solver still ranks overloaded
    // assignments sensibly.
    return service_ms * (3.0 + 25.0 * (rho - 0.999));
  }
  const double p_wait = erlang_c(c, offered);
  const double wait_ms = p_wait * service_ms / (c * (1.0 - rho));
  return service_ms + wait_ms;
}

double average_latency_ms(const PredictInput& input,
                          const std::vector<int>& assignment) {
  const std::size_t n = input.users();
  std::vector<int> users_on_node(input.nodes.size(), 0);
  for (std::size_t i = 0; i < n; ++i) ++users_on_node[assignment[i]];

  std::vector<double> proc_ms(input.nodes.size(), 0.0);
  for (std::size_t j = 0; j < input.nodes.size(); ++j) {
    if (users_on_node[j] > 0) {
      proc_ms[j] = predicted_proc_ms(input.nodes[j], users_on_node[j], input.fps);
    }
  }

  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int j = assignment[i];
    total += input.rtt_ms[i][j] + input.trans_ms[i][j] + proc_ms[j];
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace eden::baselines
