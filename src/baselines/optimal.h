// Optimal edge assignment (the "Optimal" bar of Fig 7). The problem of
// §III-C is NP-hard; we solve small instances exactly by exhaustive
// enumeration of all m^n assignments and larger ones with greedy seeding +
// multi-restart local search (move/swap neighbourhood) over the analytic
// latency model.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/latency_model.h"
#include "common/rng.h"

namespace eden::baselines {

struct OptimalConfig {
  // Enumerate exhaustively while m^n does not exceed this.
  std::uint64_t max_exhaustive{1u << 20};
  int restarts{16};
  int max_passes{100};  // local-search sweeps per restart
};

struct OptimalResult {
  std::vector<int> assignment;  // node index per user
  double avg_latency_ms{0};
  bool exact{false};
  std::uint64_t evaluations{0};
};

[[nodiscard]] OptimalResult solve_optimal(const PredictInput& input, Rng& rng,
                                          const OptimalConfig& config = {});

}  // namespace eden::baselines
