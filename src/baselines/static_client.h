// StaticClient: streams AR frames to one externally-assigned edge node —
// the client half of every baseline policy (geo-proximity, resource-aware
// WRR, dedicated-only, closest-cloud). It never probes and never switches
// on its own; an external controller may `reassign` it.
#pragma once

#include <cstdint>
#include <optional>

#include "client/edge_client.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/api.h"
#include "sim/clock.h"
#include "workload/app_profile.h"

namespace eden::baselines {

class StaticClient {
 public:
  StaticClient(sim::Scheduler& scheduler, client::NodeResolver resolver,
               ClientId id, workload::AppProfile app);

  // Attach to `target` (via Unexpected_join, which cannot be rejected) and
  // start streaming.
  void start(NodeId target);
  void stop();
  void reassign(NodeId target);

  [[nodiscard]] ClientId id() const { return id_; }
  [[nodiscard]] std::optional<NodeId> current_node() const { return current_; }
  [[nodiscard]] const TimeSeries& latency_series() const { return latency_; }
  [[nodiscard]] const Samples& latency_samples() const { return samples_; }
  [[nodiscard]] std::uint64_t frames_ok() const { return frames_ok_; }
  [[nodiscard]] std::uint64_t frames_failed() const { return frames_failed_; }
  [[nodiscard]] double fps() const { return rate_.fps(); }

 private:
  void attach(NodeId target);
  void arm_frame_timer();
  void send_frame();

  sim::Scheduler* scheduler_;
  client::NodeResolver resolver_;
  ClientId id_;
  workload::AppProfile app_;
  workload::RateController rate_;

  bool running_{false};
  std::optional<NodeId> current_;
  std::uint64_t next_frame_id_{1};
  std::uint64_t frames_ok_{0};
  std::uint64_t frames_failed_{0};
  sim::EventId frame_event_{sim::kInvalidEvent};
  TimeSeries latency_;
  Samples samples_;
};

}  // namespace eden::baselines
