#include "baselines/optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace eden::baselines {
namespace {

// m^n with overflow clamp.
std::uint64_t pow_clamped(std::uint64_t m, std::uint64_t n, std::uint64_t cap) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (result > cap / std::max<std::uint64_t>(1, m)) return cap + 1;
    result *= m;
  }
  return result;
}

OptimalResult solve_exhaustive(const PredictInput& input) {
  const std::size_t n = input.users();
  const int m = static_cast<int>(input.nodes.size());
  OptimalResult best;
  best.exact = true;
  best.avg_latency_ms = std::numeric_limits<double>::infinity();

  std::vector<int> assignment(n, 0);
  while (true) {
    const double latency = average_latency_ms(input, assignment);
    ++best.evaluations;
    if (latency < best.avg_latency_ms) {
      best.avg_latency_ms = latency;
      best.assignment = assignment;
    }
    // Odometer increment over base-m digits.
    std::size_t pos = 0;
    while (pos < n && ++assignment[pos] == m) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

// One local-search run: greedy construction in the given user order, then
// repeated single-user improvement passes to a local optimum.
std::pair<std::vector<int>, double> local_search(const PredictInput& input,
                                                 std::vector<std::size_t> order,
                                                 int max_passes,
                                                 std::uint64_t& evaluations) {
  const std::size_t n = input.users();
  const int m = static_cast<int>(input.nodes.size());
  std::vector<int> assignment(n, 0);

  // Greedy: place users one at a time where the global average (over the
  // already-placed prefix) is lowest. Mirrors the GO heuristic's spirit.
  std::vector<int> placed;
  std::vector<std::size_t> placed_users;
  for (const std::size_t user : order) {
    placed_users.push_back(user);
    int best_node = 0;
    double best_avg = std::numeric_limits<double>::infinity();
    for (int j = 0; j < m; ++j) {
      assignment[user] = j;
      // Evaluate only over placed users.
      PredictInput partial = input;
      std::vector<int> partial_assignment;
      partial.rtt_ms.clear();
      partial.trans_ms.clear();
      for (const std::size_t u : placed_users) {
        partial.rtt_ms.push_back(input.rtt_ms[u]);
        partial.trans_ms.push_back(input.trans_ms[u]);
        partial_assignment.push_back(assignment[u]);
      }
      const double avg = average_latency_ms(partial, partial_assignment);
      ++evaluations;
      if (avg < best_avg) {
        best_avg = avg;
        best_node = j;
      }
    }
    assignment[user] = best_node;
    placed.push_back(best_node);
  }

  double current = average_latency_ms(input, assignment);
  for (int pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int original = assignment[i];
      for (int j = 0; j < m; ++j) {
        if (j == original) continue;
        assignment[i] = j;
        const double candidate = average_latency_ms(input, assignment);
        ++evaluations;
        if (candidate + 1e-9 < current) {
          current = candidate;
          improved = true;
        } else {
          assignment[i] = original;
        }
        if (assignment[i] != original) break;  // took the move
      }
    }
    if (!improved) break;
  }
  return {assignment, current};
}

}  // namespace

OptimalResult solve_optimal(const PredictInput& input, Rng& rng,
                            const OptimalConfig& config) {
  OptimalResult result;
  const std::size_t n = input.users();
  const std::size_t m = input.nodes.size();
  if (n == 0 || m == 0) return result;

  if (pow_clamped(m, n, config.max_exhaustive) <= config.max_exhaustive) {
    return solve_exhaustive(input);
  }

  result.avg_latency_ms = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (int restart = 0; restart < config.restarts; ++restart) {
    if (restart > 0) std::shuffle(order.begin(), order.end(), rng);
    auto [assignment, avg] =
        local_search(input, order, config.max_passes, result.evaluations);
    if (avg < result.avg_latency_ms) {
      result.avg_latency_ms = avg;
      result.assignment = std::move(assignment);
    }
  }
  return result;
}

}  // namespace eden::baselines
