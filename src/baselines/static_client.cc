#include "baselines/static_client.h"

namespace eden::baselines {

StaticClient::StaticClient(sim::Scheduler& scheduler,
                           client::NodeResolver resolver, ClientId id,
                           workload::AppProfile app)
    : scheduler_(&scheduler),
      resolver_(std::move(resolver)),
      id_(id),
      app_(app),
      rate_(app) {}

void StaticClient::start(NodeId target) {
  if (running_) return;
  running_ = true;
  attach(target);
  arm_frame_timer();
}

void StaticClient::stop() {
  if (!running_) return;
  running_ = false;
  if (frame_event_ != sim::kInvalidEvent) scheduler_->cancel(frame_event_);
  if (current_) {
    if (auto* api = resolver_(*current_)) api->leave(id_);
  }
}

void StaticClient::reassign(NodeId target) {
  if (current_) {
    if (auto* api = resolver_(*current_)) api->leave(id_);
    current_.reset();
  }
  attach(target);
}

void StaticClient::attach(NodeId target) {
  net::NodeApi* api = resolver_(target);
  if (api == nullptr) return;
  net::JoinRequest request;
  request.client = id_;
  request.rate_fps = rate_.fps();
  api->unexpected_join(request, [this, target](bool ok) {
    if (running_ && ok) current_ = target;
  });
}

void StaticClient::arm_frame_timer() {
  frame_event_ =
      scheduler_->schedule_after(app_.frame_interval(rate_.fps()), [this] {
        if (!running_) return;
        send_frame();
        arm_frame_timer();
      });
}

void StaticClient::send_frame() {
  if (!current_) return;
  net::NodeApi* api = resolver_(*current_);
  if (api == nullptr) return;
  net::FrameRequest request;
  request.client = id_;
  request.frame_id = next_frame_id_++;
  request.bytes = app_.frame_bytes;
  request.cost = app_.frame_cost;
  const SimTime sent_at = scheduler_->now();
  api->offload(request, [this, sent_at](std::optional<net::FrameResponse> resp) {
    if (!running_) return;
    if (resp) {
      const double e2e_ms = to_ms(scheduler_->now() - sent_at);
      ++frames_ok_;
      latency_.add(scheduler_->now(), e2e_ms);
      samples_.add(e2e_ms);
      rate_.on_frame_latency(e2e_ms);
    } else {
      ++frames_failed_;
      rate_.on_frame_failure();
    }
  });
}

}  // namespace eden::baselines
