#include "obs/trace_merge.h"

#include <algorithm>

namespace eden::obs {

HostId trace_site(const TraceEvent& event, HostId manager_host) {
  switch (event.kind) {
    case EventKind::kNodeExpire:
    case EventKind::kNodeRejoin:
    case EventKind::kOverloadEnter:
    case EventKind::kOverloadExit:
    case EventKind::kCellShed:
      return manager_host;
    default:
      return event.actor;
  }
}

std::vector<TraceEvent> merge_shard_traces(
    const std::vector<const std::vector<TraceEvent>*>& parts,
    HostId manager_host) {
  std::size_t total = 0;
  for (const auto* part : parts) total += part->size();
  std::vector<TraceEvent> merged;
  merged.reserve(total);
  for (const auto* part : parts) {
    merged.insert(merged.end(), part->begin(), part->end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [manager_host](const TraceEvent& a, const TraceEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return trace_site(a, manager_host).value <
                            trace_site(b, manager_host).value;
                   });
  return merged;
}

std::string events_to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& event : events) {
    out += to_jsonl_line(event);
    out += '\n';
  }
  return out;
}

}  // namespace eden::obs
