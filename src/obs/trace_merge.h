// Canonical merge of per-shard trace streams.
//
// Each shard domain records its own TraceRecorder in local execution
// order. To compare runs across shard layouts (the sharded==sequential
// determinism witness) the per-shard streams are merged into one
// canonical order: stable-sort by (time, site), where the site of an
// event is the host of the domain that recorded it. Client- and
// node-side events are recorded on the actor's own domain, so site ==
// actor; manager-side observations (expiry sweeps, overload set
// transitions, all-hot cell shedding) are recorded on the manager's
// domain even though their actor is the node or client concerned, so
// their site is the manager host.
//
// Why this is layout-invariant: events sharing (time, site) always come
// from the same domain in every layout (a host never straddles shards),
// and within one domain the recording order is deterministic — so the
// stable sort yields one canonical sequence no matter how the hosts
// were partitioned. A sequential run is just the one-shard case of the
// same merge.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace eden::obs {

// The host whose domain recorded `event` (see file comment).
[[nodiscard]] HostId trace_site(const TraceEvent& event, HostId manager_host);

// Concatenates the per-shard streams and stable-sorts them by
// (at, site). Passing a single stream canonicalizes a sequential trace
// into the same order.
[[nodiscard]] std::vector<TraceEvent> merge_shard_traces(
    const std::vector<const std::vector<TraceEvent>*>& parts,
    HostId manager_host);

// JSONL for a merged stream, one to_jsonl_line() per event.
[[nodiscard]] std::string events_to_jsonl(const std::vector<TraceEvent>& events);

}  // namespace eden::obs
