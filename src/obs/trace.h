// Deterministic protocol tracing for the EDEN runtime. A TraceRecorder
// captures timestamped structured events at the protocol transitions the
// paper's robustness claims rest on (discovery, probing, join/reject,
// switch, failover, keepalive misses, node lifecycle, frame drops) plus
// span-style begin/end pairs for probe cycles. Components hold a nullable
// recorder pointer — recording is strictly opt-in and a null pointer makes
// every hot-path hook a single branch.
//
// Determinism contract: events carry simulated time only, are appended in
// simulation order, and JSONL export formats every field with fixed
// precision — so a replicate's trace is byte-identical no matter how many
// ParallelRunner threads carried it, as long as each replicate owns its
// recorder (the Scenario wiring guarantees that).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace eden::obs {

enum class EventKind : std::uint8_t {
  // Client-side protocol transitions (actor = client id).
  kDiscoverySend,    // discovery request issued; span = probe cycle
  kDiscoveryResult,  // value = candidate count, -1 on timeout
  kProbeSend,        // subject = candidate node; span = probe cycle
  kProbeResult,      // value = measured D_prop ms, -1 on probe failure
  kJoinSend,         // subject = best candidate; span = probe cycle
  kJoinAccept,       // value = join round-trip ms
  kJoinReject,       // value = join round-trip ms (reject or timeout)
  kSwitch,           // voluntary move; subject = new node
  kFailover,         // backup takeover; value = ms since failure detected
  kHardFailure,      // every backup dead; reactive re-discovery begins
  kQosReject,        // strict QoS: no candidate met the bound this cycle
  kKeepaliveMiss,    // subject = current node; value = consecutive misses
  kNodeFailure,      // failure monitor declared subject dead
  kFrameDrop,        // subject = target node; value = frame id
  // Node lifecycle (actor = node id).
  kNodeRegister,
  kNodeHeartbeat,    // value = attached users
  kNodeDeath,        // abrupt stop (churn / crash)
  kNodeDeregister,   // graceful leave
  // Manager-side observation (actor = the node concerned).
  kNodeExpire,       // manager expired the node after missed heartbeats
  // Span markers for the Algorithm 2 probing cycle (actor = client id).
  kProbeCycleBegin,  // span = cycle id
  kProbeCycleEnd,    // span = cycle id; value = cycle duration ms
  // Oracle taps for eden::check — fine-grained protocol facts the
  // simulation fuzzer's invariant oracles are evaluated against.
  // Client side (actor = client id):
  kFrameSend,          // subject = target node; span = frame id
  kFrameOk,            // subject = target node; span = frame id; value = e2e ms
  // Node side (actor = node id):
  kNodeJoinAccept,     // subject = client; span = seqNum the join matched
  kNodeJoinReject,     // subject = client; span = node's current seqNum
  kNodeUnexpectedJoin, // subject = client (failover join, never rejected)
  kNodeLeave,          // subject = client that left
  kNodeEvict,          // subject = client evicted after user_idle_ttl
  kSeqNumBump,         // value = the new seqNum after the state change
  // Overload-aware elasticity (load-feedback phase switching).
  kNodeRejoin,         // heartbeat re-registered an expired/unknown node
                       // (actor = node; value = 1 if a stale entry was
                       // replaced, 0 if the entry was already gone)
  kOverloadEnter,      // manager overload-set entry; actor = node;
                       // value = the new phase epoch
  kOverloadExit,       // manager overload-set exit; actor = node;
                       // value = seconds spent overloaded
  kRediscHint,         // client honored a re-discover hint; actor = client;
                       // subject = degraded node; value = phase epoch
  kNodeShed,           // executor shed a frame; actor = node;
                       // subject = client; value = frame id
  kCellShed,           // discovery in an all-hot cell shed toward cloud/LZ;
                       // actor = requesting client; value = hot node count
  // Durable manager state + warm-standby failover (DESIGN.md §15).
  kJournalCommit,      // group commit flushed durably; actor = manager
                       // host; span = records in the batch; value = the
                       // batch's last LSN
  kManagerCrash,       // failover injector killed the primary; actor =
                       // primary host; value = crash point (journal::CrashPoint)
  kManagerTakeover,    // standby finished replay and owns the registry;
                       // actor = standby host; subject = dead primary;
                       // value = recovered LSN
};

inline constexpr std::size_t kEventKindCount = 38;

[[nodiscard]] const char* to_string(EventKind kind);
[[nodiscard]] std::optional<EventKind> kind_from_string(std::string_view name);

struct TraceEvent {
  SimTime at{0};
  EventKind kind{EventKind::kDiscoverySend};
  HostId actor;        // the component that observed the event
  HostId subject;      // the other party, invalid when not applicable
  std::uint64_t span{0};  // probe-cycle correlation id, 0 = none
  double value{0.0};      // kind-specific scalar (ms, counts, frame id)
};

// One JSONL line per event, fixed field order and precision:
//   {"t":123,"ev":"probe_send","actor":7,"subject":2,"span":3,"value":0.000}
[[nodiscard]] std::string to_jsonl_line(const TraceEvent& event);
[[nodiscard]] std::optional<TraceEvent> parse_jsonl_line(std::string_view line);

class TraceRecorder {
 public:
  void record(const TraceEvent& event) {
    counts_[static_cast<std::size_t>(event.kind)] += 1;
    events_.push_back(event);
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::size_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] std::string to_jsonl() const;
  // Writes to_jsonl() to `path`; false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::array<std::size_t, kEventKindCount> counts_{};
};

}  // namespace eden::obs
