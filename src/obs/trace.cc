#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace eden::obs {

namespace {

// Index by EventKind; order must match the enum declaration exactly.
constexpr const char* kKindNames[kEventKindCount] = {
    "discovery_send",  "discovery_result", "probe_send",     "probe_result",
    "join_send",       "join_accept",      "join_reject",    "switch",
    "failover",        "hard_failure",     "qos_reject",     "keepalive_miss",
    "node_failure",    "frame_drop",       "node_register",  "node_heartbeat",
    "node_death",      "node_deregister",  "node_expire",    "probe_cycle_begin",
    "probe_cycle_end", "frame_send",       "frame_ok",       "node_join_accept",
    "node_join_reject", "node_unexpected_join", "node_leave", "node_evict",
    "seq_num_bump",    "node_rejoin",      "overload_enter", "overload_exit",
    "redisc_hint",     "node_shed",        "cell_shed",      "journal_commit",
    "manager_crash",   "manager_takeover",
};

}  // namespace

const char* to_string(EventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kEventKindCount ? kKindNames[index] : "unknown";
}

std::optional<EventKind> kind_from_string(std::string_view name) {
  for (std::size_t i = 0; i < kEventKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

std::string to_jsonl_line(const TraceEvent& event) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%" PRId64
                ",\"ev\":\"%s\",\"actor\":%u,\"subject\":%u,\"span\":%" PRIu64
                ",\"value\":%.3f}",
                event.at, to_string(event.kind), event.actor.value,
                event.subject.value, event.span, event.value);
  return std::string(buf);
}

namespace {

// Advances `pos` past `literal` in `line`, or returns false.
bool consume(std::string_view line, std::size_t& pos, std::string_view literal) {
  if (line.substr(pos, literal.size()) != literal) return false;
  pos += literal.size();
  return true;
}

// Parses the longest numeric run starting at `pos` with strtod/strtoll
// semantics; the fields are emitted by snprintf so this round-trips.
template <typename T, typename Parse>
bool parse_number(std::string_view line, std::size_t& pos, Parse parse, T* out) {
  // strtoX needs a NUL-terminated buffer; the numeric run is short.
  char buf[64];
  std::size_t len = 0;
  while (pos + len < line.size() && len + 1 < sizeof(buf)) {
    const char c = line[pos + len];
    if ((c < '0' || c > '9') && c != '-' && c != '+' && c != '.' && c != 'e' &&
        c != 'E') {
      break;
    }
    buf[len++] = c;
  }
  if (len == 0) return false;
  buf[len] = '\0';
  char* end = nullptr;
  *out = static_cast<T>(parse(buf, &end));
  if (end != buf + len) return false;
  pos += len;
  return true;
}

}  // namespace

std::optional<TraceEvent> parse_jsonl_line(std::string_view line) {
  TraceEvent event;
  std::size_t pos = 0;
  const auto ll = [](const char* s, char** e) { return std::strtoll(s, e, 10); };
  const auto ull = [](const char* s, char** e) { return std::strtoull(s, e, 10); };

  if (!consume(line, pos, "{\"t\":")) return std::nullopt;
  if (!parse_number(line, pos, ll, &event.at)) return std::nullopt;
  if (!consume(line, pos, ",\"ev\":\"")) return std::nullopt;
  const std::size_t name_end = line.find('"', pos);
  if (name_end == std::string_view::npos) return std::nullopt;
  const auto kind = kind_from_string(line.substr(pos, name_end - pos));
  if (!kind) return std::nullopt;
  event.kind = *kind;
  pos = name_end + 1;
  std::uint64_t actor = 0;
  std::uint64_t subject = 0;
  if (!consume(line, pos, ",\"actor\":")) return std::nullopt;
  if (!parse_number(line, pos, ull, &actor)) return std::nullopt;
  if (!consume(line, pos, ",\"subject\":")) return std::nullopt;
  if (!parse_number(line, pos, ull, &subject)) return std::nullopt;
  event.actor = HostId(static_cast<std::uint32_t>(actor));
  event.subject = HostId(static_cast<std::uint32_t>(subject));
  if (!consume(line, pos, ",\"span\":")) return std::nullopt;
  if (!parse_number(line, pos, ull, &event.span)) return std::nullopt;
  if (!consume(line, pos, ",\"value\":")) return std::nullopt;
  if (!parse_number(line, pos, std::strtod, &event.value)) return std::nullopt;
  if (!consume(line, pos, "}")) return std::nullopt;
  if (pos != line.size()) return std::nullopt;
  return event;
}

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  out.reserve(events_.size() * 96);
  for (const TraceEvent& event : events_) {
    out += to_jsonl_line(event);
    out += '\n';
  }
  return out;
}

bool TraceRecorder::write_jsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_jsonl();
  return static_cast<bool>(file);
}

void TraceRecorder::clear() {
  events_.clear();
  counts_.fill(0);
}

}  // namespace eden::obs
