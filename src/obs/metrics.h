// Named counters, gauges, and histograms for scenario-level measurement.
// Components take a nullable MetricsRegistry* and register instruments by
// name; a registry snapshot is a plain value that merges exactly across
// ParallelRunner replicates (counter/gauge sums, Welford-merged histogram
// moments plus log2 bucket sums), so fleet-wide metrics are independent of
// how replicates were scheduled onto threads.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace eden::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

// Power-of-two bucket layout shared by Histogram and its snapshot form.
// Bucket i covers [2^(i-11), 2^(i-10)) — from ~0.5 ms granularity below
// 1 unit up to ~16M units — with underflow/overflow clamped to the ends.
inline constexpr std::size_t kHistogramBuckets = 36;
[[nodiscard]] std::size_t histogram_bucket_of(double v);
// Inclusive-exclusive bounds of bucket i, for display.
[[nodiscard]] std::pair<double, double> histogram_bucket_bounds(std::size_t i);

class Histogram {
 public:
  void observe(double v) {
    stats_.add(v);
    buckets_[histogram_bucket_of(v)] += 1;
  }
  [[nodiscard]] const StreamingStats& stats() const { return stats_; }
  [[nodiscard]] const std::array<std::uint64_t, kHistogramBuckets>& buckets()
      const {
    return buckets_;
  }

 private:
  StreamingStats stats_;
  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
};

struct HistogramData {
  StreamingStats stats;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void merge(const HistogramData& other);
};

// A value-type snapshot of a registry, safe to copy out of a replicate's
// world and merge on the coordinating thread.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  void merge(const MetricsSnapshot& other);
  // Deterministic single-line JSON (sorted keys, fixed formatting).
  [[nodiscard]] std::string to_json() const;
};

// Instruments live in node-based maps so the references handed to
// components stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace eden::obs
