#include "obs/trace_summary.h"

#include <algorithm>
#include <string>

namespace eden::obs {

ParsedTrace parse_jsonl_text(std::string_view text) {
  ParsedTrace out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    if (!line.empty()) {
      if (auto event = parse_jsonl_line(std::string(line))) {
        out.events.push_back(*event);
      } else {
        ++out.malformed;
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

EventCounts count_events(const std::vector<TraceEvent>& events) {
  EventCounts counts{};
  for (const TraceEvent& event : events) {
    counts[static_cast<std::size_t>(event.kind)] += 1;
  }
  return counts;
}

bool is_timeline_kind(EventKind kind) {
  switch (kind) {
    case EventKind::kJoinAccept:
    case EventKind::kSwitch:
    case EventKind::kFailover:
    case EventKind::kHardFailure:
    case EventKind::kQosReject:
    case EventKind::kNodeFailure:
      return true;
    default:
      return false;
  }
}

const char* describe_timeline_event(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kJoinAccept: return "joined";
    case EventKind::kSwitch: return "switched to";
    case EventKind::kFailover: return "failover to";
    case EventKind::kHardFailure: return "HARD FAILURE (all backups dead)";
    case EventKind::kQosReject: return "rejected by QoS filter";
    case EventKind::kNodeFailure: return "detected failure of";
    default: return to_string(event.kind);
  }
}

std::map<HostId, std::vector<const TraceEvent*>> attachment_timelines(
    const std::vector<TraceEvent>& events) {
  std::map<HostId, std::vector<const TraceEvent*>> timelines;
  for (const TraceEvent& event : events) {
    if (is_timeline_kind(event.kind)) timelines[event.actor].push_back(&event);
  }
  return timelines;
}

Samples failover_latencies(const std::vector<TraceEvent>& events) {
  Samples failover_ms;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kFailover) failover_ms.add(event.value);
  }
  return failover_ms;
}

std::vector<HistogramBucket> fixed_width_histogram(const Samples& samples,
                                                   int buckets) {
  std::vector<HistogramBucket> out;
  if (samples.empty() || buckets <= 0) return out;
  const double lo = samples.min();
  const double hi = samples.max();
  const double width = (hi - lo) / buckets;
  if (width <= 0) return out;
  out.resize(static_cast<std::size_t>(buckets));
  for (int b = 0; b < buckets; ++b) {
    out[static_cast<std::size_t>(b)].lo = lo + b * width;
    out[static_cast<std::size_t>(b)].hi = lo + (b + 1) * width;
  }
  for (const double v : samples.values()) {
    const int b = std::clamp(static_cast<int>((v - lo) / width), 0,
                             buckets - 1);
    out[static_cast<std::size_t>(b)].count += 1;
  }
  return out;
}

}  // namespace eden::obs
