#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace eden::obs {

std::size_t histogram_bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN clamp to the first bucket
  const double l = std::floor(std::log2(v)) + 11.0;
  if (l < 0.0) return 0;
  const auto i = static_cast<std::size_t>(l);
  return i < kHistogramBuckets ? i : kHistogramBuckets - 1;
}

std::pair<double, double> histogram_bucket_bounds(std::size_t i) {
  const double lo = std::exp2(static_cast<double>(i) - 11.0);
  return {i == 0 ? 0.0 : lo, lo * 2.0};
}

void HistogramData::merge(const HistogramData& other) {
  stats.merge(other.stats);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.histograms) histograms[name].merge(h);
}

namespace {

void append_fmt(std::string& out, const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":";
    append_fmt(out, "%.6g", v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + std::to_string(h.stats.count());
    out += ",\"mean\":";
    append_fmt(out, "%.6g", h.stats.mean());
    out += ",\"min\":";
    append_fmt(out, "%.6g", h.stats.min());
    out += ",\"max\":";
    append_fmt(out, "%.6g", h.stats.max());
    out += '}';
  }
  out += "}}";
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    HistogramData data;
    data.stats = h.stats();
    data.buckets = h.buckets();
    snap.histograms[name] = data;
  }
  return snap;
}

}  // namespace eden::obs
