// Offline trace analytics shared by tools/eden_trace and the unit tests:
// parse a JSONL protocol trace, count events by kind, build per-client
// attachment timelines, and aggregate the failover latency distribution
// into fixed-width histogram buckets. Pure functions of the event list —
// no I/O except parse_jsonl_text's string splitting.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"

namespace eden::obs {

struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::size_t malformed{0};  // non-empty lines that failed to parse
};

// Splits `text` on '\n', skips empty lines, parses the rest. Malformed
// lines are counted, never fatal — a truncated tail from a crashed run
// should not hide the events before it.
[[nodiscard]] ParsedTrace parse_jsonl_text(std::string_view text);

// Per-kind event counts, indexed by static_cast<size_t>(EventKind).
using EventCounts = std::array<std::size_t, kEventKindCount>;
[[nodiscard]] EventCounts count_events(const std::vector<TraceEvent>& events);

// True for the client-attachment kinds shown in eden_trace timelines.
[[nodiscard]] bool is_timeline_kind(EventKind kind);

// Human phrasing of a timeline event ("joined", "failover to", ...).
[[nodiscard]] const char* describe_timeline_event(const TraceEvent& event);

// Attachment timelines keyed by client id, events in trace order. Pointers
// reference `events`, which must outlive the result.
[[nodiscard]] std::map<HostId, std::vector<const TraceEvent*>>
attachment_timelines(const std::vector<TraceEvent>& events);

// Failover latency distribution (kFailover.value, ms per event).
[[nodiscard]] Samples failover_latencies(const std::vector<TraceEvent>& events);

struct HistogramBucket {
  double lo{0};
  double hi{0};
  std::size_t count{0};
};

// Fixed-width buckets across [min, max] of `samples`. Empty when there are
// fewer than one sample or zero spread (callers print the summary line
// instead).
[[nodiscard]] std::vector<HistogramBucket> fixed_width_histogram(
    const Samples& samples, int buckets);

}  // namespace eden::obs
