// Node churn model of §V-D2: nodes join the system as a Poisson process
// (k per 30-second period, each arrival uniformly placed inside its
// period) and live for a Weibull-distributed lifetime (mean 50 s). A
// generated schedule is a deterministic, replayable list of join/leave
// events that the harness drives against the simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace eden::churn {

struct ChurnConfig {
  SimDuration horizon{sec(180.0)};       // 3-minute timeline
  SimDuration join_period{sec(30.0)};    // Poisson window
  double joins_per_period{4.0};          // k
  double lifetime_mean_sec{50.0};        // Weibull mean lifetime
  double lifetime_shape{1.5};            // Weibull k (shape)
  std::size_t initial_nodes{0};          // alive at t=0 (lifetimes apply)
  std::size_t max_nodes{0};              // 0 = unlimited
};

enum class ChurnEventKind { kJoin, kLeave };

struct ChurnEvent {
  SimTime at{0};
  ChurnEventKind kind{ChurnEventKind::kJoin};
  std::size_t node_index{0};  // dense index: the i-th node ever to join
};

struct ChurnSchedule {
  std::vector<ChurnEvent> events;  // sorted by time (joins before leaves on ties)
  std::size_t total_nodes{0};      // number of distinct nodes that ever join

  // Number of alive nodes at time t.
  [[nodiscard]] int alive_at(SimTime t) const;
  // (time, alive-count) staircase over the whole schedule.
  [[nodiscard]] std::vector<std::pair<SimTime, int>> staircase() const;
  [[nodiscard]] std::pair<SimTime, SimTime> node_span(std::size_t index) const;
};

// Weibull scale lambda such that the mean is `mean` for shape `k`:
// mean = lambda * Gamma(1 + 1/k).
[[nodiscard]] double weibull_scale_for_mean(double mean, double shape);

[[nodiscard]] ChurnSchedule generate_churn(const ChurnConfig& config, Rng& rng);

}  // namespace eden::churn
