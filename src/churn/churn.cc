#include "churn/churn.h"

#include <algorithm>
#include <cmath>

namespace eden::churn {

double weibull_scale_for_mean(double mean, double shape) {
  return mean / std::tgamma(1.0 + 1.0 / shape);
}

int ChurnSchedule::alive_at(SimTime t) const {
  int alive = 0;
  for (const auto& event : events) {
    if (event.at > t) break;
    alive += event.kind == ChurnEventKind::kJoin ? 1 : -1;
  }
  return alive;
}

std::vector<std::pair<SimTime, int>> ChurnSchedule::staircase() const {
  std::vector<std::pair<SimTime, int>> out;
  int alive = 0;
  for (const auto& event : events) {
    alive += event.kind == ChurnEventKind::kJoin ? 1 : -1;
    // Simultaneous events collapse to one step at their final count, so
    // timestamps are strictly increasing and no transient count (e.g. a
    // join already cancelled by a same-instant leave) leaks into plots.
    if (!out.empty() && out.back().first == event.at) {
      out.back().second = alive;
    } else {
      out.emplace_back(event.at, alive);
    }
  }
  return out;
}

std::pair<SimTime, SimTime> ChurnSchedule::node_span(std::size_t index) const {
  SimTime join = -1;
  SimTime leave = -1;
  for (const auto& event : events) {
    if (event.node_index != index) continue;
    (event.kind == ChurnEventKind::kJoin ? join : leave) = event.at;
  }
  return {join, leave};
}

ChurnSchedule generate_churn(const ChurnConfig& config, Rng& rng) {
  ChurnSchedule schedule;
  const double scale =
      weibull_scale_for_mean(config.lifetime_mean_sec, config.lifetime_shape);

  auto add_node = [&](SimTime join_at) {
    if (config.max_nodes != 0 && schedule.total_nodes >= config.max_nodes) {
      return;
    }
    const std::size_t index = schedule.total_nodes++;
    schedule.events.push_back(
        ChurnEvent{join_at, ChurnEventKind::kJoin, index});
    const SimTime leave_at =
        join_at + sec(rng.weibull(config.lifetime_shape, scale));
    if (leave_at < config.horizon) {
      schedule.events.push_back(
          ChurnEvent{leave_at, ChurnEventKind::kLeave, index});
    }
  };

  for (std::size_t i = 0; i < config.initial_nodes; ++i) add_node(0);

  for (SimTime window = 0; window < config.horizon;
       window += config.join_period) {
    const std::uint32_t joins = rng.poisson(config.joins_per_period);
    for (std::uint32_t j = 0; j < joins; ++j) {
      // Arriving nodes get a uniformly random timestamp inside the window.
      const SimTime at =
          window + static_cast<SimTime>(rng.uniform() *
                                        static_cast<double>(config.join_period));
      if (at < config.horizon) add_node(at);
    }
  }

  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind == ChurnEventKind::kJoin;
              return a.node_index < b.node_index;
            });
  return schedule;
}

}  // namespace eden::churn
