#include "client/edge_client.h"

#include <algorithm>

#include "common/logging.h"

namespace eden::client {

const char* to_string(ClientEvent::Kind kind) {
  switch (kind) {
    case ClientEvent::Kind::kJoined: return "joined";
    case ClientEvent::Kind::kSwitched: return "switched";
    case ClientEvent::Kind::kFailover: return "failover";
    case ClientEvent::Kind::kHardFailure: return "hard-failure";
    case ClientEvent::Kind::kQosRejected: return "qos-rejected";
  }
  return "?";
}

void EdgeClient::emit(ClientEvent::Kind kind, NodeId node) {
  if (event_hook_) event_hook_(ClientEvent{kind, scheduler_->now(), node});
}

void EdgeClient::set_observability(obs::TraceRecorder* trace,
                                   obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.keepalive_misses = &metrics->counter("client.keepalive_misses");
  metrics_.failovers = &metrics->counter("client.failovers");
  metrics_.hard_failures = &metrics->counter("client.hard_failures");
  metrics_.frames_ok = &metrics->counter("client.frames_ok");
  metrics_.frames_failed = &metrics->counter("client.frames_failed");
  metrics_.probe_cycle_ms = &metrics->histogram("client.probe_cycle_ms");
  metrics_.join_ms = &metrics->histogram("client.join_ms");
  metrics_.failover_ms = &metrics->histogram("client.failover_ms");
}

void EdgeClient::trace(obs::EventKind kind, HostId subject, std::uint64_t span,
                       double value) {
  if (trace_ == nullptr) return;
  trace_->record({scheduler_->now(), kind, config_.id, subject, span, value});
}

void EdgeClient::end_cycle() {
  cycle_in_flight_ = false;
  const double ms = to_ms(scheduler_->now() - cycle_started_at_);
  trace(obs::EventKind::kProbeCycleEnd, {}, cycle_counter_, ms);
  if (metrics_.probe_cycle_ms) metrics_.probe_cycle_ms->observe(ms);
}

EdgeClient::EdgeClient(sim::Scheduler& scheduler, net::ManagerApi& manager,
                       NodeResolver resolver, ClientConfig config)
    : scheduler_(&scheduler),
      manager_(&manager),
      resolver_(std::move(resolver)),
      config_(std::move(config)),
      rate_(config_.app),
      rng_(0x9e3779b97f4a7c15ull ^ config_.id.value) {}

void EdgeClient::start() {
  if (running_) return;
  running_ = true;
  probing_cycle(config_.max_join_retries);
  arm_probing_timer();
  arm_keepalive_timer();
  if (config_.send_frames) arm_frame_timer();
}

void EdgeClient::stop() {
  if (!running_) return;
  running_ = false;
  if (probing_event_ != sim::kInvalidEvent) scheduler_->cancel(probing_event_);
  if (frame_event_ != sim::kInvalidEvent) scheduler_->cancel(frame_event_);
  if (keepalive_event_ != sim::kInvalidEvent) {
    scheduler_->cancel(keepalive_event_);
  }
  probing_event_ = sim::kInvalidEvent;
  frame_event_ = sim::kInvalidEvent;
  keepalive_event_ = sim::kInvalidEvent;
  // A stop mid-cycle used to leave these latches set forever (the in-flight
  // callbacks bail on !running_ without clearing them), which blocked every
  // probing cycle after a restart. Clearing them here is safe for the same
  // reason: whatever was in flight is a no-op once running_ is false.
  cycle_in_flight_ = false;
  keepalive_in_flight_ = false;
  keepalive_miss_count_ = 0;
  if (current_) {
    if (auto* api = resolver_(*current_)) api->leave(config_.id);
    current_.reset();
  }
}

void EdgeClient::trigger_probing_cycle() {
  probing_cycle(config_.max_join_retries);
}

void EdgeClient::arm_probing_timer() {
  // Jitter each period so fleets of clients do not probe (and then join)
  // in lockstep.
  const double jitter = std::clamp(config_.probing_jitter, 0.0, 0.9);
  const double factor = rng_.uniform(1.0 - jitter, 1.0 + jitter);
  const auto period = static_cast<SimDuration>(
      static_cast<double>(config_.probing_period) * factor);
  probing_event_ = scheduler_->schedule_after(period, [this] {
    if (!running_) return;
    probing_cycle(config_.max_join_retries);
    arm_probing_timer();
  });
}

// ---- Algorithm 2: discovery -> probe -> sort -> join ----

void EdgeClient::probing_cycle(int retries_left) {
  if (!running_ || cycle_in_flight_) return;
  cycle_in_flight_ = true;
  cycle_started_at_ = scheduler_->now();
  ++cycle_counter_;
  trace(obs::EventKind::kProbeCycleBegin, {}, cycle_counter_);
  ++stats_.discoveries;
  net::DiscoveryRequest request;
  request.client = config_.id;
  request.geohash = config_.geohash;
  request.network_tag = config_.network_tag;
  request.top_n = config_.top_n;
  request.app_type = config_.app.app_type;
  trace(obs::EventKind::kDiscoverySend, {}, cycle_counter_);
  manager_->discover(request, [this, retries_left](
                                  std::optional<net::DiscoveryResponse> resp) {
    if (!running_) return;
    if (!resp || resp->candidates.empty()) {
      trace(obs::EventKind::kDiscoveryResult, {}, cycle_counter_,
            resp ? 0.0 : -1.0);
      end_cycle();
      return;  // manager unreachable or empty system; next period retries
    }
    trace(obs::EventKind::kDiscoveryResult, {}, cycle_counter_,
          static_cast<double>(resp->candidates.size()));
    probe_candidates(resp->candidates, retries_left);
  });
}

std::shared_ptr<EdgeClient::ProbeCycle> EdgeClient::acquire_probe_cycle() {
  for (auto& slot : cycle_pool_) {
    if (slot.use_count() == 1) {
      slot->results.clear();
      slot->pending = 0;
      slot->cycle = 0;
      return slot;
    }
  }
  auto cycle = std::make_shared<ProbeCycle>();
  cycle_pool_.push_back(cycle);
  return cycle;
}

void EdgeClient::probe_candidates(
    const std::vector<net::CandidateInfo>& candidates, int retries_left) {
  auto cycle = acquire_probe_cycle();
  cycle->cycle = cycle_counter_;
  cycle->pending = candidates.size();
  cycle->results.reserve(candidates.size());

  for (const auto& candidate : candidates) {
    net::NodeApi* api = resolver_(candidate.node);
    if (api == nullptr) {
      if (--cycle->pending == 0) finish_probe_cycle(cycle, retries_left);
      continue;
    }
    ++stats_.probes_sent;
    trace(obs::EventKind::kProbeSend, candidate.node, cycle->cycle);
    const SimTime t0 = scheduler_->now();
    // Algorithm 2 lines 5-9: time the RTT probe ourselves, then fetch the
    // cached what-if performance.
    api->rtt_probe(config_.id, [this, cycle, retries_left, api,
                                node = candidate.node, t0](bool ok) {
      if (!running_) return;
      if (!ok) {
        ++stats_.probe_failures;
        trace(obs::EventKind::kProbeResult, node, cycle->cycle, -1.0);
        if (--cycle->pending == 0) finish_probe_cycle(cycle, retries_left);
        return;
      }
      const double d_prop_ms = to_ms(scheduler_->now() - t0);
      api->process_probe(
          config_.id, [this, cycle, retries_left, node, d_prop_ms](
                          std::optional<net::ProcessProbeResponse> pp) {
            if (!running_) return;
            if (pp) {
              cycle->results.push_back(
                  ProbeResult{node, d_prop_ms, *pp, config_.app.frame_cost});
              trace(obs::EventKind::kProbeResult, node, cycle->cycle,
                    d_prop_ms);
            } else {
              ++stats_.probe_failures;
              trace(obs::EventKind::kProbeResult, node, cycle->cycle, -1.0);
            }
            if (--cycle->pending == 0) finish_probe_cycle(cycle, retries_left);
          });
    });
  }
  if (candidates.empty()) finish_probe_cycle(cycle, retries_left);
}

void EdgeClient::finish_probe_cycle(const std::shared_ptr<ProbeCycle>& cycle,
                                    int retries_left) {
  const bool had_responses = !cycle->results.empty();
  std::vector<ProbeResult> sorted =
      sort_candidates(std::move(cycle->results), config_.policy, config_.qos,
                      0x517cc1b727220a95ull ^ config_.id.value);
  last_sorted_ = sorted;
  if (sorted.empty()) {
    if (had_responses && config_.qos.strict) {
      // Candidates answered but none satisfies the QoS bound: the user is
      // rejected from the system this cycle (§IV-D). Detach so existing
      // users keep their QoS; the periodic probing keeps retrying.
      ++stats_.qos_rejections;
      trace(obs::EventKind::kQosReject, {}, cycle_counter_);
      emit(ClientEvent::Kind::kQosRejected);
      if (current_) {
        if (auto* api = resolver_(*current_)) api->leave(config_.id);
        current_.reset();
        backups_.clear();
      }
    }
    end_cycle();
    return;
  }
  if (current_ && sorted.front().node == *current_) {
    // Already on the best candidate: just refresh the backup list
    // (Algorithm 2 line 20).
    adopt_backups(sorted, 1);
    end_cycle();
    return;
  }
  if (current_) {
    // Hysteresis: stay put unless the best candidate beats the cost of
    // staying by the configured margin. Staying costs d_prop + the node's
    // live processing time — NOT the what-if join cost, since this client
    // is already counted in the node's load.
    const auto key = [this](const ProbeResult& r) {
      return config_.policy == LocalPolicy::kLocalOverhead ? r.lo() : r.go();
    };
    for (const auto& r : sorted) {
      if (r.node != *current_) continue;
      const double stay_cost = r.d_prop_ms + r.process.current_ms;
      if (key(sorted.front()) >= stay_cost * (1.0 - config_.switch_margin)) {
        adopt_backups(sorted, 0);  // better node becomes the first backup
        end_cycle();
        return;
      }
      break;
    }
  }
  attempt_join(std::move(sorted), retries_left);
}

void EdgeClient::attempt_join(std::vector<ProbeResult> sorted,
                              int retries_left) {
  const ProbeResult& best = sorted.front();
  net::NodeApi* api = resolver_(best.node);
  if (api == nullptr) {
    end_cycle();
    return;
  }
  net::JoinRequest request;
  request.client = config_.id;
  request.seq_num = best.process.seq_num;
  request.rate_fps = rate_.fps();
  // `best` points into `sorted`; read everything needed from it before the
  // init-capture below moves the vector out from under it.
  const NodeId node = best.node;
  trace(obs::EventKind::kJoinSend, node, cycle_counter_);
  const SimTime join_sent_at = scheduler_->now();
  // Init-capture moves the list into the closure (a plain by-value capture
  // of a const reference would make the member const, degrading the
  // closure's move into a throwing vector copy that forces the SBO
  // callable to the heap).
  api->join(request, [this, sorted = std::move(sorted), retries_left,
                      join_sent_at, node](std::optional<net::JoinResponse> jr) {
    if (!running_) return;
    const double join_ms = to_ms(scheduler_->now() - join_sent_at);
    if (jr && jr->accepted) {
      trace(obs::EventKind::kJoinAccept, node, cycle_counter_, join_ms);
      if (metrics_.join_ms) metrics_.join_ms->observe(join_ms);
      const bool switched = current_ && *current_ != node;
      if (switched) {
        if (auto* prev = resolver_(*current_)) prev->leave(config_.id);
        ++stats_.switches;
        trace(obs::EventKind::kSwitch, node, cycle_counter_);
      }
      ++stats_.joins;
      current_ = node;
      adopt_backups(sorted, 1);
      end_cycle();
      emit(switched ? ClientEvent::Kind::kSwitched : ClientEvent::Kind::kJoined,
           node);
      return;
    }
    // Join rejected (state changed since probing) or timed out: Algorithm 2
    // line 14 — repeat the probing process from the edge discovery step.
    trace(obs::EventKind::kJoinReject, node, cycle_counter_, join_ms);
    ++stats_.join_conflicts;
    adopt_backups(sorted, 1);
    end_cycle();
    if (retries_left > 0) {
      scheduler_->schedule_after(msec(10.0), [this, retries_left] {
        if (running_) probing_cycle(retries_left - 1);
      });
    }
  });
}

void EdgeClient::adopt_backups(const std::vector<ProbeResult>& sorted,
                               std::size_t skip_first) {
  backups_.clear();
  for (std::size_t i = skip_first; i < sorted.size(); ++i) {
    if (current_ && sorted[i].node == *current_) continue;
    backups_.push_back(sorted[i].node);
  }
}

// ---- frame stream ----

void EdgeClient::arm_frame_timer() {
  frame_event_ = scheduler_->schedule_after(
      config_.app.frame_interval(rate_.fps()), [this] {
        if (!running_) return;
        send_frame();
        arm_frame_timer();
      });
}

void EdgeClient::send_frame() {
  if (!current_) return;  // not attached (yet / reconnecting)
  const NodeId target = *current_;
  net::NodeApi* api = resolver_(target);
  const std::uint64_t frame_id = next_frame_id_++;
  if (api == nullptr) {
    // No route to the current node: the frame is lost before it hits the
    // wire. Previously this returned silently — frames vanished uncounted
    // and the client stayed attached forever. Count the drop and fail over
    // immediately: unlike a timeout, a missing route is definitive, so
    // there is no congestion ambiguity to damp.
    ++stats_.frames_sent;
    ++stats_.frames_failed;
    if (metrics_.frames_failed) metrics_.frames_failed->inc();
    rate_.on_frame_failure();
    trace(obs::EventKind::kFrameSend, target, frame_id);
    trace(obs::EventKind::kFrameDrop, target, 0,
          static_cast<double>(frame_id));
    handle_node_failure(target);
    return;
  }
  ++stats_.frames_sent;
  trace(obs::EventKind::kFrameSend, target, frame_id);
  net::FrameRequest request;
  request.client = config_.id;
  request.frame_id = frame_id;
  request.bytes = config_.app.frame_bytes;
  request.cost = config_.app.frame_cost;
  const SimTime sent_at = scheduler_->now();
  api->offload(request, [this, target, frame_id,
                         sent_at](std::optional<net::FrameResponse> resp) {
    if (!running_) return;
    on_frame_done(target, frame_id, sent_at, resp);
  });
}

void EdgeClient::on_frame_done(NodeId target, std::uint64_t frame_id,
                               SimTime sent_at,
                               const std::optional<net::FrameResponse>& resp) {
  if (resp && !resp->dropped) {
    const double e2e_ms = to_ms(scheduler_->now() - sent_at);
    ++stats_.frames_ok;
    trace(obs::EventKind::kFrameOk, target, frame_id, e2e_ms);
    if (metrics_.frames_ok) metrics_.frames_ok->inc();
    latency_.add(scheduler_->now(), e2e_ms);
    samples_.add(e2e_ms);
    rate_.on_frame_latency(e2e_ms);
    if (resp->redisc_epoch > 0) maybe_honor_redisc(target, resp->redisc_epoch);
    return;
  }
  ++stats_.frames_failed;
  if (metrics_.frames_failed) metrics_.frames_failed->inc();
  rate_.on_frame_failure();
  trace(obs::EventKind::kFrameDrop, target, 0, static_cast<double>(frame_id));
  if (!current_ || *current_ != target) return;  // stale timeout
  if (resp && resp->redisc_epoch > 0) {
    // The node explicitly shed the frame and wants us elsewhere: honor the
    // hint (rate-limited per epoch) instead of the blunt congestion damper.
    maybe_honor_redisc(target, resp->redisc_epoch);
    return;
  }
  // A timed-out frame on the current node means congestion (node death is
  // the keepalive's business): re-select at most once per half probing
  // period so a stream of timeouts does not become a probe storm.
  const SimDuration min_gap = config_.probing_period / 2;
  if (scheduler_->now() - last_congestion_reprobe_ >= min_gap) {
    last_congestion_reprobe_ = scheduler_->now();
    probing_cycle(config_.max_join_retries);
  }
}

void EdgeClient::maybe_honor_redisc(NodeId target, std::uint64_t epoch) {
  std::uint64_t& honored = honored_epoch_[target];
  if (epoch <= honored) return;  // this episode already triggered a re-probe
  honored = epoch;
  ++stats_.redisc_hints;
  trace(obs::EventKind::kRediscHint, target, 0, static_cast<double>(epoch));
  last_congestion_reprobe_ = scheduler_->now();
  probing_cycle(config_.max_join_retries);
}

// ---- keepalive: connection-interruption detection (§IV-E) ----

void EdgeClient::arm_keepalive_timer() {
  keepalive_event_ =
      scheduler_->schedule_after(config_.keepalive_period, [this] {
        if (!running_) return;
        keepalive_tick();
        arm_keepalive_timer();
      });
}

void EdgeClient::keepalive_tick() {
  if (!current_ || keepalive_in_flight_) return;
  const NodeId target = *current_;
  net::NodeApi* api = resolver_(target);
  if (api == nullptr) {
    // No route to the current node (deregistered / pulled from the fabric).
    // Previously this returned silently, so such a node never accrued
    // misses and the client wedged on it forever. Score it as a miss so
    // the failure monitor fires exactly as for a dead-but-routable node.
    on_keepalive_miss(target);
    return;
  }
  keepalive_in_flight_ = true;
  api->rtt_probe(config_.id, [this, target](bool ok) {
    keepalive_in_flight_ = false;
    if (!running_) return;
    if (!current_ || *current_ != target) {
      keepalive_miss_count_ = 0;
      return;
    }
    if (ok) {
      keepalive_miss_count_ = 0;
      return;
    }
    on_keepalive_miss(target);
  });
}

void EdgeClient::on_keepalive_miss(NodeId target) {
  ++keepalive_miss_count_;
  trace(obs::EventKind::kKeepaliveMiss, target, 0,
        static_cast<double>(keepalive_miss_count_));
  if (metrics_.keepalive_misses) metrics_.keepalive_misses->inc();
  if (keepalive_miss_count_ >= config_.keepalive_misses) {
    keepalive_miss_count_ = 0;
    handle_node_failure(target);
  }
}

// ---- failure monitor (§IV-E) ----

void EdgeClient::handle_node_failure(NodeId failed) {
  if (!current_ || *current_ != failed) return;  // stale timeout
  failure_detected_at_ = scheduler_->now();
  trace(obs::EventKind::kNodeFailure, failed);
  current_.reset();
  if (config_.proactive_connections) {
    try_backup(0);
  } else {
    reactive_reconnect();
  }
}

void EdgeClient::try_backup(std::size_t index) {
  if (index >= backups_.size()) {
    // All backup edge nodes failed simultaneously — the only case in which
    // our approach still experiences a user-visible failure (Fig 10).
    ++stats_.hard_failures;
    if (metrics_.hard_failures) metrics_.hard_failures->inc();
    trace(obs::EventKind::kHardFailure);
    emit(ClientEvent::Kind::kHardFailure);
    backups_.clear();
    reactive_reconnect();
    return;
  }
  const NodeId node = backups_[index];
  net::NodeApi* api = resolver_(node);
  if (api == nullptr) {
    try_backup(index + 1);
    return;
  }
  net::JoinRequest request;
  request.client = config_.id;
  request.rate_fps = rate_.fps();
  api->unexpected_join(request, [this, node, index](bool ok) {
    if (!running_) return;
    if (current_) return;  // raced with a probing cycle that re-attached us
    if (ok) {
      current_ = node;
      ++stats_.failovers;
      const double ms = failure_detected_at_ >= 0
                            ? to_ms(scheduler_->now() - failure_detected_at_)
                            : 0.0;
      trace(obs::EventKind::kFailover, node, 0, ms);
      if (metrics_.failovers) metrics_.failovers->inc();
      if (metrics_.failover_ms) metrics_.failover_ms->observe(ms);
      emit(ClientEvent::Kind::kFailover, node);
      // A concurrent probing cycle (e.g. a rejected join) may have replaced
      // the backup list while this join was in flight — drop up to and
      // including the node we just took, clamped to the current list.
      const std::size_t drop = std::min(index + 1, backups_.size());
      backups_.erase(backups_.begin(),
                     backups_.begin() + static_cast<std::ptrdiff_t>(drop));
      // Rebuild the (now shorter) backup list right away instead of
      // waiting out the probing period — churn rarely kills just one node.
      scheduler_->schedule_after(msec(10.0), [this] {
        if (running_) probing_cycle(config_.max_join_retries);
      });
    } else {
      try_backup(index + 1);
    }
  });
}

void EdgeClient::reactive_reconnect() {
  // No warm connection to fall back on: pay the connection
  // re-establishment cost, then redo discovery + probing from scratch.
  scheduler_->schedule_after(config_.reconnect_penalty, [this] {
    if (!running_) return;
    probing_cycle(config_.max_join_retries);
  });
}

}  // namespace eden::client
