// Local (client-side) edge selection: step two of the 2-step approach.
// Implements the LO (local overhead) and GO (global overhead) policies of
// §IV-D over the probing results, plus the QoS-filtered variant.
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/protocol.h"

namespace eden::client {

// One candidate's probing outcome (Algorithm 2 lines 4-10).
struct ProbeResult {
  NodeId node;
  double d_prop_ms{0};  // measured RTT propagation delay
  net::ProcessProbeResponse process;
  // This client's per-frame compute cost relative to the standard test
  // frame the what-if cache measures (heterogeneous app types).
  double cost_factor{1.0};

  // LO_j = D_prop_probing + D_proc_probing: predicted end-to-end latency
  // for this client if it joins candidate j.
  [[nodiscard]] double lo() const {
    return d_prop_ms + process.whatif_ms * cost_factor;
  }

  // GO_j = n x (D_proc_probing - D_proc_current) + LO_j: LO plus the
  // aggregate degradation inflicted on candidate j's n existing users. The
  // degradation term is clamped at zero: a stale what-if cache can
  // momentarily sit below the live processing time, and a negative term
  // would make overloaded nodes look attractive.
  [[nodiscard]] double go() const {
    const double degradation =
        std::max(0.0, process.whatif_ms - process.current_ms);
    return static_cast<double>(process.attached_users) * degradation + lo();
  }
};

enum class LocalPolicy {
  kLocalOverhead,   // BLC = argmin LO_j
  kGlobalOverhead,  // BLC = argmin GO_j (the paper's default)
};

struct QosFilter {
  // Candidates whose LO exceeds this are filtered out first (0 = no
  // filter). If nothing survives and `strict` is false, the unfiltered
  // list is used; if `strict` is true the selection returns empty (the
  // user would be rejected from the system, §IV-D).
  double max_lo_ms{0};
  bool strict{false};
};

// SortLocalSelectionPolicy (Algorithm 2 line 11): best candidate first.
// With salt = 0, ties break on node id. A non-zero salt (clients pass
// their own id) breaks ties in a client-specific but deterministic order,
// so a fleet of clients facing identical probing results does not herd
// onto the same node.
[[nodiscard]] std::vector<ProbeResult> sort_candidates(
    std::vector<ProbeResult> results, LocalPolicy policy,
    const QosFilter& qos = {}, std::uint64_t salt = 0);

}  // namespace eden::client
