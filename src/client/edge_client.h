// EdgeClient: the client-side runtime of the EDEN protocol and the heart
// of the paper's contribution. Runs the client-centric probing procedure of
// Algorithm 2 every probing period (discovery -> RTT/process probes ->
// SortLocalSelectionPolicy -> synchronized Join/Leave), keeps the
// proactively-connected backup edge list, streams AR frames at an adaptive
// rate, and performs immediate failover through the failure monitor.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/selection_policy.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/api.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/clock.h"
#include "workload/app_profile.h"

namespace eden::client {

struct ClientConfig {
  ClientId id;
  std::string geohash;
  std::string network_tag;

  int top_n{3};                          // candidate edge list size
  SimDuration probing_period{sec(5.0)};  // T_probing
  SimDuration probe_timeout{msec(400.0)};
  SimDuration join_timeout{msec(400.0)};
  SimDuration discovery_timeout{msec(500.0)};
  // Failure monitor: a lightweight keepalive probe to the current node
  // every period; this many consecutive misses declare the connection
  // interrupted (node death), triggering the immediate backup switch.
  SimDuration keepalive_period{msec(500.0)};
  int keepalive_misses{2};
  // Reactive (non-proactive) reconnection pays this connection
  // re-establishment cost before re-running discovery.
  SimDuration reconnect_penalty{msec(800.0)};
  // Our approach keeps warm connections to all TopN candidates; false
  // reproduces the "re-connect" baseline of Fig 4 / Fig 10a.
  bool proactive_connections{true};

  LocalPolicy policy{LocalPolicy::kGlobalOverhead};
  QosFilter qos{};
  int max_join_retries{2};  // re-discoveries after a Join() conflict

  // Only switch away from the current node when the best candidate's
  // selection key improves on the current node's by this fraction —
  // damping for synchronized re-selection storms. 0 reproduces the bare
  // Algorithm 2 behaviour (switch whenever Current != C[0]).
  double switch_margin{0.1};
  // Each probing period is jittered by +/- this fraction so that client
  // populations do not probe in lockstep.
  double probing_jitter{0.15};

  workload::AppProfile app{};
  bool send_frames{true};  // false: selection-only client (probing studies)
};

struct ClientStats {
  std::uint64_t frames_sent{0};
  std::uint64_t frames_ok{0};
  std::uint64_t frames_failed{0};
  std::uint64_t discoveries{0};
  std::uint64_t probes_sent{0};  // RTT+process probe pairs
  std::uint64_t probe_failures{0};
  std::uint64_t switches{0};       // voluntary better-node switches
  std::uint64_t failovers{0};      // backup takeovers after failure
  std::uint64_t hard_failures{0};  // all backups dead -> reactive reconnect
  std::uint64_t join_conflicts{0};
  std::uint64_t joins{0};
  // Strict-QoS mode: probing cycles in which no candidate satisfied the
  // latency bound and the user stayed (or became) unattached (§IV-D).
  std::uint64_t qos_rejections{0};
  // Server-initiated re-discover hints honored (once per node+epoch).
  std::uint64_t redisc_hints{0};

  ClientStats& operator+=(const ClientStats& other) {
    frames_sent += other.frames_sent;
    frames_ok += other.frames_ok;
    frames_failed += other.frames_failed;
    discoveries += other.discoveries;
    probes_sent += other.probes_sent;
    probe_failures += other.probe_failures;
    switches += other.switches;
    failovers += other.failovers;
    hard_failures += other.hard_failures;
    join_conflicts += other.join_conflicts;
    joins += other.joins;
    qos_rejections += other.qos_rejections;
    redisc_hints += other.redisc_hints;
    return *this;
  }
};

// Resolves a node id to the transport stub used to reach it. Returning
// nullptr means "no route"; a stub to a dead node simply times out.
using NodeResolver = std::function<net::NodeApi*(NodeId)>;

// Structured client-side protocol events for tracing/observability.
struct ClientEvent {
  enum class Kind {
    kJoined,       // attached to `node` (first attach or after rejection)
    kSwitched,     // voluntarily moved to a better `node`
    kFailover,     // failure monitor moved us to backup `node`
    kHardFailure,  // all backups dead; reactive re-discovery begins
    kQosRejected,  // strict QoS: no candidate meets the bound
  };
  Kind kind;
  SimTime at{0};
  NodeId node;  // invalid for kHardFailure / kQosRejected
};

[[nodiscard]] const char* to_string(ClientEvent::Kind kind);

class EdgeClient {
 public:
  EdgeClient(sim::Scheduler& scheduler, net::ManagerApi& manager,
             NodeResolver resolver, ClientConfig config);

  // Begin the probing loop and (if configured) the frame stream.
  void start();
  void stop();

  // Run one probing cycle now (also used by tests).
  void trigger_probing_cycle();

  // Observe protocol events (joins, switches, failovers...). One hook;
  // set before start().
  using EventHook = std::function<void(const ClientEvent&)>;
  void set_event_hook(EventHook hook) { event_hook_ = std::move(hook); }

  // Opt-in tracing/metrics; either pointer may be null. Both must outlive
  // the client. When never called, every hook is a single null-check.
  void set_observability(obs::TraceRecorder* trace,
                         obs::MetricsRegistry* metrics);

  // ---- introspection ----
  [[nodiscard]] const ClientConfig& config() const { return config_; }
  [[nodiscard]] ClientId id() const { return config_.id; }
  [[nodiscard]] std::optional<NodeId> current_node() const { return current_; }
  [[nodiscard]] const std::vector<NodeId>& backup_nodes() const {
    return backups_;
  }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }
  [[nodiscard]] const TimeSeries& latency_series() const { return latency_; }
  [[nodiscard]] const Samples& latency_samples() const { return samples_; }
  [[nodiscard]] double fps() const { return rate_.fps(); }
  [[nodiscard]] const std::vector<ProbeResult>& last_probe_results() const {
    return last_sorted_;
  }

 private:
  struct ProbeCycle {
    std::vector<ProbeResult> results;
    std::size_t pending{0};
    std::uint64_t cycle{0};
  };

  // Reusable ProbeCycle slots. Straggler probe callbacks from an aborted
  // cycle can outlive it (they hold the shared_ptr), so a slot is only
  // recycled once its use_count drops back to the pool's own reference —
  // and the pool stays tiny (concurrent cycles + stragglers). Keeping the
  // slot also keeps its results vector's capacity, so a steady-state probe
  // cycle allocates nothing.
  [[nodiscard]] std::shared_ptr<ProbeCycle> acquire_probe_cycle();

  void arm_probing_timer();
  void probing_cycle(int retries_left);
  void probe_candidates(const std::vector<net::CandidateInfo>& candidates,
                        int retries_left);
  void finish_probe_cycle(const std::shared_ptr<ProbeCycle>& cycle,
                          int retries_left);
  // Takes the sorted candidate list by value: it is moved into the join
  // completion's capture, so a join costs no vector copy.
  void attempt_join(std::vector<ProbeResult> sorted, int retries_left);
  void adopt_backups(const std::vector<ProbeResult>& sorted,
                     std::size_t skip_first);

  void arm_frame_timer();
  void send_frame();
  void on_frame_done(NodeId target, std::uint64_t frame_id, SimTime sent_at,
                     const std::optional<net::FrameResponse>& resp);
  // Server-initiated elasticity: act on a re-discover hint piggybacked on a
  // frame response, at most once per (node, phase epoch).
  void maybe_honor_redisc(NodeId target, std::uint64_t epoch);
  void arm_keepalive_timer();
  void keepalive_tick();
  void on_keepalive_miss(NodeId target);

  // Failure monitor.
  void handle_node_failure(NodeId failed);
  void try_backup(std::size_t index);
  void reactive_reconnect();
  void emit(ClientEvent::Kind kind, NodeId node = {});
  void trace(obs::EventKind kind, HostId subject = {}, std::uint64_t span = 0,
             double value = 0.0);
  // Closes the in-flight probing cycle: clears the latch, traces the span
  // end, and records the cycle duration histogram.
  void end_cycle();

  sim::Scheduler* scheduler_;
  net::ManagerApi* manager_;
  NodeResolver resolver_;
  ClientConfig config_;

  // Named metric handles, resolved once in set_observability(); all null
  // when metrics are disabled.
  struct Metrics {
    obs::Counter* keepalive_misses{nullptr};
    obs::Counter* failovers{nullptr};
    obs::Counter* hard_failures{nullptr};
    obs::Counter* frames_ok{nullptr};
    obs::Counter* frames_failed{nullptr};
    obs::Histogram* probe_cycle_ms{nullptr};
    obs::Histogram* join_ms{nullptr};
    obs::Histogram* failover_ms{nullptr};
  };

  bool running_{false};
  bool cycle_in_flight_{false};
  SimTime last_congestion_reprobe_{0};
  std::uint64_t cycle_counter_{0};
  SimTime cycle_started_at_{0};
  SimTime failure_detected_at_{-1};
  std::optional<NodeId> current_;
  std::vector<NodeId> backups_;
  std::vector<ProbeResult> last_sorted_;
  std::vector<std::shared_ptr<ProbeCycle>> cycle_pool_;
  std::uint64_t next_frame_id_{1};
  sim::EventId probing_event_{sim::kInvalidEvent};
  sim::EventId frame_event_{sim::kInvalidEvent};
  sim::EventId keepalive_event_{sim::kInvalidEvent};
  int keepalive_miss_count_{0};
  bool keepalive_in_flight_{false};
  // Highest phase epoch already honored per node — a degraded node stamps
  // its hint on every response, and re-probing once per episode is enough.
  std::unordered_map<NodeId, std::uint64_t> honored_epoch_;

  workload::RateController rate_;
  Rng rng_;
  EventHook event_hook_;
  obs::TraceRecorder* trace_{nullptr};
  Metrics metrics_;
  ClientStats stats_;
  TimeSeries latency_;
  Samples samples_;
};

}  // namespace eden::client
