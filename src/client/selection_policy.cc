#include "client/selection_policy.h"

#include <algorithm>

namespace eden::client {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}
}  // namespace

std::vector<ProbeResult> sort_candidates(std::vector<ProbeResult> results,
                                         LocalPolicy policy,
                                         const QosFilter& qos,
                                         std::uint64_t salt) {
  if (qos.max_lo_ms > 0) {
    std::vector<ProbeResult> filtered;
    filtered.reserve(results.size());
    for (const auto& r : results) {
      if (r.lo() <= qos.max_lo_ms) filtered.push_back(r);
    }
    if (!filtered.empty()) {
      results = std::move(filtered);
    } else if (qos.strict) {
      return {};  // no node can satisfy the QoS requirement
    }
  }

  const auto key = [policy](const ProbeResult& r) {
    return policy == LocalPolicy::kLocalOverhead ? r.lo() : r.go();
  };
  std::sort(results.begin(), results.end(),
            [&](const ProbeResult& a, const ProbeResult& b) {
              const double ka = key(a);
              const double kb = key(b);
              if (ka != kb) return ka < kb;
              if (salt == 0) return a.node < b.node;
              return mix(a.node.value ^ salt) < mix(b.node.value ^ salt);
            });
  return results;
}

}  // namespace eden::client
