// Greedy scenario minimizer: given a spec that violates an invariant,
// repeatedly drop fault windows, clients and nodes (remapping the symbolic
// fault endpoints) and shorten the horizon, re-running deterministically
// and keeping every mutation that still reproduces a violation of the
// *same* oracle. Runs passes to a fixpoint under an attempt budget.
#pragma once

#include <string>

#include "check/fuzzer.h"
#include "check/spec.h"

namespace eden::check {

struct ShrinkResult {
  ScenarioSpec spec;  // the minimized spec (== input when nothing shrank)
  // Report from the last accepted run of `spec`; for an accepted shrink it
  // contains the target-oracle violation.
  RunReport report;
  int attempts{0};    // total deterministic re-runs spent
  // False when the initial spec did not violate `target_oracle` at all —
  // `spec` is then the unmodified input and `report` its clean(ish) run.
  bool accepted{false};
};

// `target_oracle` pins which invariant must keep failing for a candidate
// to be accepted (empty = any violation counts). `max_attempts` bounds the
// number of re-runs, not the number of passes.
[[nodiscard]] ShrinkResult shrink(const ScenarioSpec& initial,
                                  const std::string& target_oracle,
                                  int max_attempts = 250);

}  // namespace eden::check
