// Shard witness: run a ScenarioSpec through harness::ShardedScenario and
// pin the result against the one-shard sequential reference. Both sides
// report the SAME canonical artifacts — the pre-teardown trace merged into
// (time, site) order, the merged metrics, and the global-order fleet stats
// — so `digest(shards = N) == digest(shards = 0)` is a bitwise proof that
// geohash partitioning, conservative windows and the barrier router did
// not change a single observable event of the run.
//
// Shard-count convention for run_spec_sharded():
//   shards == 0  → one domain, windowless (the sequential reference;
//                  run_until degenerates to a single Simulator drain)
//   shards == 1  → one domain, windows forced to the all-pairs delay
//                  floor (exercises the window/barrier machinery without
//                  any cross-shard traffic)
//   shards >= 2  → geohash-partitioned domains, conservative lookahead
//
// Note the witness digest deliberately differs from check::run_spec()'s:
// run_spec digests the raw recording order of a single simulator
// (teardown included), which is well-defined only for the sequential
// harness. The witness digests the canonical merge of the pre-teardown
// prefix, the strongest artifact that is meaningful at EVERY shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "check/oracle.h"
#include "check/spec.h"
#include "common/types.h"
#include "harness/sharded_scenario.h"

namespace eden::check {

struct ShardRunOptions {
  // Oracle set to evaluate; null = default_oracles().
  const std::vector<const Oracle*>* oracles{nullptr};
  // WindowPool threads for the per-window domain fan-out (0 = hardware).
  unsigned threads{1};
  // Fixed window override; 0 derives windows from the lookahead bound.
  SimDuration window{0};
  // Keep the canonical JSONL text in the report (divergence diffing).
  bool keep_trace{false};
};

struct ShardRunReport {
  std::vector<Violation> violations;
  // FNV-1a over the canonical (time, site)-merged pre-teardown trace
  // JSONL. Identical for every shard count, every thread count and every
  // window length — the sharded == sequential determinism witness.
  std::uint64_t trace_digest{0};
  std::size_t trace_events{0};
  std::string trace_jsonl;  // only when ShardRunOptions::keep_trace
  std::uint64_t frames_sent{0};
  std::uint64_t frames_ok{0};
  std::uint64_t frames_failed{0};
  std::uint64_t joins{0};
  std::uint64_t switches{0};
  std::uint64_t failovers{0};
  std::uint64_t hard_failures{0};
  harness::ShardStats shards;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

[[nodiscard]] ShardRunReport run_spec_sharded(
    const ScenarioSpec& spec, unsigned shards,
    const ShardRunOptions& options = {});

}  // namespace eden::check
