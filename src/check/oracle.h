// Invariant oracles for the simulation fuzzer. Each oracle is a pure
// function of one finished run: the spec that produced it, the full
// protocol trace (obs::TraceRecorder stream), and an end-of-run snapshot
// taken at the horizon before teardown. Oracles must be *sound* — a
// violation on any seed is a real protocol bug, never sampling noise — so
// each check encodes only what the protocol actually guarantees (e.g. the
// frame latency lower bound applies only when jitter is off, and dual
// node-side attachment is tolerated for as long as a dropped Leave can
// legitimately linger, i.e. the idle-eviction TTL).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "client/edge_client.h"
#include "common/types.h"
#include "check/spec.h"
#include "harness/sim_stubs.h"
#include "obs/trace.h"

namespace eden::check {

struct Violation {
  std::string oracle;
  std::string message;
  SimTime at{0};
};

// End-of-run facts captured at the horizon, before clients/nodes are torn
// down (teardown itself emits trace events; oracles that need the settled
// state read this snapshot instead).
struct EndState {
  struct NodeState {
    NodeId id;
    bool running{false};
    std::vector<ClientId> attached;  // sorted
    // Executor snapshot at the horizon (starvation oracle: "spare capacity
    // exists elsewhere" must be a fact, not an inference from the trace).
    double utilization{0.0};
    int queued{0};
    bool throttled{false};
    // Manager's overload-set verdict at the horizon.
    bool overloaded{false};
  };
  struct ClientState {
    ClientId id;
    std::optional<NodeId> current;
    client::ClientStats stats;
  };
  struct PairRtt {
    ClientId client;
    NodeId node;
    double base_rtt_ms{0.0};
  };
  std::vector<NodeState> nodes;
  std::vector<ClientState> clients;
  // Registry contents after an explicit expire(horizon).
  std::vector<NodeId> registry_live;
  // Model base RTTs per (client, node) pair — stable for Geo/Matrix models,
  // which are the only kinds the fuzzer draws.
  std::vector<PairRtt> base_rtt;
};

struct RunView {
  const ScenarioSpec& spec;
  const std::vector<obs::TraceEvent>& events;
  const EndState& end;
  harness::StubTimeouts timeouts{};
  SimTime horizon{0};
};

class Oracle {
 public:
  virtual ~Oracle() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void check(const RunView& run, std::vector<Violation>& out) const = 0;
};

// The built-in catalog, in evaluation order:
//   trace-order        events are appended in non-decreasing sim time
//   seqnum             per-node seqNum bumps strictly increase; at most one
//                      admission (Join accept) per (node, seqNum)
//   attachment         client event streams are coherent; at the horizon a
//                      client's current node is running and lists it; no
//                      dual node-side attachment outlives the idle TTL
//   frame-conservation frames_sent = ok + failed + in_flight; every settled
//                      frame completes exactly once, none completes twice
//   frame-bound        accepted frames finish under the rpc timeout, and
//                      (jitter off) above the model's base RTT
//   failover-liveness  every failover matches an Unexpected_join processed
//                      by a then-live node
//   registry-ttl       expired entries never resurrect: post-expire registry
//                      content is a subset of the running nodes; first
//                      expiry of a node comes at least TTL after register
//   starvation         (load_feedback specs only) no client still attached at
//                      the horizon goes a whole quiet cooldown tail with
//                      frames sent but zero successes while a running,
//                      registry-live, non-overloaded node sits nearly idle —
//                      the feedback loop must have steered it there
//   journal-seqnum     (crash specs only) exactly one manager crash and one
//                      takeover; the recovered LSN never regresses below any
//                      durably committed LSN; standby commits continue
//                      strictly above it
//   readmission        (crash specs only) nodes alive at the horizon are back
//                      in the standby's registry within a TTL bound, and the
//                      frame stream stays live across the failover
[[nodiscard]] const std::vector<const Oracle*>& default_oracles();

}  // namespace eden::check
