#include "check/fuzzer.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "geo/geopoint.h"
#include "harness/scenario.h"
#include "manager/registry.h"
#include "net/sim_network.h"

namespace eden::check {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// ---- generator --------------------------------------------------------

namespace {

constexpr double kAnchorLat = 44.9778;  // Minneapolis, like the harness
constexpr double kAnchorLon = -93.2650;

int sample_access_tier(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.25) return static_cast<int>(net::AccessTier::kFiber);
  if (r < 0.65) return static_cast<int>(net::AccessTier::kCable);
  if (r < 0.85) return static_cast<int>(net::AccessTier::kDsl);
  return static_cast<int>(net::AccessTier::kLocalZone);
}

FuzzEndpoint sample_endpoint(Rng& rng, std::size_t nodes,
                             std::size_t clients) {
  const double r = rng.uniform();
  if (r < 0.15 || (nodes == 0 && clients == 0)) {
    return {EndpointKind::kManager, 0};
  }
  if (nodes > 0 && (r < 0.70 || clients == 0)) {
    return {EndpointKind::kNode,
            static_cast<int>(rng.uniform_int(0, static_cast<int>(nodes) - 1))};
  }
  return {EndpointKind::kClient,
          static_cast<int>(rng.uniform_int(0, static_cast<int>(clients) - 1))};
}

// Overload-family mutation (FuzzLimits::overload_families): layered onto a
// fully-generated base spec, drawing from its own Rng fork so the base
// stream stays byte-identical for every historical seed. Each family turns
// load feedback on and shapes load the control loop must absorb. Mutations
// only append entities (or adjust node 0's background ramp), so symbolic
// fault endpoints in the base spec stay valid.
void apply_overload_family(ScenarioSpec& spec, Rng& rng) {
  spec.load_feedback = true;
  // Guarantee an anchor so the hot cell has a victim and the spec promises
  // frame traffic.
  if (spec.nodes.empty()) {
    FuzzNode anchor;
    anchor.cores = static_cast<int>(rng.uniform_int(1, 4));
    anchor.base_frame_ms = rng.uniform(15.0, 40.0);
    spec.nodes.push_back(anchor);
  }
  // Half the specs make the anchor a credit-limited burstable volunteer —
  // the regime where throttle latching and credit telemetry feed the
  // overload set (a fixed-capacity anchor never exercises them).
  if (rng.bernoulli(0.5)) {
    FuzzNode& anchor = spec.nodes.front();
    anchor.burstable = true;
    anchor.burst_baseline = rng.uniform(0.25, 0.55);
    anchor.initial_credits_core_sec = rng.uniform(0.5, 12.0);
  }
  const double quiet_start = spec.horizon_sec - spec.cooldown_sec;
  const double hot_lat = spec.nodes.front().lat;
  const double hot_lon = spec.nodes.front().lon;

  // Spare capacity one cell over (~50 km): the steering target the
  // starvation oracle assumes — without guaranteed spare capacity,
  // "everyone starves" can be the only feasible outcome and the oracle
  // would be unsound.
  FuzzNode spare;
  spare.lat = hot_lat + 0.45;
  spare.lon = hot_lon + 0.45;
  spare.tier = static_cast<int>(net::AccessTier::kFiber);
  spare.cores = static_cast<int>(rng.uniform_int(4, 8));
  spare.base_frame_ms = rng.uniform(8.0, 18.0);
  spare.dedicated = true;
  spec.nodes.push_back(spare);

  const double family = rng.uniform();
  if (family < 0.40) {
    // Flash crowd into one cell: a burst of clients lands on the anchor's
    // cell mid-run and stays to the horizon.
    const double burst_at =
        rng.uniform(3.0, std::max(4.0, quiet_start - 8.0));
    const auto burst = static_cast<std::size_t>(rng.uniform_int(3, 7));
    for (std::size_t i = 0; i < burst; ++i) {
      FuzzClient fc;
      fc.lat = hot_lat + rng.uniform(-0.02, 0.02);
      fc.lon = hot_lon + rng.uniform(-0.02, 0.02);
      fc.tier = sample_access_tier(rng);
      fc.top_n = static_cast<int>(rng.uniform_int(1, 3));
      fc.probing_period_sec = rng.uniform(1.5, 4.0);
      fc.max_fps = rng.uniform(12.0, 20.0);
      fc.start_sec = burst_at + rng.uniform(0.0, 1.5);
      spec.clients.push_back(fc);
    }
  } else if (family < 0.70) {
    // Diurnal wave: staggered arrivals that recede before the cooldown, so
    // hysteresis has to both enter and exit cleanly.
    const auto wave = static_cast<std::size_t>(rng.uniform_int(2, 6));
    for (std::size_t i = 0; i < wave; ++i) {
      FuzzClient fc;
      fc.lat = hot_lat + rng.uniform(-0.05, 0.05);
      fc.lon = hot_lon + rng.uniform(-0.05, 0.05);
      fc.tier = sample_access_tier(rng);
      fc.top_n = static_cast<int>(rng.uniform_int(1, 4));
      fc.probing_period_sec = rng.uniform(1.5, 4.0);
      fc.max_fps = rng.uniform(10.0, 18.0);
      fc.start_sec = rng.uniform(1.0, quiet_start / 3.0);
      fc.stop_sec = rng.uniform(quiet_start * 0.5, quiet_start - 1.0);
      spec.clients.push_back(fc);
    }
  } else {
    // Slow leak: the anchor's host gradually reclaims its CPU.
    FuzzNode& leak = spec.nodes.front();
    leak.bg_ramp_to = rng.uniform(0.55, 0.90);
    leak.bg_ramp_start_sec = rng.uniform(2.0, quiet_start / 2.0);
    leak.bg_ramp_end_sec =
        leak.bg_ramp_start_sec +
        rng.uniform(5.0, quiet_start - leak.bg_ramp_start_sec);
  }
}

// Crash-family mutation (FuzzLimits::crash_points): arms the warm standby
// and plants one deterministic manager crash mid-churn. Like the overload
// family it draws from its own fork and only appends entities, so symbolic
// fault endpoints and every base draw stay untouched.
void apply_crash_family(ScenarioSpec& spec, Rng& rng) {
  spec.standby = true;
  spec.crash.enabled = true;
  // Guarantee an anchor: the takeover oracles want registry content to
  // recover and a frame stream to keep alive across the failover.
  if (spec.nodes.empty()) {
    FuzzNode anchor;
    anchor.cores = static_cast<int>(rng.uniform_int(2, 6));
    anchor.base_frame_ms = rng.uniform(12.0, 35.0);
    spec.nodes.push_back(anchor);
  }
  const double quiet_start = spec.horizon_sec - spec.cooldown_sec;
  spec.crash.point = static_cast<int>(rng.uniform_int(0, 3));
  spec.crash.takeover_delay_sec = rng.uniform(0.2, 1.5);
  spec.crash.at_sec =
      rng.uniform(3.0, std::max(3.5, quiet_start -
                                         spec.crash.takeover_delay_sec - 2.0));
}

}  // namespace

ScenarioSpec generate_spec(std::uint64_t seed, const FuzzLimits& limits) {
  Rng rng = Rng(seed).fork("check-gen");
  ScenarioSpec spec;
  spec.seed = seed;

  // Regime knobs first: network kind, jitter, heartbeat TTL, horizon.
  spec.heartbeat_ttl_sec = rng.uniform(2.0, 4.0);
  spec.jitter_sigma = rng.bernoulli(0.35) ? 0.0 : rng.uniform(0.01, 0.12);
  spec.net_kind = rng.bernoulli(0.7) ? static_cast<int>(SpecNetKind::kGeo)
                                     : static_cast<int>(SpecNetKind::kMatrix);
  spec.default_rtt_ms = rng.uniform(10.0, 60.0);
  spec.default_bw_mbps = rng.uniform(20.0, 200.0);
  double horizon = rng.uniform(limits.min_horizon_sec, limits.max_horizon_sec);

  // Clients: always at least one; every fuzz client streams frames (the
  // conservation and bound oracles feed on them).
  const auto client_count = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<int>(std::max<std::size_t>(
                             1, limits.max_clients))));
  double max_probing = 0.0;
  static const double kMargins[] = {0.0, 0.1, 0.3};
  for (std::size_t i = 0; i < client_count; ++i) {
    FuzzClient fc;
    fc.lat = kAnchorLat + rng.uniform(-0.3, 0.3);
    fc.lon = kAnchorLon + rng.uniform(-0.3, 0.3);
    fc.tier = sample_access_tier(rng);
    fc.top_n = static_cast<int>(rng.uniform_int(1, 5));
    fc.probing_period_sec = rng.uniform(1.5, 6.0);
    fc.proactive = rng.bernoulli(0.8);
    fc.switch_margin = kMargins[rng.uniform_int(0, 2)];
    fc.max_fps = rng.uniform(6.0, 20.0);
    fc.start_sec = rng.uniform(0.0, 4.0);
    fc.send_frames = true;
    max_probing = std::max(max_probing, fc.probing_period_sec);
    spec.clients.push_back(fc);
  }

  // The oracle soundness envelope (see header): the cooldown must outlast
  // a TTL expiry plus any fault-delayed heartbeat still in flight, and
  // give every client a couple of probing cycles to settle; idle eviction
  // must not be reachable from a fault window alone.
  spec.cooldown_sec =
      std::max({10.0, 2.0 * max_probing + 3.0, spec.heartbeat_ttl_sec + 7.0});
  spec.user_idle_ttl_sec = std::max(8.0, 2.5 * max_probing);
  spec.horizon_sec = std::max(horizon, spec.cooldown_sec + 12.0);
  const double quiet_start = spec.horizon_sec - spec.cooldown_sec;

  // Nodes: degenerate 0/1-node topologies are deliberate fuzz inputs.
  const double shape = rng.uniform();
  std::size_t node_count = 0;
  if (shape >= 0.16) {
    node_count =
        2 + static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<int>(std::max<std::size_t>(2, limits.max_nodes)) -
                       2));
  } else if (shape >= 0.06) {
    node_count = 1;
  }
  // Geohash clusters: volunteer fleets bunch around a few metro centers.
  const int center_count = static_cast<int>(rng.uniform_int(1, 3));
  double centers[3][2];
  for (int c = 0; c < center_count; ++c) {
    centers[c][0] = kAnchorLat + rng.uniform(-0.4, 0.4);
    centers[c][1] = kAnchorLon + rng.uniform(-0.4, 0.4);
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    FuzzNode fn;
    const int c = static_cast<int>(rng.uniform_int(0, center_count - 1));
    fn.lat = centers[c][0] + rng.uniform(-0.08, 0.08);
    fn.lon = centers[c][1] + rng.uniform(-0.08, 0.08);
    fn.tier = sample_access_tier(rng);
    fn.dedicated = fn.tier == static_cast<int>(net::AccessTier::kLocalZone);
    fn.cores = static_cast<int>(rng.uniform_int(1, 8));
    fn.base_frame_ms = rng.uniform(8.0, 45.0);
    fn.heartbeat_period_sec = rng.uniform(0.6, spec.heartbeat_ttl_sec / 2.0);
    if (i == 0) {
      // Anchor: one volunteer that is always there, so the spec promises
      // frame traffic (see expects_frames).
      fn.start_sec = 0.0;
      fn.stop_sec = -1.0;
    } else {
      // Churn schedule: late joins and mid-run departures, all clear of
      // the cooldown tail.
      fn.start_sec = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, horizon / 3.0);
      if (rng.bernoulli(0.35)) {
        fn.stop_sec = std::min(quiet_start,
                               fn.start_sec + rng.uniform(2.0, quiet_start));
        fn.graceful_stop = rng.bernoulli(0.5);
      }
    }
    spec.nodes.push_back(fn);
  }
  if (node_count > 0 && rng.bernoulli(0.3)) {
    FuzzNode cloud;
    cloud.lat = kAnchorLat + 2.0;
    cloud.lon = kAnchorLon + 2.0;
    cloud.tier = static_cast<int>(net::AccessTier::kCloud);
    cloud.cores = 16;
    cloud.base_frame_ms = rng.uniform(10.0, 20.0);
    cloud.dedicated = true;
    cloud.is_cloud = true;
    cloud.extra_rtt_ms = rng.uniform(35.0, 80.0);
    cloud.heartbeat_period_sec = 1.0;
    spec.nodes.push_back(cloud);
  }

  // Fault windows: cuts, partitions, slowdowns and wildcard isolations,
  // each short enough that idle eviction cannot trigger from it and ending
  // before the cooldown tail.
  const auto fault_count =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(limits.max_faults)));
  for (std::size_t i = 0; i < fault_count; ++i) {
    FuzzFault ff;
    const double r = rng.uniform();
    ff.kind = r < 0.30   ? FaultKind::kCut
              : r < 0.55 ? FaultKind::kPartition
              : r < 0.80 ? FaultKind::kSlow
                         : FaultKind::kIsolate;
    ff.a = sample_endpoint(rng, spec.nodes.size(), spec.clients.size());
    ff.b = sample_endpoint(rng, spec.nodes.size(), spec.clients.size());
    if (ff.kind != FaultKind::kIsolate && ff.b == ff.a) {
      ff.b = {EndpointKind::kManager, 0};
      if (ff.a == ff.b) continue;  // manager-manager pair: drop the window
    }
    ff.factor = rng.uniform(1.5, 20.0);
    ff.from_sec = rng.uniform(1.0, quiet_start - 0.5);
    ff.until_sec =
        ff.from_sec + rng.uniform(0.5, std::min(6.0, quiet_start - ff.from_sec));
    spec.faults.push_back(ff);
  }

  // Overload families ride on a separate fork, applied after the base
  // generation has fully consumed its own stream: seeds generated with the
  // flag off are untouched byte for byte.
  if (limits.overload_families) {
    Rng overload_rng = Rng(seed).fork("check-overload");
    apply_overload_family(spec, overload_rng);
  }
  if (limits.crash_points) {
    Rng crash_rng = Rng(seed).fork("check-crash");
    apply_crash_family(spec, crash_rng);
  }
  return spec;
}

// ---- runner -----------------------------------------------------------

namespace {

std::string format_runner(const char* fmt, ...) {
  char buf[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

net::AccessTier clamp_tier(int tier) {
  if (tier < static_cast<int>(net::AccessTier::kLan) ||
      tier > static_cast<int>(net::AccessTier::kCloud)) {
    return net::AccessTier::kCable;
  }
  return static_cast<net::AccessTier>(tier);
}

// Symbolic endpoint -> host. nullopt for dangling indices (a hand-edited
// spec may reference entities the shrinker dropped): the window is skipped.
std::optional<HostId> resolve_endpoint(harness::Scenario& scenario,
                                       const FuzzEndpoint& ep) {
  switch (ep.kind) {
    case EndpointKind::kManager:
      return HostId{0};  // the scenario allocates host 0 to the manager
    case EndpointKind::kNode:
      if (ep.index < 0 ||
          static_cast<std::size_t>(ep.index) >= scenario.node_count()) {
        return std::nullopt;
      }
      return scenario.node_id(static_cast<std::size_t>(ep.index));
    case EndpointKind::kClient:
      if (ep.index < 0 ||
          static_cast<std::size_t>(ep.index) >= scenario.edge_client_count()) {
        return std::nullopt;
      }
      return scenario.edge_client(static_cast<std::size_t>(ep.index)).id();
  }
  return std::nullopt;
}

}  // namespace

RunReport run_spec(const ScenarioSpec& spec, const RunOptions& options) {
  // The injector must outlive every fabric lookup, so it is declared
  // before the scenario that holds the fabric.
  net::FaultInjector injector;

  harness::ScenarioConfig config;
  config.seed = spec.seed;
  config.heartbeat_ttl = sec(spec.heartbeat_ttl_sec);
  config.trace = true;
  config.load_feedback = spec.load_feedback;
  config.standby.enabled = spec.standby;
  config.standby.standby_options.chaos_drop_last_batch =
      (spec.chaos & kChaosDropLastBatchOnReplay) != 0;
  const auto kind = spec.net_kind == static_cast<int>(SpecNetKind::kMatrix)
                        ? harness::NetKind::kMatrix
                        : harness::NetKind::kGeo;
  harness::Scenario scenario(config, kind, spec.default_rtt_ms,
                             spec.default_bw_mbps, spec.jitter_sigma);
  scenario.fabric().set_fault_injector(&injector);
  scenario.set_crash_fault_injector(&injector);

  const SimTime horizon = sec(spec.horizon_sec);
  // Enforce the quiet-tail contract for any spec, not just generated ones.
  const double quiet_start =
      std::max(0.0, spec.horizon_sec - std::max(0.0, spec.cooldown_sec));
  // The crash the harness will inject (clamps shared with the oracles).
  const std::optional<EffectiveCrash> crash = effective_crash(spec);

  // ---- nodes ----
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const FuzzNode& fn = spec.nodes[i];
    harness::NodeSpec ns;
    ns.name = format_runner("fuzz-node-%zu", i);
    ns.position = geo::GeoPoint{fn.lat, fn.lon};
    ns.tier = clamp_tier(fn.tier);
    ns.cores = std::max(1, fn.cores);
    ns.base_frame_ms = fn.base_frame_ms;
    ns.dedicated = fn.dedicated;
    ns.is_cloud = fn.is_cloud;
    ns.extra_rtt_ms = fn.extra_rtt_ms;
    ns.heartbeat_period = sec(std::max(0.1, fn.heartbeat_period_sec));
    ns.user_idle_ttl = sec(std::max(1.0, spec.user_idle_ttl_sec));
    ns.chaos_freeze_seq_num = (spec.chaos & kChaosFreezeSeqNum) != 0;
    ns.background_load = std::clamp(fn.background_load, 0.0, 0.95);
    ns.burstable = fn.burstable;
    ns.burst_baseline = std::clamp(fn.burst_baseline, 0.05, 1.0);
    ns.initial_credits_core_sec = std::max(0.0, fn.initial_credits_core_sec);
    const std::size_t index = scenario.add_node(ns);

    // Slow-leak ramp: step the background load linearly toward bg_ramp_to
    // over the ramp window, clear of the cooldown tail.
    if (fn.bg_ramp_to >= 0.0) {
      const double ramp_to = std::clamp(fn.bg_ramp_to, 0.0, 0.95);
      const double ramp_from = ns.background_load;
      const double r0 = std::max(0.0, fn.bg_ramp_start_sec);
      const double r1 = std::min(fn.bg_ramp_end_sec, quiet_start);
      if (r1 > r0) {
        constexpr int kRampSteps = 8;
        for (int step = 1; step <= kRampSteps; ++step) {
          const double frac = static_cast<double>(step) / kRampSteps;
          const double at = r0 + (r1 - r0) * frac;
          const double load = ramp_from + (ramp_to - ramp_from) * frac;
          scenario.scheduler().schedule_after(
              sec(at), [&scenario, index, load] {
                scenario.node(index).set_background_load(load);
              });
        }
      }
    }

    const double start = std::max(0.0, fn.start_sec);
    double stop = fn.stop_sec;
    if (stop >= 0.0) stop = std::min(stop, quiet_start);
    if (stop >= 0.0 && stop <= start) continue;  // clamped into nothing
    if (start <= 0.0) {
      scenario.start_node(index);
    } else {
      scenario.schedule_node_start(index, sec(start));
    }
    if (stop >= 0.0) {
      scenario.schedule_node_stop(index, sec(stop), fn.graceful_stop);
    }
  }

  // ---- clients ----
  for (std::size_t i = 0; i < spec.clients.size(); ++i) {
    const FuzzClient& fc = spec.clients[i];
    harness::ClientSpot spot;
    spot.name = format_runner("fuzz-client-%zu", i);
    spot.position = geo::GeoPoint{fc.lat, fc.lon};
    spot.tier = clamp_tier(fc.tier);
    client::ClientConfig cc;
    cc.top_n = std::max(1, fc.top_n);
    cc.probing_period = sec(std::max(0.5, fc.probing_period_sec));
    cc.proactive_connections = fc.proactive;
    cc.switch_margin = fc.switch_margin;
    cc.app.max_fps = std::max(1.0, fc.max_fps);
    cc.send_frames = fc.send_frames;
    client::EdgeClient& cl = scenario.add_edge_client(spot, std::move(cc));
    if (fc.start_sec <= 0.0) {
      cl.start();
    } else {
      scenario.scheduler().schedule_after(sec(fc.start_sec),
                                          [&cl] { cl.start(); });
    }
    // Diurnal-wave departure: a full client stop (detach + stream end),
    // clamped clear of the cooldown tail. Idempotent against the teardown
    // stop at the horizon.
    if (fc.stop_sec >= 0.0) {
      const double stop = std::min(fc.stop_sec, quiet_start);
      if (stop > std::max(0.0, fc.start_sec)) {
        scenario.scheduler().schedule_after(sec(stop), [&cl] { cl.stop(); });
      }
    }
  }

  // ---- fault windows ----
  for (const FuzzFault& ff : spec.faults) {
    const auto a = resolve_endpoint(scenario, ff.a);
    if (!a) continue;
    const double from = std::max(0.0, ff.from_sec);
    double until = std::min(ff.until_sec, quiet_start);
    // With a crash scheduled, every fault window closes before the crash:
    // the failover must be attributable to the injected crash alone, and
    // the readmission oracle's post-takeover bound assumes a clean network.
    if (crash) until = std::min(until, crash->at_sec);
    if (until <= from) continue;
    if (ff.kind == FaultKind::kIsolate) {
      injector.isolate_host(*a, sec(from), sec(until));
      continue;
    }
    const auto b = resolve_endpoint(scenario, ff.b);
    if (!b || *b == *a) continue;
    switch (ff.kind) {
      case FaultKind::kCut:
        injector.cut_link(*a, *b, sec(from), sec(until));
        break;
      case FaultKind::kPartition:
        injector.partition(*a, *b, sec(from), sec(until));
        break;
      case FaultKind::kSlow:
        injector.slow_link(*a, *b, std::max(1.0, ff.factor), sec(from),
                           sec(until));
        break;
      case FaultKind::kIsolate:
        break;  // handled above
    }
  }

  // ---- manager crash + takeover ----
  if (crash) {
    scenario.schedule_manager_crash(
        sec(crash->at_sec), static_cast<journal::CrashPoint>(crash->point),
        sec(crash->takeover_delay_sec));
  }

  // ---- run to the horizon, snapshot, tear down, drain ----
  scenario.run_until(horizon);

  EndState end;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    node::EdgeNode& n = scenario.node(i);
    end.nodes.push_back({n.id(), n.running(), n.attached_ids(),
                         n.executor().utilization(), n.executor().queued(),
                         n.executor().throttled(),
                         scenario.active_manager().overloaded(n.id())});
  }
  for (std::size_t i = 0; i < scenario.edge_client_count(); ++i) {
    client::EdgeClient& c = scenario.edge_client(i);
    end.clients.push_back({c.id(), c.current_node(), c.stats()});
  }
  // After a takeover the standby owns the registry; without one
  // active_manager() is the primary, so non-standby runs are unchanged.
  scenario.active_manager().registry().for_each_live(
      "", horizon,
      [&end](const manager::RegistryEntry& entry,
             const std::optional<geo::GeoPoint>&) {
        end.registry_live.push_back(entry.status.node);
      });
  std::sort(end.registry_live.begin(), end.registry_live.end(),
            [](NodeId a, NodeId b) { return a.value < b.value; });
  for (const auto& c : end.clients) {
    for (const auto& n : end.nodes) {
      end.base_rtt.push_back(
          {c.id, n.id,
           to_ms(scenario.network_model().base_rtt(c.id, n.id))});
    }
  }

  RunReport report;
  // Replay-determinism witness: at the takeover instant the standby's
  // incrementally-tailed image must equal a fresh one-shot replay of the
  // surviving journal bytes, byte for byte. (The planted drop-last-batch
  // chaos diverges here as well as on the LSN oracle.)
  if (scenario.takeover_done() &&
      scenario.standby_dump() != scenario.expected_dump()) {
    report.violations.push_back(
        {"journal-replay",
         "standby replay dump diverges from a fresh replay of the journal",
         horizon});
  }
  // Vacuity gate: a spec that promises frames but moved none (or that has
  // no clients at all) is a harness bug masquerading as a green run.
  if (spec.clients.empty() || expects_frames(spec)) {
    try {
      scenario.require_nonvacuous_run();
    } catch (const std::runtime_error& err) {
      report.violations.push_back({"vacuous-run", err.what(), horizon});
    }
  }

  // Oracles see only the pre-teardown prefix: stats snapshots above and
  // the trace stay in exact correspondence (both record precisely what
  // executed by the horizon), while teardown noise — drained joins hitting
  // stopped nodes, deregisters at the horizon — is excluded.
  const std::size_t prefix = scenario.trace_recorder()->events().size();

  for (auto& c : end.clients) {
    report.frames_sent += c.stats.frames_sent;
    report.frames_ok += c.stats.frames_ok;
    report.frames_failed += c.stats.frames_failed;
    report.joins += c.stats.joins;
    report.switches += c.stats.switches;
    report.failovers += c.stats.failovers;
    report.hard_failures += c.stats.hard_failures;
  }

  // The warm-tail timer self-reschedules; stop it or run_all never drains.
  scenario.stop_standby_tail();
  for (std::size_t i = 0; i < scenario.edge_client_count(); ++i) {
    scenario.edge_client(i).stop();
  }
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    if (scenario.node(i).running()) scenario.stop_node(i, /*graceful=*/true);
  }
  scenario.simulator().run_all();

  const std::vector<obs::TraceEvent>& all =
      scenario.trace_recorder()->events();
  const std::vector<obs::TraceEvent> pre_teardown(all.begin(),
                                                  all.begin() + prefix);
  report.trace_events = all.size();
  report.trace_digest = fnv1a64(scenario.trace_recorder()->to_jsonl());

  RunView view{spec, pre_teardown, end, config.timeouts, horizon};
  const auto& oracles =
      options.oracles != nullptr ? *options.oracles : default_oracles();
  for (const Oracle* oracle : oracles) {
    oracle->check(view, report.violations);
  }
  return report;
}

}  // namespace eden::check
