#include "check/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace eden::check {

namespace {

using obs::EventKind;
using obs::TraceEvent;

std::string format(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return std::string(buf);
}

// Each oracle stops reporting after this many violations — one is enough
// to fail a run, and the shrinker only needs the oracle name.
constexpr std::size_t kMaxViolationsPerOracle = 8;

class Reporter {
 public:
  Reporter(const char* oracle, std::vector<Violation>& out)
      : oracle_(oracle), out_(&out) {}

  void add(SimTime at, std::string message) {
    if (++count_ > kMaxViolationsPerOracle) return;
    out_->push_back({oracle_, std::move(message), at});
  }

 private:
  std::string oracle_;
  std::vector<Violation>* out_;
  std::size_t count_{0};
};

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// ---- trace-order ------------------------------------------------------

class TraceOrderOracle final : public Oracle {
 public:
  const char* name() const override { return "trace-order"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    for (std::size_t i = 1; i < run.events.size(); ++i) {
      if (run.events[i].at < run.events[i - 1].at) {
        report.add(run.events[i].at,
                   format("event %zu (t=%lld) precedes event %zu (t=%lld)",
                          i, static_cast<long long>(run.events[i].at), i - 1,
                          static_cast<long long>(run.events[i - 1].at)));
      }
    }
  }
};

// ---- seqnum -----------------------------------------------------------

// Algorithm 1: every admission (Join accept) happens at the node's current
// seqNum and is immediately followed by a bump; bumps advance by exactly
// one. An Unexpected_join cannot be rejected but still counts as a state
// change, so it too must bump.
class SeqNumOracle final : public Oracle {
 public:
  const char* name() const override { return "seqnum"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    struct NodeSeq {
      std::uint64_t cur{0};
      bool admission_pending{false};
      SimTime pending_at{0};
    };
    std::unordered_map<std::uint32_t, NodeSeq> nodes;
    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kSeqNumBump: {
          NodeSeq& s = nodes[e.actor.value];
          const auto v = static_cast<std::uint64_t>(std::llround(e.value));
          if (v != s.cur + 1) {
            report.add(e.at,
                       format("node %u seqNum bumped %llu -> %llu (not +1)",
                              e.actor.value,
                              static_cast<unsigned long long>(s.cur),
                              static_cast<unsigned long long>(v)));
          }
          s.cur = v;
          s.admission_pending = false;
          break;
        }
        case EventKind::kNodeJoinAccept: {
          NodeSeq& s = nodes[e.actor.value];
          if (s.admission_pending) {
            report.add(e.at,
                       format("node %u admitted client %u without bumping "
                              "seqNum after the previous state change",
                              e.actor.value, e.subject.value));
          }
          if (e.span != s.cur) {
            report.add(e.at,
                       format("node %u admitted client %u at seqNum %llu but "
                              "the node's state counter is %llu",
                              e.actor.value, e.subject.value,
                              static_cast<unsigned long long>(e.span),
                              static_cast<unsigned long long>(s.cur)));
          }
          s.admission_pending = true;
          s.pending_at = e.at;
          break;
        }
        case EventKind::kNodeUnexpectedJoin: {
          NodeSeq& s = nodes[e.actor.value];
          if (s.admission_pending) {
            report.add(e.at,
                       format("node %u accepted an unexpected join from "
                              "client %u without bumping seqNum after the "
                              "previous admission",
                              e.actor.value, e.subject.value));
          }
          s.admission_pending = true;
          s.pending_at = e.at;
          break;
        }
        default:
          break;
      }
    }
    // bump_state() runs synchronously inside the admission handler, so a
    // pending admission at end of trace means the bump never happened.
    for (const auto& [node, s] : nodes) {
      if (s.admission_pending) {
        report.add(s.pending_at,
                   format("node %u never bumped seqNum after its last "
                          "admission",
                          node));
      }
    }
  }
};

// ---- attachment -------------------------------------------------------

class AttachmentOracle final : public Oracle {
 public:
  const char* name() const override { return "attachment"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    check_client_streams(run, report);
    check_end_state(run, report);
    // Node-side overlap is only bounded when no fault window can drop a
    // Leave: a dropped Leave legitimately leaves a ghost attachment that
    // periodic probes keep refreshing (the node just counts one extra
    // user). With a clean fabric, a switch's Leave lands within a one-way
    // delay, so dual attachment beyond kOverlapSlack is a protocol bug —
    // but only between attachments the client acknowledged: a Join the
    // node accepted after the client's join timer expired is a tolerated
    // ghost too (the client does not know it joined, so it never leaves).
    if (run.spec.faults.empty()) check_overlap(run, report);
  }

 private:
  static constexpr SimTime kOverlapSlack = sec(2.0);

  static bool is_client_kind(EventKind kind) {
    switch (kind) {
      case EventKind::kJoinAccept:
      case EventKind::kSwitch:
      case EventKind::kFailover:
      case EventKind::kHardFailure:
      case EventKind::kQosReject:
        return true;
      default:
        return false;
    }
  }

  void check_client_streams(const RunView& run, Reporter& report) const {
    struct ClientState {
      bool attached{false};
    };
    std::unordered_map<std::uint32_t, ClientState> clients;
    std::unordered_set<std::uint32_t> known_nodes;
    for (const auto& n : run.end.nodes) known_nodes.insert(n.id.value);
    for (const TraceEvent& e : run.events) {
      if (!is_client_kind(e.kind)) continue;
      ClientState& s = clients[e.actor.value];
      switch (e.kind) {
        case EventKind::kJoinAccept:
          if (e.subject.valid() && known_nodes.count(e.subject.value) == 0) {
            report.add(e.at, format("client %u joined unknown node %u",
                                    e.actor.value, e.subject.value));
          }
          s.attached = true;
          break;
        case EventKind::kSwitch:
          if (!s.attached) {
            report.add(e.at,
                       format("client %u switched to node %u while never "
                              "having joined anything",
                              e.actor.value, e.subject.value));
          }
          break;
        case EventKind::kFailover:
          if (!s.attached) {
            report.add(e.at,
                       format("client %u failed over to node %u without a "
                              "prior attachment",
                              e.actor.value, e.subject.value));
          }
          break;
        case EventKind::kHardFailure:
        case EventKind::kQosReject:
          s.attached = false;
          break;
        default:
          break;
      }
    }
  }

  void check_end_state(const RunView& run, Reporter& report) const {
    std::unordered_map<std::uint32_t, const EndState::NodeState*> nodes;
    for (const auto& n : run.end.nodes) nodes[n.id.value] = &n;
    std::unordered_set<std::uint32_t> known_clients;
    for (const auto& c : run.end.clients) known_clients.insert(c.id.value);

    for (const auto& c : run.end.clients) {
      if (!c.current) continue;
      const auto it = nodes.find(c.current->value);
      if (it == nodes.end()) {
        report.add(run.horizon,
                   format("client %u ended attached to unknown node %u",
                          c.id.value, c.current->value));
        continue;
      }
      const EndState::NodeState& node = *it->second;
      if (!node.running) {
        report.add(run.horizon,
                   format("client %u ended attached to node %u, which is not "
                          "running at the horizon (cooldown %.1fs)",
                          c.id.value, node.id.value, run.spec.cooldown_sec));
      } else if (!std::binary_search(
                     node.attached.begin(), node.attached.end(), c.id,
                     [](ClientId a, ClientId b) { return a.value < b.value; })) {
        report.add(run.horizon,
                   format("client %u believes it is attached to node %u but "
                          "the node does not list it",
                          c.id.value, node.id.value));
      }
    }
    for (const auto& n : run.end.nodes) {
      for (const ClientId attached : n.attached) {
        if (known_clients.count(attached.value) == 0) {
          report.add(run.horizon,
                     format("node %u lists unknown client %u as attached",
                            n.id.value, attached.value));
        }
      }
    }
  }

  // Reconstructs node-side attachment intervals from the node tap events
  // and flags any same-client overlap across two nodes that lasts longer
  // than kOverlapSlack. Only sound without fault windows (see check()).
  void check_overlap(const RunView& run, Reporter& report) const {
    struct Interval {
      std::uint32_t node;
      SimTime from;
      SimTime until;
      bool acked;
    };
    // Client-side acknowledgements per (client, node): a node-side accept
    // with no ack shortly after is a join-timeout ghost and exempt.
    std::unordered_map<std::uint64_t, std::vector<SimTime>> acks;
    for (const TraceEvent& e : run.events) {
      if (e.kind == EventKind::kJoinAccept ||
          e.kind == EventKind::kFailover) {
        acks[pair_key(e.actor.value, e.subject.value)].push_back(e.at);
      }
    }
    auto acked_at = [&](std::uint32_t client, std::uint32_t node,
                        SimTime from) {
      const auto it = acks.find(pair_key(client, node));
      if (it == acks.end()) return false;
      const auto lo =
          std::lower_bound(it->second.begin(), it->second.end(), from);
      return lo != it->second.end() && *lo <= from + kOverlapSlack;
    };
    // (node, client) -> open attach time; closed intervals per client.
    std::unordered_map<std::uint64_t, SimTime> open;
    std::unordered_map<std::uint32_t, std::vector<Interval>> by_client;
    auto close = [&](std::uint32_t node, std::uint32_t client, SimTime at) {
      const auto it = open.find(pair_key(node, client));
      if (it == open.end()) return;
      by_client[client].push_back(
          {node, it->second, at, acked_at(client, node, it->second)});
      open.erase(it);
    };
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> node_clients;
    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kNodeJoinAccept:
        case EventKind::kNodeUnexpectedJoin:
          open[pair_key(e.actor.value, e.subject.value)] = e.at;
          node_clients[e.actor.value].push_back(e.subject.value);
          break;
        case EventKind::kNodeLeave:
        case EventKind::kNodeEvict:
          close(e.actor.value, e.subject.value, e.at);
          break;
        case EventKind::kNodeDeath:
        case EventKind::kNodeDeregister:
          // Stop clears the whole attachment table.
          for (const std::uint32_t client : node_clients[e.actor.value]) {
            close(e.actor.value, client, e.at);
          }
          node_clients[e.actor.value].clear();
          break;
        default:
          break;
      }
    }
    for (const auto& [key, from] : open) {
      const auto node = static_cast<std::uint32_t>(key >> 32);
      const auto client = static_cast<std::uint32_t>(key & 0xffffffffu);
      by_client[client].push_back(
          {node, from, run.horizon, acked_at(client, node, from)});
    }
    for (auto& [client, intervals] : by_client) {
      std::sort(intervals.begin(), intervals.end(),
                [](const Interval& a, const Interval& b) {
                  return a.from < b.from;
                });
      for (std::size_t i = 0; i < intervals.size(); ++i) {
        for (std::size_t j = i + 1; j < intervals.size(); ++j) {
          const Interval& a = intervals[i];
          const Interval& b = intervals[j];
          if (b.from >= a.until) break;
          if (a.node == b.node || !a.acked || !b.acked) continue;
          const SimTime overlap = std::min(a.until, b.until) - b.from;
          if (overlap > kOverlapSlack) {
            report.add(b.from,
                       format("client %u attached to nodes %u and %u "
                              "simultaneously for %.2fs on a fault-free "
                              "fabric",
                              client, a.node, b.node, to_sec(overlap)));
          }
        }
      }
    }
  }
};

// ---- frame-conservation ----------------------------------------------

class FrameConservationOracle final : public Oracle {
 public:
  const char* name() const override { return "frame-conservation"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    struct FrameState {
      SimTime sent_at{0};
      int completions{0};
    };
    struct PerClient {
      std::unordered_map<std::uint64_t, FrameState> frames;
      std::uint64_t sends{0};
      std::uint64_t oks{0};
      std::uint64_t drops{0};
    };
    std::unordered_map<std::uint32_t, PerClient> clients;

    auto complete = [&](std::uint32_t client, std::uint64_t frame,
                        SimTime at, const char* what) {
      PerClient& pc = clients[client];
      const auto it = pc.frames.find(frame);
      if (it == pc.frames.end()) {
        report.add(at, format("client %u reported %s for frame %llu that was "
                              "never sent",
                              client, what,
                              static_cast<unsigned long long>(frame)));
        return;
      }
      if (++it->second.completions > 1) {
        report.add(at, format("client %u frame %llu completed %d times",
                              client, static_cast<unsigned long long>(frame),
                              it->second.completions));
      }
    };

    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kFrameSend: {
          PerClient& pc = clients[e.actor.value];
          ++pc.sends;
          pc.frames[e.span] = FrameState{e.at, 0};
          break;
        }
        case EventKind::kFrameOk: {
          ++clients[e.actor.value].oks;
          complete(e.actor.value, e.span, e.at, "success");
          break;
        }
        case EventKind::kFrameDrop: {
          ++clients[e.actor.value].drops;
          complete(e.actor.value,
                   static_cast<std::uint64_t>(std::llround(e.value)), e.at,
                   "a drop");
          break;
        }
        default:
          break;
      }
    }

    // Every frame sent long enough before the horizon must have settled:
    // the transport guarantees a completion (response or timeout) within
    // the frame rpc timeout. A client the spec stops mid-run abandons its
    // in-flight frames at the stop (the completion callbacks bail on
    // !running_), so its settle deadline is measured from the stop time
    // instead — end.clients and spec.clients are index-aligned.
    const SimTime settle_deadline = run.horizon - run.timeouts.frame -
                                    msec(10.0);
    std::unordered_map<std::uint32_t, SimTime> deadline_by_id;
    const double quiet_start = std::max(
        0.0, run.spec.horizon_sec - std::max(0.0, run.spec.cooldown_sec));
    for (std::size_t i = 0;
         i < run.end.clients.size() && i < run.spec.clients.size(); ++i) {
      const FuzzClient& fc = run.spec.clients[i];
      if (fc.stop_sec < 0.0) continue;
      const double stop = std::min(fc.stop_sec, quiet_start);
      if (stop <= std::max(0.0, fc.start_sec)) continue;  // never scheduled
      deadline_by_id[run.end.clients[i].id.value] =
          sec(stop) - run.timeouts.frame - msec(10.0);
    }
    for (const auto& [client, pc] : clients) {
      const auto dit = deadline_by_id.find(client);
      const SimTime client_deadline =
          dit != deadline_by_id.end() ? dit->second : settle_deadline;
      std::uint64_t in_flight = 0;
      for (const auto& [frame, state] : pc.frames) {
        if (state.completions > 0) continue;
        ++in_flight;
        if (state.sent_at <= client_deadline) {
          report.add(state.sent_at,
                     format("client %u frame %llu (sent at %.3fs) never "
                            "completed within the %.0fms frame timeout",
                            client, static_cast<unsigned long long>(frame),
                            to_sec(state.sent_at),
                            to_ms(run.timeouts.frame)));
        }
      }
      if (pc.sends != pc.oks + pc.drops + in_flight) {
        report.add(run.horizon,
                   format("client %u conservation broken: %llu sent != %llu "
                          "ok + %llu failed + %llu in flight",
                          client, static_cast<unsigned long long>(pc.sends),
                          static_cast<unsigned long long>(pc.oks),
                          static_cast<unsigned long long>(pc.drops),
                          static_cast<unsigned long long>(in_flight)));
      }
    }

    // Trace <-> counter conservation: the client's own statistics must
    // agree with the event stream (snapshot taken at the horizon; client
    // events stop at teardown so both sides cover the same window).
    for (const auto& c : run.end.clients) {
      const auto it = clients.find(c.id.value);
      const std::uint64_t sends = it == clients.end() ? 0 : it->second.sends;
      const std::uint64_t oks = it == clients.end() ? 0 : it->second.oks;
      const std::uint64_t drops = it == clients.end() ? 0 : it->second.drops;
      if (c.stats.frames_sent != sends || c.stats.frames_ok != oks ||
          c.stats.frames_failed != drops) {
        report.add(run.horizon,
                   format("client %u counters disagree with trace: "
                          "sent %llu/%llu ok %llu/%llu failed %llu/%llu "
                          "(stats/trace)",
                          c.id.value,
                          static_cast<unsigned long long>(c.stats.frames_sent),
                          static_cast<unsigned long long>(sends),
                          static_cast<unsigned long long>(c.stats.frames_ok),
                          static_cast<unsigned long long>(oks),
                          static_cast<unsigned long long>(c.stats.frames_failed),
                          static_cast<unsigned long long>(drops)));
      }
    }
  }
};

// ---- frame-bound ------------------------------------------------------

class FrameBoundOracle final : public Oracle {
 public:
  const char* name() const override { return "frame-bound"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    // Timeout-first tie semantics: an accepted frame's end-to-end time is
    // strictly below the rpc timeout on every fabric.
    const double upper_ms = to_ms(run.timeouts.frame) + 0.001;
    // The model lower bound only holds with jitter off (lognormal jitter
    // is multiplicative and can draw below 1; slow-link factors only
    // increase delay, so they never break the bound).
    const bool lower_bound = run.spec.jitter_sigma == 0.0;
    std::unordered_map<std::uint64_t, double> base_rtt;
    for (const auto& pair : run.end.base_rtt) {
      base_rtt[pair_key(pair.client.value, pair.node.value)] =
          pair.base_rtt_ms;
    }
    for (const TraceEvent& e : run.events) {
      if (e.kind != EventKind::kFrameOk) continue;
      if (e.value > upper_ms) {
        report.add(e.at,
                   format("client %u frame %llu completed in %.3fms, above "
                          "the %.0fms rpc timeout",
                          e.actor.value,
                          static_cast<unsigned long long>(e.span), e.value,
                          to_ms(run.timeouts.frame)));
      }
      if (!lower_bound) continue;
      const auto it =
          base_rtt.find(pair_key(e.actor.value, e.subject.value));
      if (it == base_rtt.end()) continue;
      if (e.value + 1e-6 < it->second) {
        report.add(e.at,
                   format("client %u frame %llu to node %u completed in "
                          "%.3fms, below the jitter-free base RTT %.3fms",
                          e.actor.value,
                          static_cast<unsigned long long>(e.span),
                          e.subject.value, e.value, it->second));
      }
    }
  }
};

// ---- failover-liveness ------------------------------------------------

// A client-side failover event must pair with an Unexpected_join the
// target node processed while running (the node tap only fires on a live
// node, and the rpc only completes ok when the handler actually ran).
class FailoverLivenessOracle final : public Oracle {
 public:
  const char* name() const override { return "failover-liveness"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    std::unordered_map<std::uint64_t, std::vector<SimTime>> accepted;
    for (const TraceEvent& e : run.events) {
      if (e.kind == EventKind::kNodeUnexpectedJoin) {
        accepted[pair_key(e.subject.value, e.actor.value)].push_back(e.at);
      }
    }
    std::unordered_map<std::uint64_t, std::size_t> used;
    for (const TraceEvent& e : run.events) {
      if (e.kind != EventKind::kFailover) continue;
      const std::uint64_t key = pair_key(e.actor.value, e.subject.value);
      const auto it = accepted.find(key);
      std::size_t& cursor = used[key];
      bool matched = false;
      if (it != accepted.end() && cursor < it->second.size() &&
          it->second[cursor] <= e.at) {
        ++cursor;
        matched = true;
      }
      if (!matched) {
        report.add(e.at,
                   format("client %u failed over to node %u with no matching "
                          "Unexpected_join processed by a live node",
                          e.actor.value, e.subject.value));
      }
    }
  }
};

// ---- registry-ttl -----------------------------------------------------

class RegistryOracle final : public Oracle {
 public:
  const char* name() const override { return "registry-ttl"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    Reporter report(name(), out);
    const SimTime ttl = sec(run.spec.heartbeat_ttl_sec);

    // Node lifecycle from the trace: up intervals and first registration.
    struct Lifecycle {
      std::vector<std::pair<SimTime, SimTime>> up;  // closed at horizon
      SimTime first_register{-1};
      bool running{false};
      SimTime started_at{0};
    };
    std::unordered_map<std::uint32_t, Lifecycle> nodes;
    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kNodeRegister: {
          Lifecycle& lc = nodes[e.actor.value];
          if (lc.first_register < 0) lc.first_register = e.at;
          lc.running = true;
          lc.started_at = e.at;
          break;
        }
        case EventKind::kNodeDeath:
        case EventKind::kNodeDeregister: {
          Lifecycle& lc = nodes[e.actor.value];
          if (lc.running) {
            lc.up.emplace_back(lc.started_at, e.at);
            lc.running = false;
          }
          break;
        }
        case EventKind::kNodeHeartbeat: {
          Lifecycle& lc = nodes[e.actor.value];
          if (!lc.running) {
            report.add(e.at,
                       format("node %u sent a heartbeat while stopped",
                              e.actor.value));
          }
          break;
        }
        case EventKind::kNodeExpire: {
          const auto it = nodes.find(e.actor.value);
          if (it == nodes.end() || it->second.first_register < 0) {
            report.add(e.at,
                       format("manager expired node %u, which never "
                              "registered",
                              e.actor.value));
          } else if (e.at + msec(1.0) < it->second.first_register + ttl) {
            report.add(e.at,
                       format("manager expired node %u only %.3fs after "
                              "registration (TTL %.1fs)",
                              e.actor.value,
                              to_sec(e.at - it->second.first_register),
                              run.spec.heartbeat_ttl_sec));
          }
          break;
        }
        default:
          break;
      }
    }

    // TTL-expiry never resurrects a dead node: after the explicit expire
    // at the horizon, every registry entry must be a running node (churn
    // and fault windows clear the cooldown tail, so any dead entry has had
    // far more than a TTL of silence).
    std::unordered_map<std::uint32_t, bool> running;
    for (const auto& n : run.end.nodes) running[n.id.value] = n.running;
    for (const NodeId id : run.end.registry_live) {
      const auto it = running.find(id.value);
      if (it == running.end()) {
        report.add(run.horizon,
                   format("registry lists node %u, which this scenario never "
                          "built",
                          id.value));
      } else if (!it->second) {
        report.add(run.horizon,
                   format("registry still lists node %u at the horizon, but "
                          "it stopped over a cooldown (%.1fs) ago — "
                          "TTL-expiry resurrected or kept a dead node",
                          id.value, run.spec.cooldown_sec));
      }
    }
  }
};

// ---- starvation -------------------------------------------------------

// Only armed for load-feedback specs: no client still attached at the
// horizon may spend the entire quiet cooldown tail sending frames with
// zero successes while a running, registry-live, non-overloaded node sits
// nearly idle. The generator's overload families always append such a
// spare node, so "everyone must starve" topologies cannot trip it; clients
// the spec stopped mid-run are exempt (their stream legitimately ends).
class StarvationOracle final : public Oracle {
 public:
  const char* name() const override { return "starvation"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    if (!run.spec.load_feedback) return;
    Reporter report(name(), out);

    std::unordered_set<std::uint32_t> live;
    for (const NodeId id : run.end.registry_live) live.insert(id.value);
    const EndState::NodeState* spare = nullptr;
    for (const auto& n : run.end.nodes) {
      if (n.running && live.count(n.id.value) != 0 && !n.overloaded &&
          !n.throttled && n.queued == 0 && n.utilization < 0.25) {
        spare = &n;
        break;
      }
    }
    if (spare == nullptr) return;  // genuinely no spare capacity anywhere

    // The cooldown tail is churn- and fault-free by the generator envelope
    // (run_spec clamps hand-written specs the same way), so a client that
    // keeps sending there is in steady state. Frames sent within a frame
    // timeout of the horizon may legitimately still be in flight.
    const SimTime window_start =
        run.horizon - sec(std::max(0.0, run.spec.cooldown_sec));
    const SimTime send_deadline = run.horizon - run.timeouts.frame -
                                  msec(500.0);
    if (send_deadline <= window_start) return;  // degenerate cooldown

    struct Tally {
      std::uint64_t sends{0};
      std::uint64_t oks{0};
    };
    std::unordered_map<std::uint32_t, Tally> tallies;
    for (const TraceEvent& e : run.events) {
      if (e.at < window_start) continue;
      if (e.kind == EventKind::kFrameSend) {
        if (e.at <= send_deadline) ++tallies[e.actor.value].sends;
      } else if (e.kind == EventKind::kFrameOk) {
        ++tallies[e.actor.value].oks;
      }
    }

    constexpr std::uint64_t kMinSends = 5;
    for (std::size_t i = 0; i < run.end.clients.size(); ++i) {
      const auto& c = run.end.clients[i];
      if (!c.current) continue;  // unattached: admission may refuse
      if (i < run.spec.clients.size() &&
          run.spec.clients[i].stop_sec >= 0.0) {
        continue;  // spec-stopped client; its stream legitimately ended
      }
      const auto it = tallies.find(c.id.value);
      if (it == tallies.end()) continue;
      if (it->second.sends >= kMinSends && it->second.oks == 0) {
        report.add(run.horizon,
                   format("client %u starved through the cooldown tail: %llu "
                          "frames sent, 0 succeeded, while node %u sat idle "
                          "(util %.2f, queue %d)",
                          c.id.value,
                          static_cast<unsigned long long>(it->second.sends),
                          spare->id.value, spare->utilization, spare->queued));
      }
    }
  }
};

// ---- journal-seqnum ---------------------------------------------------

// Durable-journal failover (DESIGN.md §15): armed only for specs whose
// effective crash actually fires. Exactly one manager crash and one
// takeover must appear; the recovered LSN carried by kManagerTakeover may
// never regress below any LSN the primary committed durably
// (kJournalCommit is traced only when a batch is flushed, so every value
// seen is a durability promise); and the standby's own commits must
// continue strictly above the recovered LSN. A standby that replays short
// — e.g. the planted drop-last-batch chaos — reports a takeover LSN below
// the primary's last durable commit and trips this oracle.
class JournalSeqNumOracle final : public Oracle {
 public:
  const char* name() const override { return "journal-seqnum"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    const auto crash = effective_crash(run.spec);
    if (!crash) return;
    Reporter report(name(), out);

    std::size_t crashes = 0;
    std::size_t takeovers = 0;
    bool taken_over = false;
    std::uint64_t max_committed = 0;   // durable floor before the takeover
    std::uint64_t recovered = 0;
    std::uint64_t last_post = 0;       // standby commits, post-takeover
    for (const TraceEvent& e : run.events) {
      switch (e.kind) {
        case EventKind::kManagerCrash:
          ++crashes;
          break;
        case EventKind::kManagerTakeover: {
          ++takeovers;
          taken_over = true;
          recovered = static_cast<std::uint64_t>(std::llround(e.value));
          if (recovered < max_committed) {
            report.add(e.at,
                       format("takeover recovered LSN %llu below the "
                              "primary's last durable commit %llu — the "
                              "standby lost acked registry mutations",
                              static_cast<unsigned long long>(recovered),
                              static_cast<unsigned long long>(max_committed)));
          }
          last_post = recovered;
          break;
        }
        case EventKind::kJournalCommit: {
          const auto lsn = static_cast<std::uint64_t>(std::llround(e.value));
          if (!taken_over) {
            if (lsn <= max_committed) {
              report.add(e.at,
                         format("journal commit LSN regressed: %llu after "
                                "%llu",
                                static_cast<unsigned long long>(lsn),
                                static_cast<unsigned long long>(max_committed)));
            }
            max_committed = lsn;
          } else {
            if (lsn <= last_post) {
              report.add(e.at,
                         format("post-takeover commit LSN %llu does not "
                                "advance past %llu",
                                static_cast<unsigned long long>(lsn),
                                static_cast<unsigned long long>(last_post)));
            }
            last_post = lsn;
          }
          break;
        }
        default:
          break;
      }
    }
    if (crashes != 1) {
      report.add(run.horizon,
                 format("expected exactly one manager crash, saw %zu",
                        crashes));
    }
    if (takeovers != 1) {
      report.add(run.horizon,
                 format("expected exactly one standby takeover, saw %zu",
                        takeovers));
    }
  }
};

// ---- readmission ------------------------------------------------------

// Bounded re-admission after failover: once the standby owns the registry,
// (a) every node the spec keeps alive to the horizon must be back in the
// registry by the horizon — its heartbeats re-admit it within one TTL, and
// the quiet tail is at least TTL + margin long by the generator envelope —
// and (b) the frame stream must stay live: with an always-up anchor and an
// always-on sender in the spec, at least one frame is sent after the
// takeover, and (jitterless feedback aside) at least one completes.
class ReadmissionOracle final : public Oracle {
 public:
  const char* name() const override { return "readmission"; }

  void check(const RunView& run, std::vector<Violation>& out) const override {
    const auto crash = effective_crash(run.spec);
    if (!crash) return;
    Reporter report(name(), out);

    SimTime takeover_at = -1;
    for (const TraceEvent& e : run.events) {
      if (e.kind == EventKind::kManagerTakeover) {
        takeover_at = e.at;
        break;
      }
    }
    if (takeover_at < 0) return;  // journal-seqnum already flags this

    // (a) node re-admission. Only sound when the post-takeover stretch can
    // absorb a full heartbeat TTL (always true for generated specs).
    const double post_takeover_sec = run.spec.horizon_sec - to_sec(takeover_at);
    if (post_takeover_sec >= run.spec.heartbeat_ttl_sec + 3.0) {
      std::unordered_set<std::uint32_t> live;
      for (const NodeId id : run.end.registry_live) live.insert(id.value);
      for (std::size_t i = 0; i < run.end.nodes.size(); ++i) {
        const auto& n = run.end.nodes[i];
        if (!n.running) continue;
        if (i < run.spec.nodes.size() && run.spec.nodes[i].stop_sec >= 0.0) {
          continue;  // spec churned it; lifecycle is its own business
        }
        if (live.count(n.id.value) == 0) {
          report.add(run.horizon,
                     format("node %u is running at the horizon but absent "
                            "from the standby's registry %.1fs after "
                            "takeover — re-admission exceeded the TTL bound",
                            n.id.value, post_takeover_sec));
        }
      }
    }

    // (b) frame-stream liveness across the failover.
    if (!expects_frames(run.spec)) return;
    bool always_on_sender = false;
    for (const FuzzClient& c : run.spec.clients) {
      if (c.send_frames && c.stop_sec < 0.0 && c.start_sec < to_sec(takeover_at)) {
        always_on_sender = true;
        break;
      }
    }
    if (!always_on_sender) return;
    std::uint64_t post_sends = 0;
    std::uint64_t post_oks = 0;
    for (const TraceEvent& e : run.events) {
      if (e.at <= takeover_at) continue;
      if (e.kind == EventKind::kFrameSend) ++post_sends;
      if (e.kind == EventKind::kFrameOk) ++post_oks;
    }
    if (post_sends == 0) {
      report.add(run.horizon,
                 "no frame left any client after the takeover — the fleet "
                 "never re-resolved to the standby");
    } else if (post_oks == 0 && !run.spec.load_feedback) {
      report.add(run.horizon,
                 format("%llu frames sent after the takeover, none "
                        "succeeded — clients lost service across the "
                        "failover",
                        static_cast<unsigned long long>(post_sends)));
    }
  }
};

}  // namespace

const std::vector<const Oracle*>& default_oracles() {
  static const TraceOrderOracle trace_order;
  static const SeqNumOracle seqnum;
  static const AttachmentOracle attachment;
  static const FrameConservationOracle conservation;
  static const FrameBoundOracle frame_bound;
  static const FailoverLivenessOracle failover;
  static const RegistryOracle registry;
  static const StarvationOracle starvation;
  static const JournalSeqNumOracle journal_seqnum;
  static const ReadmissionOracle readmission;
  static const std::vector<const Oracle*> all = {
      &trace_order, &seqnum,   &attachment, &conservation,
      &frame_bound, &failover, &registry,  &starvation,
      &journal_seqnum, &readmission,
  };
  return all;
}

}  // namespace eden::check
