// ScenarioFuzzer: seed -> random ScenarioSpec -> deterministic run ->
// oracle verdicts. generate_spec() draws topology, churn, fault windows,
// jitter regime and client workload from a single forked Rng stream, so a
// seed is a complete description of a run. run_spec() materializes the
// spec through harness::Scenario, executes it to the horizon, snapshots
// the end state, and evaluates the invariant oracle catalog over the
// pre-teardown trace prefix.
//
// The generator keeps every sampled scenario inside the envelope the
// oracles are sound for: a quiet cooldown tail (no churn or fault window
// in the last `cooldown_sec`), fault windows short enough that idle
// eviction cannot fire from a cut alone, and a user idle TTL comfortably
// above the probing period. run_spec() clamps churn/fault times to that
// envelope for hand-written specs too.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "check/oracle.h"
#include "check/spec.h"

namespace eden::check {

struct FuzzLimits {
  std::size_t max_nodes{10};
  std::size_t max_clients{5};
  std::size_t max_faults{6};
  double min_horizon_sec{22.0};
  double max_horizon_sec{40.0};
  // Opt-in overload generator families (flash-crowd-into-one-cell,
  // diurnal-wave, slow-leak-degradation) layered on top of the base spec
  // with load feedback enabled. Off by default so every pre-existing seed
  // keeps producing a byte-identical spec; the family mutation draws from
  // its own Rng fork ("check-overload") and never touches the base stream.
  bool overload_families{false};
  // Opt-in manager-crash family: the spec gets a warm standby plus a
  // deterministic crash point (journal::CrashPoint) fired mid-churn, so
  // every run exercises journal replay and takeover. Draws from its own
  // fork ("check-crash"), applied after the base (and overload) streams.
  bool crash_points{false};
};

// Pure function of (seed, limits): same inputs, same spec.
[[nodiscard]] ScenarioSpec generate_spec(std::uint64_t seed,
                                         const FuzzLimits& limits = {});

struct RunOptions {
  // Oracle set to evaluate; null = default_oracles().
  const std::vector<const Oracle*>* oracles{nullptr};
};

struct RunReport {
  std::vector<Violation> violations;
  // FNV-1a over the full trace JSONL (teardown included) — the bitwise
  // determinism witness: same spec => same digest, on any thread count.
  std::uint64_t trace_digest{0};
  std::size_t trace_events{0};
  std::uint64_t frames_sent{0};
  std::uint64_t frames_ok{0};
  std::uint64_t frames_failed{0};
  std::uint64_t joins{0};
  std::uint64_t switches{0};
  std::uint64_t failovers{0};
  std::uint64_t hard_failures{0};
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

[[nodiscard]] RunReport run_spec(const ScenarioSpec& spec,
                                 const RunOptions& options = {});

[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

}  // namespace eden::check
