// `.eden-repro` files: the self-contained JSON form of a shrunk failing
// scenario. Contains the target oracle (the invariant the scenario
// violates) and the full ScenarioSpec; `eden_check --replay` parses the
// file and re-runs it deterministically.
//
// The format is fixed-field-order JSON with whitespace tolerance between
// tokens (same philosophy as the obs trace JSONL: emitted by us, parsed by
// us, doubles printed with %.17g so a write -> parse -> write round trip is
// byte-identical).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "check/spec.h"

namespace eden::check {

struct ReproFile {
  // v2 added the overload-elasticity fields (spec.load_feedback, node
  // background ramps, client stop_sec); v3 added the burstable node
  // fields; v4 added the durable-journal failover fields (spec.standby,
  // spec.crash). The parser accepts older files, which simply omit them.
  int version{4};
  std::string target_oracle;  // empty = "just replay, report whatever fires"
  ScenarioSpec spec;
  bool operator==(const ReproFile&) const = default;
};

[[nodiscard]] std::string to_json(const ReproFile& repro);
[[nodiscard]] std::optional<ReproFile> parse_json(std::string_view text);

// File helpers; false / nullopt on I/O or parse failure.
bool write_repro(const std::string& path, const ReproFile& repro);
[[nodiscard]] std::optional<ReproFile> load_repro(const std::string& path);

}  // namespace eden::check
