#include "check/shrink.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace eden::check {

namespace {

bool matches(const RunReport& report, const std::string& target) {
  if (report.ok()) return false;
  if (target.empty()) return true;
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const Violation& v) { return v.oracle == target; });
}

// Drops one entity and keeps the symbolic fault endpoints consistent:
// windows touching the dropped entity disappear, higher indices shift down.
void remap_faults(ScenarioSpec& spec, EndpointKind kind, int dropped) {
  auto touches = [&](const FuzzFault& f) {
    if (f.a.kind == kind && f.a.index == dropped) return true;
    return f.kind != FaultKind::kIsolate && f.b.kind == kind &&
           f.b.index == dropped;
  };
  spec.faults.erase(
      std::remove_if(spec.faults.begin(), spec.faults.end(), touches),
      spec.faults.end());
  for (FuzzFault& f : spec.faults) {
    if (f.a.kind == kind && f.a.index > dropped) --f.a.index;
    if (f.b.kind == kind && f.b.index > dropped) --f.b.index;
  }
}

ScenarioSpec drop_client(const ScenarioSpec& spec, std::size_t index) {
  ScenarioSpec out = spec;
  out.clients.erase(out.clients.begin() + static_cast<std::ptrdiff_t>(index));
  remap_faults(out, EndpointKind::kClient, static_cast<int>(index));
  return out;
}

ScenarioSpec drop_node(const ScenarioSpec& spec, std::size_t index) {
  ScenarioSpec out = spec;
  out.nodes.erase(out.nodes.begin() + static_cast<std::ptrdiff_t>(index));
  remap_faults(out, EndpointKind::kNode, static_cast<int>(index));
  return out;
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& initial,
                    const std::string& target_oracle, int max_attempts) {
  ShrinkResult out;
  out.spec = initial;
  out.report = run_spec(initial);
  out.attempts = 1;
  out.accepted = matches(out.report, target_oracle);
  if (!out.accepted) return out;

  auto try_accept = [&](ScenarioSpec candidate) {
    if (out.attempts >= max_attempts) return false;
    ++out.attempts;
    RunReport report = run_spec(candidate);
    if (!matches(report, target_oracle)) return false;
    out.spec = std::move(candidate);
    out.report = std::move(report);
    return true;
  };

  bool progress = true;
  while (progress && out.attempts < max_attempts) {
    progress = false;
    // Fault windows first: cheapest to drop, and removing them unlocks
    // entity drops (a window pinning a node no longer matters).
    for (std::size_t i = out.spec.faults.size(); i-- > 0;) {
      ScenarioSpec candidate = out.spec;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      progress |= try_accept(std::move(candidate));
    }
    for (std::size_t i = out.spec.clients.size(); i-- > 0;) {
      progress |= try_accept(drop_client(out.spec, i));
    }
    for (std::size_t i = out.spec.nodes.size(); i-- > 0;) {
      progress |= try_accept(drop_node(out.spec, i));
    }
    // Horizon: geometric shortening down to the cooldown floor (run_spec
    // keeps clamping churn/faults into the new quiet tail).
    const double floor_sec = std::max(0.0, out.spec.cooldown_sec) + 10.0;
    const double shorter = std::max(floor_sec, out.spec.horizon_sec * 0.6);
    if (shorter + 0.5 < out.spec.horizon_sec) {
      ScenarioSpec candidate = out.spec;
      candidate.horizon_sec = shorter;
      progress |= try_accept(std::move(candidate));
    }
  }
  return out;
}

}  // namespace eden::check
