#include "check/shard_witness.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "geo/geopoint.h"
#include "manager/registry.h"
#include "net/network_model.h"
#include "obs/trace_merge.h"

namespace eden::check {

namespace {

std::string format_witness(const char* fmt, std::size_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, index);
  return std::string(buf);
}

net::AccessTier clamp_tier(int tier) {
  if (tier < static_cast<int>(net::AccessTier::kLan) ||
      tier > static_cast<int>(net::AccessTier::kCloud)) {
    return net::AccessTier::kCable;
  }
  return static_cast<net::AccessTier>(tier);
}

// Same symbolic-endpoint resolution as check::run_spec: manager is always
// host 0 (both harnesses allocate it first), dangling indices skip the
// fault window.
std::optional<HostId> resolve_endpoint(harness::ShardedScenario& scenario,
                                       const FuzzEndpoint& ep) {
  switch (ep.kind) {
    case EndpointKind::kManager:
      return HostId{0};
    case EndpointKind::kNode:
      if (ep.index < 0 ||
          static_cast<std::size_t>(ep.index) >= scenario.node_count()) {
        return std::nullopt;
      }
      return scenario.node_id(static_cast<std::size_t>(ep.index));
    case EndpointKind::kClient:
      if (ep.index < 0 ||
          static_cast<std::size_t>(ep.index) >= scenario.edge_client_count()) {
        return std::nullopt;
      }
      return scenario.edge_client(static_cast<std::size_t>(ep.index)).id();
  }
  return std::nullopt;
}

}  // namespace

// Mirrors check::run_spec()'s build recipe line for line — same NodeSpec
// clamps, same ramp discretization, same fault-window clamping to the
// quiet tail — but materialized through ShardedScenario, with build-time
// callbacks routed to each entity's own domain via schedule_at_node /
// schedule_at_client. Any drift between the two recipes shows up as a
// digest mismatch in the witness tests, not as a silent behavior change.
ShardRunReport run_spec_sharded(const ScenarioSpec& spec, unsigned shards,
                                const ShardRunOptions& options) {
  if (spec.standby) {
    // Failover specs re-route the fleet to the standby mid-run; the
    // sharded runner's fixed manager wiring cannot express that, and the
    // crash isolation also perturbs the fabric RNG stream.
    throw std::invalid_argument(
        "run_spec_sharded does not support standby/failover specs");
  }
  harness::ShardedConfig config;
  config.base.seed = spec.seed;
  config.base.heartbeat_ttl = sec(spec.heartbeat_ttl_sec);
  config.base.trace = true;
  config.base.load_feedback = spec.load_feedback;
  config.shards = std::max(1u, shards);
  // shards == 0 is the windowless sequential reference; any explicit shard
  // count exercises the window/barrier machinery even when the partition
  // happens to keep every host in one domain.
  config.force_windows = shards != 0;
  config.threads = options.threads;
  config.window = options.window;

  const auto kind = spec.net_kind == static_cast<int>(SpecNetKind::kMatrix)
                        ? harness::NetKind::kMatrix
                        : harness::NetKind::kGeo;
  harness::ShardedScenario scenario(config, kind, spec.default_rtt_ms,
                                    spec.default_bw_mbps, spec.jitter_sigma);

  const SimTime horizon = sec(spec.horizon_sec);
  const double quiet_start =
      std::max(0.0, spec.horizon_sec - std::max(0.0, spec.cooldown_sec));

  // ---- nodes ----
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const FuzzNode& fn = spec.nodes[i];
    harness::NodeSpec ns;
    ns.name = format_witness("fuzz-node-%zu", i);
    ns.position = geo::GeoPoint{fn.lat, fn.lon};
    ns.tier = clamp_tier(fn.tier);
    ns.cores = std::max(1, fn.cores);
    ns.base_frame_ms = fn.base_frame_ms;
    ns.dedicated = fn.dedicated;
    ns.is_cloud = fn.is_cloud;
    ns.extra_rtt_ms = fn.extra_rtt_ms;
    ns.heartbeat_period = sec(std::max(0.1, fn.heartbeat_period_sec));
    ns.user_idle_ttl = sec(std::max(1.0, spec.user_idle_ttl_sec));
    ns.chaos_freeze_seq_num = (spec.chaos & kChaosFreezeSeqNum) != 0;
    ns.background_load = std::clamp(fn.background_load, 0.0, 0.95);
    ns.burstable = fn.burstable;
    ns.burst_baseline = std::clamp(fn.burst_baseline, 0.05, 1.0);
    ns.initial_credits_core_sec = std::max(0.0, fn.initial_credits_core_sec);
    const std::size_t index = scenario.add_node(ns);

    if (fn.bg_ramp_to >= 0.0) {
      const double ramp_to = std::clamp(fn.bg_ramp_to, 0.0, 0.95);
      const double ramp_from = ns.background_load;
      const double r0 = std::max(0.0, fn.bg_ramp_start_sec);
      const double r1 = std::min(fn.bg_ramp_end_sec, quiet_start);
      if (r1 > r0) {
        constexpr int kRampSteps = 8;
        for (int step = 1; step <= kRampSteps; ++step) {
          const double frac = static_cast<double>(step) / kRampSteps;
          const double at = r0 + (r1 - r0) * frac;
          const double load = ramp_from + (ramp_to - ramp_from) * frac;
          scenario.schedule_at_node(index, sec(at),
                                    [load](node::EdgeNode& node) {
                                      node.set_background_load(load);
                                    });
        }
      }
    }

    const double start = std::max(0.0, fn.start_sec);
    double stop = fn.stop_sec;
    if (stop >= 0.0) stop = std::min(stop, quiet_start);
    if (stop >= 0.0 && stop <= start) continue;  // clamped into nothing
    if (start <= 0.0) {
      scenario.start_node(index);
    } else {
      scenario.schedule_node_start(index, sec(start));
    }
    if (stop >= 0.0) {
      scenario.schedule_node_stop(index, sec(stop), fn.graceful_stop);
    }
  }

  // ---- clients ----
  for (std::size_t i = 0; i < spec.clients.size(); ++i) {
    const FuzzClient& fc = spec.clients[i];
    harness::ClientSpot spot;
    spot.name = format_witness("fuzz-client-%zu", i);
    spot.position = geo::GeoPoint{fc.lat, fc.lon};
    spot.tier = clamp_tier(fc.tier);
    client::ClientConfig cc;
    cc.top_n = std::max(1, fc.top_n);
    cc.probing_period = sec(std::max(0.5, fc.probing_period_sec));
    cc.proactive_connections = fc.proactive;
    cc.switch_margin = fc.switch_margin;
    cc.app.max_fps = std::max(1.0, fc.max_fps);
    cc.send_frames = fc.send_frames;
    const std::size_t index = scenario.add_edge_client(spot, std::move(cc));
    if (fc.start_sec <= 0.0) {
      scenario.edge_client(index).start();
    } else {
      scenario.schedule_at_client(index, sec(fc.start_sec),
                                  [](client::EdgeClient& cl) { cl.start(); });
    }
    if (fc.stop_sec >= 0.0) {
      const double stop = std::min(fc.stop_sec, quiet_start);
      if (stop > std::max(0.0, fc.start_sec)) {
        scenario.schedule_at_client(index, sec(stop),
                                    [](client::EdgeClient& cl) { cl.stop(); });
      }
    }
  }

  // ---- fault windows (fanned out to every domain's injector) ----
  for (const FuzzFault& ff : spec.faults) {
    const auto a = resolve_endpoint(scenario, ff.a);
    if (!a) continue;
    const double from = std::max(0.0, ff.from_sec);
    const double until = std::min(ff.until_sec, quiet_start);
    if (until <= from) continue;
    if (ff.kind == FaultKind::kIsolate) {
      scenario.isolate_host(*a, sec(from), sec(until));
      continue;
    }
    const auto b = resolve_endpoint(scenario, ff.b);
    if (!b || *b == *a) continue;
    switch (ff.kind) {
      case FaultKind::kCut:
        scenario.cut_link(*a, *b, sec(from), sec(until));
        break;
      case FaultKind::kPartition:
        scenario.partition(*a, *b, sec(from), sec(until));
        break;
      case FaultKind::kSlow:
        scenario.slow_link(*a, *b, std::max(1.0, ff.factor), sec(from),
                           sec(until));
        break;
      case FaultKind::kIsolate:
        break;  // handled above
    }
  }

  // ---- run to the horizon, snapshot ----
  scenario.run_until(horizon);

  EndState end;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    node::EdgeNode& n = scenario.node(i);
    end.nodes.push_back({n.id(), n.running(), n.attached_ids(),
                         n.executor().utilization(), n.executor().queued(),
                         n.executor().throttled(),
                         scenario.central_manager().overloaded(n.id())});
  }
  for (std::size_t i = 0; i < scenario.edge_client_count(); ++i) {
    client::EdgeClient& c = scenario.edge_client(i);
    end.clients.push_back({c.id(), c.current_node(), c.stats()});
  }
  scenario.central_manager().registry().for_each_live(
      "", horizon,
      [&end](const manager::RegistryEntry& entry,
             const std::optional<geo::GeoPoint>&) {
        end.registry_live.push_back(entry.status.node);
      });
  std::sort(end.registry_live.begin(), end.registry_live.end(),
            [](NodeId a, NodeId b) { return a.value < b.value; });
  for (const auto& c : end.clients) {
    for (const auto& n : end.nodes) {
      end.base_rtt.push_back(
          {c.id, n.id,
           to_ms(scenario.network_model().base_rtt(c.id, n.id))});
    }
  }

  ShardRunReport report;
  if (spec.clients.empty() || expects_frames(spec)) {
    try {
      scenario.require_nonvacuous_run();
    } catch (const std::runtime_error& err) {
      report.violations.push_back({"vacuous-run", err.what(), horizon});
    }
  }

  for (auto& c : end.clients) {
    report.frames_sent += c.stats.frames_sent;
    report.frames_ok += c.stats.frames_ok;
    report.frames_failed += c.stats.frames_failed;
    report.joins += c.stats.joins;
    report.switches += c.stats.switches;
    report.failovers += c.stats.failovers;
    report.hard_failures += c.stats.hard_failures;
  }

  // The witness artifact: the pre-teardown trace, canonicalized. Causally
  // related events are always >= 1 tick apart (every message has a positive
  // delay floor), so (time, site) order preserves causality and the oracle
  // catalog stays sound over the merged stream; same-tick events on
  // different sites are concurrent and land in a fixed canonical order
  // regardless of which domain recorded them.
  const std::vector<obs::TraceEvent> canonical = scenario.canonical_trace();
  report.trace_events = canonical.size();
  std::string jsonl = obs::events_to_jsonl(canonical);
  report.trace_digest = fnv1a64(jsonl);
  if (options.keep_trace) report.trace_jsonl = std::move(jsonl);
  report.shards = scenario.shard_stats();

  RunView view{spec, canonical, end, config.base.timeouts, horizon};
  const auto& oracles =
      options.oracles != nullptr ? *options.oracles : default_oracles();
  for (const Oracle* oracle : oracles) {
    oracle->check(view, report.violations);
  }
  return report;
}

}  // namespace eden::check
