#include "check/repro.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <sstream>

namespace eden::check {

namespace {

void append_double(std::string& out, double v) {
  char buf[40];
  // %.17g survives a strtod round trip exactly for every finite double.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_int(std::string& out, int v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", v);
  out += buf;
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

void append_node(std::string& out, const FuzzNode& n) {
  out += "{\"lat\":";
  append_double(out, n.lat);
  out += ",\"lon\":";
  append_double(out, n.lon);
  out += ",\"tier\":";
  append_int(out, n.tier);
  out += ",\"cores\":";
  append_int(out, n.cores);
  out += ",\"base_frame_ms\":";
  append_double(out, n.base_frame_ms);
  out += ",\"dedicated\":";
  append_bool(out, n.dedicated);
  out += ",\"is_cloud\":";
  append_bool(out, n.is_cloud);
  out += ",\"extra_rtt_ms\":";
  append_double(out, n.extra_rtt_ms);
  out += ",\"heartbeat_period_sec\":";
  append_double(out, n.heartbeat_period_sec);
  out += ",\"start_sec\":";
  append_double(out, n.start_sec);
  out += ",\"stop_sec\":";
  append_double(out, n.stop_sec);
  out += ",\"graceful_stop\":";
  append_bool(out, n.graceful_stop);
  out += ",\"background_load\":";
  append_double(out, n.background_load);
  out += ",\"bg_ramp_to\":";
  append_double(out, n.bg_ramp_to);
  out += ",\"bg_ramp_start_sec\":";
  append_double(out, n.bg_ramp_start_sec);
  out += ",\"bg_ramp_end_sec\":";
  append_double(out, n.bg_ramp_end_sec);
  out += ",\"burstable\":";
  append_bool(out, n.burstable);
  out += ",\"burst_baseline\":";
  append_double(out, n.burst_baseline);
  out += ",\"initial_credits_core_sec\":";
  append_double(out, n.initial_credits_core_sec);
  out += "}";
}

void append_client(std::string& out, const FuzzClient& c) {
  out += "{\"lat\":";
  append_double(out, c.lat);
  out += ",\"lon\":";
  append_double(out, c.lon);
  out += ",\"tier\":";
  append_int(out, c.tier);
  out += ",\"top_n\":";
  append_int(out, c.top_n);
  out += ",\"probing_period_sec\":";
  append_double(out, c.probing_period_sec);
  out += ",\"proactive\":";
  append_bool(out, c.proactive);
  out += ",\"switch_margin\":";
  append_double(out, c.switch_margin);
  out += ",\"max_fps\":";
  append_double(out, c.max_fps);
  out += ",\"start_sec\":";
  append_double(out, c.start_sec);
  out += ",\"send_frames\":";
  append_bool(out, c.send_frames);
  out += ",\"stop_sec\":";
  append_double(out, c.stop_sec);
  out += "}";
}

void append_fault(std::string& out, const FuzzFault& f) {
  out += "{\"kind\":";
  append_int(out, static_cast<int>(f.kind));
  out += ",\"a_kind\":";
  append_int(out, static_cast<int>(f.a.kind));
  out += ",\"a_index\":";
  append_int(out, f.a.index);
  out += ",\"b_kind\":";
  append_int(out, static_cast<int>(f.b.kind));
  out += ",\"b_index\":";
  append_int(out, f.b.index);
  out += ",\"factor\":";
  append_double(out, f.factor);
  out += ",\"from_sec\":";
  append_double(out, f.from_sec);
  out += ",\"until_sec\":";
  append_double(out, f.until_sec);
  out += "}";
}

// ---- parsing: fixed field order, whitespace tolerated between tokens ----

struct Cursor {
  std::string_view text;
  std::size_t pos{0};
  bool ok{true};

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool expect(std::string_view literal) {
    if (!ok) return false;
    skip_ws();
    if (text.substr(pos, literal.size()) != literal) {
      ok = false;
      return false;
    }
    pos += literal.size();
    return true;
  }

  // Non-committal lookahead for optional (v2+) fields: true when the next
  // token is `literal`, without consuming it or poisoning `ok`.
  bool peek(std::string_view literal) {
    if (!ok) return false;
    skip_ws();
    return text.substr(pos, literal.size()) == literal;
  }

  double number() {
    if (!ok) return 0.0;
    skip_ws();
    char buf[64];
    std::size_t len = 0;
    while (pos + len < text.size() && len + 1 < sizeof(buf)) {
      const char c = text[pos + len];
      if ((c < '0' || c > '9') && c != '-' && c != '+' && c != '.' &&
          c != 'e' && c != 'E') {
        break;
      }
      buf[len++] = c;
    }
    if (len == 0) {
      ok = false;
      return 0.0;
    }
    buf[len] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + len) {
      ok = false;
      return 0.0;
    }
    pos += len;
    return v;
  }

  std::uint64_t u64() {
    if (!ok) return 0;
    skip_ws();
    char buf[32];
    std::size_t len = 0;
    while (pos + len < text.size() && len + 1 < sizeof(buf) &&
           text[pos + len] >= '0' && text[pos + len] <= '9') {
      buf[len] = text[pos + len];
      ++len;
    }
    if (len == 0) {
      ok = false;
      return 0;
    }
    buf[len] = '\0';
    pos += len;
    return std::strtoull(buf, nullptr, 10);
  }

  int integer() { return static_cast<int>(number()); }

  bool boolean() {
    if (!ok) return false;
    skip_ws();
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      return true;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      return false;
    }
    ok = false;
    return false;
  }

  // Quoted string without escape support (oracle names are identifiers).
  std::string string() {
    if (!expect("\"")) return {};
    const std::size_t end = text.find('"', pos);
    if (end == std::string_view::npos) {
      ok = false;
      return {};
    }
    std::string out(text.substr(pos, end - pos));
    pos = end + 1;
    return out;
  }
};

FuzzNode parse_node(Cursor& c) {
  FuzzNode n;
  c.expect("{\"lat\":");
  n.lat = c.number();
  c.expect(",\"lon\":");
  n.lon = c.number();
  c.expect(",\"tier\":");
  n.tier = c.integer();
  c.expect(",\"cores\":");
  n.cores = c.integer();
  c.expect(",\"base_frame_ms\":");
  n.base_frame_ms = c.number();
  c.expect(",\"dedicated\":");
  n.dedicated = c.boolean();
  c.expect(",\"is_cloud\":");
  n.is_cloud = c.boolean();
  c.expect(",\"extra_rtt_ms\":");
  n.extra_rtt_ms = c.number();
  c.expect(",\"heartbeat_period_sec\":");
  n.heartbeat_period_sec = c.number();
  c.expect(",\"start_sec\":");
  n.start_sec = c.number();
  c.expect(",\"stop_sec\":");
  n.stop_sec = c.number();
  c.expect(",\"graceful_stop\":");
  n.graceful_stop = c.boolean();
  if (c.peek(",\"background_load\":")) {  // v2 ramp fields
    c.expect(",\"background_load\":");
    n.background_load = c.number();
    c.expect(",\"bg_ramp_to\":");
    n.bg_ramp_to = c.number();
    c.expect(",\"bg_ramp_start_sec\":");
    n.bg_ramp_start_sec = c.number();
    c.expect(",\"bg_ramp_end_sec\":");
    n.bg_ramp_end_sec = c.number();
  }
  if (c.peek(",\"burstable\":")) {  // v3 burstable fields
    c.expect(",\"burstable\":");
    n.burstable = c.boolean();
    c.expect(",\"burst_baseline\":");
    n.burst_baseline = c.number();
    c.expect(",\"initial_credits_core_sec\":");
    n.initial_credits_core_sec = c.number();
  }
  c.expect("}");
  return n;
}

FuzzClient parse_client(Cursor& c) {
  FuzzClient out;
  c.expect("{\"lat\":");
  out.lat = c.number();
  c.expect(",\"lon\":");
  out.lon = c.number();
  c.expect(",\"tier\":");
  out.tier = c.integer();
  c.expect(",\"top_n\":");
  out.top_n = c.integer();
  c.expect(",\"probing_period_sec\":");
  out.probing_period_sec = c.number();
  c.expect(",\"proactive\":");
  out.proactive = c.boolean();
  c.expect(",\"switch_margin\":");
  out.switch_margin = c.number();
  c.expect(",\"max_fps\":");
  out.max_fps = c.number();
  c.expect(",\"start_sec\":");
  out.start_sec = c.number();
  c.expect(",\"send_frames\":");
  out.send_frames = c.boolean();
  if (c.peek(",\"stop_sec\":")) {  // v2
    c.expect(",\"stop_sec\":");
    out.stop_sec = c.number();
  }
  c.expect("}");
  return out;
}

FuzzFault parse_fault(Cursor& c) {
  FuzzFault f;
  c.expect("{\"kind\":");
  f.kind = static_cast<FaultKind>(c.integer());
  c.expect(",\"a_kind\":");
  f.a.kind = static_cast<EndpointKind>(c.integer());
  c.expect(",\"a_index\":");
  f.a.index = c.integer();
  c.expect(",\"b_kind\":");
  f.b.kind = static_cast<EndpointKind>(c.integer());
  c.expect(",\"b_index\":");
  f.b.index = c.integer();
  c.expect(",\"factor\":");
  f.factor = c.number();
  c.expect(",\"from_sec\":");
  f.from_sec = c.number();
  c.expect(",\"until_sec\":");
  f.until_sec = c.number();
  c.expect("}");
  return f;
}

template <typename T, typename ParseFn>
std::vector<T> parse_array(Cursor& c, ParseFn parse_one) {
  std::vector<T> out;
  c.expect("[");
  c.skip_ws();
  if (c.ok && c.pos < c.text.size() && c.text[c.pos] == ']') {
    ++c.pos;
    return out;
  }
  while (c.ok) {
    out.push_back(parse_one(c));
    c.skip_ws();
    if (!c.ok || c.pos >= c.text.size()) {
      c.ok = false;
      break;
    }
    if (c.text[c.pos] == ',') {
      ++c.pos;
      continue;
    }
    if (c.text[c.pos] == ']') {
      ++c.pos;
      break;
    }
    c.ok = false;
  }
  return out;
}

// ---- semantic validation ----------------------------------------------
//
// Cursor::number accepts anything strtod does — including "1e999", which
// parses "successfully" to +inf and would send --replay into an unbounded
// simulation. A repro that parses structurally must also describe a run
// the harness can actually execute: every double finite, the horizon
// positive and bounded, and the version a format we know.

constexpr double kMaxHorizonSec = 24.0 * 3600.0;  // a day of sim time

bool all_finite(std::initializer_list<double> values) {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool validate(const ReproFile& repro) {
  const ScenarioSpec& s = repro.spec;
  if (repro.version < 1 || repro.version > 4) return false;
  if (!all_finite({s.default_rtt_ms, s.default_bw_mbps, s.jitter_sigma,
                   s.horizon_sec, s.cooldown_sec, s.heartbeat_ttl_sec,
                   s.user_idle_ttl_sec, s.crash.at_sec,
                   s.crash.takeover_delay_sec})) {
    return false;
  }
  if (s.horizon_sec <= 0.0 || s.horizon_sec > kMaxHorizonSec) return false;
  if (s.cooldown_sec < 0.0 || s.heartbeat_ttl_sec <= 0.0) return false;
  for (const FuzzNode& n : s.nodes) {
    if (!all_finite({n.lat, n.lon, n.base_frame_ms, n.extra_rtt_ms,
                     n.heartbeat_period_sec, n.start_sec, n.stop_sec,
                     n.background_load, n.bg_ramp_to, n.bg_ramp_start_sec,
                     n.bg_ramp_end_sec, n.burst_baseline,
                     n.initial_credits_core_sec})) {
      return false;
    }
  }
  for (const FuzzClient& cl : s.clients) {
    if (!all_finite({cl.lat, cl.lon, cl.probing_period_sec, cl.switch_margin,
                     cl.max_fps, cl.start_sec, cl.stop_sec})) {
      return false;
    }
  }
  for (const FuzzFault& f : s.faults) {
    if (!all_finite({f.factor, f.from_sec, f.until_sec})) return false;
  }
  return true;
}

}  // namespace

std::string to_json(const ReproFile& repro) {
  const ScenarioSpec& s = repro.spec;
  std::string out;
  out.reserve(512 + 256 * (s.nodes.size() + s.clients.size() + s.faults.size()));
  out += "{\n  \"eden_repro\": ";
  append_int(out, repro.version);
  out += ",\n  \"target_oracle\": \"";
  out += repro.target_oracle;
  out += "\",\n  \"spec\": {\n    \"seed\": ";
  append_u64(out, s.seed);
  out += ",\n    \"net_kind\": ";
  append_int(out, s.net_kind);
  out += ",\n    \"default_rtt_ms\": ";
  append_double(out, s.default_rtt_ms);
  out += ",\n    \"default_bw_mbps\": ";
  append_double(out, s.default_bw_mbps);
  out += ",\n    \"jitter_sigma\": ";
  append_double(out, s.jitter_sigma);
  out += ",\n    \"horizon_sec\": ";
  append_double(out, s.horizon_sec);
  out += ",\n    \"cooldown_sec\": ";
  append_double(out, s.cooldown_sec);
  out += ",\n    \"heartbeat_ttl_sec\": ";
  append_double(out, s.heartbeat_ttl_sec);
  out += ",\n    \"user_idle_ttl_sec\": ";
  append_double(out, s.user_idle_ttl_sec);
  out += ",\n    \"chaos\": ";
  append_u64(out, s.chaos);
  out += ",\n    \"load_feedback\": ";
  append_bool(out, s.load_feedback);
  out += ",\n    \"standby\": ";
  append_bool(out, s.standby);
  out += ",\n    \"crash\": {\"enabled\": ";
  append_bool(out, s.crash.enabled);
  out += ", \"point\": ";
  append_int(out, s.crash.point);
  out += ", \"at_sec\": ";
  append_double(out, s.crash.at_sec);
  out += ", \"takeover_delay_sec\": ";
  append_double(out, s.crash.takeover_delay_sec);
  out += "}";
  out += ",\n    \"nodes\": [";
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    out += i == 0 ? "\n      " : ",\n      ";
    append_node(out, s.nodes[i]);
  }
  out += s.nodes.empty() ? "]" : "\n    ]";
  out += ",\n    \"clients\": [";
  for (std::size_t i = 0; i < s.clients.size(); ++i) {
    out += i == 0 ? "\n      " : ",\n      ";
    append_client(out, s.clients[i]);
  }
  out += s.clients.empty() ? "]" : "\n    ]";
  out += ",\n    \"faults\": [";
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    out += i == 0 ? "\n      " : ",\n      ";
    append_fault(out, s.faults[i]);
  }
  out += s.faults.empty() ? "]" : "\n    ]";
  out += "\n  }\n}\n";
  return out;
}

std::optional<ReproFile> parse_json(std::string_view text) {
  Cursor c{text};
  ReproFile repro;
  ScenarioSpec& s = repro.spec;
  c.expect("{");
  c.expect("\"eden_repro\":");
  repro.version = c.integer();
  c.expect(",");
  c.expect("\"target_oracle\":");
  repro.target_oracle = c.string();
  c.expect(",");
  c.expect("\"spec\":");
  c.expect("{");
  c.expect("\"seed\":");
  s.seed = c.u64();
  c.expect(",");
  c.expect("\"net_kind\":");
  s.net_kind = c.integer();
  c.expect(",");
  c.expect("\"default_rtt_ms\":");
  s.default_rtt_ms = c.number();
  c.expect(",");
  c.expect("\"default_bw_mbps\":");
  s.default_bw_mbps = c.number();
  c.expect(",");
  c.expect("\"jitter_sigma\":");
  s.jitter_sigma = c.number();
  c.expect(",");
  c.expect("\"horizon_sec\":");
  s.horizon_sec = c.number();
  c.expect(",");
  c.expect("\"cooldown_sec\":");
  s.cooldown_sec = c.number();
  c.expect(",");
  c.expect("\"heartbeat_ttl_sec\":");
  s.heartbeat_ttl_sec = c.number();
  c.expect(",");
  c.expect("\"user_idle_ttl_sec\":");
  s.user_idle_ttl_sec = c.number();
  c.expect(",");
  c.expect("\"chaos\":");
  s.chaos = static_cast<unsigned>(c.u64());
  c.expect(",");
  if (c.peek("\"load_feedback\":")) {  // v2
    c.expect("\"load_feedback\":");
    s.load_feedback = c.boolean();
    c.expect(",");
  }
  if (c.peek("\"standby\":")) {  // v4 failover fields
    c.expect("\"standby\":");
    s.standby = c.boolean();
    c.expect(",");
    c.expect("\"crash\":");
    c.expect("{");
    c.expect("\"enabled\":");
    s.crash.enabled = c.boolean();
    c.expect(",");
    c.expect("\"point\":");
    s.crash.point = c.integer();
    c.expect(",");
    c.expect("\"at_sec\":");
    s.crash.at_sec = c.number();
    c.expect(",");
    c.expect("\"takeover_delay_sec\":");
    s.crash.takeover_delay_sec = c.number();
    c.expect("}");
    c.expect(",");
  }
  c.expect("\"nodes\":");
  s.nodes = parse_array<FuzzNode>(c, parse_node);
  c.expect(",");
  c.expect("\"clients\":");
  s.clients = parse_array<FuzzClient>(c, parse_client);
  c.expect(",");
  c.expect("\"faults\":");
  s.faults = parse_array<FuzzFault>(c, parse_fault);
  c.expect("}");
  c.expect("}");
  c.skip_ws();
  if (!c.ok || c.pos != c.text.size()) return std::nullopt;
  if (!validate(repro)) return std::nullopt;
  return repro;
}

bool write_repro(const std::string& path, const ReproFile& repro) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_json(repro);
  return static_cast<bool>(file);
}

std::optional<ReproFile> load_repro(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace eden::check
