// ScenarioSpec: the fully-serializable description of one fuzzed EDEN
// deployment — topology, churn schedule, fault windows, jitter regime and
// client workload. Everything eden::check does (generate, run, shrink,
// replay) is a pure function of a spec, which is what makes a `.eden-repro`
// file self-contained: the spec plus the seed reproduces the exact event
// sequence bit for bit.
//
// Fault endpoints are symbolic (entity kind + index) rather than raw host
// ids, so the shrinker can drop nodes and clients without invalidating the
// remaining windows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace eden::check {

enum class SpecNetKind : int { kGeo = 0, kMatrix = 1 };

enum class EndpointKind : int { kManager = 0, kNode = 1, kClient = 2 };

struct FuzzEndpoint {
  EndpointKind kind{EndpointKind::kManager};
  int index{0};  // node/client position in the spec; ignored for kManager
  bool operator==(const FuzzEndpoint&) const = default;
};

enum class FaultKind : int {
  kCut = 0,       // drop a -> b (one direction)
  kPartition = 1, // drop both directions between a and b
  kSlow = 2,      // multiply a -> b delays by `factor`
  kIsolate = 3,   // wildcard: drop everything to/from `a`
};

struct FuzzFault {
  FaultKind kind{FaultKind::kCut};
  FuzzEndpoint a{};
  FuzzEndpoint b{};    // unused for kIsolate
  double factor{1.0};  // kSlow only
  double from_sec{0.0};
  double until_sec{0.0};
  bool operator==(const FuzzFault&) const = default;
};

struct FuzzNode {
  double lat{44.9778};
  double lon{-93.2650};
  int tier{2};  // net::AccessTier as int (kCable by default)
  int cores{2};
  double base_frame_ms{30.0};
  bool dedicated{false};
  bool is_cloud{false};
  double extra_rtt_ms{0.0};
  double heartbeat_period_sec{1.0};
  double start_sec{0.0};
  double stop_sec{-1.0};  // < 0: alive until the end of the run
  bool graceful_stop{false};
  // Host background load, plus an optional linear ramp toward bg_ramp_to
  // over [bg_ramp_start_sec, bg_ramp_end_sec] — the slow-leak-degradation
  // overload family (a volunteer host gradually reclaiming its CPU).
  double background_load{0.0};
  double bg_ramp_to{-1.0};  // < 0: no ramp
  double bg_ramp_start_sec{-1.0};
  double bg_ramp_end_sec{-1.0};
  // Burstable-CPU (t2/t3-style) volunteers — the regime where throttle
  // latching and credit telemetry matter. v3 repro fields.
  bool burstable{false};
  double burst_baseline{0.4};
  double initial_credits_core_sec{30.0};
  bool operator==(const FuzzNode&) const = default;
};

struct FuzzClient {
  double lat{44.9778};
  double lon{-93.2650};
  int tier{2};
  int top_n{3};
  double probing_period_sec{3.0};
  bool proactive{true};
  double switch_margin{0.1};
  double max_fps{15.0};
  double start_sec{0.0};
  bool send_frames{true};
  // Full client stop (detach + end of frame stream) at this time; < 0
  // keeps the client running to the horizon. The diurnal-wave overload
  // family uses staggered stops to model load receding.
  double stop_sec{-1.0};
  bool operator==(const FuzzClient&) const = default;
};

// Seeded-fault bits for `ScenarioSpec::chaos` — each deliberately breaks a
// protocol invariant so the oracle suite can be proven live.
inline constexpr unsigned kChaosFreezeSeqNum = 1u << 0;
// Standby replays the journal dropping the last committed batch at
// takeover — must trip the journal-seqnum oracle and the dump witness.
inline constexpr unsigned kChaosDropLastBatchOnReplay = 1u << 1;

// Manager crash + standby takeover injection (requires `standby`). `point`
// is journal::CrashPoint as int (0..3).
struct FuzzCrash {
  bool enabled{false};
  int point{0};
  double at_sec{0.0};
  double takeover_delay_sec{0.5};
  bool operator==(const FuzzCrash&) const = default;
};

struct ScenarioSpec {
  std::uint64_t seed{0};
  int net_kind{0};  // SpecNetKind
  double default_rtt_ms{25.0};   // kMatrix only
  double default_bw_mbps{100.0}; // kMatrix only
  double jitter_sigma{0.0};
  double horizon_sec{30.0};
  // Quiet tail before the horizon: no churn event or fault window may touch
  // [horizon - cooldown, horizon], so end-of-run oracles observe a settled
  // system instead of racing in-flight failovers.
  double cooldown_sec{10.0};
  double heartbeat_ttl_sec{3.0};
  double user_idle_ttl_sec{15.0};
  unsigned chaos{0};
  // Load-feedback elasticity on: the manager runs its overload policy,
  // nodes get feedback acks, executors shed under throttle and dropped
  // frames fast-fail (see harness::ScenarioConfig::load_feedback). Also
  // arms the starvation oracle.
  bool load_feedback{false};
  // Durable-journal + warm-standby wiring (harness StandbyConfig). v4
  // repro fields; off by default so older specs run byte-identically.
  bool standby{false};
  FuzzCrash crash{};
  std::vector<FuzzNode> nodes;
  std::vector<FuzzClient> clients;
  std::vector<FuzzFault> faults;
  bool operator==(const ScenarioSpec&) const = default;
};

// True when a run of this spec is expected to move frames: at least one
// frame-sending client plus an anchor node that is up from (near) t = 0 to
// the horizon. Degenerate 0/1-node topologies without an anchor are legal
// fuzz inputs but make no frame promise.
// The crash the runner will actually inject for this spec, with the
// timing clamps applied (single source of truth for run_spec and the
// oracles): the takeover must complete comfortably before the quiet tail
// so end-of-run oracles see a settled post-failover system. Returns
// nullopt when the spec requests no crash or the horizon leaves no
// feasible window.
struct EffectiveCrash {
  int point{0};
  double at_sec{0.0};
  double takeover_delay_sec{0.5};
};

[[nodiscard]] inline std::optional<EffectiveCrash> effective_crash(
    const ScenarioSpec& spec) {
  if (!spec.standby || !spec.crash.enabled) return std::nullopt;
  EffectiveCrash out;
  out.point = spec.crash.point < 0 ? 0 : spec.crash.point > 3 ? 3
                                                              : spec.crash.point;
  out.takeover_delay_sec =
      std::min(2.0, std::max(0.1, spec.crash.takeover_delay_sec));
  const double quiet_start = spec.horizon_sec - spec.cooldown_sec;
  // Latest viable trigger: leave room for the armed-crash fallback (1 s),
  // the takeover delay, and a settling margin inside the quiet tail.
  const double latest = quiet_start - out.takeover_delay_sec - 1.5;
  if (latest < 0.5) return std::nullopt;
  out.at_sec = std::min(latest, std::max(0.5, spec.crash.at_sec));
  return out;
}

[[nodiscard]] inline bool expects_frames(const ScenarioSpec& spec) {
  bool sender = false;
  for (const FuzzClient& c : spec.clients) sender = sender || c.send_frames;
  if (!sender) return false;
  for (const FuzzNode& n : spec.nodes) {
    if (n.start_sec <= 0.5 && n.stop_sec < 0.0) return true;
  }
  return false;
}

}  // namespace eden::check
