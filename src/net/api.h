// Transport-agnostic async interfaces between the three EDEN roles.
// Clients talk to nodes through NodeApi and to the manager through
// ManagerApi; nodes talk to the manager through ManagerLink. The simulator
// and the TCP runtime each provide implementations, so the protocol state
// machines (EdgeClient, EdgeNode, CentralManager) are written once.
//
// Callback convention: std::nullopt / false means the call failed — the
// peer was unreachable or the call timed out. Callbacks are invoked exactly
// once.
//
// Completion callbacks are sim::Func — a move-only SBO callable — rather
// than std::function: every per-frame and per-probe completion the client
// passes down fits the 48-byte inline buffer, and move-only captures let
// one completion carry another inline instead of through shared_ptr.
#pragma once

#include <optional>

#include "net/protocol.h"
#include "sim/callback.h"

namespace eden::net {

// Completion callback for an api call producing a T.
template <typename T>
using Done = sim::Func<T>;

// A client's handle to one edge node (Table I probing APIs + offload path).
class NodeApi {
 public:
  virtual ~NodeApi() = default;

  [[nodiscard]] virtual NodeId id() const = 0;

  // RTT_probe(): lightweight echo. The caller times the round trip itself;
  // `done(false)` signals timeout/unreachable.
  virtual void rtt_probe(ClientId from, Done<bool> done) = 0;

  // Process_probe(): fetch the cached what-if processing performance.
  virtual void process_probe(
      ClientId from, Done<std::optional<ProcessProbeResponse>> done) = 0;

  // Join(): synchronized attach (Algorithm 1); may be rejected when the
  // node state changed since probing.
  virtual void join(const JoinRequest& request,
                    Done<std::optional<JoinResponse>> done) = 0;

  // Unexpected_join(): failover attach to a backup node; never rejected.
  virtual void unexpected_join(const JoinRequest& request,
                               Done<bool> done) = 0;

  // Leave(): detach notification (best effort, no response needed).
  virtual void leave(ClientId client) = 0;

  // Offload one application frame for processing.
  virtual void offload(const FrameRequest& request,
                       Done<std::optional<FrameResponse>> done) = 0;
};

// A client's handle to the central manager.
class ManagerApi {
 public:
  virtual ~ManagerApi() = default;
  virtual void discover(const DiscoveryRequest& request,
                        Done<std::optional<DiscoveryResponse>> done) = 0;
};

// An edge node's handle to the central manager.
class ManagerLink {
 public:
  virtual ~ManagerLink() = default;
  virtual void register_node(const NodeStatus& status) = 0;
  virtual void heartbeat(const NodeStatus& status) = 0;
  // Load-feedback heartbeat: like heartbeat(), but the manager's ack
  // (rejoin detection, overload phase) is returned to the node. The default
  // forwards to the one-way path and reports "no feedback", so transports
  // that predate the overload loop keep working unchanged.
  virtual void heartbeat_feedback(const NodeStatus& status,
                                  Done<std::optional<HeartbeatAck>> done) {
    heartbeat(status);
    done(std::nullopt);
  }
  virtual void deregister(NodeId node) = 0;
};

}  // namespace eden::net
