#include "net/trace_network.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace eden::net {

TraceNetwork::TraceNetwork(const sim::Clock& clock, double default_rtt_ms,
                           double default_bw_mbps, double jitter_sigma)
    : clock_(&clock),
      default_rtt_ms_(default_rtt_ms),
      default_bw_mbps_(default_bw_mbps),
      jitter_sigma_(jitter_sigma) {}

void TraceNetwork::add_sample(HostId a, HostId b, SimTime at, double rtt_ms) {
  auto& series = samples_[key(a, b)];
  series.emplace_back(at, rtt_ms);
  // Keep sorted; appends are usually already in order.
  for (std::size_t i = series.size(); i > 1 && series[i - 1] < series[i - 2];
       --i) {
    std::swap(series[i - 1], series[i - 2]);
  }
}

int TraceNetwork::load_trace_text(const std::string& text) {
  std::vector<std::tuple<HostId, HostId, SimTime, double>> parsed;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    double t_sec = 0;
    unsigned a = 0;
    unsigned b = 0;
    double rtt = 0;
    if (std::sscanf(line.c_str(), " %lf , %u , %u , %lf", &t_sec, &a, &b,
                    &rtt) != 4 ||
        rtt < 0 || t_sec < 0) {
      return -1;
    }
    parsed.emplace_back(HostId{a}, HostId{b}, sec(t_sec), rtt);
  }
  for (const auto& [a, b, at, rtt] : parsed) add_sample(a, b, at, rtt);
  return static_cast<int>(parsed.size());
}

int TraceNetwork::load_trace_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return -1;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return load_trace_text(buffer.str());
}

void TraceNetwork::set_uplink_mbps(HostId host, double mbps) {
  uplink_mbps_[host] = mbps;
}

SimDuration TraceNetwork::base_rtt(HostId a, HostId b) const {
  if (a == b) return msec(0.05);
  const auto it = samples_.find(key(a, b));
  if (it == samples_.end() || it->second.empty()) {
    return msec(default_rtt_ms_);
  }
  const auto& series = it->second;
  const SimTime now = clock_->now();
  // Last sample with time <= now; before the first sample, the first.
  auto pos = std::upper_bound(
      series.begin(), series.end(), std::make_pair(now, 1e300));
  if (pos == series.begin()) return msec(series.front().second);
  return msec(std::prev(pos)->second);
}

double TraceNetwork::bandwidth_mbps(HostId a, HostId b) const {
  double bw = default_bw_mbps_;
  if (const auto it = uplink_mbps_.find(a); it != uplink_mbps_.end()) {
    bw = std::min(bw, it->second);
  }
  if (const auto it = uplink_mbps_.find(b); it != uplink_mbps_.end()) {
    bw = std::min(bw, it->second);
  }
  return bw;
}

std::size_t TraceNetwork::sample_count() const {
  std::size_t total = 0;
  for (const auto& [k, series] : samples_) total += series.size();
  return total;
}

}  // namespace eden::net
