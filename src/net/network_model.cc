#include "net/network_model.h"

#include <algorithm>
#include <cmath>

namespace eden::net {

SimDuration NetworkModel::sample_owd(HostId a, HostId b, Rng& rng) const {
  const double owd_us = static_cast<double>(base_rtt(a, b)) / 2.0;
  const double sigma = jitter_sigma();
  if (sigma <= 0) return static_cast<SimDuration>(owd_us);
  // Log-normal multiplicative jitter with median 1 — delays can spike but
  // never go negative.
  const double factor = rng.lognormal(0.0, sigma);
  return static_cast<SimDuration>(owd_us * factor);
}

SimDuration NetworkModel::transfer_delay(HostId a, HostId b, double bytes) const {
  if (bytes <= 0) return 0;
  const double mbps = std::max(0.01, bandwidth_mbps(a, b));
  const double seconds = bytes * 8.0 / (mbps * 1e6);
  return sec(seconds);
}

MatrixNetwork::MatrixNetwork(double default_rtt_ms, double default_bw_mbps,
                             double jitter_sigma)
    : default_rtt_ms_(default_rtt_ms),
      default_bw_mbps_(default_bw_mbps),
      jitter_sigma_(jitter_sigma) {}

void MatrixNetwork::set_rtt_ms(HostId a, HostId b, double rtt_ms) {
  rtt_ms_[key(a, b)] = rtt_ms;
  rtt_ms_[key(b, a)] = rtt_ms;
  ++version_;
}

void MatrixNetwork::set_bandwidth_mbps(HostId a, HostId b, double mbps) {
  bw_mbps_[key(a, b)] = mbps;
  bw_mbps_[key(b, a)] = mbps;
  ++version_;
}

void MatrixNetwork::set_uplink_mbps(HostId host, double mbps) {
  uplink_mbps_[host] = mbps;
  ++version_;
}

SimDuration MatrixNetwork::base_rtt(HostId a, HostId b) const {
  if (a == b) return msec(0.05);  // loopback
  const auto it = rtt_ms_.find(key(a, b));
  return msec(it != rtt_ms_.end() ? it->second : default_rtt_ms_);
}

double MatrixNetwork::bandwidth_mbps(HostId a, HostId b) const {
  double bw = default_bw_mbps_;
  if (const auto it = bw_mbps_.find(key(a, b)); it != bw_mbps_.end()) {
    bw = it->second;
  }
  if (const auto it = uplink_mbps_.find(a); it != uplink_mbps_.end()) {
    bw = std::min(bw, it->second);
  }
  return bw;
}

namespace {
// One-way last-mile latency in ms per access tier, calibrated so that the
// composed RTT classes line up with the paper's Fig 1 measurements:
// volunteer edges ~5-20 ms, Local Zone ~12-28 ms, us-east-2 cloud ~70-85 ms
// from home WiFi in the same metro area.
struct TierParams {
  double latency_ms;
  double uplink_mbps;
};

TierParams tier_params(AccessTier tier) {
  switch (tier) {
    case AccessTier::kLan: return {0.3, 900.0};
    case AccessTier::kFiber: return {2.5, 300.0};
    case AccessTier::kCable: return {5.0, 35.0};
    case AccessTier::kDsl: return {9.0, 12.0};
    case AccessTier::kLocalZone: return {7.5, 500.0};
    case AccessTier::kCloud: return {6.0, 1000.0};
  }
  return {5.0, 35.0};
}

// Distance-dependent RTT: ~0.06 ms/km inside a metro (routing inflation
// dominates), dropping to ~0.03 ms/km on long-haul backbone paths with a
// fixed hand-off cost. Calibrated so MSP -> us-east-2 lands near the
// paper's ~75 ms measurements.
double distance_rtt_ms(double km) {
  constexpr double kMetroMsPerKm = 0.06;
  constexpr double kBackboneMsPerKm = 0.03;
  constexpr double kMetroLimitKm = 100.0;
  if (km <= kMetroLimitKm) return km * kMetroMsPerKm;
  return kMetroLimitKm * kMetroMsPerKm + 3.0 +
         (km - kMetroLimitKm) * kBackboneMsPerKm;
}
}  // namespace

double GeoNetwork::tier_latency_ms(AccessTier tier) {
  return tier_params(tier).latency_ms;
}

double GeoNetwork::tier_uplink_mbps(AccessTier tier) {
  return tier_params(tier).uplink_mbps;
}

GeoNetwork::GeoNetwork(double jitter_sigma, double pair_variation_ms)
    : jitter_sigma_(jitter_sigma),
      pair_variation_ms_(pair_variation_ms),
      shared_(std::make_shared<SharedTopology>()) {}

GeoNetwork::GeoNetwork(std::shared_ptr<SharedTopology> shared,
                       double jitter_sigma, double pair_variation_ms)
    : jitter_sigma_(jitter_sigma),
      pair_variation_ms_(pair_variation_ms),
      shared_(std::move(shared)) {}

std::unique_ptr<GeoNetwork> GeoNetwork::shared_view() const {
  return std::unique_ptr<GeoNetwork>(
      new GeoNetwork(shared_, jitter_sigma_, pair_variation_ms_));
}

void GeoNetwork::add_host(HostId host, geo::GeoPoint position, AccessTier tier,
                          int isp) {
  shared_->hosts[host] = HostInfo{position, tier, 0.0, isp};
  ++shared_->version;
}

std::optional<geo::GeoPoint> GeoNetwork::position(HostId host) const {
  const auto it = shared_->hosts.find(host);
  if (it == shared_->hosts.end()) return std::nullopt;
  return it->second.position;
}

void GeoNetwork::set_extra_rtt_ms(HostId host, double ms) {
  if (const auto it = shared_->hosts.find(host); it != shared_->hosts.end()) {
    it->second.extra_rtt_ms = ms;
    ++shared_->version;
  }
}

void GeoNetwork::invalidate_cache() const {
  cache_.clear();
  cache_used_ = 0;
  cache_version_ = shared_->version;
}

const GeoNetwork::PairMetrics& GeoNetwork::cached_pair(HostId a,
                                                       HostId b) const {
  // Lazy invalidation: a topology mutation (possibly through another view
  // of the shared host map) bumps the shared version; the first lookup
  // after that drops this view's memo.
  if (cache_version_ != shared_->version) invalidate_cache();
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a.value) << 32) | b.value;
  if (cache_.empty()) cache_.resize(256);
  // Fibonacci hashing spreads the sequential host-id pairs well enough for
  // linear probing at <= 70% load.
  std::size_t mask = cache_.size() - 1;
  std::size_t index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (cache_[index].key != key) {
    if (cache_[index].key == kEmptyKey) {
      if (cache_used_ * 10 >= cache_.size() * 7) {  // grow and rehash
        std::vector<PairCacheEntry> old = std::move(cache_);
        cache_.assign(old.size() * 2, PairCacheEntry{});
        mask = cache_.size() - 1;
        for (const PairCacheEntry& entry : old) {
          if (entry.key == kEmptyKey) continue;
          std::size_t j = (entry.key * 0x9e3779b97f4a7c15ull >> 32) & mask;
          while (cache_[j].key != kEmptyKey) j = (j + 1) & mask;
          cache_[j] = entry;
        }
        index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
        while (cache_[index].key != kEmptyKey &&
               cache_[index].key != key) {
          index = (index + 1) & mask;
        }
        if (cache_[index].key == key) return cache_[index].metrics;
      }
      cache_[index].key = key;
      cache_[index].metrics = compute_pair(a, b);
      ++cache_used_;
      return cache_[index].metrics;
    }
    index = (index + 1) & mask;
  }
  return cache_[index].metrics;
}

SimDuration GeoNetwork::base_rtt(HostId a, HostId b) const {
  if (a == b) return msec(0.05);
  return cached_pair(a, b).rtt;
}

GeoNetwork::PairMetrics GeoNetwork::compute_pair(HostId a, HostId b) const {
  const auto ia = shared_->hosts.find(a);
  const auto ib = shared_->hosts.find(b);
  if (ia == shared_->hosts.end() || ib == shared_->hosts.end()) {
    return PairMetrics{msec(50.0), 10.0};
  }
  const double km = geo::haversine_km(ia->second.position, ib->second.position);
  // RTT = both last-miles traversed twice + distance propagation + fixed
  // extras (e.g. backbone to the cloud region).
  // Deterministic per-pair peering: the same two hosts always see the same
  // routing cost, but different pairs differ — this is what client-side
  // probing discovers and server-centric policies cannot. Residential
  // pairs in the same metro are sometimes "well-peered" (same local ISP
  // loop): their last-mile cost collapses to near-LAN levels, the paper's
  // explanation for volunteers beating the Local Zone.
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  std::uint64_t h = (lo << 32) | hi;  // full murmur3 fmix64
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;

  auto residential = [](AccessTier tier) {
    return tier == AccessTier::kLan || tier == AccessTier::kFiber ||
           tier == AccessTier::kCable || tier == AccessTier::kDsl;
  };
  const bool well_peered =
      residential(ia->second.tier) && residential(ib->second.tier) &&
      km < 30.0 && ia->second.isp >= 0 && ia->second.isp == ib->second.isp;

  double last_mile = tier_params(ia->second.tier).latency_ms * 2.0 +
                     tier_params(ib->second.tier).latency_ms * 2.0;
  double peering = 0.0;
  if (well_peered) {
    last_mile *= 0.25;
  } else {
    peering = pair_variation_ms_ * u;
    // Paths into engineered infrastructure (Local Zone / cloud) vary less
    // than residential peering does.
    if (!residential(ia->second.tier) || !residential(ib->second.tier)) {
      peering *= 0.4;
    }
  }

  const double rtt_ms = last_mile + distance_rtt_ms(km) + peering +
                        ia->second.extra_rtt_ms + ib->second.extra_rtt_ms;
  const double bw = std::min(tier_params(ia->second.tier).uplink_mbps,
                             tier_params(ib->second.tier).uplink_mbps);
  return PairMetrics{msec(rtt_ms), bw};
}

double GeoNetwork::bandwidth_mbps(HostId a, HostId b) const {
  if (a == b) {
    const auto it = shared_->hosts.find(a);
    return it == shared_->hosts.end()
               ? 10.0
               : tier_params(it->second.tier).uplink_mbps;
  }
  return cached_pair(a, b).bw_mbps;
}

}  // namespace eden::net
