// Wire-level protocol messages of the EDEN edge-selection protocol —
// the request/response payloads behind the probing APIs of Table I in the
// paper, plus manager discovery and node heartbeats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace eden::net {

// Node-reported status, shipped in registration and heartbeats and used by
// the manager's global selection (geo-proximity, capacity, utilization,
// network affiliation).
struct NodeStatus {
  NodeId node;
  std::string geohash;       // node location at the manager's precision
  int cores{1};
  double base_frame_ms{0};   // nominal per-frame processing time when idle
  int attached_users{0};
  double utilization{0};     // 0..1 executor busy fraction
  bool dedicated{false};     // dedicated edge infrastructure (vs volunteer)
  bool is_cloud{false};      // cloud fallback node
  std::string network_tag;   // optional network affiliation label
  // Transport address ("host:port") for the live TCP runtime; unused by
  // the simulator, which routes on NodeId.
  std::string endpoint;
  // Application server types deployed on this node (§III-B). Empty means
  // the node serves every type (the single-app deployments of the paper).
  std::vector<std::string> app_types;
  // Load-feedback telemetry piggybacked on heartbeats (overload-aware
  // elasticity). Always populated; the manager ignores it unless its
  // overload policy is enabled.
  int queue_depth{0};        // executor jobs waiting behind the busy cores
  double burst_credits{0};   // remaining burst credits in core-seconds
  double p95_proc_ms{0};     // p95 of recent frame proc times, 0 = no sample
};

// Client -> manager: edge discovery query (first step of the 2-step
// selection).
struct DiscoveryRequest {
  ClientId client;
  std::string geohash;      // client location
  std::string network_tag;  // optional affiliation (LAN / preferred ISP)
  int top_n{3};             // size of the candidate edge list
  // Application server type the user needs; empty matches any node.
  std::string app_type;
};

struct CandidateInfo {
  NodeId node;
  std::string geohash;
  double score{0};        // manager-side ranking score (higher = better)
  std::string endpoint;   // node address for the live TCP runtime
};

struct DiscoveryResponse {
  std::vector<CandidateInfo> candidates;  // sorted best-first, size <= top_n
};

// Node -> client: Process_probe() result. `whatif_ms` is the cached
// what-if processing time; `current_ms` and `attached_users` feed the GO
// (global overhead) selection formula.
struct ProcessProbeResponse {
  double whatif_ms{0};
  double current_ms{0};
  int attached_users{0};
  std::uint64_t seq_num{0};
};

// Client -> node: Join()/Unexpected_join() request. `seq_num` is the node
// state sequence number observed at probing time (Algorithm 1).
struct JoinRequest {
  ClientId client;
  std::uint64_t seq_num{0};
  double rate_fps{0};  // requested offload rate, for node bookkeeping
};

struct JoinResponse {
  bool accepted{false};
  std::uint64_t seq_num{0};  // node's sequence number after handling
};

// Client -> node: one offloaded application frame. `cost` is the frame's
// compute cost in units of the node's standard test frame — heterogeneous
// application types differ in per-frame cost as well as size and rate.
struct FrameRequest {
  ClientId client;
  std::uint64_t frame_id{0};
  double bytes{0};
  double cost{1.0};
};

// Node -> client: the (lightweight) result of processing one frame.
//
// Size note: the struct must stay within 32 bytes — the simulator's rpc
// completion event (SimNetwork* + handle + FrameResponse) has to fit the
// scheduler's 48-byte inline callback buffer or every frame heap-allocates.
struct FrameResponse {
  std::uint64_t frame_id{0};
  double proc_ms{0};  // queueing + processing time inside the node
  // The executor shed this frame (queue full or burst-credit throttle);
  // proc_ms is meaningless. The client counts it as a failed frame without
  // waiting for the rpc timeout.
  bool dropped{false};
  // Server-initiated re-discover hint: nonzero while the manager holds the
  // node in its overload set. The value identifies the overload episode, so
  // a client re-runs discovery at most once per episode.
  std::uint64_t redisc_epoch{0};
};

// Manager -> node: feedback returned on a load-feedback heartbeat.
struct HeartbeatAck {
  // The heartbeat hit an expired (or never-registered) registry entry and
  // was treated as an explicit re-registration; the node must invalidate
  // in-flight joins (seqNum bump) so no pre-expiry seqNum is reused.
  bool rejoined{false};
  bool degraded{false};          // node is in the manager's overload set
  std::uint64_t phase_epoch{0};  // overload-episode counter for this node
};

}  // namespace eden::net
