// Trace-driven network model: pairwise RTT time series replayed against
// the simulation clock. This is how real measurement campaigns (like the
// paper's tc-shaped emulation inputs) plug into EDEN — network conditions
// then change over time independently of load, exercising the client's
// periodic re-selection.
//
// Trace format (CSV, '#' comments):
//   t_sec,host_a,host_b,rtt_ms
// Samples are step-interpolated: a pair's RTT is the most recent sample at
// or before now(); before the first sample the first sample applies.
// Pairs are symmetric; pairs with no samples fall back to the default.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/network_model.h"
#include "sim/clock.h"

namespace eden::net {

class TraceNetwork final : public NetworkModel {
 public:
  explicit TraceNetwork(const sim::Clock& clock, double default_rtt_ms = 50.0,
                        double default_bw_mbps = 50.0,
                        double jitter_sigma = 0.05);

  // Add one sample programmatically (kept sorted internally).
  void add_sample(HostId a, HostId b, SimTime at, double rtt_ms);

  // Parse trace text; returns the number of samples loaded, or -1 on a
  // malformed line (nothing is partially applied on failure).
  int load_trace_text(const std::string& text);
  // Load from a file; -1 on open or parse failure.
  int load_trace_file(const std::string& path);

  void set_uplink_mbps(HostId host, double mbps);

  [[nodiscard]] SimDuration base_rtt(HostId a, HostId b) const override;
  [[nodiscard]] double bandwidth_mbps(HostId a, HostId b) const override;
  [[nodiscard]] double jitter_sigma() const override { return jitter_sigma_; }

  [[nodiscard]] std::size_t sample_count() const;

 private:
  using Key = std::uint64_t;
  static Key key(HostId a, HostId b) {
    const std::uint64_t lo = std::min(a.value, b.value);
    const std::uint64_t hi = std::max(a.value, b.value);
    return (lo << 32) | hi;
  }

  const sim::Clock* clock_;
  double default_rtt_ms_;
  double default_bw_mbps_;
  double jitter_sigma_;
  // Per pair: (time, rtt_ms) sorted by time.
  std::map<Key, std::vector<std::pair<SimTime, double>>> samples_;
  std::map<HostId, double> uplink_mbps_;
};

}  // namespace eden::net
