// Liveness registry: which hosts are currently up. A dead host silently
// drops every message addressed to it — clients only learn of failures
// through timeouts, exactly as with real volunteer nodes.
//
// Host ids are dense small integers in every harness, so liveness is a
// flat byte vector: the alive() check sits on the per-delivery hot path
// (every arrival guard and rpc completion consults it).
#pragma once

#include <vector>

#include "common/types.h"

namespace eden::net {

class HostTable {
 public:
  void set_alive(HostId host, bool alive) {
    if (!host.valid()) return;  // the wildcard id is never a real host
    if (host.value >= alive_.size()) {
      if (!alive) return;  // beyond the table == already dead
      alive_.resize(host.value + 1, 0);
    }
    alive_[host.value] = alive ? 1 : 0;
  }

  [[nodiscard]] bool alive(HostId host) const {
    return host.value < alive_.size() && alive_[host.value] != 0;
  }

 private:
  std::vector<std::uint8_t> alive_;
};

}  // namespace eden::net
