// Liveness registry: which hosts are currently up. A dead host silently
// drops every message addressed to it — clients only learn of failures
// through timeouts, exactly as with real volunteer nodes.
#pragma once

#include <unordered_map>

#include "common/types.h"

namespace eden::net {

class HostTable {
 public:
  void set_alive(HostId host, bool alive) { alive_[host] = alive; }

  [[nodiscard]] bool alive(HostId host) const {
    const auto it = alive_.find(host);
    return it != alive_.end() && it->second;
  }

 private:
  std::unordered_map<HostId, bool> alive_;
};

}  // namespace eden::net
