#include "net/shard_router.h"

#include <stdexcept>
#include <utility>

namespace eden::net {

ShardRouter::ShardId ShardRouter::add_shard(SimNetwork* fabric,
                                            sim::Simulator* simulator) {
  fabrics_.push_back(fabric);
  sims_.push_back(simulator);
  outboxes_.emplace_back();
  return static_cast<ShardId>(sims_.size() - 1);
}

void ShardRouter::set_shard(HostId host, ShardId shard) {
  if (host.value >= owner_.size()) owner_.resize(host.value + 1, 0);
  owner_[host.value] = shard;
}

void ShardRouter::post(ShardId src, ShardId dst, SimTime arrival,
                       std::uint64_t key_hi, std::uint64_t key_lo,
                       sim::Callback cb) {
  outboxes_[src].push_back(
      Envelope{arrival, key_hi, key_lo, dst, std::move(cb)});
}

std::size_t ShardRouter::flush(SimTime window_start) {
  std::size_t injected = 0;
  for (auto& outbox : outboxes_) {
    for (Envelope& e : outbox) {
      if (e.arrival < window_start) {
        throw std::runtime_error(
            "ShardRouter::flush: cross-shard arrival precedes the window "
            "start — the lookahead bound was violated");
      }
      sims_[e.dst]->schedule_delivery(
          e.arrival, sim::Simulator::DeliveryKey{e.hi, e.lo}, std::move(e.cb));
      ++injected;
    }
    outbox.clear();
  }
  routed_ += injected;
  return injected;
}

bool ShardRouter::idle() const {
  for (const auto& outbox : outboxes_) {
    if (!outbox.empty()) return false;
  }
  return true;
}

}  // namespace eden::net
