#include "net/sim_network.h"

#include <algorithm>
#include <cmath>

namespace eden::net {

namespace {

// Drop windows whose end has passed (queries are monotone in simulated
// time, so they can never match again), preserving the relative order of
// the survivors. Returns true if the bucket is now empty.
template <typename Vec>
bool purge_expired(Vec& windows, SimTime now) {
  windows.erase(std::remove_if(windows.begin(), windows.end(),
                               [now](const auto& w) { return w.end <= now; }),
                windows.end());
  return windows.empty();
}

template <typename Map, typename Key>
bool bucket_dropped(Map& map, Key key, SimTime now) {
  const auto it = map.find(key);
  if (it == map.end()) return false;
  if (purge_expired(it->second, now)) {
    map.erase(it);
    return false;
  }
  for (const auto& w : it->second) {
    if (now >= w.begin && now < w.end) return true;
  }
  return false;
}

}  // namespace

void FaultInjector::cut_link(HostId a, HostId b, SimTime from, SimTime until) {
  const Window w{from, until};
  if (a.valid() && b.valid()) {
    pair_cuts_[pair_key(a, b)].push_back(w);
  } else if (a.valid()) {
    from_cuts_[a.value].push_back(w);  // any destination
  } else if (b.valid()) {
    to_cuts_[b.value].push_back(w);  // any sender
  } else {
    global_cuts_.push_back(w);
  }
}

void FaultInjector::partition(HostId a, HostId b, SimTime from, SimTime until) {
  cut_link(a, b, from, until);
  cut_link(b, a, from, until);
}

void FaultInjector::slow_link(HostId a, HostId b, double factor, SimTime from,
                              SimTime until) {
  pair_slows_[pair_key(a, b)].push_back(SlowWindow{from, until, factor});
}

void FaultInjector::isolate_host(HostId host, SimTime from, SimTime until) {
  cut_link(host, HostId{}, from, until);
  cut_link(HostId{}, host, from, until);
}

bool FaultInjector::dropped(HostId from, HostId to, SimTime now) const {
  // Exact pair, then the isolation wildcards, then fully-global cuts. Each
  // bucket only holds windows that can match this query, so the scan is
  // O(active windows on this path) instead of O(all injected faults).
  if (bucket_dropped(pair_cuts_, pair_key(from, to), now)) return true;
  if (bucket_dropped(from_cuts_, from.value, now)) return true;
  if (bucket_dropped(to_cuts_, to.value, now)) return true;
  if (!global_cuts_.empty() && !purge_expired(global_cuts_, now)) {
    for (const auto& w : global_cuts_) {
      if (now >= w.begin && now < w.end) return true;
    }
  }
  return false;
}

double FaultInjector::delay_factor(HostId from, HostId to, SimTime now) const {
  const auto it = pair_slows_.find(pair_key(from, to));
  if (it == pair_slows_.end()) return 1.0;
  if (purge_expired(it->second, now)) {
    pair_slows_.erase(it);
    return 1.0;
  }
  double factor = 1.0;
  // Insertion order is preserved through purging, so stacked slow windows
  // multiply in the same order (and produce the same float) as ever.
  for (const auto& w : it->second) {
    if (now >= w.begin && now < w.end) factor *= w.factor;
  }
  return factor;
}

std::size_t FaultInjector::cut_window_count() const {
  std::size_t n = global_cuts_.size();
  for (const auto& [key, windows] : pair_cuts_) n += windows.size();
  for (const auto& [key, windows] : from_cuts_) n += windows.size();
  for (const auto& [key, windows] : to_cuts_) n += windows.size();
  return n;
}

std::size_t FaultInjector::slow_window_count() const {
  std::size_t n = 0;
  for (const auto& [key, windows] : pair_slows_) n += windows.size();
  return n;
}

SimNetwork::~SimNetwork() {
  for (auto& chunk : rpc_chunks_) {
    for (std::uint32_t i = 0; i < kRpcSlotsPerChunk; ++i) {
      RpcSlot& slot = chunk[i];
      if (slot.invoke_done != nullptr) {
        slot.invoke_done(slot.done_buf, abandon_token());
        slot.invoke_done = nullptr;
      }
    }
  }
}

void SimNetwork::grow_rpc_pool() {
  const auto base =
      static_cast<std::uint32_t>(rpc_chunks_.size()) * kRpcSlotsPerChunk;
  auto chunk = std::make_unique<RpcSlot[]>(kRpcSlotsPerChunk);
  for (std::uint32_t i = 0; i < kRpcSlotsPerChunk; ++i) {
    chunk[i].invoke_done = nullptr;
    chunk[i].generation = 0;
    chunk[i].next_free =
        i + 1 < kRpcSlotsPerChunk ? base + i + 1 : kNoFreeSlot;
  }
  rpc_chunks_.push_back(std::move(chunk));
  rpc_free_head_ = base;
}

void SimNetwork::rpc_timeout(std::uint64_t handle) {
  RpcSlot* slot = lookup_rpc(handle);
  if (slot == nullptr || slot->done_fired) return;
  slot->done_fired = true;
  slot->timeout_event = sim::kInvalidEvent;
  // A timeout is local bookkeeping at the caller, not a network arrival,
  // so it fires even if the caller host has since died (matching the
  // historical shared_ptr implementation). Invoke before any release so a
  // re-entrant rpc issued from the callback cannot reuse this buffer.
  slot->invoke_done(slot->done_buf, nullptr);
  if (slot->request_consumed) release_rpc_slot(handle_index(handle));
}

void SimNetwork::consume_request(std::uint64_t handle) {
  RpcSlot* slot = lookup_rpc(handle);
  if (slot == nullptr) return;
  slot->request_consumed = true;
  if (slot->done_fired) release_rpc_slot(handle_index(handle));
}

SimDuration SimNetwork::sample_delay(HostId from, HostId to, double bytes) {
  const std::uint64_t version = model_->topology_version();
  SimDuration delay;
  if (version == NetworkModel::kTimeVaryingTopology) {
    // Time-varying model (trace playback): per-pair invariants do not
    // exist, take the fully virtual path.
    delay = model_->sample_owd(from, to, rng_) +
            model_->transfer_delay(from, to, bytes);
  } else {
    const PairDelay& pair = pair_delay(from, to, version);
    double owd_us = pair.owd_us;
    // Same draw stream and same float expression as NetworkModel::
    // sample_owd — only the base_rtt/bandwidth virtual calls are memoized.
    // Deterministic mode swaps the shared Rng stream for a counter-based
    // draw keyed by (seed, directed pair, message index): the jitter of a
    // given message is then independent of every other pair's traffic —
    // the property that makes sharded executions bit-identical.
    if (jitter_sigma_ > 0) {
      if (!deterministic_) [[likely]] {
        owd_us *= rng_.lognormal(0.0, jitter_sigma_);
      } else {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(to.value) << 32) | from.value;
        owd_us *= det_jitter_factor(key, peek_pair_seq(key));
      }
    }
    delay = static_cast<SimDuration>(owd_us);
    if (bytes > 0) delay += sec(bytes * 8.0 / pair.bw_denom);
  }
  if (faults_ != nullptr) {
    const double factor = faults_->delay_factor(from, to, simulator_->now());
    delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
  }
  return delay;
}

std::uint64_t SimNetwork::peek_pair_seq(std::uint64_t key) const {
  if (pair_seq_.empty()) return 0;
  const std::size_t mask = pair_seq_.size() - 1;
  std::size_t index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (pair_seq_[index].key != kEmptyPairKey) {
    if (pair_seq_[index].key == key) return pair_seq_[index].next;
    index = (index + 1) & mask;
  }
  return 0;
}

std::uint64_t SimNetwork::take_pair_seq(std::uint64_t key) {
  if (pair_seq_.empty()) pair_seq_.resize(256);
  std::size_t mask = pair_seq_.size() - 1;
  std::size_t index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (pair_seq_[index].key != key) {
    if (pair_seq_[index].key == kEmptyPairKey) {
      if (pair_seq_used_ * 10 >= pair_seq_.size() * 7) {  // grow + rehash
        std::vector<PairSeqEntry> old = std::move(pair_seq_);
        pair_seq_.assign(old.size() * 2, PairSeqEntry{});
        mask = pair_seq_.size() - 1;
        for (const PairSeqEntry& entry : old) {
          if (entry.key == kEmptyPairKey) continue;
          std::size_t j = (entry.key * 0x9e3779b97f4a7c15ull >> 32) & mask;
          while (pair_seq_[j].key != kEmptyPairKey) j = (j + 1) & mask;
          pair_seq_[j] = entry;
        }
        index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
        while (pair_seq_[index].key != kEmptyPairKey &&
               pair_seq_[index].key != key) {
          index = (index + 1) & mask;
        }
        if (pair_seq_[index].key == key) return pair_seq_[index].next++;
      }
      pair_seq_[index].key = key;
      pair_seq_[index].next = 0;
      ++pair_seq_used_;
      return pair_seq_[index].next++;
    }
    index = (index + 1) & mask;
  }
  return pair_seq_[index].next++;
}

double SimNetwork::det_jitter_factor(std::uint64_t key,
                                     std::uint64_t seq) const {
  // Mix (seed, pair, seq) through a splitmix64-style finalizer, then draw
  // one clamped standard normal via Box-Muller on the two 32-bit halves.
  std::uint64_t z = det_seed_;
  z ^= key + 0x9e3779b97f4a7c15ull + (z << 6) + (z >> 2);
  z ^= seq + 0x9e3779b97f4a7c15ull + (z << 6) + (z >> 2);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double u1 = (static_cast<double>(z >> 32) + 1.0) * 0x1.0p-32;  // (0,1]
  const double u2 = static_cast<double>(z & 0xffffffffu) * 0x1.0p-32;  // [0,1)
  constexpr double kTwoPi = 6.283185307179586;
  double n = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  n = std::clamp(n, -kDetJitterZClamp, kDetJitterZClamp);
  return std::exp(jitter_sigma_ * n);
}

SimNetwork::PairDelay SimNetwork::compute_pair_delay(HostId from,
                                                     HostId to) const {
  PairDelay pair;
  pair.owd_us = static_cast<double>(model_->base_rtt(from, to)) / 2.0;
  pair.bw_denom = std::max(0.01, model_->bandwidth_mbps(from, to)) * 1e6;
  return pair;
}

const SimNetwork::PairDelay& SimNetwork::pair_delay(HostId from, HostId to,
                                                    std::uint64_t version) {
  if (version != delay_cache_version_) {
    delay_cache_.assign(delay_cache_.empty() ? 256 : delay_cache_.size(),
                        PairDelayEntry{});
    delay_cache_used_ = 0;
    delay_cache_version_ = version;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  if (key == kEmptyPairKey) {
    // Both hosts invalid — never happens on real traffic, but tests may
    // probe it; compute without caching rather than corrupt the table.
    scratch_pair_ = compute_pair_delay(from, to);
    return scratch_pair_;
  }
  if (delay_cache_.empty()) delay_cache_.resize(256);
  std::size_t mask = delay_cache_.size() - 1;
  std::size_t index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
  while (delay_cache_[index].key != key) {
    if (delay_cache_[index].key == kEmptyPairKey) {
      if (delay_cache_used_ * 10 >= delay_cache_.size() * 7) {
        std::vector<PairDelayEntry> old = std::move(delay_cache_);
        delay_cache_.assign(old.size() * 2, PairDelayEntry{});
        mask = delay_cache_.size() - 1;
        for (const PairDelayEntry& entry : old) {
          if (entry.key == kEmptyPairKey) continue;
          std::size_t j = (entry.key * 0x9e3779b97f4a7c15ull >> 32) & mask;
          while (delay_cache_[j].key != kEmptyPairKey) j = (j + 1) & mask;
          delay_cache_[j] = entry;
        }
        index = (key * 0x9e3779b97f4a7c15ull >> 32) & mask;
        while (delay_cache_[index].key != kEmptyPairKey &&
               delay_cache_[index].key != key) {
          index = (index + 1) & mask;
        }
        if (delay_cache_[index].key == key) return delay_cache_[index].delay;
      }
      delay_cache_[index].key = key;
      delay_cache_[index].delay = compute_pair_delay(from, to);
      ++delay_cache_used_;
      return delay_cache_[index].delay;
    }
    index = (index + 1) & mask;
  }
  return delay_cache_[index].delay;
}

}  // namespace eden::net
