#include "net/sim_network.h"

namespace eden::net {

void FaultInjector::cut_link(HostId a, HostId b, SimTime from, SimTime until) {
  cuts_.push_back(Cut{a, b, from, until});
}

void FaultInjector::partition(HostId a, HostId b, SimTime from, SimTime until) {
  cut_link(a, b, from, until);
  cut_link(b, a, from, until);
}

void FaultInjector::slow_link(HostId a, HostId b, double factor, SimTime from,
                              SimTime until) {
  slows_.push_back(Slow{a, b, factor, from, until});
}

void FaultInjector::isolate_host(HostId host, SimTime from, SimTime until) {
  cuts_.push_back(Cut{host, HostId{}, from, until});
  cuts_.push_back(Cut{HostId{}, host, from, until});
}

bool FaultInjector::dropped(HostId from, HostId to, SimTime now) const {
  for (const auto& cut : cuts_) {
    if (now < cut.begin || now >= cut.end) continue;
    const bool from_matches = !cut.from.valid() || cut.from == from;
    const bool to_matches = !cut.to.valid() || cut.to == to;
    if (from_matches && to_matches) return true;
  }
  return false;
}

double FaultInjector::delay_factor(HostId from, HostId to, SimTime now) const {
  double factor = 1.0;
  for (const auto& slow : slows_) {
    if (now < slow.begin || now >= slow.end) continue;
    if (slow.from == from && slow.to == to) factor *= slow.factor;
  }
  return factor;
}

SimDuration SimNetwork::sample_delay(HostId from, HostId to, double bytes) {
  SimDuration delay = model_->sample_owd(from, to, rng_) +
                      model_->transfer_delay(from, to, bytes);
  if (faults_ != nullptr) {
    const double factor =
        faults_->delay_factor(from, to, simulator_->now());
    delay = static_cast<SimDuration>(static_cast<double>(delay) * factor);
  }
  return delay;
}

void SimNetwork::deliver(HostId from, HostId to, double bytes,
                         std::function<void()> fn) {
  // Link cuts are evaluated at SEND time (packets enter the dead path and
  // vanish); host liveness at ARRIVAL time (the host died in flight).
  if (faults_ != nullptr && faults_->dropped(from, to, simulator_->now())) {
    return;
  }
  const SimDuration delay = sample_delay(from, to, bytes);
  simulator_->schedule_after(delay, [this, to, fn = std::move(fn)] {
    if (!hosts_->alive(to)) return;  // dropped on the floor
    fn();
  });
}

}  // namespace eden::net
