// Simulated message fabric: delivers closures between hosts with sampled
// one-way delays and drops anything addressed to (or answered by) a dead
// host. `rpc`/`rpc_async` layer request/response + timeout semantics on
// top; the typed Node/Manager API stubs in the harness are thin wrappers
// over it.
//
// Messaging hot path (see DESIGN.md §8): pending rpc state lives in a
// generation-stamped slab pool inside SimNetwork — no shared_ptr, no
// std::function. Each slot stores the completion callback in a small
// inline buffer, the route of the pending exchange, and two lifecycle
// flags; timeout-vs-response races resolve through the `done_fired` flag
// and stale handles fail a generation check exactly like the simulator's
// event arena. Per-pair delay invariants (half base RTT, bandwidth
// denominator) are memoized against NetworkModel::topology_version() so a
// steady-state delivery costs one hash probe and one jitter draw.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/shard_router.h"
#include "sim/simulator.h"

namespace eden::net {

// Injectable network faults: directional link cuts (partitions) and
// latency inflation over time windows. Faithful to real edge networks
// where a path can die or degrade while both endpoints stay up — the case
// that distinguishes the keepalive failure monitor from node-death
// handling.
//
// Windows are indexed per directed pair (with separate wildcard buckets
// for host isolation), so dropped()/delay_factor() cost O(windows touching
// this pair), not O(all windows ever injected). Lookups purge windows
// whose end has passed; queries are assumed monotone non-decreasing in
// time (the simulator clock only moves forward), so a purged window can
// never influence a later query.
class FaultInjector {
 public:
  // Drop everything from `a` to `b` (one direction) during [from, until).
  void cut_link(HostId a, HostId b, SimTime from, SimTime until);
  // Cut both directions.
  void partition(HostId a, HostId b, SimTime from, SimTime until);
  // Multiply delays from `a` to `b` by `factor` during [from, until).
  void slow_link(HostId a, HostId b, double factor, SimTime from,
                 SimTime until);
  // Drop every message to/from `host` during the window (host-level brownout
  // without killing the process).
  void isolate_host(HostId host, SimTime from, SimTime until);

  [[nodiscard]] bool dropped(HostId from, HostId to, SimTime now) const;
  [[nodiscard]] double delay_factor(HostId from, HostId to, SimTime now) const;

  // Windows still stored (not yet purged by a lookup). Tests use these to
  // assert that expired windows actually get discarded.
  [[nodiscard]] std::size_t cut_window_count() const;
  [[nodiscard]] std::size_t slow_window_count() const;

 private:
  struct Window {
    SimTime begin, end;
  };
  struct SlowWindow {
    SimTime begin, end;
    double factor;
  };
  using PairKey = std::uint64_t;
  static PairKey pair_key(HostId a, HostId b) {
    return (static_cast<PairKey>(a.value) << 32) | b.value;
  }

  // Cuts keyed by directed pair, plus wildcard buckets: `from_cuts_[h]`
  // matches any message sent by h, `to_cuts_[h]` any message addressed to
  // h (both produced by isolate_host). Slow windows only ever match exact
  // pairs (same as the historical linear scan). Buckets are mutable so
  // const lookups can purge; relative order inside a bucket is preserved
  // (delay factors multiply in insertion order, keeping float results
  // bit-identical to the pre-index implementation).
  mutable std::unordered_map<PairKey, std::vector<Window>> pair_cuts_;
  mutable std::unordered_map<std::uint32_t, std::vector<Window>> from_cuts_;
  mutable std::unordered_map<std::uint32_t, std::vector<Window>> to_cuts_;
  mutable std::vector<Window> global_cuts_;  // both endpoints wildcard
  mutable std::unordered_map<PairKey, std::vector<SlowWindow>> pair_slows_;
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, const NetworkModel& model,
             HostTable& hosts, Rng rng)
      : simulator_(&simulator),
        model_(&model),
        hosts_(&hosts),
        rng_(rng),
        // Every NetworkModel fixes its jitter sigma at construction, so it
        // is safe to hoist out of the per-sample path.
        jitter_sigma_(model.jitter_sigma()) {}

  // Pending completions own user callbacks; destroy them without invoking
  // (simulated hosts with rpcs in flight simply vanish at teardown).
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  // Optional fault injection; the injector must outlive the network.
  void set_fault_injector(const FaultInjector* injector) {
    faults_ = injector;
  }

  // ---- deterministic (sharded) delivery mode ----
  //
  // In deterministic mode every cross-host message rides the simulator's
  // delivery lane under the canonical (arrival, destination, source,
  // per-pair sequence) key, and the jitter factor comes from a
  // counter-based hash of (seed, directed pair, message index) instead of
  // the fabric's shared Rng stream. Both changes make message ordering and
  // sampled delays a pure function of the message set — independent of
  // shard layout — which is exactly what the sharded == sequential
  // determinism witness pins. Every fabric participating in one sharded
  // world must use the SAME seed (a message's jitter must not depend on
  // which domain sampled it). Legacy fabrics that never enable this keep
  // the historical Rng draws and FIFO schedules, byte for byte.
  void enable_deterministic_delivery(std::uint64_t seed) {
    deterministic_ = true;
    det_seed_ = seed;
  }
  [[nodiscard]] bool deterministic_delivery() const { return deterministic_; }

  // Attach this fabric to a shard router as shard `shard_id`: messages
  // addressed to hosts owned by other shards are posted to the router and
  // injected into the owner's delivery lane at the next window barrier.
  // Only meaningful in deterministic mode.
  void set_shard_router(ShardRouter* router, std::uint32_t shard_id) {
    router_ = router;
    shard_id_ = shard_id;
  }

  // Deterministic jitter clamps the standard-normal draw at +/- this many
  // sigma, so exp(-kDetJitterZClamp * sigma) is a HARD lower bound on the
  // jitter factor — the lookahead derivation depends on it.
  static constexpr double kDetJitterZClamp = 6.0;

  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const NetworkModel& model() const { return *model_; }
  [[nodiscard]] HostTable& hosts() { return *hosts_; }

  // Sample a one-way delay for a payload of `bytes` from `from` to `to`.
  [[nodiscard]] SimDuration sample_delay(HostId from, HostId to, double bytes);

  // The reply functor handed to an async rpc server: a 40-byte value type
  // carrying the response route, so invoking it after the caller timed out
  // still sends the response over the (indifferent) wire — the stale
  // completion is then rejected by the slot generation check on arrival.
  // Copyable and callable any number of times; only the first response to
  // arrive while the rpc is still pending reaches `done`. `origin` is the
  // fabric owning the rpc slot (== `net` except for cross-shard rpcs,
  // where the server-side fabric sends the response but the completion
  // must settle on the caller's shard).
  template <typename Resp>
  class Reply {
   public:
    void operator()(Resp response) {
      net_->send_response<Resp>(handle_, responder_, client_, bytes_,
                                std::move(response), origin_);
    }

   private:
    friend class SimNetwork;
    Reply(SimNetwork* net, std::uint64_t handle, HostId responder,
          HostId client, double bytes, SimNetwork* origin = nullptr)
        : net_(net),
          handle_(handle),
          responder_(responder),
          client_(client),
          bytes_(bytes),
          origin_(origin == nullptr ? net : origin) {}

    SimNetwork* net_;
    std::uint64_t handle_;
    HostId responder_, client_;
    double bytes_;
    SimNetwork* origin_;
  };

  // One-way delivery: run `fn` at the destination after the sampled delay,
  // unless the destination is dead at delivery time. The sender being alive
  // is the caller's concern.
  template <typename F>
  void deliver(HostId from, HostId to, double bytes, F&& fn) {
    // Link cuts are evaluated at SEND time (packets enter the dead path and
    // vanish); host liveness at ARRIVAL time (the host died in flight).
    if (faults_ != nullptr && faults_->dropped(from, to, simulator_->now())) {
      return;
    }
    const SimDuration delay = sample_delay(from, to, bytes);
    if (!deterministic_) [[likely]] {
      simulator_->schedule_after(
          delay, ArrivalGuard<std::decay_t<F>>{this, to, std::forward<F>(fn)});
      return;
    }
    // Deterministic: the arrival guard checks liveness against the OWNING
    // shard's host table (each domain tracks only its own hosts).
    route_canonical(from, to, delay,
                    ArrivalGuard<std::decay_t<F>>{owner_of(to), to,
                                                  std::forward<F>(fn)});
  }

  // Request/response with timeout, asynchronous server side: `server` runs
  // at `to` on request arrival and receives a Reply<Resp> it may call
  // later (e.g. when the frame executor finishes). `done` runs at `from`
  // with the response, or with nullopt when no response arrived within
  // `timeout`. `done` is invoked exactly once (with the rpc state pooled,
  // not reference-counted: the slot's generation check rejects stale
  // completions).
  template <typename Resp, typename Server, typename Done>
  void rpc_async(HostId from, HostId to, double request_bytes,
                 double response_bytes, SimDuration timeout, Server server,
                 Done done) {
    const std::uint32_t index = acquire_rpc_slot();
    RpcSlot& slot = rpc_slot(index);
    store_done<Resp>(slot, std::move(done));
    slot.timeout_event = sim::kInvalidEvent;
    slot.response_bytes = response_bytes;
    slot.rpc_from = from;
    slot.rpc_to = to;
    slot.done_fired = false;
    slot.request_consumed = false;
    const std::uint64_t handle = make_handle(index, slot.generation);
    // Timeout first, request leg second: when both land on the same tick
    // the timeout keeps its historical FIFO priority.
    slot.timeout_event =
        simulator_->schedule_after(timeout, TimeoutFire{this, handle});
    if (faults_ != nullptr && faults_->dropped(from, to, simulator_->now())) {
      // The request entered a cut path at send time: no arrival event will
      // ever fire, so the request leg is already settled.
      slot.request_consumed = true;
      return;
    }
    const SimDuration delay = sample_delay(from, to, request_bytes);
    if (!deterministic_) [[likely]] {
      simulator_->schedule_after(
          delay,
          RequestArrival<Resp, std::decay_t<Server>>{this, handle,
                                                     std::move(server)});
      return;
    }
    // Deterministic: the request leg settles at send so the slot is never
    // mutated from another shard; the reply route rides inside the shipped
    // closure instead of the slot. A timeout may then release the slot
    // before the reply lands — the stale reply dies on the generation
    // check, observably identical to the legacy pinned-slot lifecycle.
    slot.request_consumed = true;
    route_canonical(from, to, delay,
                    DetRequestArrival<Resp, std::decay_t<Server>>{
                        owner_of(to), this, handle, from, to, response_bytes,
                        std::move(server)});
  }

  // Synchronous-server convenience wrapper: `server` returns the response
  // directly on request arrival. Rides the async path with a zero-overhead
  // adaptor (no extra allocation, no intermediate reply functor).
  template <typename Resp, typename Server, typename Done>
  void rpc(HostId from, HostId to, double request_bytes, double response_bytes,
           SimDuration timeout, Server server, Done done) {
    rpc_async<Resp>(from, to, request_bytes, response_bytes, timeout,
                    SyncServer<Resp, std::decay_t<Server>>{std::move(server)},
                    std::move(done));
  }

  // Pool introspection for tests: slots currently tied to a pending rpc,
  // and the total the pool has ever grown to.
  [[nodiscard]] std::size_t rpc_slots_in_use() const { return rpc_in_use_; }
  [[nodiscard]] std::size_t rpc_slot_capacity() const {
    return rpc_chunks_.size() * kRpcSlotsPerChunk;
  }

 private:
  // One pooled pending rpc. The completion callback is stored inline when
  // it fits (sim::Func<std::optional<Resp>> is 56 bytes — exactly
  // kDoneCapacity); `invoke_done` is the type-erased dispatcher and doubles
  // as the slot-occupancy marker. The slot is released when both the
  // completion has fired (response or timeout) and the request leg has
  // settled (arrived, or provably never will) — holding the slot until the
  // request leg lands is what lets a late-arriving request still read its
  // route after the timeout already fired.
  struct RpcSlot {
    static constexpr std::size_t kDoneCapacity = 56;

    alignas(std::max_align_t) unsigned char done_buf[kDoneCapacity];
    // Second argument: pointer to a std::optional<Resp> (response),
    // nullptr (timeout -> invoke with nullopt), or abandon_token()
    // (destroy without invoking — network teardown). Always destroys the
    // stored callback.
    void (*invoke_done)(unsigned char* buf, void* response);
    sim::EventId timeout_event;
    double response_bytes;
    HostId rpc_from, rpc_to;
    std::uint32_t generation;
    std::uint32_t next_free;
    bool done_fired;
    bool request_consumed;
  };

  static constexpr std::uint32_t kRpcSlotsPerChunk = 256;
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  static void* abandon_token() noexcept {
    static unsigned char token;
    return &token;
  }

  static std::uint64_t make_handle(std::uint32_t index,
                                   std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | (index + 1);
  }
  static std::uint32_t handle_index(std::uint64_t handle) {
    return static_cast<std::uint32_t>(handle & 0xffffffffu) - 1;
  }

  [[nodiscard]] RpcSlot& rpc_slot(std::uint32_t index) {
    return rpc_chunks_[index / kRpcSlotsPerChunk][index % kRpcSlotsPerChunk];
  }

  // Generation-checked handle resolution; nullptr = stale (slot released
  // or reused since the handle was minted).
  [[nodiscard]] RpcSlot* lookup_rpc(std::uint64_t handle) {
    const std::uint32_t index = handle_index(handle);
    if (index >= rpc_chunks_.size() * kRpcSlotsPerChunk) return nullptr;
    RpcSlot& slot = rpc_slot(index);
    if (slot.generation != static_cast<std::uint32_t>(handle >> 32) ||
        slot.invoke_done == nullptr) {
      return nullptr;
    }
    return &slot;
  }

  std::uint32_t acquire_rpc_slot() {
    if (rpc_free_head_ == kNoFreeSlot) grow_rpc_pool();
    const std::uint32_t index = rpc_free_head_;
    rpc_free_head_ = rpc_slot(index).next_free;
    ++rpc_in_use_;
    return index;
  }

  void release_rpc_slot(std::uint32_t index) {
    RpcSlot& slot = rpc_slot(index);
    slot.invoke_done = nullptr;
    ++slot.generation;  // invalidate outstanding handles
    slot.next_free = rpc_free_head_;
    rpc_free_head_ = index;
    --rpc_in_use_;
  }

  void grow_rpc_pool();

  template <typename Done, typename Resp, bool Inline>
  static void done_thunk(unsigned char* buf, void* response) {
    Done* done;
    if constexpr (Inline) {
      done = reinterpret_cast<Done*>(buf);
    } else {
      done = *reinterpret_cast<Done**>(buf);
    }
    if (response != abandon_token()) {
      if (response == nullptr) {
        (*done)(std::nullopt);
      } else {
        (*done)(std::move(*static_cast<std::optional<Resp>*>(response)));
      }
    }
    if constexpr (Inline) {
      done->~Done();
    } else {
      delete done;
    }
  }

  template <typename Resp, typename Done>
  static void store_done(RpcSlot& slot, Done done) {
    using Fn = std::decay_t<Done>;
    if constexpr (sizeof(Fn) <= RpcSlot::kDoneCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(slot.done_buf)) Fn(std::move(done));
      slot.invoke_done = &done_thunk<Fn, Resp, true>;
    } else {
      *reinterpret_cast<Fn**>(slot.done_buf) = new Fn(std::move(done));
      slot.invoke_done = &done_thunk<Fn, Resp, false>;
      sim::detail::callback_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // ---- event-arena callables (all sized for inline storage) ----

  template <typename Fn>
  struct ArrivalGuard {
    SimNetwork* net;
    HostId to;
    Fn fn;
    void operator()() {
      if (!net->hosts_->alive(to)) return;  // dropped on the floor
      fn();
    }
  };

  struct TimeoutFire {
    SimNetwork* net;
    std::uint64_t handle;
    void operator()() { net->rpc_timeout(handle); }
  };

  template <typename Resp>
  struct Completion {
    SimNetwork* net;
    std::uint64_t handle;
    Resp response;
    void operator()() { net->finish_rpc<Resp>(handle, std::move(response)); }
  };

  template <typename Resp, typename ServerFn>
  struct RequestArrival {
    SimNetwork* net;
    std::uint64_t handle;
    ServerFn server;
    void operator()() {
      // The slot is pinned while its request leg is in flight, so the
      // handle is never stale here — but the route must be read before
      // consume_request(), which may release the slot if the rpc already
      // timed out.
      RpcSlot* slot = net->lookup_rpc(handle);
      if (slot == nullptr) return;
      if (!net->hosts_->alive(slot->rpc_to)) {
        net->consume_request(handle);
        return;
      }
      Reply<Resp> reply(net, handle, slot->rpc_to, slot->rpc_from,
                        slot->response_bytes);
      net->consume_request(handle);
      server(std::move(reply));
    }
  };

  // Deterministic-mode request arrival: executes on the shard owning
  // `rpc_to` (possibly not the slot's shard), so the whole route is
  // captured here instead of being read back out of the slot.
  template <typename Resp, typename ServerFn>
  struct DetRequestArrival {
    SimNetwork* dst;     // fabric owning rpc_to — where this closure runs
    SimNetwork* origin;  // fabric owning the rpc slot (rpc_from's shard)
    std::uint64_t handle;
    HostId rpc_from, rpc_to;
    double response_bytes;
    ServerFn server;
    void operator()() {
      if (!dst->hosts_->alive(rpc_to)) return;  // died in flight
      Reply<Resp> reply(dst, handle, rpc_to, rpc_from, response_bytes, origin);
      server(std::move(reply));
    }
  };

  template <typename Resp, typename ServerFn>
  struct SyncServer {
    ServerFn server;
    void operator()(Reply<Resp> reply) { reply(server()); }
  };

  // ---- deterministic routing helpers ----

  // The fabric owning `host`'s shard (this fabric when no router is
  // attached, e.g. the windowless sequential reference runner).
  [[nodiscard]] SimNetwork* owner_of(HostId host) {
    if (router_ == nullptr) return this;
    return router_->fabric_of(router_->shard_of(host));
  }

  // Compute the canonical delivery key for a message from -> to, then
  // either schedule it on the local delivery lane (intra-shard) or post it
  // to the router for barrier injection (cross-shard). The per-pair
  // sequence consumed here is the same counter sample_delay peeked for the
  // jitter draw — the two stay in lockstep because every sampled message
  // is routed exactly once.
  template <typename F>
  void route_canonical(HostId from, HostId to, SimDuration delay, F&& fn) {
    const std::uint64_t hi =
        (static_cast<std::uint64_t>(to.value) << 32) | from.value;
    const std::uint64_t lo = take_pair_seq(hi);
    if (delay < 0) delay = 0;
    const SimTime arrival = simulator_->now() + delay;
    if (router_ != nullptr) {
      const std::uint32_t dst_shard = router_->shard_of(to);
      if (dst_shard != shard_id_) {
        router_->post(shard_id_, dst_shard, arrival, hi, lo,
                      sim::Callback(std::forward<F>(fn)));
        return;
      }
    }
    simulator_->schedule_delivery(arrival, sim::Simulator::DeliveryKey{hi, lo},
                                  sim::Callback(std::forward<F>(fn)));
  }

  [[nodiscard]] std::uint64_t peek_pair_seq(std::uint64_t key) const;
  std::uint64_t take_pair_seq(std::uint64_t key);
  [[nodiscard]] double det_jitter_factor(std::uint64_t key,
                                         std::uint64_t seq) const;

  // ---- rpc lifecycle (non-template paths live in the .cc) ----

  void rpc_timeout(std::uint64_t handle);
  void consume_request(std::uint64_t handle);

  template <typename Resp>
  void send_response(std::uint64_t handle, HostId from, HostId to,
                     double bytes, Resp response, SimNetwork* origin) {
    // The response leg is an ordinary fabric delivery (cut check at send,
    // jitter draw, liveness at arrival) even when the rpc already timed
    // out: the wire does not know the caller gave up, and skipping the
    // send would shift the jitter draw stream. `origin` (== this outside
    // sharded runs) owns the rpc slot; the completion executes there.
    if (faults_ != nullptr && faults_->dropped(from, to, simulator_->now())) {
      return;
    }
    const SimDuration delay = sample_delay(from, to, bytes);
    if (!deterministic_) [[likely]] {
      simulator_->schedule_after(
          delay, Completion<Resp>{origin, handle, std::move(response)});
      return;
    }
    // route_canonical routes by `to` == the original caller, so the
    // completion lands on origin's shard, where the slot lives.
    route_canonical(from, to, delay,
                    Completion<Resp>{origin, handle, std::move(response)});
  }

  template <typename Resp>
  void finish_rpc(std::uint64_t handle, Resp&& response) {
    RpcSlot* slot = lookup_rpc(handle);
    if (slot == nullptr) return;  // stale: rpc settled and slot reused
    if (!hosts_->alive(slot->rpc_from)) return;  // caller died in flight
    if (slot->done_fired) return;  // timeout won the race; response dropped
    slot->done_fired = true;
    simulator_->cancel(slot->timeout_event);
    slot->timeout_event = sim::kInvalidEvent;
    std::optional<Resp> value(std::move(response));
    slot->invoke_done(slot->done_buf, &value);
    // Re-resolve nothing: chunk storage is stable, `slot` stays valid even
    // if the completion callback issued new rpcs.
    if (slot->request_consumed) release_rpc_slot(handle_index(handle));
  }

  // ---- per-pair delay memo ----

  struct PairDelay {
    double owd_us;    // base_rtt / 2, the per-sample invariant
    double bw_denom;  // max(0.01, bandwidth_mbps) * 1e6
  };
  struct PairDelayEntry {
    std::uint64_t key{kEmptyPairKey};
    PairDelay delay;
  };
  static constexpr std::uint64_t kEmptyPairKey = ~0ull;

  [[nodiscard]] const PairDelay& pair_delay(HostId from, HostId to,
                                            std::uint64_t version);
  [[nodiscard]] PairDelay compute_pair_delay(HostId from, HostId to) const;

  sim::Simulator* simulator_;
  const NetworkModel* model_;
  HostTable* hosts_;
  Rng rng_;
  double jitter_sigma_;
  const FaultInjector* faults_{nullptr};

  // Deterministic-delivery state (see enable_deterministic_delivery).
  bool deterministic_{false};
  std::uint64_t det_seed_{0};
  ShardRouter* router_{nullptr};
  std::uint32_t shard_id_{0};
  // Open-addressed per-directed-pair message counters (deterministic mode
  // only): jitter for message n is hashed from n, and n is the canonical
  // delivery-key tiebreak.
  struct PairSeqEntry {
    std::uint64_t key{kEmptyPairKey};
    std::uint64_t next{0};
  };
  mutable std::vector<PairSeqEntry> pair_seq_;
  mutable std::size_t pair_seq_used_{0};

  // Rpc slot pool (chunked so slots never move).
  std::vector<std::unique_ptr<RpcSlot[]>> rpc_chunks_;
  std::uint32_t rpc_free_head_{kNoFreeSlot};
  std::size_t rpc_in_use_{0};

  // Open-addressed per-pair delay memo, validated against the model's
  // topology version (0 = time-varying model, never cached).
  std::vector<PairDelayEntry> delay_cache_;
  std::size_t delay_cache_used_{0};
  std::uint64_t delay_cache_version_{0};
  PairDelay scratch_pair_{};  // fallback for the uncacheable all-ones key
};

}  // namespace eden::net
