// Simulated message fabric: delivers closures between hosts with sampled
// one-way delays and drops anything addressed to (or answered by) a dead
// host. `rpc` layers request/response + timeout semantics on top; the
// typed Node/Manager API stubs in the harness are thin wrappers over it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "sim/simulator.h"

namespace eden::net {

// Injectable network faults: directional link cuts (partitions) and
// latency inflation over time windows. Faithful to real edge networks
// where a path can die or degrade while both endpoints stay up — the case
// that distinguishes the keepalive failure monitor from node-death
// handling.
class FaultInjector {
 public:
  // Drop everything from `a` to `b` (one direction) during [from, until).
  void cut_link(HostId a, HostId b, SimTime from, SimTime until);
  // Cut both directions.
  void partition(HostId a, HostId b, SimTime from, SimTime until);
  // Multiply delays from `a` to `b` by `factor` during [from, until).
  void slow_link(HostId a, HostId b, double factor, SimTime from,
                 SimTime until);
  // Drop every message to/from `host` during the window (host-level brownout
  // without killing the process).
  void isolate_host(HostId host, SimTime from, SimTime until);

  [[nodiscard]] bool dropped(HostId from, HostId to, SimTime now) const;
  [[nodiscard]] double delay_factor(HostId from, HostId to, SimTime now) const;

 private:
  struct Cut {
    HostId from, to;  // invalid from/to = wildcard (host isolation)
    SimTime begin, end;
  };
  struct Slow {
    HostId from, to;
    double factor;
    SimTime begin, end;
  };
  std::vector<Cut> cuts_;
  std::vector<Slow> slows_;
};

class SimNetwork {
 public:
  SimNetwork(sim::Simulator& simulator, const NetworkModel& model,
             HostTable& hosts, Rng rng)
      : simulator_(&simulator), model_(&model), hosts_(&hosts), rng_(rng) {}

  // Optional fault injection; the injector must outlive the network.
  void set_fault_injector(const FaultInjector* injector) {
    faults_ = injector;
  }

  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }
  [[nodiscard]] const NetworkModel& model() const { return *model_; }
  [[nodiscard]] HostTable& hosts() { return *hosts_; }

  // Sample a one-way delay for a payload of `bytes` from `from` to `to`.
  [[nodiscard]] SimDuration sample_delay(HostId from, HostId to, double bytes);

  // One-way delivery: run `fn` at the destination after the sampled delay,
  // unless the destination is dead at delivery time. The sender being alive
  // is the caller's concern.
  void deliver(HostId from, HostId to, double bytes, std::function<void()> fn);

  // Request/response with timeout, asynchronous server side: `server` runs
  // at `to` on request arrival and receives a `reply` functor it may call
  // later (e.g. when the frame executor finishes). `done` runs at `from`
  // with the response, or with nullopt when no response arrived within
  // `timeout`. `done` is invoked exactly once.
  template <typename Resp>
  void rpc_async(HostId from, HostId to, double request_bytes,
                 double response_bytes, SimDuration timeout,
                 std::function<void(std::function<void(Resp)>)> server,
                 std::function<void(std::optional<Resp>)> done) {
    auto state = std::make_shared<RpcState>();
    auto done_shared =
        std::make_shared<std::function<void(std::optional<Resp>)>>(
            std::move(done));
    state->timeout_event =
        simulator_->schedule_after(timeout, [state, done_shared] {
          if (state->done) return;
          state->done = true;
          (*done_shared)(std::nullopt);
        });

    deliver(from, to, request_bytes,
            [this, from, to, response_bytes, state, done_shared,
             server = std::move(server)] {
              server([this, from, to, response_bytes, state,
                      done_shared](Resp response) {
                deliver(to, from, response_bytes,
                        [this, state, done_shared,
                         response = std::move(response)]() mutable {
                          if (state->done) return;
                          state->done = true;
                          simulator_->cancel(state->timeout_event);
                          (*done_shared)(std::move(response));
                        });
              });
            });
  }

  // Synchronous-server convenience wrapper over rpc_async.
  template <typename Resp>
  void rpc(HostId from, HostId to, double request_bytes, double response_bytes,
           SimDuration timeout, std::function<Resp()> server,
           std::function<void(std::optional<Resp>)> done) {
    rpc_async<Resp>(
        from, to, request_bytes, response_bytes, timeout,
        [server = std::move(server)](std::function<void(Resp)> reply) {
          reply(server());
        },
        std::move(done));
  }

 private:
  struct RpcState {
    bool done{false};
    sim::EventId timeout_event{sim::kInvalidEvent};
  };

  sim::Simulator* simulator_;
  const NetworkModel* model_;
  HostTable* hosts_;
  Rng rng_;
  const FaultInjector* faults_{nullptr};
};

}  // namespace eden::net
