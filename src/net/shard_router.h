// Window-barrier message router between per-shard simulation domains.
//
// The sharded runner partitions hosts into geohash cells and gives each
// shard its own sim::Simulator + SimNetwork fabric. During a window each
// fabric appends cross-shard messages to its shard's private outbox (one
// writer per outbox — no locks); at the barrier the coordinator calls
// flush(), which injects every buffered envelope into the destination
// shard's delivery lane under the canonical (arrival, dst, src, seq) key.
// Conservative lookahead makes this sound: the window length never exceeds
// the minimum cross-shard one-way delay, so a message sent inside window
// [w0, w1) arrives at >= w0 + lookahead >= w1 — i.e. never inside a window
// the destination shard has already executed. flush() asserts that
// contract and throws on violation rather than silently reordering.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace eden::net {

class SimNetwork;

class ShardRouter {
 public:
  using ShardId = std::uint32_t;

  // Registers a shard domain; shard ids are assigned in call order.
  ShardId add_shard(SimNetwork* fabric, sim::Simulator* simulator);

  [[nodiscard]] std::size_t shard_count() const { return sims_.size(); }
  [[nodiscard]] SimNetwork* fabric_of(ShardId shard) { return fabrics_[shard]; }
  [[nodiscard]] sim::Simulator* simulator_of(ShardId shard) {
    return sims_[shard];
  }

  // Host -> shard placement. Unmapped hosts default to shard 0 (the
  // manager's shard).
  void set_shard(HostId host, ShardId shard);
  [[nodiscard]] ShardId shard_of(HostId host) const {
    return host.value < owner_.size() ? owner_[host.value] : 0;
  }

  // Buffer one cross-shard delivery. Called by shard `src`'s fabric while
  // its window executes; only that shard writes outbox `src`, so posting
  // needs no synchronization.
  void post(ShardId src, ShardId dst, SimTime arrival, std::uint64_t key_hi,
            std::uint64_t key_lo, sim::Callback cb);

  // Barrier step (single-threaded, between windows): inject every buffered
  // envelope into its destination's delivery lane. `window_start` is the
  // start of the window about to run; an arrival before it means the
  // lookahead bound was violated (throws std::runtime_error). Returns the
  // number of envelopes injected. Injection order is irrelevant to
  // execution order — the delivery lane orders by canonical key.
  std::size_t flush(SimTime window_start);

  // True when no envelope is buffered in any outbox.
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t messages_routed() const { return routed_; }

 private:
  struct Envelope {
    SimTime arrival;
    std::uint64_t hi, lo;
    ShardId dst;
    sim::Callback cb;
  };

  std::vector<SimNetwork*> fabrics_;
  std::vector<sim::Simulator*> sims_;
  std::vector<ShardId> owner_;
  std::vector<std::vector<Envelope>> outboxes_;  // indexed by source shard
  std::uint64_t routed_{0};
};

}  // namespace eden::net
