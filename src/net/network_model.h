// Network models: where propagation delay and bandwidth between hosts come
// from. MatrixNetwork holds explicit pairwise values (the tc-shaped
// emulation of the paper); GeoNetwork derives them from geography plus an
// ISP access-tier model (the real-world measurements of Fig 1).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "geo/geopoint.h"

namespace eden::net {

class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  // Base RTT propagation delay between hosts, before jitter.
  [[nodiscard]] virtual SimDuration base_rtt(HostId a, HostId b) const = 0;

  // Bandwidth of the path from `a` to `b` in Mbps (used for D_trans).
  [[nodiscard]] virtual double bandwidth_mbps(HostId a, HostId b) const = 0;

  // Multiplicative jitter applied to each one-way delay sample;
  // log-normally distributed around 1. sigma=0 disables jitter.
  [[nodiscard]] virtual double jitter_sigma() const { return 0.0; }

  // Monotone counter identifying the current topology: while it holds
  // steady, base_rtt/bandwidth_mbps are pure functions of the host pair
  // and callers may memoize them per pair (SimNetwork does). Returning
  // kTimeVaryingTopology (the default — correct for trace playback and
  // for ad-hoc test models) opts out of all caching.
  static constexpr std::uint64_t kTimeVaryingTopology = 0;
  [[nodiscard]] virtual std::uint64_t topology_version() const {
    return kTimeVaryingTopology;
  }

  // One random one-way delay sample (half the base RTT, jittered).
  [[nodiscard]] SimDuration sample_owd(HostId a, HostId b, Rng& rng) const;

  // Data transfer delay for `bytes` over the a->b path.
  [[nodiscard]] SimDuration transfer_delay(HostId a, HostId b, double bytes) const;
};

// Explicit pairwise RTT/bandwidth with defaults; symmetric unless both
// directions are set.
class MatrixNetwork final : public NetworkModel {
 public:
  MatrixNetwork(double default_rtt_ms, double default_bw_mbps,
                double jitter_sigma = 0.05);

  void set_rtt_ms(HostId a, HostId b, double rtt_ms);
  void set_bandwidth_mbps(HostId a, HostId b, double mbps);
  // Per-host uplink cap (first-hop bottleneck), applied on the sender side.
  void set_uplink_mbps(HostId host, double mbps);

  [[nodiscard]] SimDuration base_rtt(HostId a, HostId b) const override;
  [[nodiscard]] double bandwidth_mbps(HostId a, HostId b) const override;
  [[nodiscard]] double jitter_sigma() const override { return jitter_sigma_; }
  [[nodiscard]] std::uint64_t topology_version() const override {
    return version_;
  }

 private:
  using Key = std::uint64_t;
  static Key key(HostId a, HostId b) {
    return (static_cast<Key>(a.value) << 32) | b.value;
  }

  double default_rtt_ms_;
  double default_bw_mbps_;
  double jitter_sigma_;
  std::uint64_t version_{1};
  std::unordered_map<Key, double> rtt_ms_;
  std::unordered_map<Key, double> bw_mbps_;
  std::unordered_map<HostId, double> uplink_mbps_;
};

// Access-network tiers roughly matching Fig 1's measurement classes.
enum class AccessTier {
  kLan,        // same LAN / direct link
  kFiber,      // good residential fiber
  kCable,      // cable broadband
  kDsl,        // DSL / congested WiFi
  kLocalZone,  // metro edge datacenter (AWS Local Zone-like)
  kCloud,      // regional cloud datacenter
};

// Distance + access-tier latency model: RTT(a,b) = last-mile(a) +
// last-mile(b) + distance / propagation speed + a deterministic per-pair
// "peering" offset in [0, pair_variation_ms] modelling ISP routing
// diversity (the paper: "the number of routing hops and
// forwarding/propagation delays can be diverse"), with log-normal jitter
// on each sample. Residential hosts on the SAME ISP in the same metro are
// well-peered: their last-mile cost collapses to near-LAN levels — the
// paper's same-local-loop volunteers, and what the discovery request's
// network-affiliation hint points the manager at.
//
// base_rtt/bandwidth_mbps are memoized per ordered pair in a flat
// open-addressed table (the haversine + tier + peering-hash work runs once
// per pair, not once per sample); add_host and set_extra_rtt_ms invalidate
// the cache. The memo makes const lookups write the cache, so a single
// GeoNetwork instance must not be shared across threads — each parallel
// replicate builds its own world (see harness::ParallelRunner).
class GeoNetwork final : public NetworkModel {
 public:
  explicit GeoNetwork(double jitter_sigma = 0.08,
                      double pair_variation_ms = 20.0);

  // `isp` groups hosts by access provider; -1 = unknown/none.
  void add_host(HostId host, geo::GeoPoint position, AccessTier tier,
                int isp = -1);
  [[nodiscard]] std::optional<geo::GeoPoint> position(HostId host) const;

  // Extra fixed one-way penalty for a host (e.g. inter-region backbone to
  // the cloud region).
  void set_extra_rtt_ms(HostId host, double ms);

  [[nodiscard]] SimDuration base_rtt(HostId a, HostId b) const override;
  [[nodiscard]] double bandwidth_mbps(HostId a, HostId b) const override;
  [[nodiscard]] double jitter_sigma() const override { return jitter_sigma_; }
  [[nodiscard]] std::uint64_t topology_version() const override {
    return shared_->version;
  }

  // A view sharing this network's host topology: one host map, one version
  // counter, but a private pair cache. The sharded harness gives every
  // shard domain a view so N hosts are stored once instead of once per
  // shard; a mutation through any view (or the original) bumps the shared
  // version and every cache lazily invalidates. Not safe for concurrent
  // mutation — the sharded runner mutates only between windows, and
  // during windows each domain fills only its own cache.
  [[nodiscard]] std::unique_ptr<GeoNetwork> shared_view() const;

  // Per-tier last-mile one-way latency (ms) and uplink bandwidth (Mbps).
  static double tier_latency_ms(AccessTier tier);
  static double tier_uplink_mbps(AccessTier tier);

 private:
  struct HostInfo {
    geo::GeoPoint position;
    AccessTier tier{AccessTier::kCable};
    double extra_rtt_ms{0};
    int isp{-1};
  };
  struct SharedTopology {
    std::unordered_map<HostId, HostInfo> hosts;
    std::uint64_t version{1};
  };
  struct PairMetrics {
    SimDuration rtt{0};
    double bw_mbps{0};
  };
  // Open-addressed (linear probe, power-of-two capacity) memo keyed on the
  // ordered pair (a << 32 | b). The key for a == b never occurs (loopback
  // early-returns), so an all-ones key marks empty slots.
  struct PairCacheEntry {
    std::uint64_t key{kEmptyKey};
    PairMetrics metrics;
  };
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  GeoNetwork(std::shared_ptr<SharedTopology> shared, double jitter_sigma,
             double pair_variation_ms);

  [[nodiscard]] PairMetrics compute_pair(HostId a, HostId b) const;
  [[nodiscard]] const PairMetrics& cached_pair(HostId a, HostId b) const;
  void invalidate_cache() const;

  double jitter_sigma_;
  double pair_variation_ms_;
  std::shared_ptr<SharedTopology> shared_;
  mutable std::uint64_t cache_version_{0};  // shared version the cache holds
  mutable std::vector<PairCacheEntry> cache_;
  mutable std::size_t cache_used_{0};
};

}  // namespace eden::net
