// RegistryImage: the journal's replayable view of the manager registry.
// Applying the record stream in LSN order reconstructs, deterministically,
// what the primary's registry held at its last committed mutation — the
// warm standby tails into one of these and seeds its own CentralManager
// from it at takeover.
//
// Replay idempotence: records at or below applied_lsn() are ignored, so
// replaying a prefix twice equals replaying it once (the standby's
// incremental tail and takeover catch-up overlap freely).
//
// canonical_dump() renders the image in a fixed text format (sorted node
// order, fixed float precision) — the replay-determinism witness compares
// the standby's incrementally-built dump byte-for-byte against a fresh
// one-shot replay of the surviving journal bytes.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"
#include "journal/record.h"
#include "net/protocol.h"

namespace eden::journal {

class RegistryImage {
 public:
  struct Entry {
    net::NodeStatus status;
    SimTime registered_at{0};
    SimTime last_heartbeat{0};
  };
  // Overload phase state outlives registry membership (the epoch counter is
  // monotone across rejoins), so it lives in its own table — mirroring
  // CentralManager's overload_ map.
  struct PhaseState {
    std::uint64_t epoch{0};
    bool overloaded{false};
  };

  void apply(const JournalRecord& record);

  [[nodiscard]] std::uint64_t applied_lsn() const { return applied_lsn_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<std::uint32_t, Entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::map<std::uint32_t, PhaseState>& phases() const {
    return phases_;
  }
  [[nodiscard]] std::string canonical_dump() const;

 private:
  std::map<std::uint32_t, Entry> entries_;
  std::map<std::uint32_t, PhaseState> phases_;
  std::uint64_t applied_lsn_{0};
};

}  // namespace eden::journal
