// Backend-pluggable storage for the manager journal: an append-only byte
// log with an explicit durability barrier. The sim harness uses the
// in-memory backend (byte-log in RAM, durable watermark tracked so crash
// surgery and benchmarks can reason about flushed vs staged bytes); the
// live runtime uses the file backend (embedded append-only log file,
// optionally fsync'd on every group commit).
//
// Contract: append() stages bytes at the tail; flush() is the durability
// barrier — after a crash, exactly the flushed prefix (plus possibly a
// torn fragment of unflushed appends) survives. read_all() returns every
// byte written so far, flushed or not; truncate() discards everything past
// `size` (torn-tail recovery).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace eden::journal {

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;
  virtual bool append(std::string_view bytes) = 0;
  virtual bool flush() = 0;
  virtual bool read_all(std::string& out) = 0;
  virtual bool truncate(std::size_t size) = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t durable_size() const = 0;
};

// Sim-mode byte log. `drop_unflushed()` models a crash that loses staged
// bytes; the torn-tail injector appends a partial frame and never flushes.
class MemoryBackend final : public StorageBackend {
 public:
  bool append(std::string_view bytes) override {
    data_.append(bytes);
    return true;
  }
  bool flush() override {
    durable_ = data_.size();
    return true;
  }
  bool read_all(std::string& out) override {
    out = data_;
    return true;
  }
  bool truncate(std::size_t size) override {
    if (size > data_.size()) return false;
    data_.resize(size);
    if (durable_ > size) durable_ = size;
    return true;
  }
  [[nodiscard]] std::size_t size() const override { return data_.size(); }
  [[nodiscard]] std::size_t durable_size() const override { return durable_; }

  void drop_unflushed() { data_.resize(durable_); }

 private:
  std::string data_;
  std::size_t durable_{0};
};

// Live-mode append-only log file. Appends go through the stdio buffer
// (staged); flush() is fflush + optional fsync. Opening an existing file
// resumes at its tail — recovery (scan + truncate) is the caller's job.
class FileBackend final : public StorageBackend {
 public:
  explicit FileBackend(std::string path, bool fsync_on_flush = false);
  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }

  bool append(std::string_view bytes) override;
  bool flush() override;
  bool read_all(std::string& out) override;
  bool truncate(std::size_t size) override;
  [[nodiscard]] std::size_t size() const override { return size_; }
  [[nodiscard]] std::size_t durable_size() const override { return durable_; }

 private:
  std::string path_;
  bool fsync_on_flush_;
  std::FILE* file_{nullptr};
  std::size_t size_{0};
  std::size_t durable_{0};
};

}  // namespace eden::journal
