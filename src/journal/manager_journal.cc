#include "journal/manager_journal.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace eden::journal {

ManagerJournal::ManagerJournal(StorageBackend& backend,
                               sim::Scheduler* scheduler,
                               JournalOptions options, std::uint64_t next_lsn)
    : backend_(&backend),
      scheduler_(scheduler),
      options_(options),
      next_lsn_(next_lsn) {
  if (options_.max_batch_records == 0) options_.max_batch_records = 1;
  if (scheduler_ == nullptr) options_.group_commit_interval = 0;
}

void ManagerJournal::stage(JournalRecord record) {
  if (disabled_) return;
  record.lsn = next_lsn_++;
  open_last_lsn_ = record.lsn;
  encode_record(record, open_payload_);
  ++open_count_;
  if (open_count_ >= options_.max_batch_records) {
    flush_open(record.at);
  }
}

void ManagerJournal::on_register(const net::NodeStatus& status, SimTime now,
                                 bool rejoin) {
  JournalRecord r;
  r.at = now;
  r.kind = RecordKind::kRegister;
  r.node = status.node;
  r.rejoin = rejoin;
  r.status = status;
  stage(std::move(r));
}

void ManagerJournal::on_heartbeat(const net::NodeStatus& status, SimTime now) {
  JournalRecord r;
  r.at = now;
  r.kind = RecordKind::kHeartbeat;
  r.node = status.node;
  r.status = status;
  stage(std::move(r));
}

void ManagerJournal::on_leave(NodeId node, SimTime now) {
  JournalRecord r;
  r.at = now;
  r.kind = RecordKind::kLeave;
  r.node = node;
  stage(std::move(r));
}

void ManagerJournal::on_expire(NodeId node, SimTime now) {
  JournalRecord r;
  r.at = now;
  r.kind = RecordKind::kExpire;
  r.node = node;
  stage(std::move(r));
}

void ManagerJournal::on_epoch(NodeId node, std::uint64_t epoch,
                              bool overloaded, SimTime now) {
  JournalRecord r;
  r.at = now;
  r.kind = RecordKind::kEpoch;
  r.node = node;
  r.epoch = epoch;
  r.overloaded = overloaded;
  stage(std::move(r));
}

void ManagerJournal::commit(SimTime now) {
  if (disabled_ || open_count_ == 0) return;
  if (options_.group_commit_interval <= 0 || scheduler_ == nullptr) {
    flush_open(now);
    return;
  }
  if (flush_pending_) return;  // this batch rides the scheduled commit
  flush_pending_ = true;
  flush_event_ =
      scheduler_->schedule_after(options_.group_commit_interval, [this] {
        flush_pending_ = false;
        flush_event_ = sim::kInvalidEvent;
        if (!disabled_) flush_open(scheduler_->now());
      });
}

void ManagerJournal::flush_now(SimTime now) {
  if (flush_pending_ && scheduler_ != nullptr) {
    scheduler_->cancel(flush_event_);
    flush_event_ = sim::kInvalidEvent;
    flush_pending_ = false;
  }
  flush_open(now);
}

void ManagerJournal::disable() {
  disabled_ = true;
  if (flush_pending_ && scheduler_ != nullptr) {
    scheduler_->cancel(flush_event_);
    flush_event_ = sim::kInvalidEvent;
    flush_pending_ = false;
  }
  open_payload_.clear();
  open_count_ = 0;
  crash_armed_ = false;
  on_crash_ = nullptr;
}

void ManagerJournal::arm_crash(CrashPoint point,
                               std::function<void()> on_crash) {
  if (point == CrashPoint::kAfterAppend) {
    throw std::logic_error(
        "kAfterAppend is not an armed point: flush_now then kill the host");
  }
  crash_armed_ = true;
  crash_point_ = point;
  on_crash_ = std::move(on_crash);
}

void ManagerJournal::flush_open(SimTime now) {
  if (disabled_ || open_count_ == 0) return;
  if (crash_armed_) {
    const CrashPoint point = crash_point_;
    crash_armed_ = false;
    std::function<void()> on_crash = std::move(on_crash_);
    on_crash_ = nullptr;
    if (point == CrashPoint::kMidBatch) {
      // The batch dies in writer memory: storage never sees it, nothing is
      // traced, and any ack for its mutations dies with the host.
      open_payload_.clear();
      open_count_ = 0;
      if (on_crash) on_crash();
      return;
    }
    if (point == CrashPoint::kTornTail) {
      std::string frame;
      encode_batch_frame(open_payload_, static_cast<std::uint32_t>(open_count_),
                         frame);
      // A strict prefix of the frame reaches storage — the torn final
      // record the recovery scan must detect and truncate.
      const std::size_t cut = std::max<std::size_t>(1, frame.size() / 2);
      backend_->append(std::string_view(frame).substr(0, cut));
      backend_->flush();  // the torn fragment itself survives the crash
      open_payload_.clear();
      open_count_ = 0;
      if (on_crash) on_crash();
      return;
    }
    // kBeforeAck: the commit completes durably below, then the host dies
    // before the handler's ack escapes.
    flush_open(now);
    if (on_crash) on_crash();
    return;
  }
  std::string frame;
  encode_batch_frame(open_payload_, static_cast<std::uint32_t>(open_count_),
                     frame);
  backend_->append(frame);
  backend_->flush();
  committed_lsn_ = open_last_lsn_;
  stats_.records += open_count_;
  stats_.batches += 1;
  stats_.bytes += frame.size();
  if (trace_ != nullptr) {
    trace_->record({now, obs::EventKind::kJournalCommit, site_, {},
                    open_count_, static_cast<double>(committed_lsn_)});
  }
  open_payload_.clear();
  open_count_ = 0;
}

}  // namespace eden::journal
