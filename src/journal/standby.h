// StandbyManager: warm-standby failover for the central manager. While the
// primary is alive the standby periodically tails the journal backend,
// applying every complete batch beyond its cursor into a RegistryImage.
// On the failover trigger take_over() runs the final catch-up scan
// (truncating a torn tail left by the crash), seeds its CentralManager's
// registry and overload phase state from the image, and reports the
// recovered LSN plus the canonical dump — the two facts the takeover
// oracles and the replay-determinism witness key on.
//
// Takeover protocol (DESIGN.md §15):
//  1. scan surviving bytes from the tail cursor; a torn final frame is
//     truncated off the log (it was never acked, so dropping it is safe);
//  2. apply the remaining records (idempotent — overlap with earlier tails
//     is ignored by the image's applied_lsn guard);
//  3. seed the standby CentralManager: registry entries as-of their
//     journaled last heartbeat, overload epochs monotone across the
//     takeover;
//  4. the standby starts journaling at recovered_lsn + 1 (the harness
//     installs a fresh ManagerJournal on the truncated log).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "journal/backend.h"
#include "journal/image.h"
#include "manager/central_manager.h"

namespace eden::journal {

struct StandbyOptions {
  // Planted selftest bug (kChaosDropLastBatchOnReplay): rebuild the image
  // from scratch at takeover, silently dropping the final committed batch.
  // Must trip the journal-seqnum oracle and the dump witness.
  bool chaos_drop_last_batch{false};
};

struct TakeoverResult {
  std::uint64_t recovered_lsn{0};
  std::size_t live_entries{0};
  std::size_t truncated_bytes{0};  // torn tail cut during recovery
  std::string dump;                // canonical image dump after replay
};

class StandbyManager {
 public:
  StandbyManager(StorageBackend& backend, manager::CentralManager& standby,
                 StandbyOptions options = {})
      : backend_(&backend), standby_(&standby), options_(options) {}

  // Warm tail: apply any new complete batches past the cursor. Cheap when
  // nothing changed; safe at any time before take_over().
  void tail();

  TakeoverResult take_over(SimTime now);

  [[nodiscard]] const RegistryImage& image() const { return image_; }
  [[nodiscard]] std::size_t cursor() const { return cursor_; }

 private:
  StorageBackend* backend_;
  manager::CentralManager* standby_;
  StandbyOptions options_;
  RegistryImage image_;
  std::size_t cursor_{0};  // byte offset of the first unapplied frame
};

}  // namespace eden::journal
