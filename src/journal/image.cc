#include "journal/image.h"

#include <cinttypes>
#include <cstdio>

namespace eden::journal {

void RegistryImage::apply(const JournalRecord& record) {
  if (record.lsn <= applied_lsn_) return;  // replay idempotence
  applied_lsn_ = record.lsn;
  switch (record.kind) {
    case RecordKind::kRegister: {
      Entry& e = entries_[record.node.value];
      e.status = record.status;
      e.registered_at = record.at;
      e.last_heartbeat = record.at;
      break;
    }
    case RecordKind::kHeartbeat: {
      // A heartbeat for an unknown node never happens through the manager
      // hooks (the rejoin path journals kRegister); tolerate it anyway by
      // treating it as a registration at the heartbeat time.
      auto it = entries_.find(record.node.value);
      if (it == entries_.end()) {
        Entry& e = entries_[record.node.value];
        e.status = record.status;
        e.registered_at = record.at;
        e.last_heartbeat = record.at;
      } else {
        it->second.status = record.status;
        it->second.last_heartbeat = record.at;
      }
      break;
    }
    case RecordKind::kLeave:
    case RecordKind::kExpire:
      entries_.erase(record.node.value);
      break;
    case RecordKind::kEpoch: {
      PhaseState& p = phases_[record.node.value];
      p.epoch = record.epoch;
      p.overloaded = record.overloaded;
      break;
    }
  }
}

std::string RegistryImage::canonical_dump() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "lsn=%" PRIu64 " nodes=%zu phases=%zu\n",
                applied_lsn_, entries_.size(), phases_.size());
  out += buf;
  for (const auto& [node, e] : entries_) {
    std::snprintf(buf, sizeof(buf),
                  "node=%u hash=%s cores=%d frame=%.6f users=%d util=%.6f "
                  "flags=%d%d tag=%s ep=%s q=%d credits=%.6f p95=%.6f "
                  "reg=%lld hb=%lld apps=",
                  node, e.status.geohash.c_str(), e.status.cores,
                  e.status.base_frame_ms, e.status.attached_users,
                  e.status.utilization, e.status.dedicated ? 1 : 0,
                  e.status.is_cloud ? 1 : 0, e.status.network_tag.c_str(),
                  e.status.endpoint.c_str(), e.status.queue_depth,
                  e.status.burst_credits, e.status.p95_proc_ms,
                  static_cast<long long>(e.registered_at),
                  static_cast<long long>(e.last_heartbeat));
    out += buf;
    for (std::size_t i = 0; i < e.status.app_types.size(); ++i) {
      if (i != 0) out += ',';
      out += e.status.app_types[i];
    }
    out += '\n';
  }
  for (const auto& [node, p] : phases_) {
    std::snprintf(buf, sizeof(buf), "phase node=%u epoch=%" PRIu64 " over=%d\n",
                  node, p.epoch, p.overloaded ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace eden::journal
