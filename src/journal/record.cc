#include "journal/record.h"

#include <bit>
#include <cstring>

namespace eden::journal {

namespace {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked little-endian reader; `ok` latches false on the first
// short read so decoders can bail once at the end.
struct Reader {
  std::string_view data;
  std::size_t pos{0};
  bool ok{true};

  [[nodiscard]] std::uint8_t u8() {
    if (!ok || pos + 1 > data.size()) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    if (!ok || pos + 4 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    if (!ok || pos + 8 > data.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t len = u32();
    if (!ok || pos + len > data.size()) {
      ok = false;
      return {};
    }
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }
};

void encode_status(const net::NodeStatus& s, std::string& out) {
  put_u32(out, s.node.value);
  put_str(out, s.geohash);
  put_u32(out, static_cast<std::uint32_t>(s.cores));
  put_f64(out, s.base_frame_ms);
  put_u32(out, static_cast<std::uint32_t>(s.attached_users));
  put_f64(out, s.utilization);
  put_u8(out, static_cast<std::uint8_t>((s.dedicated ? 1 : 0) |
                                        (s.is_cloud ? 2 : 0)));
  put_str(out, s.network_tag);
  put_str(out, s.endpoint);
  put_u32(out, static_cast<std::uint32_t>(s.app_types.size()));
  for (const std::string& app : s.app_types) put_str(out, app);
  put_u32(out, static_cast<std::uint32_t>(s.queue_depth));
  put_f64(out, s.burst_credits);
  put_f64(out, s.p95_proc_ms);
}

bool decode_status(Reader& in, net::NodeStatus& s) {
  s.node = NodeId{in.u32()};
  s.geohash = in.str();
  s.cores = static_cast<int>(in.u32());
  s.base_frame_ms = in.f64();
  s.attached_users = static_cast<int>(in.u32());
  s.utilization = in.f64();
  const std::uint8_t flags = in.u8();
  s.dedicated = (flags & 1) != 0;
  s.is_cloud = (flags & 2) != 0;
  s.network_tag = in.str();
  s.endpoint = in.str();
  const std::uint32_t apps = in.u32();
  if (!in.ok || apps > in.data.size()) return false;  // bogus count
  s.app_types.clear();
  s.app_types.reserve(apps);
  for (std::uint32_t i = 0; i < apps; ++i) s.app_types.push_back(in.str());
  s.queue_depth = static_cast<int>(in.u32());
  s.burst_credits = in.f64();
  s.p95_proc_ms = in.f64();
  return in.ok;
}

bool decode_record(Reader& in, JournalRecord& r) {
  const std::uint8_t kind = in.u8();
  if (!in.ok || kind < static_cast<std::uint8_t>(RecordKind::kRegister) ||
      kind > static_cast<std::uint8_t>(RecordKind::kEpoch)) {
    return false;
  }
  r.kind = static_cast<RecordKind>(kind);
  const std::uint8_t flags = in.u8();
  r.rejoin = (flags & 1) != 0;
  r.overloaded = (flags & 2) != 0;
  r.lsn = in.u64();
  r.at = in.i64();
  r.node = NodeId{in.u32()};
  r.epoch = 0;
  r.status = net::NodeStatus{};
  switch (r.kind) {
    case RecordKind::kRegister:
    case RecordKind::kHeartbeat:
      if (!decode_status(in, r.status)) return false;
      break;
    case RecordKind::kEpoch:
      r.epoch = in.u64();
      break;
    case RecordKind::kLeave:
    case RecordKind::kExpire:
      break;
  }
  return in.ok;
}

}  // namespace

std::uint32_t fnv1a32(std::string_view data) {
  std::uint32_t hash = 2166136261u;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 16777619u;
  }
  return hash;
}

void encode_record(const JournalRecord& record, std::string& out) {
  put_u8(out, static_cast<std::uint8_t>(record.kind));
  put_u8(out, static_cast<std::uint8_t>((record.rejoin ? 1 : 0) |
                                        (record.overloaded ? 2 : 0)));
  put_u64(out, record.lsn);
  put_i64(out, record.at);
  put_u32(out, record.node.value);
  switch (record.kind) {
    case RecordKind::kRegister:
    case RecordKind::kHeartbeat:
      encode_status(record.status, out);
      break;
    case RecordKind::kEpoch:
      put_u64(out, record.epoch);
      break;
    case RecordKind::kLeave:
    case RecordKind::kExpire:
      break;
  }
}

void encode_batch_frame(std::string_view payload, std::uint32_t count,
                        std::string& out) {
  put_u32(out, kBatchMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, count);
  put_u32(out, fnv1a32(payload));
  out.append(payload);
}

ScanResult scan(std::string_view bytes) {
  ScanResult result;
  std::size_t pos = 0;
  std::vector<JournalRecord> batch;
  while (bytes.size() - pos >= kBatchHeaderBytes) {
    Reader header{bytes.substr(pos, kBatchHeaderBytes)};
    const std::uint32_t magic = header.u32();
    const std::uint32_t payload_len = header.u32();
    const std::uint32_t count = header.u32();
    const std::uint32_t checksum = header.u32();
    if (magic != kBatchMagic) {
      result.torn = true;
      break;
    }
    if (bytes.size() - pos - kBatchHeaderBytes < payload_len) {
      result.torn = true;  // incomplete final write
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kBatchHeaderBytes, payload_len);
    if (fnv1a32(payload) != checksum) {
      result.torn = true;
      break;
    }
    // Decode the whole batch before committing any of it: a frame that
    // checksums clean but does not decode is corruption, not a valid tail.
    batch.clear();
    Reader in{payload};
    bool good = true;
    for (std::uint32_t i = 0; i < count; ++i) {
      JournalRecord r;
      if (!decode_record(in, r) ||
          (result.last_lsn != 0 && r.lsn <= result.last_lsn) ||
          (!batch.empty() && r.lsn <= batch.back().lsn)) {
        good = false;
        break;
      }
      batch.push_back(std::move(r));
    }
    if (!good || in.pos != payload.size()) {
      result.torn = true;
      break;
    }
    result.last_batch_first_record = result.records.size();
    for (auto& r : batch) {
      result.last_lsn = r.lsn;
      result.records.push_back(std::move(r));
    }
    ++result.batches;
    pos += kBatchHeaderBytes + payload_len;
    result.valid_bytes = pos;
  }
  if (pos < bytes.size() && bytes.size() - pos < kBatchHeaderBytes) {
    result.torn = true;  // trailing bytes too short to even frame
  }
  return result;
}

}  // namespace eden::journal
