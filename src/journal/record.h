// Journal record format for the manager's write-ahead event log (DESIGN.md
// §15). Every registry mutation — register/rejoin, heartbeat refresh,
// graceful leave, TTL expiry, overload phase-epoch transition — becomes one
// LSN-stamped record; records ship to storage in checksummed batch frames
// (group commit). The framing is self-describing enough that a recovery
// scan can detect a torn final batch (partial write at the crash point) and
// truncate it away without a separate index.
//
// Batch frame layout (all integers little-endian):
//   [u32 magic 'EDJL'][u32 payload_len][u32 record_count][u32 fnv1a32(payload)]
//   [payload: record_count encoded records]
//
// A batch is valid only if it is complete and its checksum matches; a scan
// stops at the first invalid frame and reports the clean byte prefix, which
// is exactly what takeover recovery truncates to.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "net/protocol.h"

namespace eden::journal {

inline constexpr std::uint32_t kBatchMagic = 0x4C4A4445u;  // "EDJL"
inline constexpr std::size_t kBatchHeaderBytes = 16;

enum class RecordKind : std::uint8_t {
  kRegister = 1,   // node (re)joined the registry; carries the full status
  kHeartbeat = 2,  // freshness + telemetry refresh; carries the full status
  kLeave = 3,      // graceful deregister
  kExpire = 4,     // manager observed a TTL expiry
  kEpoch = 5,      // overload phase-epoch transition (enter or exit)
};

struct JournalRecord {
  std::uint64_t lsn{0};
  SimTime at{0};
  RecordKind kind{RecordKind::kHeartbeat};
  NodeId node;
  bool rejoin{false};      // kRegister: heartbeat-path re-registration
  net::NodeStatus status;  // kRegister / kHeartbeat only
  std::uint64_t epoch{0};  // kEpoch only
  bool overloaded{false};  // kEpoch: entering (true) or leaving the set
};

[[nodiscard]] std::uint32_t fnv1a32(std::string_view data);

// Append one record's encoding to `out` (batch payload bytes, no framing).
void encode_record(const JournalRecord& record, std::string& out);

// Frame `payload` holding `count` records into a batch and append it.
void encode_batch_frame(std::string_view payload, std::uint32_t count,
                        std::string& out);

struct ScanResult {
  std::vector<JournalRecord> records;
  std::uint64_t last_lsn{0};   // 0 when no record decoded
  std::size_t valid_bytes{0};  // clean framed prefix; recovery truncates here
  std::size_t batches{0};
  // Index into `records` of the final batch's first record (== records.size()
  // when empty) — the planted drop-last-batch replay bug keys on this.
  std::size_t last_batch_first_record{0};
  // Trailing bytes past valid_bytes existed but did not frame/checksum clean
  // (torn final write or corruption).
  bool torn{false};
};

// Walk `bytes` batch by batch; stops at the first incomplete or corrupt
// frame. LSNs must be strictly increasing across the scanned region — a
// regression is treated as corruption (scan stops, torn=true).
[[nodiscard]] ScanResult scan(std::string_view bytes);

}  // namespace eden::journal
