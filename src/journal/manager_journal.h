// ManagerJournal: the write-ahead journal behind CentralManager's
// RegistryMutationSink. Mutations are staged as LSN-stamped records in an
// open batch; commit() closes the handler's mutation set and either
// flushes immediately (group_commit_interval == 0 — the live runtime's
// journal-before-ack mode) or schedules a deferred group commit that
// amortizes one backend flush over every handler that lands inside the
// interval (the sim harness default).
//
// Group-commit rules (DESIGN.md §15):
//  - a batch flushes when it reaches max_batch_records, when the deferred
//    interval elapses, or on flush_now() (clean shutdown);
//  - the backend receives only whole framed batches; the open batch lives
//    in writer memory until its flush — so a crash can lose at most the
//    un-flushed tail, never tear an acked commit;
//  - kJournalCommit is traced exactly when a batch is durable, carrying
//    the batch's last LSN — the takeover oracle's floor.
//
// Crash-point injection (sim only): arm_crash() plants a deterministic
// crash at the next group commit — kBeforeAck fires after the flush (the
// batch is durable but the in-flight ack dies with the host), kMidBatch
// fires instead of the flush (the batch never reaches storage), kTornTail
// persists only a byte prefix of the frame. kAfterAppend is not armed
// here: the harness flushes and kills directly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "journal/backend.h"
#include "journal/record.h"
#include "manager/central_manager.h"
#include "obs/trace.h"
#include "sim/clock.h"

namespace eden::journal {

struct JournalOptions {
  std::size_t max_batch_records{64};
  // 0 = flush inside every commit() (strict journal-before-ack); > 0 =
  // deferred group commit on the scheduler.
  SimDuration group_commit_interval{msec(20.0)};
};

// The four deterministic crash points the fuzzer samples (ISSUE 10).
enum class CrashPoint : int {
  kAfterAppend = 0,  // open batch force-flushed, then the host dies
  kBeforeAck = 1,    // next commit flushes durably, then dies pre-ack
  kMidBatch = 2,     // next commit dies before its batch reaches storage
  kTornTail = 3,     // next commit persists a strict byte prefix, then dies
};

struct JournalStats {
  std::uint64_t records{0};
  std::uint64_t batches{0};
  std::uint64_t bytes{0};
};

class ManagerJournal final : public manager::RegistryMutationSink {
 public:
  // `scheduler` may be null when group_commit_interval is 0 (live mode).
  ManagerJournal(StorageBackend& backend, sim::Scheduler* scheduler,
                 JournalOptions options = {}, std::uint64_t next_lsn = 1);

  // ---- RegistryMutationSink ----
  void on_register(const net::NodeStatus& status, SimTime now,
                   bool rejoin) override;
  void on_heartbeat(const net::NodeStatus& status, SimTime now) override;
  void on_leave(NodeId node, SimTime now) override;
  void on_expire(NodeId node, SimTime now) override;
  void on_epoch(NodeId node, std::uint64_t epoch, bool overloaded,
                SimTime now) override;
  void commit(SimTime now) override;

  // Force-flush the open batch (clean shutdown / kAfterAppend).
  void flush_now(SimTime now);
  // Stop journaling entirely (the host died); staged records are dropped.
  void disable();
  [[nodiscard]] bool disabled() const { return disabled_; }

  // Plant a deterministic crash at the next non-empty group commit;
  // `on_crash` runs exactly once, inside that commit. kAfterAppend is
  // rejected (the harness handles it without arming).
  void arm_crash(CrashPoint point, std::function<void()> on_crash);
  [[nodiscard]] bool crash_armed() const { return crash_armed_; }

  void set_observability(obs::TraceRecorder* trace, HostId site) {
    trace_ = trace;
    site_ = site;
  }

  [[nodiscard]] std::uint64_t next_lsn() const { return next_lsn_; }
  // Last LSN known durable (0 before the first flush).
  [[nodiscard]] std::uint64_t committed_lsn() const { return committed_lsn_; }
  [[nodiscard]] std::size_t open_records() const { return open_count_; }
  [[nodiscard]] const JournalStats& stats() const { return stats_; }

 private:
  void stage(JournalRecord record);
  // Flush the open batch to the backend (honoring an armed crash).
  void flush_open(SimTime now);

  StorageBackend* backend_;
  sim::Scheduler* scheduler_;
  JournalOptions options_;
  std::uint64_t next_lsn_;
  std::uint64_t committed_lsn_{0};
  std::string open_payload_;
  std::size_t open_count_{0};
  std::uint64_t open_last_lsn_{0};
  sim::EventId flush_event_{sim::kInvalidEvent};
  bool flush_pending_{false};
  bool disabled_{false};
  bool crash_armed_{false};
  CrashPoint crash_point_{CrashPoint::kBeforeAck};
  std::function<void()> on_crash_;
  JournalStats stats_;
  obs::TraceRecorder* trace_{nullptr};
  HostId site_;
};

}  // namespace eden::journal
