#include "journal/backend.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace eden::journal {

FileBackend::FileBackend(std::string path, bool fsync_on_flush)
    : path_(std::move(path)), fsync_on_flush_(fsync_on_flush) {
  // "a+b": append-only writes, reads allowed, created if missing, existing
  // contents preserved (recovery needs to scan them).
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) return;
  std::fseek(file_, 0, SEEK_END);
  size_ = static_cast<std::size_t>(std::ftell(file_));
  durable_ = size_;  // pre-existing bytes are on disk by definition
}

FileBackend::~FileBackend() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

bool FileBackend::append(std::string_view bytes) {
  if (file_ == nullptr) return false;
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return false;
  }
  size_ += bytes.size();
  return true;
}

bool FileBackend::flush() {
  if (file_ == nullptr) return false;
  if (std::fflush(file_) != 0) return false;
  if (fsync_on_flush_ && ::fsync(::fileno(file_)) != 0) return false;
  durable_ = size_;
  return true;
}

bool FileBackend::read_all(std::string& out) {
  out.clear();
  if (file_ == nullptr) return false;
  if (std::fflush(file_) != 0) return false;
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return false;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    out.append(buf, n);
  }
  const bool good = std::ferror(in) == 0;
  std::fclose(in);
  return good;
}

bool FileBackend::truncate(std::size_t size) {
  if (file_ == nullptr || size > size_) return false;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  if (::truncate(path_.c_str(), static_cast<off_t>(size)) != 0) return false;
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) return false;
  std::fseek(file_, 0, SEEK_END);
  size_ = static_cast<std::size_t>(std::ftell(file_));
  if (durable_ > size_) durable_ = size_;
  return true;
}

}  // namespace eden::journal
