#include "journal/standby.h"

namespace eden::journal {

void StandbyManager::tail() {
  std::string bytes;
  if (!backend_->read_all(bytes)) return;
  if (bytes.size() <= cursor_) return;
  const ScanResult res = scan(std::string_view(bytes).substr(cursor_));
  for (const JournalRecord& r : res.records) image_.apply(r);
  cursor_ += res.valid_bytes;
}

TakeoverResult StandbyManager::take_over(SimTime now) {
  (void)now;
  TakeoverResult result;
  std::string bytes;
  backend_->read_all(bytes);

  // Final catch-up past the tail cursor; anything beyond the clean framed
  // prefix is a torn final write — truncate it off the log so the standby
  // appends to a well-formed tail.
  const ScanResult res = scan(std::string_view(bytes).substr(cursor_));
  for (const JournalRecord& r : res.records) image_.apply(r);
  const std::size_t clean_end = cursor_ + res.valid_bytes;
  result.truncated_bytes = bytes.size() - clean_end;
  if (result.truncated_bytes > 0) backend_->truncate(clean_end);
  cursor_ = clean_end;

  if (options_.chaos_drop_last_batch) {
    // Planted bug: replay everything from scratch minus the final
    // committed batch. The traced kJournalCommit for that batch now has no
    // covering takeover LSN — exactly what the journal-seqnum oracle and
    // the dump witness must catch.
    const ScanResult full = scan(std::string_view(bytes).substr(0, clean_end));
    RegistryImage broken;
    for (std::size_t i = 0; i < full.last_batch_first_record; ++i) {
      broken.apply(full.records[i]);
    }
    image_ = std::move(broken);
  }

  for (const auto& [node, entry] : image_.entries()) {
    standby_->seed_entry(entry.status, entry.last_heartbeat);
  }
  for (const auto& [node, phase] : image_.phases()) {
    standby_->seed_overload(NodeId{node}, phase.epoch, phase.overloaded);
  }

  result.recovered_lsn = image_.applied_lsn();
  result.live_entries = image_.size();
  result.dump = image_.canonical_dump();
  return result;
}

}  // namespace eden::journal
