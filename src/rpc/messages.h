// Message-type registry and per-message codecs for the live TCP runtime.
// Every RPC travels as: [u32 length][u64 request_id][u16 type][payload].
// Responses echo the request_id with the response type = request type | 0x8000.
#pragma once

#include <cstdint>

#include "net/protocol.h"
#include "rpc/serialize.h"

namespace eden::rpc {

enum class MessageType : std::uint16_t {
  kRttProbe = 1,
  kProcessProbe = 2,
  kJoin = 3,
  kUnexpectedJoin = 4,
  kLeave = 5,  // one-way
  kOffload = 6,
  kDiscover = 7,
  kRegisterNode = 8,  // one-way
  kHeartbeat = 9,     // one-way
  kDeregister = 10,   // one-way
};

constexpr std::uint16_t kResponseFlag = 0x8000;

[[nodiscard]] constexpr std::uint16_t response_type(MessageType type) {
  return static_cast<std::uint16_t>(type) | kResponseFlag;
}

// ---- codecs (encode_x / decode_x pairs) ----

void encode(Writer& w, const net::NodeStatus& v);
[[nodiscard]] net::NodeStatus decode_node_status(Reader& r);

void encode(Writer& w, const net::DiscoveryRequest& v);
[[nodiscard]] net::DiscoveryRequest decode_discovery_request(Reader& r);

void encode(Writer& w, const net::DiscoveryResponse& v);
[[nodiscard]] net::DiscoveryResponse decode_discovery_response(Reader& r);

void encode(Writer& w, const net::ProcessProbeResponse& v);
[[nodiscard]] net::ProcessProbeResponse decode_process_probe_response(Reader& r);

void encode(Writer& w, const net::JoinRequest& v);
[[nodiscard]] net::JoinRequest decode_join_request(Reader& r);

void encode(Writer& w, const net::JoinResponse& v);
[[nodiscard]] net::JoinResponse decode_join_response(Reader& r);

void encode(Writer& w, const net::FrameRequest& v);
[[nodiscard]] net::FrameRequest decode_frame_request(Reader& r);

void encode(Writer& w, const net::FrameResponse& v);
[[nodiscard]] net::FrameResponse decode_frame_response(Reader& r);

}  // namespace eden::rpc
