#include "rpc/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace eden::rpc {

EventLoop::EventLoop() : origin_(std::chrono::steady_clock::now()) {
  if (::pipe(wake_pipe_) == 0) {
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
  }
}

EventLoop::~EventLoop() {
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

SimTime EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

sim::EventId EventLoop::schedule_after(SimDuration delay, sim::Callback fn) {
  if (delay < 0) delay = 0;
  const sim::EventId id = next_timer_id_++;
  const SimTime deadline = now() + delay;
  timers_.emplace(std::make_pair(deadline, id), std::move(fn));
  timer_deadlines_[id] = deadline;
  return id;
}

bool EventLoop::cancel(sim::EventId id) {
  const auto it = timer_deadlines_.find(id);
  if (it == timer_deadlines_.end()) return false;
  timers_.erase({it->second, id});
  timer_deadlines_.erase(it);
  return true;
}

void EventLoop::watch(int fd, bool want_read, bool want_write,
                      IoCallback callback) {
  watches_[fd] = Watch{want_read, want_write, std::move(callback)};
}

void EventLoop::update_interest(int fd, bool want_read, bool want_write) {
  const auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void EventLoop::unwatch(int fd) { watches_.erase(fd); }

void EventLoop::post(std::function<void()> fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::fire_due_timers() {
  const SimTime current = now();
  while (!timers_.empty() && timers_.begin()->first.first <= current) {
    auto node = timers_.extract(timers_.begin());
    timer_deadlines_.erase(node.key().second);
    node.mapped()();
  }
}

int EventLoop::next_poll_timeout_ms(SimTime deadline, bool has_deadline) {
  SimTime next = has_deadline ? deadline : -1;
  if (!timers_.empty()) {
    const SimTime timer_deadline = timers_.begin()->first.first;
    next = next < 0 ? timer_deadline : std::min(next, timer_deadline);
  }
  if (next < 0) return 250;  // idle heartbeat so stop() is always noticed
  const SimTime delta = next - now();
  if (delta <= 0) return 0;
  return static_cast<int>(std::min<SimTime>(delta / 1000 + 1, 250));
}

void EventLoop::run() { run_until_deadline(0, false); }

void EventLoop::run_for(SimDuration duration) {
  run_until_deadline(now() + duration, true);
}

void EventLoop::run_until_deadline(SimTime deadline, bool has_deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (has_deadline && now() >= deadline) break;
    drain_posted();
    fire_due_timers();

    std::vector<pollfd> fds;
    std::vector<int> fd_order;
    fds.reserve(watches_.size() + 1);
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (const auto& [fd, watch] : watches_) {
      short events = 0;
      if (watch.want_read) events |= POLLIN;
      if (watch.want_write) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{fd, events, 0});
      fd_order.push_back(fd);
    }

    const int timeout = next_poll_timeout_ms(deadline, has_deadline);
    const int ready = ::poll(fds.data(), fds.size(), timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    for (std::size_t i = 1; i < fds.size(); ++i) {
      const auto& pfd = fds[i];
      if (pfd.revents == 0) continue;
      // The callback may unwatch/close fds — re-check registration.
      const auto it = watches_.find(fd_order[i - 1]);
      if (it == watches_.end()) continue;
      const bool readable = (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      const bool writable = (pfd.revents & (POLLOUT | POLLERR)) != 0;
      // Copy: the callback may erase its own watch entry.
      IoCallback callback = it->second.callback;
      callback(readable, writable);
    }

    drain_posted();
    fire_due_timers();
  }
  drain_posted();
}

}  // namespace eden::rpc
