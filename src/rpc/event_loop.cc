#include "rpc/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace eden::rpc {
namespace {

// epoll user data for the wake pipe; watch slots use gen<<32|idx, and idx
// is always < 2^32-1, so this value cannot collide.
constexpr std::uint64_t kWakeData = ~0ull;

}  // namespace

EventLoop::EventLoop() : origin_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (::pipe(wake_pipe_) == 0) {
    ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
    ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeData;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime EventLoop::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

// ---- timers -------------------------------------------------------------

sim::EventId EventLoop::schedule_after(SimDuration delay, sim::Callback fn) {
  if (delay < 0) delay = 0;
  std::uint32_t idx;
  if (timer_free_head_ != kNil) {
    idx = timer_free_head_;
    timer_free_head_ = timer_slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(timer_slots_.size());
    timer_slots_.emplace_back();
  }
  TimerSlot& slot = timer_slots_[idx];
  slot.fn = std::move(fn);
  slot.next_free = kNil;
  const sim::EventId id =
      (static_cast<std::uint64_t>(slot.gen) << 32) | (idx + 1ull);
  timer_heap_.push_back(HeapEntry{now() + delay, timer_seq_++, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), HeapLater{});
  ++live_timers_;
  return id;
}

bool EventLoop::cancel(sim::EventId id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= timer_slots_.size()) return false;
  TimerSlot& slot = timer_slots_[idx];
  if (slot.gen != gen || !slot.fn) return false;
  slot.fn.reset();
  ++slot.gen;
  slot.next_free = timer_free_head_;
  timer_free_head_ = idx;
  --live_timers_;
  // The heap entry stays behind and is skipped lazily; compact when dead
  // entries dominate so cancel-heavy workloads stay O(log live).
  maybe_compact_heap();
  return true;
}

void EventLoop::maybe_compact_heap() {
  if (timer_heap_.size() <= 2 * live_timers_ + 64) return;
  std::size_t kept = 0;
  for (const HeapEntry& entry : timer_heap_) {
    const std::uint32_t idx =
        static_cast<std::uint32_t>(entry.id & 0xffffffffu) - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(entry.id >> 32);
    if (idx < timer_slots_.size() && timer_slots_[idx].gen == gen &&
        timer_slots_[idx].fn) {
      timer_heap_[kept++] = entry;
    }
  }
  timer_heap_.resize(kept);
  std::make_heap(timer_heap_.begin(), timer_heap_.end(), HeapLater{});
}

void EventLoop::pop_dead_heap_top() {
  while (!timer_heap_.empty()) {
    const HeapEntry& top = timer_heap_.front();
    const std::uint32_t idx =
        static_cast<std::uint32_t>(top.id & 0xffffffffu) - 1;
    const std::uint32_t gen = static_cast<std::uint32_t>(top.id >> 32);
    if (idx < timer_slots_.size() && timer_slots_[idx].gen == gen &&
        timer_slots_[idx].fn) {
      return;
    }
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), HeapLater{});
    timer_heap_.pop_back();
  }
}

void EventLoop::fire_due_timers() {
  const SimTime current = now();
  while (true) {
    pop_dead_heap_top();
    if (timer_heap_.empty() || timer_heap_.front().deadline > current) break;
    const sim::EventId id = timer_heap_.front().id;
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), HeapLater{});
    timer_heap_.pop_back();
    const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    TimerSlot& slot = timer_slots_[idx];
    // Release the slot before invoking: the callback may schedule new
    // timers (and re-use this very slot).
    sim::Callback fn = std::move(slot.fn);
    slot.fn.reset();
    ++slot.gen;
    slot.next_free = timer_free_head_;
    timer_free_head_ = idx;
    --live_timers_;
    fn();
  }
}

// ---- watches ------------------------------------------------------------

EventLoop::WatchId EventLoop::register_watch(int fd, bool want_read,
                                             bool want_write, IoSink* sink,
                                             std::uint64_t tag,
                                             IoFunc callback) {
  std::uint32_t idx;
  if (watch_free_head_ != kNil) {
    idx = watch_free_head_;
    watch_free_head_ = watch_slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(watch_slots_.size());
    watch_slots_.emplace_back();
  }
  WatchSlot& slot = watch_slots_[idx];
  slot.fd = fd;
  slot.want_read = want_read;
  slot.want_write = want_write;
  slot.sink = sink;
  slot.tag = tag;
  slot.callback = std::move(callback);
  slot.next_free = kNil;
  ++live_watches_;

  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = (static_cast<std::uint64_t>(slot.gen) << 32) | idx;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  return (static_cast<std::uint64_t>(slot.gen) << 32) | (idx + 1ull);
}

EventLoop::WatchId EventLoop::watch_sink(int fd, bool want_read,
                                         bool want_write, IoSink* sink,
                                         std::uint64_t tag) {
  return register_watch(fd, want_read, want_write, sink, tag, IoFunc{});
}

EventLoop::WatchId EventLoop::watch(int fd, bool want_read, bool want_write,
                                    IoFunc callback) {
  // fd-keyed semantics: re-watching an fd replaces the previous watch.
  unwatch(fd);
  const WatchId id =
      register_watch(fd, want_read, want_write, nullptr, 0, std::move(callback));
  fd_index_.emplace_back(fd, static_cast<std::uint32_t>((id & 0xffffffffu) - 1));
  return id;
}

EventLoop::WatchSlot* EventLoop::resolve_watch(WatchId id) {
  if (id == 0) return nullptr;
  const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= watch_slots_.size()) return nullptr;
  WatchSlot& slot = watch_slots_[idx];
  if (slot.gen != gen || slot.fd < 0) return nullptr;
  return &slot;
}

void EventLoop::apply_interest(std::uint32_t idx) {
  WatchSlot& slot = watch_slots_[idx];
  epoll_event ev{};
  ev.events = (slot.want_read ? EPOLLIN : 0u) |
              (slot.want_write ? EPOLLOUT : 0u);
  ev.data.u64 = (static_cast<std::uint64_t>(slot.gen) << 32) | idx;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, slot.fd, &ev);
}

void EventLoop::update_watch(WatchId id, bool want_read, bool want_write) {
  WatchSlot* slot = resolve_watch(id);
  if (slot == nullptr) return;
  if (slot->want_read == want_read && slot->want_write == want_write) return;
  slot->want_read = want_read;
  slot->want_write = want_write;
  apply_interest(static_cast<std::uint32_t>(id & 0xffffffffu) - 1);
}

void EventLoop::release_watch(std::uint32_t idx) {
  WatchSlot& slot = watch_slots_[idx];
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, slot.fd, nullptr);
  slot.fd = -1;
  slot.sink = nullptr;
  slot.tag = 0;
  slot.callback.reset();
  ++slot.gen;
  slot.next_free = watch_free_head_;
  watch_free_head_ = idx;
  --live_watches_;
}

void EventLoop::unwatch_id(WatchId id) {
  if (resolve_watch(id) == nullptr) return;
  release_watch(static_cast<std::uint32_t>(id & 0xffffffffu) - 1);
}

void EventLoop::update_interest(int fd, bool want_read, bool want_write) {
  for (const auto& [watched_fd, idx] : fd_index_) {
    if (watched_fd != fd) continue;
    WatchSlot& slot = watch_slots_[idx];
    if (slot.fd != fd) return;  // stale index entry
    if (slot.want_read != want_read || slot.want_write != want_write) {
      slot.want_read = want_read;
      slot.want_write = want_write;
      apply_interest(idx);
    }
    return;
  }
}

void EventLoop::unwatch(int fd) {
  for (std::size_t i = 0; i < fd_index_.size(); ++i) {
    if (fd_index_[i].first != fd) continue;
    const std::uint32_t idx = fd_index_[i].second;
    fd_index_[i] = fd_index_.back();
    fd_index_.pop_back();
    if (watch_slots_[idx].fd == fd) release_watch(idx);
    return;
  }
}

// ---- posting / lifecycle ------------------------------------------------

void EventLoop::post(sim::Callback fn) {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_pipe_[1], &byte, 1);
}

void EventLoop::drain_posted() {
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    if (posted_.empty()) return;
    posted_.swap(draining_);  // ping-pong: both buffers retain capacity
  }
  for (sim::Callback& fn : draining_) fn();
  draining_.clear();
}

int EventLoop::next_wait_timeout_ms(SimTime deadline, bool has_deadline) {
  SimTime next = has_deadline ? deadline : -1;
  pop_dead_heap_top();
  if (!timer_heap_.empty()) {
    const SimTime timer_deadline = timer_heap_.front().deadline;
    next = next < 0 ? timer_deadline : std::min(next, timer_deadline);
  }
  if (next < 0) return 250;  // idle heartbeat so stop() is always noticed
  const SimTime delta = next - now();
  if (delta <= 0) return 0;
  return static_cast<int>(std::min<SimTime>(delta / 1000 + 1, 250));
}

void EventLoop::run() { run_until_deadline(0, false); }

void EventLoop::run_for(SimDuration duration) {
  run_until_deadline(now() + duration, true);
}

void EventLoop::run_until_deadline(SimTime deadline, bool has_deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  epoll_event events[kMaxEpollEvents];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (has_deadline && now() >= deadline) break;
    drain_posted();
    fire_due_timers();

    const int timeout = next_wait_timeout_ms(deadline, has_deadline);
    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }

    for (int i = 0; i < ready; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kWakeData) {
        char drain[64];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const std::uint32_t idx = static_cast<std::uint32_t>(ev.data.u64);
      const std::uint32_t gen = static_cast<std::uint32_t>(ev.data.u64 >> 32);
      if (idx >= watch_slots_.size()) continue;
      WatchSlot& slot = watch_slots_[idx];
      // A callback earlier in this batch may have unwatched (and even
      // re-used) the slot — the generation stamp filters stale events.
      if (slot.gen != gen || slot.fd < 0) continue;
      const bool readable =
          (ev.events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      const bool writable = (ev.events & (EPOLLOUT | EPOLLERR)) != 0;
      if (slot.sink != nullptr) {
        slot.sink->on_io_event(slot.tag, readable, writable);
      } else if (slot.callback) {
        // Move the callable out so the callback may unwatch its own slot;
        // restore it if the watch is still alive and was not replaced.
        IoFunc fn = std::move(slot.callback);
        fn(readable, writable);
        WatchSlot& after = watch_slots_[idx];
        if (after.gen == gen && after.fd >= 0 && !after.callback) {
          after.callback = std::move(fn);
        }
      }
    }

    drain_posted();
    fire_due_timers();
  }
  drain_posted();
}

}  // namespace eden::rpc
