#include "rpc/serialize.h"

namespace eden::rpc {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

bool Reader::take(void* out, std::size_t n) {
  if (!ok_ || size_ - offset_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + offset_, n);
  offset_ += n;
  return true;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  take(&v, 1);
  return v;
}

// Multi-byte reads are atomic: a value is either fully available or the
// read fails and returns exactly zero.
std::uint16_t Reader::u16() {
  std::uint8_t raw[2];
  if (!take(raw, sizeof(raw))) return 0;
  return static_cast<std::uint16_t>(raw[0] | (raw[1] << 8));
}

std::uint32_t Reader::u32() {
  std::uint8_t raw[4];
  if (!take(raw, sizeof(raw))) return 0;
  return static_cast<std::uint32_t>(raw[0]) |
         (static_cast<std::uint32_t>(raw[1]) << 8) |
         (static_cast<std::uint32_t>(raw[2]) << 16) |
         (static_cast<std::uint32_t>(raw[3]) << 24);
}

std::uint64_t Reader::u64() {
  std::uint8_t raw[8];
  if (!take(raw, sizeof(raw))) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | raw[i];
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

std::string Reader::str() {
  const std::uint32_t size = u32();
  if (!ok_ || size_ - offset_ < size) {
    ok_ = false;
    return {};
  }
  std::string out(reinterpret_cast<const char*>(data_ + offset_), size);
  offset_ += size;
  return out;
}

}  // namespace eden::rpc
