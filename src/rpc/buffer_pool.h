// Slab buffer pool for the live data plane: fixed-size chunks handed out
// by index from a freelist, shared by every connection on one event loop.
// Frames are serialized straight into pool chunks (a frame may span
// several) and released as the kernel drains them, so steady-state traffic
// recycles the same chunks instead of allocating per frame.
//
// Chunks live in a deque so their addresses are stable across growth; the
// pool only allocates when the working set grows past its high-water mark.
// in_use() must return to zero once every connection has closed — the
// live smoke test and bench_live assert this as the leak oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace eden::rpc {

class BufferPool {
 public:
  static constexpr std::size_t kChunkBytes = 4096;

  // Returns the index of a chunk owned by the caller until release().
  std::uint32_t acquire();
  void release(std::uint32_t idx);

  [[nodiscard]] std::uint8_t* data(std::uint32_t idx) {
    return chunks_[idx].bytes;
  }
  [[nodiscard]] const std::uint8_t* data(std::uint32_t idx) const {
    return chunks_[idx].bytes;
  }

  // Chunks currently held by callers (acquires minus releases).
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  // High-water mark: total chunks ever allocated.
  [[nodiscard]] std::size_t capacity() const { return chunks_.size(); }
  [[nodiscard]] std::uint64_t total_acquires() const {
    return total_acquires_;
  }

 private:
  struct Chunk {
    std::uint8_t bytes[kChunkBytes];
  };

  std::deque<Chunk> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t in_use_{0};
  std::uint64_t total_acquires_{0};
};

}  // namespace eden::rpc
