// Live (real TCP) runtimes for the three EDEN roles. Each runtime owns an
// EventLoop running on its own thread; the protocol state machines are the
// very same classes the simulator drives (EdgeNode, CentralManager,
// EdgeClient), wired to RpcServer/RpcClient instead of the simulated
// fabric.
//
// Each runtime also owns the loop's ConnectionPool: every socket the
// runtime touches is a generation-stamped slot in that pool, and every
// frame is serialized through a per-proxy scratch Writer into pooled
// chunks — the steady-state data path does not allocate (bench_live
// measures allocs/frame against the same gate as the simulator).
//
// Threading: all protocol state lives on the runtime's loop thread. Public
// accessors marshal onto the loop via run_on_loop(); never touch the inner
// objects directly from outside.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "client/edge_client.h"
#include "journal/backend.h"
#include "journal/manager_journal.h"
#include "manager/central_manager.h"
#include "node/edge_node.h"
#include "rpc/rpc_client.h"
#include "rpc/rpc_server.h"

namespace eden::rpc {

// Runs `fn` on the loop thread and waits for its result.
template <typename Fn>
auto run_on_loop(EventLoop& loop, Fn fn) -> decltype(fn()) {
  using Result = decltype(fn());
  std::promise<Result> promise;
  auto future = promise.get_future();
  loop.post([&promise, &fn] {
    if constexpr (std::is_void_v<Result>) {
      fn();
      promise.set_value();
    } else {
      promise.set_value(fn());
    }
  });
  return future.get();
}

// Buffer-pool occupancy of one runtime's ConnectionPool, for the leak
// oracle and the bench reports.
struct PoolStats {
  std::size_t chunks_in_use{0};
  std::size_t chunk_capacity{0};
  std::size_t open_connections{0};
};

// ---- central manager over TCP ----
class LiveManager {
 public:
  explicit LiveManager(manager::GlobalPolicy policy = {},
                       SimDuration heartbeat_ttl = sec(3.0));
  ~LiveManager();

  // Durable registry state (DESIGN.md §15): journal every registry
  // mutation to an append-only log file before the handler returns
  // (group_commit_interval = 0, fsync on every commit unless `fsync` is
  // false). If the file already exists, recover: scan it, truncate a torn
  // tail, and seed the registry from the replayed image — each recovered
  // entry gets a fresh lease (last_heartbeat = now) since live clocks are
  // not comparable across restarts. Call before start(); false on I/O or
  // scan failure.
  bool attach_journal(const std::string& path, bool fsync = true);
  // Last LSN recovered from an existing journal file (0 = fresh log).
  [[nodiscard]] std::uint64_t journal_recovered_lsn() const {
    return journal_recovered_lsn_;
  }
  [[nodiscard]] journal::ManagerJournal* journal() { return journal_.get(); }

  // Bind (port 0 = ephemeral) and start serving on a background thread.
  bool start(std::uint16_t port = 0);
  void stop();
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] std::string endpoint() const { return server_->endpoint(); }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] manager::CentralManager& manager_unsafe() { return *manager_; }
  [[nodiscard]] PoolStats pool_stats();
  // After stop(): close every connection and report chunks still held —
  // anything nonzero is a leaked pool slot.
  [[nodiscard]] std::size_t leaked_pool_chunks();

 private:
  EventLoop loop_;
  ConnectionPool pool_{loop_};
  Writer scratch_;
  // Reused discovery response: its candidate vector's capacity survives
  // across queries, so answering a discover allocates nothing at steady
  // state. Loop thread only.
  net::DiscoveryResponse discover_scratch_;
  std::unique_ptr<manager::CentralManager> manager_;
  std::unique_ptr<journal::FileBackend> journal_backend_;
  std::unique_ptr<journal::ManagerJournal> journal_;
  std::uint64_t journal_recovered_lsn_{0};
  std::unique_ptr<RpcServer> server_;
  std::thread thread_;
  bool running_{false};
};

// ---- edge node over TCP ----
class LiveNode {
 public:
  LiveNode(node::EdgeNodeConfig config, std::string manager_endpoint);
  ~LiveNode();

  bool start(std::uint16_t port = 0);
  void stop(bool graceful = true);
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] std::string endpoint() const { return server_->endpoint(); }
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] node::EdgeNode& node_unsafe() { return *node_; }
  [[nodiscard]] node::EdgeNodeStats stats();
  [[nodiscard]] PoolStats pool_stats();
  [[nodiscard]] std::size_t leaked_pool_chunks();

 private:
  class Link;  // ManagerLink over RpcClient

  void register_handlers();

  EventLoop loop_;
  ConnectionPool pool_{loop_};
  Writer scratch_;
  std::unique_ptr<RpcClient> manager_client_;
  std::unique_ptr<Link> link_;
  std::unique_ptr<node::EdgeNode> node_;
  std::unique_ptr<RpcServer> server_;
  std::thread thread_;
  bool running_{false};
};

// ---- application client over TCP ----
class LiveClient {
 public:
  LiveClient(client::ClientConfig config, std::string manager_endpoint);
  ~LiveClient();

  void start();
  void stop();
  [[nodiscard]] EventLoop& loop() { return loop_; }
  [[nodiscard]] client::ClientStats stats();
  [[nodiscard]] std::optional<NodeId> current_node();
  [[nodiscard]] StreamingStats latency_window_ms();
  // Copy of the per-frame latency samples (ms), for percentile extraction.
  [[nodiscard]] Samples latency_samples();
  [[nodiscard]] PoolStats pool_stats();
  [[nodiscard]] std::size_t leaked_pool_chunks();

 private:
  class ManagerProxy;  // net::ManagerApi over RpcClient, captures endpoints
  class NodeProxy;     // net::NodeApi over RpcClient

  net::NodeApi* resolve(NodeId id);

  EventLoop loop_;
  ConnectionPool pool_{loop_};
  std::unique_ptr<RpcClient> manager_client_;
  std::unique_ptr<ManagerProxy> manager_api_;
  std::unique_ptr<client::EdgeClient> client_;
  std::unordered_map<NodeId, std::string> endpoints_;
  std::unordered_map<NodeId, std::unique_ptr<NodeProxy>> node_proxies_;
  std::thread thread_;
  bool running_{false};
};

}  // namespace eden::rpc
