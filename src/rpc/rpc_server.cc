#include "rpc/rpc_server.h"

namespace eden::rpc {

RpcServer::RpcServer(EventLoop& loop)
    : loop_(&loop), listener_(loop, [this](std::shared_ptr<Connection> c) {
        on_accept(std::move(c));
      }) {}

RpcServer::~RpcServer() { close(); }

bool RpcServer::listen(std::uint16_t port) { return listener_.listen(port); }

void RpcServer::handle(MessageType type, Handler handler) {
  handlers_[static_cast<std::uint16_t>(type)] = std::move(handler);
}

void RpcServer::handle_one_way(MessageType type, OneWayHandler handler) {
  one_way_handlers_[static_cast<std::uint16_t>(type)] = std::move(handler);
}

void RpcServer::on_accept(std::shared_ptr<Connection> connection) {
  Connection* raw = connection.get();
  std::weak_ptr<Connection> weak = connection;
  raw->set_frame_handler([this, weak](std::uint64_t request_id,
                                      std::uint16_t type,
                                      const std::uint8_t* payload,
                                      std::size_t payload_size) {
    if (const auto conn = weak.lock()) {
      on_frame(conn, request_id, type, payload, payload_size);
    }
  });
  raw->set_close_handler([this, weak] {
    if (const auto conn = weak.lock()) connections_.erase(conn);
  });
  connections_.insert(std::move(connection));
}

void RpcServer::on_frame(const std::shared_ptr<Connection>& connection,
                         std::uint64_t request_id, std::uint16_t type,
                         const std::uint8_t* payload,
                         std::size_t payload_size) {
  Reader reader(payload, payload_size);
  if (const auto it = one_way_handlers_.find(type);
      it != one_way_handlers_.end()) {
    it->second(reader);
    return;
  }
  const auto it = handlers_.find(type);
  if (it == handlers_.end()) return;  // unknown type: drop

  std::weak_ptr<Connection> weak = connection;
  const std::uint16_t resp_type = type | kResponseFlag;
  Responder respond = [weak, request_id,
                       resp_type](std::vector<std::uint8_t> response) {
    if (const auto conn = weak.lock()) {
      conn->send_frame(request_id, resp_type, response);
    }
  };
  it->second(reader, std::move(respond));
}

void RpcServer::close() {
  listener_.close();
  // Closing mutates the set via close handlers; detach first.
  auto connections = std::move(connections_);
  connections_.clear();
  for (const auto& connection : connections) connection->close();
}

}  // namespace eden::rpc
