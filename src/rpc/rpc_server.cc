#include "rpc/rpc_server.h"

#include <algorithm>

namespace eden::rpc {

RpcServer::RpcServer(EventLoop& /*loop*/, ConnectionPool& pool)
    : pool_(&pool),
      listener_(pool, this,
                [this](ConnHandle conn) { connections_.push_back(conn); }) {}

RpcServer::~RpcServer() { close(); }

bool RpcServer::listen(std::uint16_t port) { return listener_.listen(port); }

void RpcServer::handle(MessageType type, Handler handler) {
  handlers_[static_cast<std::size_t>(type)] = std::move(handler);
}

void RpcServer::handle_one_way(MessageType type, OneWayHandler handler) {
  one_way_handlers_[static_cast<std::size_t>(type)] = std::move(handler);
}

void RpcServer::on_frame(ConnHandle conn, std::uint64_t request_id,
                         std::uint16_t type, const std::uint8_t* payload,
                         std::size_t payload_size) {
  if (type >= kTypeSlots) return;  // unknown (or response-flagged): drop
  Reader reader(payload, payload_size);
  if (one_way_handlers_[type]) {
    one_way_handlers_[type](reader);
    return;
  }
  if (!handlers_[type]) return;  // unknown type: drop
  handlers_[type](reader, Responder(pool_, conn, request_id,
                                    static_cast<std::uint16_t>(
                                        type | kResponseFlag)));
}

void RpcServer::on_conn_closed(ConnHandle conn) {
  const auto it = std::find(connections_.begin(), connections_.end(), conn);
  if (it != connections_.end()) {
    *it = connections_.back();
    connections_.pop_back();
  }
}

void RpcServer::close() {
  listener_.close();
  for (const ConnHandle conn : connections_) pool_->close(conn);
  connections_.clear();
}

}  // namespace eden::rpc
