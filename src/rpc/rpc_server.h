// RpcServer: accepts framed connections and dispatches requests to typed
// handlers. Handlers receive a Responder they may invoke later — the live
// edge node uses this for asynchronously-processed frames.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rpc/connection.h"
#include "rpc/messages.h"

namespace eden::rpc {

class RpcServer {
 public:
  // Send the (already encoded) response payload for a request. Safe to
  // call after the connection died (it becomes a no-op).
  using Responder = std::function<void(std::vector<std::uint8_t>)>;
  // Request handler: decode from `reader`, reply through `respond` (now or
  // later, exactly once).
  using Handler = std::function<void(Reader& reader, Responder respond)>;
  using OneWayHandler = std::function<void(Reader& reader)>;

  explicit RpcServer(EventLoop& loop);
  ~RpcServer();

  bool listen(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::string endpoint() const {
    return local_endpoint(listener_.port());
  }

  void handle(MessageType type, Handler handler);
  void handle_one_way(MessageType type, OneWayHandler handler);

  void close();

 private:
  void on_accept(std::shared_ptr<Connection> connection);
  void on_frame(const std::shared_ptr<Connection>& connection,
                std::uint64_t request_id, std::uint16_t type,
                const std::uint8_t* payload, std::size_t payload_size);

  EventLoop* loop_;
  Listener listener_;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::unordered_map<std::uint16_t, OneWayHandler> one_way_handlers_;
  std::unordered_set<std::shared_ptr<Connection>> connections_;
};

}  // namespace eden::rpc
