// RpcServer: accepts framed connections from the loop's ConnectionPool and
// dispatches requests to typed handlers. Handlers receive a Responder they
// may invoke later — the live edge node uses this for asynchronously-
// processed frames.
//
// The Responder is a small copyable value (pool pointer + generation-
// stamped handle + ids), not a heap-allocated closure: replying after the
// connection died degrades to a no-op via the handle check, with no
// shared_ptr keeping dead connections alive. Handlers are registered in a
// flat array indexed by message type, so dispatch is a bounds check and an
// array load.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "rpc/connection.h"
#include "rpc/messages.h"

namespace eden::rpc {

class RpcServer final : private FrameSink {
 public:
  // Sends the (already encoded) response payload for a request. Copyable
  // value; safe to invoke after the connection died (no-op). Reply exactly
  // once — extra replies are dropped by the peer's pending-table check.
  class Responder {
   public:
    Responder() = default;
    void operator()(const std::vector<std::uint8_t>& payload) const {
      send(payload.data(), payload.size());
    }
    void send(const std::uint8_t* payload, std::size_t payload_size) const {
      if (pool_ != nullptr) {
        pool_->send_frame(conn_, request_id_, resp_type_, payload,
                          payload_size);
      }
    }
    [[nodiscard]] explicit operator bool() const { return pool_ != nullptr; }

   private:
    friend class RpcServer;
    Responder(ConnectionPool* pool, ConnHandle conn, std::uint64_t request_id,
              std::uint16_t resp_type)
        : pool_(pool), conn_(conn), request_id_(request_id),
          resp_type_(resp_type) {}

    ConnectionPool* pool_{nullptr};
    ConnHandle conn_{0};
    std::uint64_t request_id_{0};
    std::uint16_t resp_type_{0};
  };

  // Request handler: decode from `reader`, reply through `respond` (now or
  // later, exactly once).
  using Handler = std::function<void(Reader& reader, Responder respond)>;
  using OneWayHandler = std::function<void(Reader& reader)>;

  RpcServer(EventLoop& loop, ConnectionPool& pool);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  bool listen(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::string endpoint() const {
    return local_endpoint(listener_.port());
  }

  void handle(MessageType type, Handler handler);
  void handle_one_way(MessageType type, OneWayHandler handler);

  [[nodiscard]] std::size_t connection_count() const {
    return connections_.size();
  }
  void close();

 private:
  // One past the largest MessageType value; dispatch tables are flat.
  static constexpr std::size_t kTypeSlots = 16;

  void on_frame(ConnHandle conn, std::uint64_t request_id, std::uint16_t type,
                const std::uint8_t* payload, std::size_t payload_size) override;
  void on_conn_closed(ConnHandle conn) override;

  ConnectionPool* pool_;
  Listener listener_;
  std::array<Handler, kTypeSlots> handlers_{};
  std::array<OneWayHandler, kTypeSlots> one_way_handlers_{};
  std::vector<ConnHandle> connections_;
};

}  // namespace eden::rpc
