// RpcClient: one framed connection to a peer with request/response
// correlation and per-call timeouts. Reconnects lazily on the next call
// after a connection failure (volunteer nodes come and go).
//
// Pending requests live in a generation-stamped slab; the wire request id
// packs (instance, slot generation, slot index), where `instance` bumps on
// every reconnect. A response is matched by all three, so a late reply
// from a previous connection — or a re-used slot — can never complete the
// wrong call. Responses are delivered as a borrowed view into the receive
// buffer (valid only during the callback), so the hot path never copies
// the payload into a fresh vector.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "rpc/connection.h"
#include "rpc/messages.h"
#include "sim/callback.h"

namespace eden::rpc {

// Response view: `data/size` borrow the connection's receive buffer and
// are valid only for the duration of the callback (decode immediately).
// ok == false means timeout or connection failure (data is null).
struct RpcResult {
  const std::uint8_t* data{nullptr};
  std::size_t size{0};
  bool ok{false};
};

class RpcClient final : private FrameSink {
 public:
  // Capacity 80: the live proxies capture a protocol completion
  // (net::Done, a 64-byte SBO object) plus up to one owner pointer inside
  // the response callback (72 bytes, padded to 80 by the Done's 16-byte
  // alignment); 64 would spill the discovery wrapper on every call.
  using ResponseCallback = sim::BasicFunc<80, RpcResult>;

  RpcClient(EventLoop& loop, ConnectionPool& pool, std::string endpoint);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  void call(MessageType type, const std::uint8_t* payload,
            std::size_t payload_size, SimDuration timeout,
            ResponseCallback callback);
  void call(MessageType type, const std::vector<std::uint8_t>& payload,
            SimDuration timeout, ResponseCallback callback) {
    call(type, payload.data(), payload.size(), timeout, std::move(callback));
  }
  void send_one_way(MessageType type, const std::uint8_t* payload,
                    std::size_t payload_size);
  void send_one_way(MessageType type,
                    const std::vector<std::uint8_t>& payload) {
    send_one_way(type, payload.data(), payload.size());
  }

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] std::size_t pending_count() const { return live_; }
  void close();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct PendingSlot {
    ResponseCallback callback;
    sim::EventId timeout_timer{0};
    std::uint16_t gen{1};
    std::uint16_t instance{0};
    std::uint32_t next_free{kNil};
  };

  static std::uint64_t pack_rid(std::uint16_t instance, std::uint16_t gen,
                                std::uint32_t idx) {
    return (static_cast<std::uint64_t>(instance) << 48) |
           (static_cast<std::uint64_t>(gen) << 32) | (idx + 1ull);
  }

  bool ensure_connected();
  void on_frame(ConnHandle conn, std::uint64_t request_id, std::uint16_t type,
                const std::uint8_t* payload, std::size_t payload_size) override;
  void on_conn_closed(ConnHandle conn) override;
  void on_timeout(std::uint64_t request_id);
  void fail_all_pending(std::uint16_t instance);
  std::uint32_t acquire_slot();
  // Takes the callback out, invalidates the slot, returns it to the
  // freelist. The caller owns cancelling the timer.
  ResponseCallback take_and_release(std::uint32_t idx);

  EventLoop* loop_;
  ConnectionPool* pool_;
  std::string endpoint_;
  ConnHandle conn_{0};
  std::uint16_t instance_{0};
  std::deque<PendingSlot> pending_;
  std::uint32_t free_head_{kNil};
  std::size_t live_{0};
};

}  // namespace eden::rpc
