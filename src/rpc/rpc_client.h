// RpcClient: one framed connection to a peer with request/response
// correlation and per-call timeouts. Reconnects lazily on the next call
// after a connection failure (volunteer nodes come and go).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rpc/connection.h"
#include "rpc/messages.h"
#include "sim/callback.h"

namespace eden::rpc {

class RpcClient {
 public:
  // Response payload bytes, or nullopt on timeout / connection failure.
  // A move-only sim::Func, so the live proxies can capture the protocol's
  // move-only net::Done completions without shared_ptr wrappers.
  using ResponseCallback =
      sim::Func<std::optional<std::vector<std::uint8_t>>>;

  RpcClient(EventLoop& loop, std::string endpoint);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  void call(MessageType type, const std::vector<std::uint8_t>& payload,
            SimDuration timeout, ResponseCallback callback);
  void send_one_way(MessageType type, const std::vector<std::uint8_t>& payload);

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  void close();

 private:
  struct Pending {
    ResponseCallback callback;
    sim::EventId timeout_timer{0};
  };

  bool ensure_connected();
  void on_frame(std::uint64_t request_id, std::uint16_t type,
                const std::uint8_t* payload, std::size_t payload_size);
  void on_close();
  void fail_all_pending();

  EventLoop* loop_;
  std::string endpoint_;
  std::shared_ptr<Connection> connection_;
  std::uint64_t next_request_id_{1};
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace eden::rpc
