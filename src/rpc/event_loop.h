// Single-threaded poll(2)-based event loop with a timer queue. Implements
// sim::Scheduler against the wall clock, so the same protocol classes
// (EdgeNode, CentralManager, EdgeClient) that run under the discrete-event
// simulator run unmodified as a real distributed system over TCP.
//
// Thread model: everything — socket callbacks, timers, protocol state —
// runs on the loop thread. Other threads may only call post() and stop().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/clock.h"

namespace eden::rpc {

class EventLoop final : public sim::Scheduler {
 public:
  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // ---- sim::Scheduler (wall clock, µs since loop construction) ----
  [[nodiscard]] SimTime now() const override;
  sim::EventId schedule_after(SimDuration delay, sim::Callback fn) override;
  bool cancel(sim::EventId id) override;

  // ---- fd watching (level-triggered) ----
  using IoCallback = std::function<void(bool readable, bool writable)>;
  void watch(int fd, bool want_read, bool want_write, IoCallback callback);
  void update_interest(int fd, bool want_read, bool want_write);
  void unwatch(int fd);

  // ---- lifecycle ----
  // Run until stop() is called (from any thread).
  void run();
  // Run for at most `duration` of wall time.
  void run_for(SimDuration duration);
  void stop();
  // Enqueue `fn` to run on the loop thread (thread-safe), waking the loop.
  void post(std::function<void()> fn);

 private:
  struct Watch {
    bool want_read{false};
    bool want_write{false};
    IoCallback callback;
  };

  void run_until_deadline(SimTime deadline, bool has_deadline);
  int next_poll_timeout_ms(SimTime deadline, bool has_deadline);
  void fire_due_timers();
  void drain_posted();

  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> stop_requested_{false};

  // Timers (loop thread only).
  sim::EventId next_timer_id_{1};
  std::map<std::pair<SimTime, sim::EventId>, sim::Callback> timers_;
  std::unordered_map<sim::EventId, SimTime> timer_deadlines_;

  // Watches (loop thread only).
  std::unordered_map<int, Watch> watches_;

  // Cross-thread post queue + wake pipe.
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  int wake_pipe_[2]{-1, -1};
};

}  // namespace eden::rpc
