// Single-threaded epoll-based event loop with a slab timer queue.
// Implements sim::Scheduler against the wall clock, so the same protocol
// classes (EdgeNode, CentralManager, EdgeClient) that run under the
// discrete-event simulator run unmodified as a real distributed system
// over TCP.
//
// Hot-path storage mirrors the simulator's arena (PR 4): timers live in a
// generation-stamped slab indexed by a lazy-deletion min-heap, posted work
// and io callbacks are SBO callables (sim::Callback / BasicFunc), and fd
// readiness dispatches either through a typed sink (one virtual call, no
// allocation — the connection pool's plane) or a generic SBO callable
// (tests, one-off fds). Steady state schedules, cancels and fires timers
// and io events without touching the allocator.
//
// Thread model: everything — socket callbacks, timers, protocol state —
// runs on the loop thread. Other threads may only call post() and stop().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/callback.h"
#include "sim/clock.h"

struct epoll_event;  // <sys/epoll.h> kept out of the header

namespace eden::rpc {

class EventLoop final : public sim::Scheduler {
 public:
  // Typed io plane: a sink receives readiness for many fds, discriminated
  // by the 64-bit tag it registered with (the connection pool passes the
  // connection handle). One virtual call per event, no per-watch callable.
  struct IoSink {
    virtual void on_io_event(std::uint64_t tag, bool readable,
                             bool writable) = 0;

   protected:
    ~IoSink() = default;
  };

  // Generic io plane: a move-only SBO callable per watch (pipes, tests).
  using IoFunc = sim::BasicFunc<48, bool, bool>;

  // Generation-stamped watch handle: gen<<32 | slot+1; 0 is null. Stale
  // handles (the slot was unwatched, maybe re-used) are rejected, so an
  // epoll batch that contains events for an fd closed by an earlier
  // callback in the same batch cannot misfire into the new owner.
  using WatchId = std::uint64_t;

  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // ---- sim::Scheduler (wall clock, µs since loop construction) ----
  [[nodiscard]] SimTime now() const override;
  sim::EventId schedule_after(SimDuration delay, sim::Callback fn) override;
  bool cancel(sim::EventId id) override;

  // ---- fd watching (level-triggered) ----
  WatchId watch_sink(int fd, bool want_read, bool want_write, IoSink* sink,
                     std::uint64_t tag);
  WatchId watch(int fd, bool want_read, bool want_write, IoFunc callback);
  void update_watch(WatchId id, bool want_read, bool want_write);
  void unwatch_id(WatchId id);
  // fd-keyed compatibility entry points (at most one fd-keyed watch per fd;
  // they resolve through a small map, the WatchId forms above are O(1)).
  void update_interest(int fd, bool want_read, bool want_write);
  void unwatch(int fd);

  // ---- lifecycle ----
  // Run until stop() is called (from any thread).
  void run();
  // Run for at most `duration` of wall time.
  void run_for(SimDuration duration);
  void stop();
  // Enqueue `fn` to run on the loop thread (thread-safe), waking the loop.
  void post(sim::Callback fn);

  // Introspection for the benches: live timers and registered watches.
  [[nodiscard]] std::size_t timer_count() const { return live_timers_; }
  [[nodiscard]] std::size_t watch_count() const { return live_watches_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr int kMaxEpollEvents = 64;

  struct TimerSlot {
    sim::Callback fn;
    std::uint32_t gen{0};
    std::uint32_t next_free{kNil};
  };
  struct HeapEntry {
    SimTime deadline;
    std::uint64_t seq;  // schedule order; ties fire in FIFO order
    sim::EventId id;
  };
  // Min-heap on (deadline, seq): std::push_heap builds a max-heap, so the
  // comparator orders "fires later" as greater.
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };
  struct WatchSlot {
    int fd{-1};
    bool want_read{false};
    bool want_write{false};
    std::uint32_t gen{0};
    std::uint32_t next_free{kNil};
    IoSink* sink{nullptr};
    std::uint64_t tag{0};
    IoFunc callback;
  };

  void run_until_deadline(SimTime deadline, bool has_deadline);
  int next_wait_timeout_ms(SimTime deadline, bool has_deadline);
  void fire_due_timers();
  void drain_posted();
  void pop_dead_heap_top();
  void maybe_compact_heap();
  WatchId register_watch(int fd, bool want_read, bool want_write,
                         IoSink* sink, std::uint64_t tag, IoFunc callback);
  void apply_interest(std::uint32_t idx);
  void release_watch(std::uint32_t idx);
  [[nodiscard]] WatchSlot* resolve_watch(WatchId id);

  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> stop_requested_{false};
  int epoll_fd_{-1};

  // Timers (loop thread only): slab + lazy-deletion min-heap.
  std::deque<TimerSlot> timer_slots_;
  std::uint32_t timer_free_head_{kNil};
  std::vector<HeapEntry> timer_heap_;
  std::uint64_t timer_seq_{0};
  std::size_t live_timers_{0};

  // Watches (loop thread only): slab; fd map only for the fd-keyed API.
  std::deque<WatchSlot> watch_slots_;
  std::uint32_t watch_free_head_{kNil};
  std::size_t live_watches_{0};
  std::vector<std::pair<int, std::uint32_t>> fd_index_;  // fd -> slot (small)

  // Cross-thread post queue (ping-pong buffers, capacity retained) + wake
  // pipe.
  std::mutex posted_mutex_;
  std::vector<sim::Callback> posted_;
  std::vector<sim::Callback> draining_;
  int wake_pipe_[2]{-1, -1};
};

}  // namespace eden::rpc
