// Wire serialization for the EDEN protocol: a small explicit little-endian
// codec (no reflection, no external deps) with bounds-checked reads. Used
// only by the live TCP runtime; the simulator passes structs directly.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace eden::rpc {

class Writer {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& v);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }
  // Reset for re-use, retaining capacity: the live runtimes keep one
  // scratch Writer per proxy so steady-state encoding never allocates.
  void clear() { buffer_.clear(); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

// Reads fail-soft: after the first out-of-bounds access `ok()` turns false
// and every subsequent read returns a zero value. Callers check ok() once
// at the end — malformed frames never touch uninitialised data.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& data)
      : Reader(data.data(), data.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - offset_; }

 private:
  bool take(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_{0};
  bool ok_{true};
};

}  // namespace eden::rpc
