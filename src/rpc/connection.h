// Framed non-blocking TCP connection driven by an EventLoop. Every frame
// is [u32 payload_len][u64 request_id][u16 type][payload]; the length
// covers request_id + type + payload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rpc/event_loop.h"
#include "rpc/serialize.h"

namespace eden::rpc {

constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 2;

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using FrameHandler = std::function<void(
      std::uint64_t request_id, std::uint16_t type,
      const std::uint8_t* payload, std::size_t payload_size)>;
  using CloseHandler = std::function<void()>;

  // Takes ownership of a connected (or connecting) non-blocking socket.
  static std::shared_ptr<Connection> adopt(EventLoop& loop, int fd);

  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }
  void set_close_handler(CloseHandler handler) {
    close_handler_ = std::move(handler);
  }

  void send_frame(std::uint64_t request_id, std::uint16_t type,
                  const std::vector<std::uint8_t>& payload);

  void close();
  [[nodiscard]] bool closed() const { return fd_ < 0; }
  [[nodiscard]] int fd() const { return fd_; }

 private:
  Connection(EventLoop& loop, int fd);
  void arm();
  void on_io(bool readable, bool writable);
  void handle_readable();
  void handle_writable();
  void parse_frames();

  EventLoop* loop_;
  int fd_;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint8_t> out_;
  std::size_t out_offset_{0};
  FrameHandler frame_handler_;
  CloseHandler close_handler_;
};

// Listening socket: accepts connections and hands them to the callback.
class Listener {
 public:
  using AcceptHandler = std::function<void(std::shared_ptr<Connection>)>;

  Listener(EventLoop& loop, AcceptHandler on_accept);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Bind 127.0.0.1:`port` (0 = ephemeral). Returns false on failure.
  bool listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }
  void close();

 private:
  EventLoop* loop_;
  AcceptHandler on_accept_;
  int fd_{-1};
  std::uint16_t port_{0};
};

// Non-blocking connect to "host:port" (numeric IPv4) or "port" (localhost).
// Returns nullptr on immediate failure.
std::shared_ptr<Connection> connect_to(EventLoop& loop,
                                       const std::string& endpoint);

// Format a localhost endpoint string.
std::string local_endpoint(std::uint16_t port);

}  // namespace eden::rpc
