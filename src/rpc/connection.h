// Pooled framed non-blocking TCP connections driven by an EventLoop.
// Every frame is [u32 payload_len][u64 request_id][u16 type][payload]; the
// length covers request_id + type + payload.
//
// Connections are slots in a loop-owned ConnectionPool, addressed by
// generation-stamped handles (gen<<32 | slot+1) — the rpc-slot idiom from
// PR 4. There is no per-connection heap object, no shared_ptr control
// block per accept, and a handle held across a close (or even a slot
// re-use) simply stops resolving: use-after-close on the write path
// becomes a silent no-op instead of a race.
//
// Outbound frames are serialized into BufferPool chunks shared by every
// connection on the loop and flushed with a single sendmsg (writev-style
// iovec batch) per readiness, with partial-write resumption. The outbox is
// bounded: a peer that stops reading while frames keep queueing is
// disconnected instead of growing without bound. EPOLLOUT interest is
// armed only while the outbox is non-empty.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <deque>
#include <vector>

#include "rpc/buffer_pool.h"
#include "rpc/event_loop.h"

namespace eden::rpc {

constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 2;

// Generation-stamped connection handle: gen<<32 | slot+1; 0 is null.
using ConnHandle = std::uint64_t;

// Receives parsed frames and close notifications for connections adopted
// with this sink. on_conn_closed fires for peer closes and protocol/io
// errors, not for owner-initiated ConnectionPool::close() calls.
struct FrameSink {
  virtual void on_frame(ConnHandle conn, std::uint64_t request_id,
                        std::uint16_t type, const std::uint8_t* payload,
                        std::size_t payload_size) = 0;
  virtual void on_conn_closed(ConnHandle conn) = 0;

 protected:
  ~FrameSink() = default;
};

class ConnectionPool final : private EventLoop::IoSink {
 public:
  explicit ConnectionPool(EventLoop& loop) : loop_(&loop) {}
  ~ConnectionPool() { close_all(); }
  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  // Take ownership of a connected (or connecting) socket. Returns 0 on
  // failure.
  ConnHandle adopt(int fd, FrameSink* sink);
  // Non-blocking connect to "host:port" (numeric IPv4) or "port"
  // (localhost). Returns 0 on immediate failure.
  ConnHandle connect(const std::string& endpoint, FrameSink* sink);

  // Serialize one frame into the outbox and flush opportunistically.
  // Returns false if the handle is dead or the send overflowed the outbox
  // bound (which closes the connection and notifies the sink).
  bool send_frame(ConnHandle conn, std::uint64_t request_id,
                  std::uint16_t type, const std::uint8_t* payload,
                  std::size_t payload_size);
  bool send_frame(ConnHandle conn, std::uint64_t request_id,
                  std::uint16_t type,
                  const std::vector<std::uint8_t>& payload) {
    return send_frame(conn, request_id, type, payload.data(), payload.size());
  }

  // Owner-initiated close: silent (no on_conn_closed).
  void close(ConnHandle conn);
  void close_all();

  [[nodiscard]] bool alive(ConnHandle conn) const;
  [[nodiscard]] std::size_t open_connections() const { return open_; }
  [[nodiscard]] std::size_t outbox_bytes(ConnHandle conn) const;
  [[nodiscard]] const BufferPool& buffers() const { return buffers_; }
  [[nodiscard]] EventLoop& loop() { return *loop_; }

  // Outbox bound in bytes (default 64 MiB — above the 16 MiB max frame,
  // so only sustained backlog trips it). Tests shrink it to force the
  // overflow path.
  void set_outbox_limit(std::size_t bytes) { outbox_limit_ = bytes; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Conn {
    int fd{-1};
    std::uint32_t gen{1};
    std::uint32_t next_free{kNil};
    EventLoop::WatchId watch{0};
    FrameSink* sink{nullptr};
    bool want_write{false};
    // Inbound: contiguous buffer with a consumed-prefix head (compacted
    // after each parse pass, capacity retained).
    std::vector<std::uint8_t> in;
    std::size_t in_head{0};
    // Outbound: FIFO ring of pool chunk indices. Pending bytes span
    // out[out_head..end), offset front_off into the first chunk, tail_used
    // valid bytes in the last.
    std::vector<std::uint32_t> out;
    std::size_t out_head{0};
    std::size_t front_off{0};
    std::size_t tail_used{0};
    std::size_t out_bytes{0};
  };

  void on_io_event(std::uint64_t tag, bool readable, bool writable) override;
  [[nodiscard]] Conn* resolve(ConnHandle conn);
  [[nodiscard]] const Conn* resolve(ConnHandle conn) const;
  [[nodiscard]] ConnHandle handle_of(std::uint32_t idx) const {
    return (static_cast<std::uint64_t>(conns_[idx].gen) << 32) | (idx + 1ull);
  }
  void append_out(Conn& conn, const void* data, std::size_t size);
  // Returns false if the connection was closed by a write error.
  bool flush(std::uint32_t idx);
  void sync_write_interest(Conn& conn);
  void handle_readable(std::uint32_t idx);
  void parse_frames(std::uint32_t idx);
  void do_close(std::uint32_t idx, bool notify);

  EventLoop* loop_;
  BufferPool buffers_;
  std::deque<Conn> conns_;
  std::uint32_t free_head_{kNil};
  std::size_t open_{0};
  std::size_t outbox_limit_{64u << 20};
};

// Listening socket: accepts connections into the pool and hands out their
// handles. Accepted connections deliver frames to `sink`.
class Listener {
 public:
  using AcceptHandler = std::function<void(ConnHandle)>;

  Listener(ConnectionPool& pool, FrameSink* sink, AcceptHandler on_accept);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Bind 127.0.0.1:`port` (0 = ephemeral). Returns false on failure.
  bool listen(std::uint16_t port);
  [[nodiscard]] std::uint16_t port() const { return port_; }
  void close();

 private:
  ConnectionPool* pool_;
  FrameSink* sink_;
  AcceptHandler on_accept_;
  int fd_{-1};
  std::uint16_t port_{0};
};

// Format a localhost endpoint string.
std::string local_endpoint(std::uint16_t port);

}  // namespace eden::rpc
