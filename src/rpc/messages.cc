#include "rpc/messages.h"

#include <algorithm>

namespace eden::rpc {

void encode(Writer& w, const net::NodeStatus& v) {
  w.u32(v.node.value);
  w.str(v.geohash);
  w.u32(static_cast<std::uint32_t>(v.cores));
  w.f64(v.base_frame_ms);
  w.u32(static_cast<std::uint32_t>(v.attached_users));
  w.f64(v.utilization);
  w.boolean(v.dedicated);
  w.boolean(v.is_cloud);
  w.str(v.network_tag);
  w.str(v.endpoint);
  w.u32(static_cast<std::uint32_t>(v.app_types.size()));
  for (const auto& app : v.app_types) w.str(app);
  w.u32(static_cast<std::uint32_t>(v.queue_depth));
  w.f64(v.burst_credits);
  w.f64(v.p95_proc_ms);
}

net::NodeStatus decode_node_status(Reader& r) {
  net::NodeStatus v;
  v.node = NodeId{r.u32()};
  v.geohash = r.str();
  v.cores = static_cast<int>(r.u32());
  v.base_frame_ms = r.f64();
  v.attached_users = static_cast<int>(r.u32());
  v.utilization = r.f64();
  v.dedicated = r.boolean();
  v.is_cloud = r.boolean();
  v.network_tag = r.str();
  v.endpoint = r.str();
  const std::uint32_t app_count = r.u32();
  for (std::uint32_t i = 0; i < app_count && r.ok(); ++i) {
    v.app_types.push_back(r.str());
  }
  v.queue_depth = static_cast<int>(r.u32());
  v.burst_credits = r.f64();
  v.p95_proc_ms = r.f64();
  return v;
}

void encode(Writer& w, const net::DiscoveryRequest& v) {
  w.u32(v.client.value);
  w.str(v.geohash);
  w.str(v.network_tag);
  w.u32(static_cast<std::uint32_t>(v.top_n));
  w.str(v.app_type);
}

net::DiscoveryRequest decode_discovery_request(Reader& r) {
  net::DiscoveryRequest v;
  v.client = ClientId{r.u32()};
  v.geohash = r.str();
  v.network_tag = r.str();
  v.top_n = static_cast<int>(r.u32());
  v.app_type = r.str();
  return v;
}

void encode(Writer& w, const net::DiscoveryResponse& v) {
  w.u32(static_cast<std::uint32_t>(v.candidates.size()));
  for (const auto& c : v.candidates) {
    w.u32(c.node.value);
    w.str(c.geohash);
    w.f64(c.score);
    w.str(c.endpoint);
  }
}

net::DiscoveryResponse decode_discovery_response(Reader& r) {
  net::DiscoveryResponse v;
  const std::uint32_t count = r.u32();
  // One allocation up front instead of log(count) growth steps; the cap
  // keeps a hostile declared count from reserving gigabytes (decode still
  // fail-softs when the payload runs out).
  v.candidates.reserve(std::min<std::uint32_t>(count, 1024));
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    net::CandidateInfo c;
    c.node = NodeId{r.u32()};
    c.geohash = r.str();
    c.score = r.f64();
    c.endpoint = r.str();
    v.candidates.push_back(std::move(c));
  }
  return v;
}

void encode(Writer& w, const net::ProcessProbeResponse& v) {
  w.f64(v.whatif_ms);
  w.f64(v.current_ms);
  w.u32(static_cast<std::uint32_t>(v.attached_users));
  w.u64(v.seq_num);
}

net::ProcessProbeResponse decode_process_probe_response(Reader& r) {
  net::ProcessProbeResponse v;
  v.whatif_ms = r.f64();
  v.current_ms = r.f64();
  v.attached_users = static_cast<int>(r.u32());
  v.seq_num = r.u64();
  return v;
}

void encode(Writer& w, const net::JoinRequest& v) {
  w.u32(v.client.value);
  w.u64(v.seq_num);
  w.f64(v.rate_fps);
}

net::JoinRequest decode_join_request(Reader& r) {
  net::JoinRequest v;
  v.client = ClientId{r.u32()};
  v.seq_num = r.u64();
  v.rate_fps = r.f64();
  return v;
}

void encode(Writer& w, const net::JoinResponse& v) {
  w.boolean(v.accepted);
  w.u64(v.seq_num);
}

net::JoinResponse decode_join_response(Reader& r) {
  net::JoinResponse v;
  v.accepted = r.boolean();
  v.seq_num = r.u64();
  return v;
}

void encode(Writer& w, const net::FrameRequest& v) {
  w.u32(v.client.value);
  w.u64(v.frame_id);
  w.f64(v.bytes);
  w.f64(v.cost);
}

net::FrameRequest decode_frame_request(Reader& r) {
  net::FrameRequest v;
  v.client = ClientId{r.u32()};
  v.frame_id = r.u64();
  v.bytes = r.f64();
  v.cost = r.f64();
  return v;
}

void encode(Writer& w, const net::FrameResponse& v) {
  w.u64(v.frame_id);
  w.f64(v.proc_ms);
  w.boolean(v.dropped);
  w.u64(v.redisc_epoch);
}

net::FrameResponse decode_frame_response(Reader& r) {
  net::FrameResponse v;
  v.frame_id = r.u64();
  v.proc_ms = r.f64();
  v.dropped = r.boolean();
  v.redisc_epoch = r.u64();
  return v;
}

}  // namespace eden::rpc
