#include "rpc/connection.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace eden::rpc {
namespace {

constexpr int kMaxIov = 64;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---- handle plumbing ----------------------------------------------------

ConnectionPool::Conn* ConnectionPool::resolve(ConnHandle conn) {
  if (conn == 0) return nullptr;
  const std::uint32_t idx = static_cast<std::uint32_t>(conn & 0xffffffffu) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(conn >> 32);
  if (idx >= conns_.size()) return nullptr;
  Conn& c = conns_[idx];
  if (c.gen != gen || c.fd < 0) return nullptr;
  return &c;
}

const ConnectionPool::Conn* ConnectionPool::resolve(ConnHandle conn) const {
  return const_cast<ConnectionPool*>(this)->resolve(conn);
}

bool ConnectionPool::alive(ConnHandle conn) const {
  return resolve(conn) != nullptr;
}

std::size_t ConnectionPool::outbox_bytes(ConnHandle conn) const {
  const Conn* c = resolve(conn);
  return c != nullptr ? c->out_bytes : 0;
}

// ---- open / close -------------------------------------------------------

ConnHandle ConnectionPool::adopt(int fd, FrameSink* sink) {
  if (fd < 0) return 0;
  set_nonblocking(fd);
  set_nodelay(fd);
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = conns_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(conns_.size());
    conns_.emplace_back();
  }
  Conn& c = conns_[idx];
  c.fd = fd;
  c.sink = sink;
  c.next_free = kNil;
  c.want_write = false;
  const ConnHandle handle = handle_of(idx);
  // The epoll tag carries the full handle so stale events (slot re-used
  // within one epoll batch) are rejected twice: by the loop's watch
  // generation and by the connection generation.
  c.watch = loop_->watch_sink(fd, /*want_read=*/true, /*want_write=*/false,
                              this, handle);
  ++open_;
  return handle;
}

ConnHandle ConnectionPool::connect(const std::string& endpoint,
                                   FrameSink* sink) {
  std::string host = "127.0.0.1";
  std::string port_text = endpoint;
  if (const auto colon = endpoint.rfind(':'); colon != std::string::npos) {
    host = endpoint.substr(0, colon);
    port_text = endpoint.substr(colon + 1);
  }
  const int port = std::atoi(port_text.c_str());
  if (port <= 0 || port > 65535) return 0;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return 0;
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return 0;
  }
  return adopt(fd, sink);
}

void ConnectionPool::do_close(std::uint32_t idx, bool notify) {
  Conn& c = conns_[idx];
  if (c.fd < 0) return;
  loop_->unwatch_id(c.watch);
  c.watch = 0;
  ::close(c.fd);
  c.fd = -1;
  for (std::size_t i = c.out_head; i < c.out.size(); ++i) {
    buffers_.release(c.out[i]);
  }
  c.out.clear();
  c.out_head = 0;
  c.front_off = 0;
  c.tail_used = 0;
  c.out_bytes = 0;
  c.in.clear();
  c.in_head = 0;
  c.want_write = false;
  FrameSink* sink = c.sink;
  c.sink = nullptr;
  const ConnHandle handle = handle_of(idx);
  ++c.gen;
  c.next_free = free_head_;
  free_head_ = idx;
  --open_;
  if (notify && sink != nullptr) sink->on_conn_closed(handle);
}

void ConnectionPool::close(ConnHandle conn) {
  if (resolve(conn) == nullptr) return;
  do_close(static_cast<std::uint32_t>(conn & 0xffffffffu) - 1,
           /*notify=*/false);
}

void ConnectionPool::close_all() {
  for (std::uint32_t idx = 0; idx < conns_.size(); ++idx) {
    if (conns_[idx].fd >= 0) do_close(idx, /*notify=*/false);
  }
}

// ---- outbound path ------------------------------------------------------

void ConnectionPool::append_out(Conn& c, const void* data, std::size_t size) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  while (size > 0) {
    if (c.out_head == c.out.size() || c.tail_used == BufferPool::kChunkBytes) {
      c.out.push_back(buffers_.acquire());
      c.tail_used = 0;
    }
    const std::size_t take =
        std::min(size, BufferPool::kChunkBytes - c.tail_used);
    std::memcpy(buffers_.data(c.out.back()) + c.tail_used, p, take);
    c.tail_used += take;
    p += take;
    size -= take;
    c.out_bytes += take;
  }
}

bool ConnectionPool::send_frame(ConnHandle conn, std::uint64_t request_id,
                                std::uint16_t type,
                                const std::uint8_t* payload,
                                std::size_t payload_size) {
  Conn* c = resolve(conn);
  if (c == nullptr) return false;
  const std::uint32_t length = static_cast<std::uint32_t>(payload_size) + 10;
  if (c->out_bytes + 4 + length > outbox_limit_) {
    // Sustained backlog: the peer is not draining. Disconnecting is the
    // backpressure signal — the protocol layers treat it like any other
    // connection failure.
    do_close(static_cast<std::uint32_t>(conn & 0xffffffffu) - 1,
             /*notify=*/true);
    return false;
  }
  std::uint8_t header[kFrameHeaderBytes];
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &request_id, 8);
  std::memcpy(header + 12, &type, 2);
  append_out(*c, header, sizeof(header));
  if (payload_size > 0) append_out(*c, payload, payload_size);
  const std::uint32_t idx = static_cast<std::uint32_t>(conn & 0xffffffffu) - 1;
  if (!c->want_write) {
    // EPOLLOUT is not armed, so nothing else will flush this — try now.
    if (!flush(idx)) return false;
  }
  return conns_[idx].fd >= 0;
}

void ConnectionPool::sync_write_interest(Conn& c) {
  const bool want = c.out_bytes > 0;
  if (want == c.want_write) return;
  c.want_write = want;
  loop_->update_watch(c.watch, /*want_read=*/true, want);
}

bool ConnectionPool::flush(std::uint32_t idx) {
  Conn& c = conns_[idx];
  iovec iov[kMaxIov];
  while (c.fd >= 0 && c.out_bytes > 0) {
    int iovcnt = 0;
    std::size_t off = c.front_off;
    for (std::size_t i = c.out_head; i < c.out.size() && iovcnt < kMaxIov;
         ++i) {
      const std::size_t len =
          (i + 1 == c.out.size()) ? c.tail_used : BufferPool::kChunkBytes;
      iov[iovcnt].iov_base = buffers_.data(c.out[i]) + off;
      iov[iovcnt].iov_len = len - off;
      ++iovcnt;
      off = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(c.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t remaining = static_cast<std::size_t>(n);
      c.out_bytes -= remaining;
      while (remaining > 0) {
        const bool last = c.out_head + 1 == c.out.size();
        const std::size_t chunk_len =
            (last ? c.tail_used : BufferPool::kChunkBytes) - c.front_off;
        if (remaining < chunk_len) {
          c.front_off += remaining;
          remaining = 0;
        } else {
          remaining -= chunk_len;
          buffers_.release(c.out[c.out_head]);
          ++c.out_head;
          c.front_off = 0;
        }
      }
      if (c.out_head == c.out.size()) {
        c.out.clear();  // capacity retained
        c.out_head = 0;
        c.tail_used = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == ENOTCONN || errno == EINPROGRESS)) {
      break;  // still connecting; EPOLLOUT fires once established
    }
    do_close(idx, /*notify=*/true);
    return false;
  }
  if (c.fd >= 0) sync_write_interest(c);
  return c.fd >= 0;
}

// ---- inbound path -------------------------------------------------------

void ConnectionPool::on_io_event(std::uint64_t tag, bool readable,
                                 bool writable) {
  Conn* c = resolve(tag);
  if (c == nullptr) return;
  const std::uint32_t idx = static_cast<std::uint32_t>(tag & 0xffffffffu) - 1;
  if (writable) {
    if (!flush(idx)) return;
  }
  if (readable && conns_[idx].fd >= 0) handle_readable(idx);
}

void ConnectionPool::handle_readable(std::uint32_t idx) {
  Conn& c = conns_[idx];
  std::uint8_t buffer[64 * 1024];
  while (c.fd >= 0) {
    const ssize_t n = ::recv(c.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      c.in.insert(c.in.end(), buffer, buffer + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    do_close(idx, /*notify=*/true);  // peer closed or hard error
    return;
  }
  parse_frames(idx);
}

void ConnectionPool::parse_frames(std::uint32_t idx) {
  Conn* c = &conns_[idx];
  const std::uint32_t gen = c->gen;
  const ConnHandle handle = handle_of(idx);
  while (c->fd >= 0) {
    const std::size_t avail = c->in.size() - c->in_head;
    if (avail < 4) break;
    std::uint32_t length = 0;
    std::memcpy(&length, c->in.data() + c->in_head, 4);
    if (length < 10 || length > kMaxFrameBytes) {
      do_close(idx, /*notify=*/true);
      return;
    }
    if (avail < 4 + static_cast<std::size_t>(length)) break;
    std::uint64_t request_id = 0;
    std::uint16_t type = 0;
    std::memcpy(&request_id, c->in.data() + c->in_head + 4, 8);
    std::memcpy(&type, c->in.data() + c->in_head + 12, 2);
    const std::uint8_t* payload = c->in.data() + c->in_head + kFrameHeaderBytes;
    const std::size_t payload_size = length - 10;
    // Advance before dispatch: the sink may close (or the slot may even be
    // re-used for a fresh accept) during the callback — the generation
    // check below catches both.
    c->in_head += 4 + length;
    if (c->sink != nullptr) {
      c->sink->on_frame(handle, request_id, type, payload, payload_size);
    }
    c = &conns_[idx];
    if (c->gen != gen) return;
  }
  // Compact: drop the consumed prefix, keep capacity for the next read.
  if (c->in_head == c->in.size()) {
    c->in.clear();
    c->in_head = 0;
  } else if (c->in_head > 0) {
    const std::size_t remaining = c->in.size() - c->in_head;
    std::memmove(c->in.data(), c->in.data() + c->in_head, remaining);
    c->in.resize(remaining);
    c->in_head = 0;
  }
}

// ---- Listener -----------------------------------------------------------

Listener::Listener(ConnectionPool& pool, FrameSink* sink,
                   AcceptHandler on_accept)
    : pool_(&pool), sink_(sink), on_accept_(std::move(on_accept)) {}

Listener::~Listener() { close(); }

bool Listener::listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd_);
  pool_->loop().watch(fd_, true, false, [this](bool readable, bool) {
    if (!readable) return;
    while (true) {
      const int client_fd = ::accept(fd_, nullptr, nullptr);
      if (client_fd < 0) break;
      const ConnHandle conn = pool_->adopt(client_fd, sink_);
      if (conn != 0 && on_accept_) on_accept_(conn);
    }
  });
  return true;
}

void Listener::close() {
  if (fd_ < 0) return;
  pool_->loop().unwatch(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::string local_endpoint(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

}  // namespace eden::rpc
