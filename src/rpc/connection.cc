#include "rpc/connection.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eden::rpc {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::shared_ptr<Connection> Connection::adopt(EventLoop& loop, int fd) {
  set_nonblocking(fd);
  set_nodelay(fd);
  auto connection = std::shared_ptr<Connection>(new Connection(loop, fd));
  connection->arm();
  return connection;
}

Connection::Connection(EventLoop& loop, int fd) : loop_(&loop), fd_(fd) {}

Connection::~Connection() { close(); }

void Connection::arm() {
  // Keep a weak reference: the watch callback must not extend lifetime.
  std::weak_ptr<Connection> weak = shared_from_this();
  loop_->watch(fd_, /*want_read=*/true, /*want_write=*/!out_.empty(),
               [weak](bool readable, bool writable) {
                 if (const auto self = weak.lock()) {
                   self->on_io(readable, writable);
                 }
               });
}

void Connection::on_io(bool readable, bool writable) {
  // Hold a strong reference: handlers may drop the last owner.
  const auto self = shared_from_this();
  if (writable && fd_ >= 0) handle_writable();
  if (readable && fd_ >= 0) handle_readable();
}

void Connection::handle_readable() {
  std::uint8_t buffer[64 * 1024];
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      in_.insert(in_.end(), buffer, buffer + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close();  // peer closed or hard error
    return;
  }
  parse_frames();
}

void Connection::parse_frames() {
  std::size_t offset = 0;
  while (fd_ >= 0) {
    if (in_.size() - offset < 4) break;
    std::uint32_t length = 0;
    std::memcpy(&length, in_.data() + offset, 4);
    if (length < 10 || length > kMaxFrameBytes) {
      close();
      return;
    }
    if (in_.size() - offset < 4 + static_cast<std::size_t>(length)) break;
    std::uint64_t request_id = 0;
    std::uint16_t type = 0;
    std::memcpy(&request_id, in_.data() + offset + 4, 8);
    std::memcpy(&type, in_.data() + offset + 12, 2);
    const std::uint8_t* payload = in_.data() + offset + kFrameHeaderBytes;
    const std::size_t payload_size = length - 10;
    if (frame_handler_) frame_handler_(request_id, type, payload, payload_size);
    offset += 4 + length;
  }
  if (offset > 0 && fd_ >= 0) {
    in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

void Connection::send_frame(std::uint64_t request_id, std::uint16_t type,
                            const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) return;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 10;
  const std::size_t start = out_.size();
  out_.resize(start + 4 + length);
  std::memcpy(out_.data() + start, &length, 4);
  std::memcpy(out_.data() + start + 4, &request_id, 8);
  std::memcpy(out_.data() + start + 12, &type, 2);
  if (!payload.empty()) {
    std::memcpy(out_.data() + start + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  handle_writable();
  if (fd_ >= 0) {
    loop_->update_interest(fd_, true, out_offset_ < out_.size());
  }
}

void Connection::handle_writable() {
  while (fd_ >= 0 && out_offset_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_offset_,
                             out_.size() - out_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      out_offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && (errno == EINTR || errno == ENOTCONN ||
                  errno == EINPROGRESS)) {
      break;  // still connecting; retry when writable
    }
    close();
    return;
  }
  if (out_offset_ == out_.size()) {
    out_.clear();
    out_offset_ = 0;
  }
  if (fd_ >= 0) loop_->update_interest(fd_, true, !out_.empty());
}

void Connection::close() {
  if (fd_ < 0) return;
  loop_->unwatch(fd_);
  ::close(fd_);
  fd_ = -1;
  if (close_handler_) {
    CloseHandler handler = std::move(close_handler_);
    close_handler_ = nullptr;
    handler();
  }
}

Listener::Listener(EventLoop& loop, AcceptHandler on_accept)
    : loop_(&loop), on_accept_(std::move(on_accept)) {}

Listener::~Listener() { close(); }

bool Listener::listen(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(fd_);
  loop_->watch(fd_, true, false, [this](bool readable, bool) {
    if (!readable) return;
    while (true) {
      const int client_fd = ::accept(fd_, nullptr, nullptr);
      if (client_fd < 0) break;
      if (on_accept_) on_accept_(Connection::adopt(*loop_, client_fd));
    }
  });
  return true;
}

void Listener::close() {
  if (fd_ < 0) return;
  loop_->unwatch(fd_);
  ::close(fd_);
  fd_ = -1;
}

std::shared_ptr<Connection> connect_to(EventLoop& loop,
                                       const std::string& endpoint) {
  std::string host = "127.0.0.1";
  std::string port_text = endpoint;
  if (const auto colon = endpoint.rfind(':'); colon != std::string::npos) {
    host = endpoint.substr(0, colon);
    port_text = endpoint.substr(colon + 1);
  }
  const int port = std::atoi(port_text.c_str());
  if (port <= 0 || port > 65535) return nullptr;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_nonblocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  return Connection::adopt(loop, fd);
}

std::string local_endpoint(std::uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

}  // namespace eden::rpc
