#include "rpc/live_runtime.h"

#include "journal/image.h"
#include "journal/record.h"

namespace eden::rpc {
namespace {

// Control-plane RPC timeouts for the live runtimes (localhost-scale).
constexpr SimDuration kProbeTimeout = msec(400.0);
constexpr SimDuration kJoinTimeout = msec(400.0);
constexpr SimDuration kFrameTimeout = msec(3000.0);
constexpr SimDuration kDiscoveryTimeout = msec(500.0);

PoolStats pool_stats_of(EventLoop& loop, const ConnectionPool& pool) {
  return run_on_loop(loop, [&] {
    return PoolStats{pool.buffers().in_use(), pool.buffers().capacity(),
                     pool.open_connections()};
  });
}

}  // namespace

// ============================ LiveManager ============================

LiveManager::LiveManager(manager::GlobalPolicy policy,
                         SimDuration heartbeat_ttl) {
  manager_ = std::make_unique<manager::CentralManager>(loop_, policy,
                                                       heartbeat_ttl);
  server_ = std::make_unique<RpcServer>(loop_, pool_);

  server_->handle(MessageType::kDiscover,
                  [this](Reader& reader, RpcServer::Responder respond) {
                    const auto request = decode_discovery_request(reader);
                    if (!reader.ok()) return;
                    manager_->handle_discover(request, discover_scratch_);
                    scratch_.clear();
                    encode(scratch_, discover_scratch_);
                    respond(scratch_.data());
                  });
  server_->handle_one_way(MessageType::kRegisterNode, [this](Reader& reader) {
    const auto status = decode_node_status(reader);
    if (reader.ok()) manager_->handle_register(status);
  });
  server_->handle_one_way(MessageType::kHeartbeat, [this](Reader& reader) {
    const auto status = decode_node_status(reader);
    if (reader.ok()) manager_->handle_heartbeat(status);
  });
  server_->handle_one_way(MessageType::kDeregister, [this](Reader& reader) {
    const NodeId node{reader.u32()};
    if (reader.ok()) manager_->handle_deregister(node);
  });
}

LiveManager::~LiveManager() { stop(); }

bool LiveManager::attach_journal(const std::string& path, bool fsync) {
  if (running_ || journal_ != nullptr) return false;
  journal_backend_ = std::make_unique<journal::FileBackend>(path, fsync);
  if (!journal_backend_->ok()) {
    journal_backend_.reset();
    return false;
  }

  // Recovery: replay the surviving log, truncate any torn final frame (the
  // mutation it held was never acked — dropping it is safe by the
  // journal-before-ack rule), and seed the registry from the image.
  std::string bytes;
  if (!journal_backend_->read_all(bytes)) {
    journal_backend_.reset();
    return false;
  }
  const journal::ScanResult scanned = journal::scan(bytes);
  if (scanned.valid_bytes < bytes.size() &&
      !journal_backend_->truncate(scanned.valid_bytes)) {
    journal_backend_.reset();
    return false;
  }
  journal::RegistryImage image;
  for (const journal::JournalRecord& r : scanned.records) image.apply(r);
  const SimTime now = loop_.now();
  for (const auto& [node, entry] : image.entries()) {
    // Lease grant: journaled heartbeat times came from the previous
    // process's clock; re-admit as of now and let the TTL run fresh.
    manager_->seed_entry(entry.status, now);
  }
  for (const auto& [node, phase] : image.phases()) {
    manager_->seed_overload(NodeId{node}, phase.epoch, phase.overloaded);
  }
  journal_recovered_lsn_ = scanned.last_lsn;

  // Strict journal-before-ack: interval 0 flushes (and fsyncs) inside
  // every commit(), before the handler's response leaves the server.
  journal::JournalOptions options;
  options.group_commit_interval = SimDuration{0};
  journal_ = std::make_unique<journal::ManagerJournal>(
      *journal_backend_, nullptr, options, scanned.last_lsn + 1);
  manager_->set_mutation_sink(journal_.get());
  return true;
}

bool LiveManager::start(std::uint16_t port) {
  if (running_) return true;
  if (!server_->listen(port)) return false;
  running_ = true;
  thread_ = std::thread([this] { loop_.run(); });
  return true;
}

void LiveManager::stop() {
  if (!running_) return;
  running_ = false;
  loop_.post([this] { server_->close(); });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
}

PoolStats LiveManager::pool_stats() { return pool_stats_of(loop_, pool_); }

std::size_t LiveManager::leaked_pool_chunks() {
  pool_.close_all();
  return pool_.buffers().in_use();
}

// ============================ LiveNode ============================

class LiveNode::Link final : public net::ManagerLink {
 public:
  explicit Link(RpcClient& client) : client_(&client) {}

  void register_node(const net::NodeStatus& status) override {
    writer_.clear();
    encode(writer_, status);
    client_->send_one_way(MessageType::kRegisterNode, writer_.data());
  }
  void heartbeat(const net::NodeStatus& status) override {
    writer_.clear();
    encode(writer_, status);
    client_->send_one_way(MessageType::kHeartbeat, writer_.data());
  }
  void deregister(NodeId node) override {
    writer_.clear();
    writer_.u32(node.value);
    client_->send_one_way(MessageType::kDeregister, writer_.data());
  }

 private:
  RpcClient* client_;
  Writer writer_;  // scratch, loop thread only
};

LiveNode::LiveNode(node::EdgeNodeConfig config, std::string manager_endpoint) {
  manager_client_ =
      std::make_unique<RpcClient>(loop_, pool_, std::move(manager_endpoint));
  link_ = std::make_unique<Link>(*manager_client_);
  node_ = std::make_unique<node::EdgeNode>(loop_, std::move(config), link_.get());
  server_ = std::make_unique<RpcServer>(loop_, pool_);
  register_handlers();
}

LiveNode::~LiveNode() { stop(false); }

void LiveNode::register_handlers() {
  server_->handle(MessageType::kRttProbe,
                  [](Reader&, RpcServer::Responder respond) {
                    respond.send(nullptr, 0);  // pure echo
                  });
  server_->handle(MessageType::kProcessProbe,
                  [this](Reader& reader, RpcServer::Responder respond) {
                    const ClientId from{reader.u32()};
                    scratch_.clear();
                    encode(scratch_, node_->handle_process_probe(from));
                    respond(scratch_.data());
                  });
  server_->handle(MessageType::kJoin,
                  [this](Reader& reader, RpcServer::Responder respond) {
                    const auto request = decode_join_request(reader);
                    if (!reader.ok()) return;
                    scratch_.clear();
                    encode(scratch_, node_->handle_join(request));
                    respond(scratch_.data());
                  });
  server_->handle(MessageType::kUnexpectedJoin,
                  [this](Reader& reader, RpcServer::Responder respond) {
                    const auto request = decode_join_request(reader);
                    if (!reader.ok()) return;
                    scratch_.clear();
                    scratch_.boolean(node_->handle_unexpected_join(request));
                    respond(scratch_.data());
                  });
  server_->handle_one_way(MessageType::kLeave, [this](Reader& reader) {
    const ClientId client{reader.u32()};
    if (reader.ok()) node_->handle_leave(client);
  });
  server_->handle(MessageType::kOffload,
                  [this](Reader& reader, RpcServer::Responder respond) {
                    const auto request = decode_frame_request(reader);
                    if (!reader.ok()) return;
                    // [this + 32-byte Responder] = 40 bytes: inline in the
                    // node's completion callable — no per-frame spill.
                    node_->handle_offload(
                        request, [this, respond](net::FrameResponse r) {
                          scratch_.clear();
                          encode(scratch_, r);
                          respond(scratch_.data());
                        });
                  });
}

bool LiveNode::start(std::uint16_t port) {
  if (running_) return true;
  if (!server_->listen(port)) return false;
  running_ = true;
  // The manager learns our address through registration/heartbeats.
  loop_.post([this] {
    node_->set_endpoint(server_->endpoint());
    node_->start();
  });
  thread_ = std::thread([this] { loop_.run(); });
  return true;
}

void LiveNode::stop(bool graceful) {
  if (!running_) return;
  running_ = false;
  loop_.post([this, graceful] {
    node_->stop(graceful);
    server_->close();
  });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
}

node::EdgeNodeStats LiveNode::stats() {
  return run_on_loop(loop_, [this] { return node_->stats(); });
}

PoolStats LiveNode::pool_stats() { return pool_stats_of(loop_, pool_); }

std::size_t LiveNode::leaked_pool_chunks() {
  pool_.close_all();
  return pool_.buffers().in_use();
}

// ============================ LiveClient ============================

class LiveClient::NodeProxy final : public net::NodeApi {
 public:
  NodeProxy(EventLoop& loop, ConnectionPool& pool, NodeId id,
            const std::string& endpoint)
      : id_(id), client_(loop, pool, endpoint) {}

  [[nodiscard]] NodeId id() const override { return id_; }

  void rtt_probe(ClientId from, net::Done<bool> done) override {
    writer_.clear();
    writer_.u32(from.value);
    client_.call(MessageType::kRttProbe, writer_.data(), kProbeTimeout,
                 [done = std::move(done)](RpcResult response) mutable {
                   done(response.ok);
                 });
  }

  void process_probe(
      ClientId from,
      net::Done<std::optional<net::ProcessProbeResponse>> done) override {
    writer_.clear();
    writer_.u32(from.value);
    client_.call(MessageType::kProcessProbe, writer_.data(), kProbeTimeout,
                 [done = std::move(done)](RpcResult response) mutable {
                   if (!response.ok) return done(std::nullopt);
                   Reader reader(response.data, response.size);
                   auto decoded = decode_process_probe_response(reader);
                   done(reader.ok() ? std::optional(decoded) : std::nullopt);
                 });
  }

  void join(const net::JoinRequest& request,
            net::Done<std::optional<net::JoinResponse>> done) override {
    writer_.clear();
    encode(writer_, request);
    client_.call(MessageType::kJoin, writer_.data(), kJoinTimeout,
                 [done = std::move(done)](RpcResult response) mutable {
                   if (!response.ok) return done(std::nullopt);
                   Reader reader(response.data, response.size);
                   auto decoded = decode_join_response(reader);
                   done(reader.ok() ? std::optional(decoded) : std::nullopt);
                 });
  }

  void unexpected_join(const net::JoinRequest& request,
                       net::Done<bool> done) override {
    writer_.clear();
    encode(writer_, request);
    client_.call(MessageType::kUnexpectedJoin, writer_.data(), kJoinTimeout,
                 [done = std::move(done)](RpcResult response) mutable {
                   if (!response.ok) return done(false);
                   Reader reader(response.data, response.size);
                   const bool accepted = reader.boolean();
                   done(reader.ok() && accepted);
                 });
  }

  void leave(ClientId client) override {
    writer_.clear();
    writer_.u32(client.value);
    client_.send_one_way(MessageType::kLeave, writer_.data());
  }

  void offload(const net::FrameRequest& request,
               net::Done<std::optional<net::FrameResponse>> done) override {
    writer_.clear();
    encode(writer_, request);
    client_.call(MessageType::kOffload, writer_.data(), kFrameTimeout,
                 [done = std::move(done)](RpcResult response) mutable {
                   if (!response.ok) return done(std::nullopt);
                   Reader reader(response.data, response.size);
                   auto decoded = decode_frame_response(reader);
                   done(reader.ok() ? std::optional(decoded) : std::nullopt);
                 });
  }

 private:
  NodeId id_;
  RpcClient client_;
  Writer writer_;  // scratch, loop thread only
};

class LiveClient::ManagerProxy final : public net::ManagerApi {
 public:
  ManagerProxy(RpcClient& client, LiveClient& owner)
      : client_(&client), owner_(&owner) {}

  void discover(
      const net::DiscoveryRequest& request,
      net::Done<std::optional<net::DiscoveryResponse>> done) override {
    writer_.clear();
    encode(writer_, request);
    client_->call(
        MessageType::kDiscover, writer_.data(), kDiscoveryTimeout,
        [owner = owner_, done = std::move(done)](RpcResult response) mutable {
          if (!response.ok) return done(std::nullopt);
          Reader reader(response.data, response.size);
          auto decoded = decode_discovery_response(reader);
          if (!reader.ok()) return done(std::nullopt);
          // Remember how to reach each advertised node.
          for (const auto& candidate : decoded.candidates) {
            if (!candidate.endpoint.empty()) {
              owner->endpoints_[candidate.node] = candidate.endpoint;
            }
          }
          done(std::move(decoded));
        });
  }

 private:
  RpcClient* client_;
  LiveClient* owner_;
  Writer writer_;  // scratch, loop thread only
};

LiveClient::LiveClient(client::ClientConfig config,
                       std::string manager_endpoint) {
  manager_client_ =
      std::make_unique<RpcClient>(loop_, pool_, std::move(manager_endpoint));
  manager_api_ = std::make_unique<ManagerProxy>(*manager_client_, *this);
  client_ = std::make_unique<client::EdgeClient>(
      loop_, *manager_api_, [this](NodeId id) { return resolve(id); },
      std::move(config));
}

LiveClient::~LiveClient() { stop(); }

net::NodeApi* LiveClient::resolve(NodeId id) {
  if (const auto it = node_proxies_.find(id); it != node_proxies_.end()) {
    return it->second.get();
  }
  const auto endpoint = endpoints_.find(id);
  if (endpoint == endpoints_.end()) return nullptr;
  auto proxy = std::make_unique<NodeProxy>(loop_, pool_, id, endpoint->second);
  auto* raw = proxy.get();
  node_proxies_.emplace(id, std::move(proxy));
  return raw;
}

void LiveClient::start() {
  if (running_) return;
  running_ = true;
  loop_.post([this] { client_->start(); });
  thread_ = std::thread([this] { loop_.run(); });
}

void LiveClient::stop() {
  if (!running_) return;
  running_ = false;
  loop_.post([this] { client_->stop(); });
  loop_.stop();
  if (thread_.joinable()) thread_.join();
}

client::ClientStats LiveClient::stats() {
  return run_on_loop(loop_, [this] { return client_->stats(); });
}

std::optional<NodeId> LiveClient::current_node() {
  return run_on_loop(loop_, [this] { return client_->current_node(); });
}

StreamingStats LiveClient::latency_window_ms() {
  return run_on_loop(loop_, [this] {
    return client_->latency_series().window(0, loop_.now() + 1);
  });
}

Samples LiveClient::latency_samples() {
  return run_on_loop(loop_, [this] { return client_->latency_samples(); });
}

PoolStats LiveClient::pool_stats() { return pool_stats_of(loop_, pool_); }

std::size_t LiveClient::leaked_pool_chunks() {
  pool_.close_all();
  return pool_.buffers().in_use();
}

}  // namespace eden::rpc
