#include "rpc/buffer_pool.h"

namespace eden::rpc {

std::uint32_t BufferPool::acquire() {
  ++in_use_;
  ++total_acquires_;
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(chunks_.size());
  chunks_.emplace_back();
  return idx;
}

void BufferPool::release(std::uint32_t idx) {
  free_.push_back(idx);
  --in_use_;
}

}  // namespace eden::rpc
