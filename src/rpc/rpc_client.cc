#include "rpc/rpc_client.h"

namespace eden::rpc {

RpcClient::RpcClient(EventLoop& loop, std::string endpoint)
    : loop_(&loop), endpoint_(std::move(endpoint)) {}

RpcClient::~RpcClient() { close(); }

bool RpcClient::ensure_connected() {
  if (connection_ && !connection_->closed()) return true;
  connection_ = connect_to(*loop_, endpoint_);
  if (!connection_) return false;
  connection_->set_frame_handler(
      [this](std::uint64_t request_id, std::uint16_t type,
             const std::uint8_t* payload, std::size_t payload_size) {
        on_frame(request_id, type, payload, payload_size);
      });
  connection_->set_close_handler([this] { on_close(); });
  return true;
}

void RpcClient::call(MessageType type, const std::vector<std::uint8_t>& payload,
                     SimDuration timeout, ResponseCallback callback) {
  if (!ensure_connected()) {
    // Fail asynchronously, preserving "callback runs from the loop" rules.
    loop_->schedule_after(0, [callback = std::move(callback)]() mutable {
      callback(std::nullopt);
    });
    return;
  }
  const std::uint64_t request_id = next_request_id_++;
  Pending pending;
  pending.callback = std::move(callback);
  pending.timeout_timer = loop_->schedule_after(timeout, [this, request_id] {
    const auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    ResponseCallback cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(std::nullopt);
  });
  pending_.emplace(request_id, std::move(pending));
  connection_->send_frame(request_id, static_cast<std::uint16_t>(type), payload);
}

void RpcClient::send_one_way(MessageType type,
                             const std::vector<std::uint8_t>& payload) {
  if (!ensure_connected()) return;
  connection_->send_frame(0, static_cast<std::uint16_t>(type), payload);
}

void RpcClient::on_frame(std::uint64_t request_id, std::uint16_t /*type*/,
                         const std::uint8_t* payload,
                         std::size_t payload_size) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;  // late response after timeout
  loop_->cancel(it->second.timeout_timer);
  ResponseCallback callback = std::move(it->second.callback);
  pending_.erase(it);
  callback(std::vector<std::uint8_t>(payload, payload + payload_size));
}

void RpcClient::on_close() { fail_all_pending(); }

void RpcClient::fail_all_pending() {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, entry] : pending) {
    loop_->cancel(entry.timeout_timer);
    entry.callback(std::nullopt);
  }
}

void RpcClient::close() {
  if (connection_) {
    connection_->set_close_handler(nullptr);
    connection_->close();
    connection_.reset();
  }
  fail_all_pending();
}

}  // namespace eden::rpc
