#include "rpc/rpc_client.h"

namespace eden::rpc {

RpcClient::RpcClient(EventLoop& loop, ConnectionPool& pool,
                     std::string endpoint)
    : loop_(&loop), pool_(&pool), endpoint_(std::move(endpoint)) {}

RpcClient::~RpcClient() { close(); }

bool RpcClient::ensure_connected() {
  if (conn_ != 0 && pool_->alive(conn_)) return true;
  conn_ = pool_->connect(endpoint_, this);
  if (conn_ == 0) return false;
  ++instance_;  // responses from any previous connection are now stale
  return true;
}

std::uint32_t RpcClient::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = pending_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  }
  pending_[idx].next_free = kNil;
  ++live_;
  return idx;
}

RpcClient::ResponseCallback RpcClient::take_and_release(std::uint32_t idx) {
  PendingSlot& slot = pending_[idx];
  ResponseCallback callback = std::move(slot.callback);
  slot.callback.reset();
  slot.timeout_timer = 0;
  ++slot.gen;
  slot.next_free = free_head_;
  free_head_ = idx;
  --live_;
  return callback;
}

void RpcClient::call(MessageType type, const std::uint8_t* payload,
                     std::size_t payload_size, SimDuration timeout,
                     ResponseCallback callback) {
  if (!ensure_connected()) {
    // Fail asynchronously, preserving "callback runs from the loop" rules.
    loop_->schedule_after(0, [callback = std::move(callback)]() mutable {
      callback(RpcResult{});
    });
    return;
  }
  const std::uint32_t idx = acquire_slot();
  PendingSlot& slot = pending_[idx];
  slot.callback = std::move(callback);
  slot.instance = instance_;
  const std::uint64_t request_id = pack_rid(instance_, slot.gen, idx);
  slot.timeout_timer = loop_->schedule_after(
      timeout, [this, request_id] { on_timeout(request_id); });
  // May fail re-entrantly (outbox overflow -> on_conn_closed ->
  // fail_all_pending, which already completed this slot) — do not touch
  // the slot afterwards.
  pool_->send_frame(conn_, request_id, static_cast<std::uint16_t>(type),
                    payload, payload_size);
}

void RpcClient::send_one_way(MessageType type, const std::uint8_t* payload,
                             std::size_t payload_size) {
  if (!ensure_connected()) return;
  pool_->send_frame(conn_, 0, static_cast<std::uint16_t>(type), payload,
                    payload_size);
}

void RpcClient::on_timeout(std::uint64_t request_id) {
  const std::uint32_t idx =
      static_cast<std::uint32_t>(request_id & 0xffffffffu) - 1;
  const std::uint16_t gen = static_cast<std::uint16_t>(request_id >> 32);
  const std::uint16_t instance = static_cast<std::uint16_t>(request_id >> 48);
  if (idx >= pending_.size()) return;
  PendingSlot& slot = pending_[idx];
  if (slot.gen != gen || slot.instance != instance || !slot.callback) return;
  ResponseCallback callback = take_and_release(idx);
  callback(RpcResult{});
}

void RpcClient::on_frame(ConnHandle /*conn*/, std::uint64_t request_id,
                         std::uint16_t /*type*/, const std::uint8_t* payload,
                         std::size_t payload_size) {
  const std::uint32_t idx =
      static_cast<std::uint32_t>(request_id & 0xffffffffu) - 1;
  const std::uint16_t gen = static_cast<std::uint16_t>(request_id >> 32);
  const std::uint16_t instance = static_cast<std::uint16_t>(request_id >> 48);
  if (idx >= pending_.size()) return;
  PendingSlot& slot = pending_[idx];
  // Late response after timeout, response from a previous connection, or a
  // re-used slot: all three rejected here.
  if (slot.gen != gen || slot.instance != instance || !slot.callback) return;
  loop_->cancel(slot.timeout_timer);
  ResponseCallback callback = take_and_release(idx);
  callback(RpcResult{payload, payload_size, true});
}

void RpcClient::on_conn_closed(ConnHandle conn) {
  if (conn == conn_) conn_ = 0;
  fail_all_pending(instance_);
}

void RpcClient::fail_all_pending(std::uint16_t instance) {
  // Failure callbacks may issue new calls (which reconnect and bump
  // instance_); only slots belonging to `instance` are failed, so those
  // new requests survive even if they land in re-used slots.
  const std::size_t size_at_entry = pending_.size();
  for (std::uint32_t idx = 0; idx < size_at_entry; ++idx) {
    PendingSlot& slot = pending_[idx];
    if (!slot.callback || slot.instance != instance) continue;
    loop_->cancel(slot.timeout_timer);
    ResponseCallback callback = take_and_release(idx);
    callback(RpcResult{});
  }
}

void RpcClient::close() {
  if (conn_ != 0) {
    pool_->close(conn_);
    conn_ = 0;
  }
  fail_all_pending(instance_);
}

}  // namespace eden::rpc
