// GeoHash codec (Balkić et al. [32] in the paper). The central manager's
// geo-proximity filter works on hash prefixes: nodes sharing a longer prefix
// with the querying user are (usually) geographically closer, and the filter
// widens its search by shortening the prefix.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "geo/geopoint.h"

namespace eden::geo {

// Bounding box of a geohash cell.
struct GeoBox {
  double min_lat{0}, max_lat{0};
  double min_lon{0}, max_lon{0};

  [[nodiscard]] GeoPoint center() const {
    return {(min_lat + max_lat) / 2, (min_lon + max_lon) / 2};
  }
  [[nodiscard]] bool contains(const GeoPoint& p) const {
    return p.lat >= min_lat && p.lat <= max_lat && p.lon >= min_lon &&
           p.lon <= max_lon;
  }
};

// Encode a point to a base-32 geohash of the given precision (1..12 chars).
[[nodiscard]] std::string geohash_encode(const GeoPoint& p, int precision);

// Decode a geohash to its bounding box; nullopt on invalid characters or an
// empty string.
[[nodiscard]] std::optional<GeoBox> geohash_decode(const std::string& hash);

// Decode to the cell's center point; nullopt on invalid input.
[[nodiscard]] std::optional<GeoPoint> geohash_decode_center(const std::string& hash);

enum class Direction { kNorth, kSouth, kEast, kWest };

// The adjacent cell in the given direction (wraps in longitude, clamps at
// the poles by returning the same cell); nullopt on invalid input.
[[nodiscard]] std::optional<std::string> geohash_neighbor(const std::string& hash,
                                                          Direction dir);

// The 8 surrounding cells plus the cell itself (9 total, deduplicated near
// poles); empty on invalid input.
[[nodiscard]] std::array<std::string, 8> geohash_neighbors(const std::string& hash);

// Length of the common prefix of two geohashes — the manager's proximity
// score (longer shared prefix = closer, at matching precision).
[[nodiscard]] int common_prefix_len(const std::string& a, const std::string& b);

// Approximate cell width in kilometres at the given precision (at the
// equator); used to choose a precision matching a search radius.
[[nodiscard]] double cell_width_km(int precision);

// Smallest precision whose cell is still wider than `radius_km` — the
// prefix length to match when searching within that radius.
[[nodiscard]] int precision_for_radius_km(double radius_km);

}  // namespace eden::geo
