#include "geo/geohash.h"

#include <algorithm>
#include <cmath>

namespace eden::geo {
namespace {

constexpr const char* kBase32 = "0123456789bcdefghjkmnpqrstuvwxyz";

int base32_index(char c) {
  for (int i = 0; i < 32; ++i) {
    if (kBase32[i] == c) return i;
  }
  return -1;
}

double wrap_lon(double lon) {
  while (lon >= 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  return lon;
}

}  // namespace

std::string geohash_encode(const GeoPoint& p, int precision) {
  precision = std::clamp(precision, 1, 12);
  double lat_lo = -90, lat_hi = 90;
  double lon_lo = -180, lon_hi = 180;
  std::string hash;
  hash.reserve(static_cast<std::size_t>(precision));
  bool even_bit = true;  // even bits encode longitude
  int bit = 0;
  int value = 0;
  while (static_cast<int>(hash.size()) < precision) {
    if (even_bit) {
      const double mid = (lon_lo + lon_hi) / 2;
      if (p.lon >= mid) {
        value = value * 2 + 1;
        lon_lo = mid;
      } else {
        value *= 2;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2;
      if (p.lat >= mid) {
        value = value * 2 + 1;
        lat_lo = mid;
      } else {
        value *= 2;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      hash += kBase32[value];
      bit = 0;
      value = 0;
    }
  }
  return hash;
}

std::optional<GeoBox> geohash_decode(const std::string& hash) {
  if (hash.empty() || hash.size() > 12) return std::nullopt;
  GeoBox box{-90, 90, -180, 180};
  bool even_bit = true;
  for (char c : hash) {
    const int idx = base32_index(c);
    if (idx < 0) return std::nullopt;
    for (int bit = 4; bit >= 0; --bit) {
      const int b = (idx >> bit) & 1;
      if (even_bit) {
        const double mid = (box.min_lon + box.max_lon) / 2;
        (b ? box.min_lon : box.max_lon) = mid;
      } else {
        const double mid = (box.min_lat + box.max_lat) / 2;
        (b ? box.min_lat : box.max_lat) = mid;
      }
      even_bit = !even_bit;
    }
  }
  return box;
}

std::optional<GeoPoint> geohash_decode_center(const std::string& hash) {
  const auto box = geohash_decode(hash);
  if (!box) return std::nullopt;
  return box->center();
}

std::optional<std::string> geohash_neighbor(const std::string& hash, Direction dir) {
  const auto box = geohash_decode(hash);
  if (!box) return std::nullopt;
  const double lat_step = box->max_lat - box->min_lat;
  const double lon_step = box->max_lon - box->min_lon;
  GeoPoint c = box->center();
  switch (dir) {
    case Direction::kNorth: c.lat += lat_step; break;
    case Direction::kSouth: c.lat -= lat_step; break;
    case Direction::kEast: c.lon += lon_step; break;
    case Direction::kWest: c.lon -= lon_step; break;
  }
  // Clamp at the poles (stay in the same cell), wrap in longitude.
  if (c.lat > 90.0 || c.lat < -90.0) c = box->center();
  c.lon = wrap_lon(c.lon);
  return geohash_encode(c, static_cast<int>(hash.size()));
}

std::array<std::string, 8> geohash_neighbors(const std::string& hash) {
  std::array<std::string, 8> out{};
  const auto n = geohash_neighbor(hash, Direction::kNorth);
  const auto s = geohash_neighbor(hash, Direction::kSouth);
  const auto e = geohash_neighbor(hash, Direction::kEast);
  const auto w = geohash_neighbor(hash, Direction::kWest);
  if (!n || !s || !e || !w) return out;
  out[0] = *n;
  out[1] = *s;
  out[2] = *e;
  out[3] = *w;
  out[4] = geohash_neighbor(*n, Direction::kEast).value_or("");
  out[5] = geohash_neighbor(*n, Direction::kWest).value_or("");
  out[6] = geohash_neighbor(*s, Direction::kEast).value_or("");
  out[7] = geohash_neighbor(*s, Direction::kWest).value_or("");
  return out;
}

int common_prefix_len(const std::string& a, const std::string& b) {
  const std::size_t limit = std::min(a.size(), b.size());
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return static_cast<int>(i);
}

double cell_width_km(int precision) {
  // Longitude span halves every even bit; each character is 5 bits, so a
  // precision-p hash has ceil(5p/2) longitude bits over 360 degrees.
  precision = std::clamp(precision, 1, 12);
  const int lon_bits = (5 * precision + 1) / 2;
  const double deg = 360.0 / std::pow(2.0, lon_bits);
  constexpr double kKmPerDegreeAtEquator = 111.32;
  return deg * kKmPerDegreeAtEquator;
}

int precision_for_radius_km(double radius_km) {
  for (int p = 12; p >= 1; --p) {
    if (cell_width_km(p) >= radius_km) return p;
  }
  return 1;
}

}  // namespace eden::geo
