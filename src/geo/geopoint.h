// Geographic coordinates and great-circle distance.
#pragma once

namespace eden::geo {

struct GeoPoint {
  double lat{0};  // degrees, [-90, 90]
  double lon{0};  // degrees, [-180, 180)

  bool operator==(const GeoPoint&) const = default;
};

// Great-circle distance in kilometres (haversine, mean Earth radius).
[[nodiscard]] double haversine_km(const GeoPoint& a, const GeoPoint& b);

// Convenience: distance in miles (the paper quotes miles).
[[nodiscard]] double distance_miles(const GeoPoint& a, const GeoPoint& b);

}  // namespace eden::geo
