#include "geo/geopoint.h"

#include <cmath>
#include <numbers>

namespace eden::geo {
namespace {
constexpr double kEarthRadiusKm = 6371.0088;
constexpr double kKmPerMile = 1.609344;

double radians(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double dlat = radians(b.lat - a.lat);
  const double dlon = radians(b.lon - a.lon);
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(radians(a.lat)) * std::cos(radians(b.lat)) *
                       std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(s)));
}

double distance_miles(const GeoPoint& a, const GeoPoint& b) {
  return haversine_km(a, b) / kKmPerMile;
}

}  // namespace eden::geo
