// Small-buffer-optimized move-only callable for the event arena. The
// simulator stores one per scheduled event, so the common case — a lambda
// capturing a couple of pointers — must construct, move and destroy
// without touching the allocator. Callables up to kInlineCapacity bytes
// live inside the object; larger ones fall back to the heap and bump a
// global counter so bench_micro can report allocs/event.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace eden::sim {

class Callback {
 public:
  // 32 bytes fits a std::function<void()> (32 bytes on libstdc++) or a
  // lambda capturing four pointers; together with the ops pointer and the
  // simulator's per-slot metadata, a whole arena slot stays one cache
  // line. Larger captures heap-allocate (the seed's std::function already
  // did, above its 16-byte SBO) and bump the alloc counter.
  static constexpr std::size_t kInlineCapacity = 32;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  // Construct the callable directly in this object's storage (replacing
  // any current one). The simulator uses this to build callbacks in their
  // arena slot with no temporary and no relocate call.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
      heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  // Invoke the callable and leave this object empty, in one virtual
  // dispatch. The object is marked empty *before* the call, so re-entrant
  // observers (sweeps, pending() checks) see it as already consumed. The
  // callable itself stays valid for the duration of the call.
  void invoke_and_reset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // Number of callbacks that spilled to the heap since process start (or
  // the last reset). bench_micro divides a delta of this by events
  // scheduled to report allocs/event.
  [[nodiscard]] static std::uint64_t heap_allocations() noexcept {
    return heap_allocs_.load(std::memory_order_relaxed);
  }
  static void reset_heap_allocations() noexcept {
    heap_allocs_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* self);
    // Invoke the callable, then destroy it.
    void (*invoke_destroy)(unsigned char* self);
    // Move the callable from `from` into `to` and destroy the source.
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](unsigned char* self) { (*reinterpret_cast<Fn*>(self))(); },
      [](unsigned char* self) {
        Fn* fn = reinterpret_cast<Fn*>(self);
        (*fn)();
        fn->~Fn();
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        ::new (static_cast<void*>(to)) Fn(std::move(*reinterpret_cast<Fn*>(from)));
        reinterpret_cast<Fn*>(from)->~Fn();
      },
      [](unsigned char* self) noexcept { reinterpret_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](unsigned char* self) { (**reinterpret_cast<Fn**>(self))(); },
      [](unsigned char* self) {
        Fn* fn = *reinterpret_cast<Fn**>(self);
        (*fn)();
        delete fn;
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* self) noexcept { delete *reinterpret_cast<Fn**>(self); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_{nullptr};

  static inline std::atomic<std::uint64_t> heap_allocs_{0};
};

}  // namespace eden::sim
