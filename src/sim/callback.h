// Small-buffer-optimized move-only callables for the event arena and the
// messaging hot path. The simulator stores one Callback per scheduled
// event, and the rpc layer stores one BasicFunc per pending completion, so
// the common case — a lambda capturing a few pointers and ids — must
// construct, move and destroy without touching the allocator. Callables up
// to the inline capacity live inside the object; larger ones fall back to
// the heap and bump a shared global counter so the benches can report
// allocs/event.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

#ifdef EDEN_CALLBACK_SPILL_TRACE
#include <cstdio>
#include <typeinfo>
#endif

namespace eden::sim {

namespace detail {
// One shared spill counter for every SBO callable type; bench_micro reads
// deltas of it to attribute heap traffic to callback storage.
inline std::atomic<std::uint64_t> callback_heap_allocs{0};
}  // namespace detail

class Callback {
 public:
  // 48 bytes fits a std::function<void()> (32 bytes on libstdc++), every
  // protocol request-leg capture except frame offload (net* + handle +
  // node* + 32-byte FrameRequest = 56), and together with the ops pointer
  // and the simulator's per-slot metadata a whole arena slot still lands
  // on exactly one cache line (48 + 8 + 4 + 4 = 64). Larger captures
  // heap-allocate (the seed's std::function already did, above its 16-byte
  // SBO) and bump the alloc counter.
  static constexpr std::size_t kInlineCapacity = 48;

  Callback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  // Construct the callable directly in this object's storage (replacing
  // any current one). The simulator uses this to build callbacks in their
  // arena slot with no temporary and no relocate call.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
      detail::callback_heap_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef EDEN_CALLBACK_SPILL_TRACE
      static std::atomic<bool> reported{false};
      if (!reported.exchange(true)) {
        std::fprintf(stderr, "SPILL Callback cap=%zu size=%zu %s\n",
                     kInlineCapacity, sizeof(Fn), typeid(Fn).name());
      }
#endif
    }
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  // Invoke the callable and leave this object empty, in one virtual
  // dispatch. The object is marked empty *before* the call, so re-entrant
  // observers (sweeps, pending() checks) see it as already consumed. The
  // callable itself stays valid for the duration of the call.
  void invoke_and_reset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  // Number of callbacks (of any SBO callable type) that spilled to the
  // heap since process start (or the last reset). bench_micro divides a
  // delta of this by events scheduled to report allocs/event.
  [[nodiscard]] static std::uint64_t heap_allocations() noexcept {
    return detail::callback_heap_allocs.load(std::memory_order_relaxed);
  }
  static void reset_heap_allocations() noexcept {
    detail::callback_heap_allocs.store(0, std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* self);
    // Invoke the callable, then destroy it.
    void (*invoke_destroy)(unsigned char* self);
    // Move the callable from `from` into `to` and destroy the source.
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](unsigned char* self) { (*reinterpret_cast<Fn*>(self))(); },
      [](unsigned char* self) {
        Fn* fn = reinterpret_cast<Fn*>(self);
        (*fn)();
        fn->~Fn();
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        ::new (static_cast<void*>(to)) Fn(std::move(*reinterpret_cast<Fn*>(from)));
        reinterpret_cast<Fn*>(from)->~Fn();
      },
      [](unsigned char* self) noexcept { reinterpret_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](unsigned char* self) { (**reinterpret_cast<Fn**>(self))(); },
      [](unsigned char* self) {
        Fn* fn = *reinterpret_cast<Fn**>(self);
        (*fn)();
        delete fn;
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* self) noexcept { delete *reinterpret_cast<Fn**>(self); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_{nullptr};

};

// Move-only SBO callable taking arguments: the std::function replacement
// on the messaging hot path (NodeApi/ManagerApi completion callbacks, the
// frame executor's completions, rpc response handlers). Unlike
// std::function it accepts move-only captures — which is what lets one
// completion callback carry another one inline instead of through a
// shared_ptr — and unlike Callback it is parameterized both on the
// argument list and on the inline capacity, so a wrapper layer that needs
// to nest a BasicFunc inside its own capture can size itself one step
// bigger (see node::Executor::Completion).
//
// Capacity 56 (the Func<> alias) is calibrated to the protocol callbacks:
// the largest client-side request-leg lambdas (probe_candidates,
// attempt_join: this + vector + ids + timestamp) are 56 bytes, and since
// the ops pointer pads the object to 64 bytes either way, 56 is free —
// BasicFunc<48> and BasicFunc<56> are the same size. Invocation does not
// consume the target; the exactly-once contract is the caller's.
template <std::size_t Capacity, typename... Args>
class BasicFunc {
 public:
  static constexpr std::size_t kInlineCapacity = Capacity;

  BasicFunc() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicFunc> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  BasicFunc(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, BasicFunc> &&
                std::is_invocable_r_v<void, std::decay_t<F>&, Args...>>>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
      detail::callback_heap_allocs.fetch_add(1, std::memory_order_relaxed);
#ifdef EDEN_CALLBACK_SPILL_TRACE
      static std::atomic<bool> reported{false};
      if (!reported.exchange(true)) {
        std::fprintf(stderr, "SPILL BasicFunc cap=%zu size=%zu align=%zu nothrow=%d %s\n",
                     kInlineCapacity, sizeof(Fn), alignof(Fn),
                     (int)std::is_nothrow_move_constructible_v<Fn>,
                     typeid(Fn).name());
      }
#endif
    }
  }

  BasicFunc(BasicFunc&& other) noexcept : ops_(other.ops_) {
    if (ops_) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  BasicFunc& operator=(BasicFunc&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  BasicFunc(const BasicFunc&) = delete;
  BasicFunc& operator=(const BasicFunc&) = delete;

  ~BasicFunc() { reset(); }

  void operator()(Args... args) {
    ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char* self, Args&&... args);
    void (*relocate)(unsigned char* from, unsigned char* to) noexcept;
    void (*destroy)(unsigned char* self) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](unsigned char* self, Args&&... args) {
        (*reinterpret_cast<Fn*>(self))(std::forward<Args>(args)...);
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        ::new (static_cast<void*>(to)) Fn(std::move(*reinterpret_cast<Fn*>(from)));
        reinterpret_cast<Fn*>(from)->~Fn();
      },
      [](unsigned char* self) noexcept { reinterpret_cast<Fn*>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](unsigned char* self, Args&&... args) {
        (**reinterpret_cast<Fn**>(self))(std::forward<Args>(args)...);
      },
      [](unsigned char* from, unsigned char* to) noexcept {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* self) noexcept { delete *reinterpret_cast<Fn**>(self); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_{nullptr};
};

// The default capacity used across the protocol APIs.
template <typename... Args>
using Func = BasicFunc<56, Args...>;

}  // namespace eden::sim
