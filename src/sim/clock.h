// Clock/scheduler abstraction so protocol components (edge node, manager,
// client) run unchanged under the discrete-event simulator and under the
// real-time TCP runtime.
#pragma once

#include <cstdint>
#include <utility>

#include "common/types.h"
#include "sim/callback.h"
#include "sim/simulator.h"

namespace eden::sim {

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

// Timers are passed as sim::Callback (48-byte SBO, move-only) rather than
// std::function: protocol components schedule per-frame and per-probe
// timers whose captures routinely exceed std::function's 16-byte inline
// buffer, and under the simulator the callback lands directly in an arena
// slot — so the whole scheduling path stays allocation-free.
class Scheduler : public Clock {
 public:
  virtual EventId schedule_after(SimDuration delay, Callback fn) = 0;
  virtual bool cancel(EventId id) = 0;
};

// Adapter exposing a Simulator through the Scheduler interface.
class SimScheduler final : public Scheduler {
 public:
  explicit SimScheduler(Simulator& simulator) : simulator_(&simulator) {}

  [[nodiscard]] SimTime now() const override { return simulator_->now(); }
  EventId schedule_after(SimDuration delay, Callback fn) override {
    return simulator_->schedule_after(delay, std::move(fn));
  }
  bool cancel(EventId id) override { return simulator_->cancel(id); }

 private:
  Simulator* simulator_;
};

}  // namespace eden::sim
