// Discrete-event simulator: the clock every EDEN protocol component runs
// against in emulation mode. Events at equal timestamps fire in scheduling
// order (FIFO), which makes every experiment deterministic.
//
// Internals (rebuilt for the event-engine overhaul):
//  * Callbacks live in a chunked slab arena addressed by 24-bit slot
//    indices — no per-event heap allocation (the SBO Callback type keeps
//    captures inline) and no reallocation moves as the arena grows.
//    Cancellation is an O(1) generation check on the slot; EventId handles
//    are never invalidated by slot reuse.
//  * The pending queue is a monotone radix heap over base-64 digits:
//    bucket (L, v) holds entries whose event time first differs from the
//    last popped minimum at 6-bit digit L, with value v there; bucket 0
//    holds exact matches. Scheduling appends to one bucket in O(1);
//    popping redistributes the lowest non-empty bucket with sequential
//    16-byte scans — no comparison heap, no pointer chasing, and at most
//    ceil(log64(time-spread)) ~ 3 moves per entry for realistic horizons.
//    Level-0 buckets hold a single timestamp each, so their refill is an
//    O(1) vector swap. FIFO ties hold because equal times always share a
//    bucket and appends are stable. The radix ordering relies on schedules
//    never landing below the current minimum; schedule_at clamps to now()
//    and triggers a full re-bucketing in the rare run_until() gap case.
//  * Cancellation tombstones are discarded when popped; a sweep runs once
//    they outnumber live events, so cancel-heavy Periodic churn cannot
//    accumulate dead entries (queued_entries() stays O(pending())).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/callback.h"

namespace eden::sim {

// Opaque event handle: low 32 bits hold (slot index + 1), high 32 bits the
// slot's generation at allocation time. Stale handles (event already ran,
// cancelled, or slot reused) fail the generation check and cancel() safely
// returns false. Zero is never a valid handle.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = sim::Callback;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `fn` at absolute time `t` (clamped to now if in the past).
  // The callable is constructed directly in its arena slot; both overloads
  // are header-inline because scheduling is the engine's hottest write path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(SimTime t, F&& fn) {
    const std::uint32_t index = prepare_slot(t);
    slot(index).cb.emplace(std::forward<F>(fn));
    return make_id(index, slot(index).generation);
  }
  EventId schedule_at(SimTime t, Callback cb) {
    if (!cb) return kInvalidEvent;  // slot liveness is callback presence
    const std::uint32_t index = prepare_slot(t);
    slot(index).cb = std::move(cb);
    return make_id(index, slot(index).generation);
  }
  // Schedule after `delay` (clamped to zero if negative).
  template <typename F>
  EventId schedule_after(SimDuration delay, F&& fn) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Cancel a pending event. Returns false if it already ran or was
  // cancelled before.
  bool cancel(EventId id);

  // ---- delivery lane (sharded / deterministic-delivery runs) ----
  //
  // Cross-host message deliveries in deterministic mode bypass the FIFO
  // event queue and ride a separate min-heap ordered by (time, key.hi,
  // key.lo). SimNetwork builds the key canonically — hi = (destination <<
  // 32 | source), lo = the per-directed-pair message sequence — so the
  // relative order of same-tick deliveries is a pure function of the
  // message set, independent of which shard produced each message or
  // whether it arrived inline or through a window barrier. At equal
  // timestamps deliveries run BEFORE regular events (a fixed global rule,
  // again shard-layout-independent). Deliveries cannot be cancelled; their
  // callbacks live in the same slot arena as regular events and count
  // toward pending(). Scheduling the first delivery permanently switches
  // the run loops to the (slightly slower) two-lane merge; fabrics that
  // never use the lane keep the historical single-lane fast path and its
  // exact event order.
  struct DeliveryKey {
    std::uint64_t hi{0};
    std::uint64_t lo{0};
  };
  void schedule_delivery(SimTime t, DeliveryKey key, Callback cb);

  // Earliest pending timestamp across both lanes, or kNoEventTime when the
  // simulator is idle. Non-const: pruning stale queue heads is how the
  // radix queue discovers its minimum. The sharded runner polls this for
  // barrier-stall accounting and drain detection.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();
  [[nodiscard]] SimTime next_event_time();

  // Run every event with timestamp <= `t`; afterwards now() == t even if
  // the queue drained early.
  void run_until(SimTime t);
  // Run until the queue is empty (with a runaway guard).
  void run_all(std::size_t max_events = 50'000'000);

  // Live (schedulable, not-cancelled) events only — cancelled entries are
  // excluded immediately, not when their timestamp is reached.
  [[nodiscard]] std::size_t pending() const { return live_count_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  // Diagnostics: queue entries including not-yet-purged tombstones. The
  // sweep invariant keeps this O(pending()); tests assert on it.
  [[nodiscard]] std::size_t queued_entries() const {
    return live_count_ + dead_in_queue_;
  }

 private:
  // Exactly one cache line: 48B inline callback storage + ops pointer +
  // occupancy metadata. A slot is live iff its callback is non-empty;
  // `generation` holds the low 32 bits of the occupying event's global
  // sequence number, which is unique enough per slot for stale-handle
  // detection (a collision needs the same slot to be revisited exactly
  // 2^32 events later by a still-held handle). generation/next_free are
  // deliberately uninitialized — each is written before first read
  // (prepare_slot / release_slot), and chunks are allocated with
  // make_unique_for_overwrite so constructing a chunk writes one pointer
  // per slot instead of zeroing whole cache lines.
  struct alignas(64) Slot {
    Callback cb;
    std::uint32_t generation;
    std::uint32_t next_free;
  };
  // 16-byte queue entry: event time plus (seq << 24 | slot). seq rides in
  // the high bits so FIFO ties compare with one integer comparison; 24
  // slot bits cap concurrently-pending events at ~16.7M, 40 seq bits cap
  // one simulator's lifetime at ~1.1e12 events.
  struct Entry {
    std::uint64_t time;
    std::uint64_t seq_slot;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr std::uint64_t kSeqMask = (1ull << 40) - 1;
  static constexpr int kChunkBits = 9;  // 512 slots per slab chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr int kDigitBits = 6;
  static constexpr int kDigits = 1 << kDigitBits;         // 64
  static constexpr int kLevels = (63 + kDigitBits) / kDigitBits;  // 11

  [[nodiscard]] Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkBits][index & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkBits][index & (kChunkSize - 1)];
  }
  [[nodiscard]] bool stale(const Entry& e) const {
    const Slot& s = slot(static_cast<std::uint32_t>(e.seq_slot) & kSlotMask);
    return !s.cb ||
           s.generation != static_cast<std::uint32_t>(e.seq_slot >> kSlotBits);
  }
  static constexpr EventId make_id(std::uint32_t index,
                                   std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(index) + 1);
  }

  std::uint32_t allocate_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t index = free_head_;
      free_head_ = slot(index).next_free;
      return index;
    }
    if ((slot_count_ & (kChunkSize - 1)) == 0) [[unlikely]] {
      grow_slab();
    }
    return slot_count_++;
  }
  void release_slot(std::uint32_t index) {
    Slot& s = slot(index);
    s.cb.reset();
    s.next_free = free_head_;
    free_head_ = index;
  }
  void push_entry(std::uint64_t time, std::uint64_t seq_slot) {
    const std::uint64_t diff = time ^ last_min_;
    if (diff == 0) {
      bucket0_.push_back(Entry{time, seq_slot});
      return;
    }
    // Valid event times are positive int64, so bit <= 62 and L < kLevels.
    const int bit = 63 - std::countl_zero(diff);
    const int level = bit / kDigitBits;
    const auto digit =
        static_cast<int>((time >> (level * kDigitBits)) & (kDigits - 1));
    level_buckets_[level * kDigits + digit].push_back(Entry{time, seq_slot});
    digit_mask_[level] |= 1ull << digit;
    level_mask_ |= 1u << level;
  }
  // Everything schedule_at does except constructing the callable: clamp
  // the time, allocate + initialize a slot, enqueue its entry.
  std::uint32_t prepare_slot(SimTime t) {
    if (t < now_) t = now_;
    const auto time = static_cast<std::uint64_t>(t);
    // run_until() can advance now() past the last popped batch, leaving
    // last_min_ at a future event time; a schedule into that gap must
    // lower last_min_ so the radix ordering invariant (every queued time
    // >= last_min_) keeps holding. Happens only between run calls, never
    // inside the event loop (callbacks schedule at >= now() == last_min_).
    if (time < last_min_) [[unlikely]] {
      rebuild(time);
    }
    const std::uint32_t index = allocate_slot();
    Slot& s = slot(index);
    const std::uint64_t seq = next_seq_++ & kSeqMask;
    s.generation = static_cast<std::uint32_t>(seq);
    ++live_count_;
    push_entry(time, (seq << kSlotBits) | index);
    return index;
  }
  void grow_slab();
  // Re-bucket every queued entry around a lowered last_min_. Needed only
  // when an event is scheduled below the current bucket-0 time — possible
  // after run_until() advanced the clock into a gap before the next batch
  // — so it runs at interaction boundaries, never in the pop hot path.
  void rebuild(std::uint64_t new_last_min);
  // Redistribute the lowest non-empty bucket around its minimum; returns
  // false when the queue is empty.
  bool refill_bucket0();
  // Drop every tombstone; called once dead entries outnumber live ones.
  void sweep();
  bool pop_one(SimTime limit);

  // Delivery-lane internals. The heap entry mirrors the regular Entry but
  // carries the full canonical key; the callback sits in an arena slot.
  struct DeliveryEntry {
    std::uint64_t time;
    std::uint64_t hi;
    std::uint64_t lo;
    std::uint32_t slot;
  };
  struct DeliveryAfter {  // "greater" comparator => std:: heap is a min-heap
    bool operator()(const DeliveryEntry& a, const DeliveryEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.hi != b.hi) return a.hi > b.hi;
      return a.lo > b.lo;
    }
  };
  // Like pop_one's head inspection but without popping: prunes stale
  // entries off the regular queue until a live head (or emptiness) is
  // found, returns its timestamp.
  [[nodiscard]] SimTime peek_event_time();
  // Two-lane pop: the earlier lane wins, deliveries win ties.
  bool pop_next(SimTime limit);
  void pop_delivery();

  SimTime now_{0};
  std::uint64_t next_seq_{1};
  std::uint64_t processed_{0};
  std::size_t live_count_{0};
  std::size_t dead_in_queue_{0};
  std::uint64_t last_min_{0};     // time of the most recent bucket-0 refill
  std::uint32_t level_mask_{0};   // bit L set <=> some bucket at level L
  std::array<std::uint64_t, kLevels> digit_mask_{};  // per-level occupancy
  std::size_t bucket0_cursor_{0};
  std::vector<Entry> bucket0_;    // entries with time == last_min_
  std::array<std::vector<Entry>, kLevels * kDigits> level_buckets_;
  std::vector<Entry> moving_;     // scratch for redistribution (recycled)
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_{0};
  std::uint32_t free_head_{kNoFreeSlot};
  std::vector<DeliveryEntry> deliveries_;  // min-heap via DeliveryAfter
  bool delivery_mode_{false};  // sticky: first schedule_delivery sets it
};

// RAII periodic task: fires `fn` every `period` starting at `start` until
// the Periodic object is destroyed or stop() is called. `fn` may stop it
// from inside the callback. Move-assigning over a running Periodic stops
// the task being replaced; the moved-from object is inert (not running,
// safe to stop/destroy).
class Periodic {
 public:
  Periodic() = default;
  Periodic(Simulator& simulator, SimTime start, SimDuration period,
           std::function<void()> fn);
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;
  Periodic(Periodic&&) noexcept = default;
  Periodic& operator=(Periodic&& other) noexcept {
    if (this != &other) {
      stop();
      state_ = std::move(other.state_);
    }
    return *this;
  }
  ~Periodic();

  void stop();
  [[nodiscard]] bool running() const { return state_ && state_->alive; }

 private:
  struct State {
    Simulator* simulator{nullptr};
    SimDuration period{0};
    std::function<void()> fn;
    bool alive{false};
  };
  static void arm(const std::shared_ptr<State>& state, SimTime at);

  std::shared_ptr<State> state_;
};

}  // namespace eden::sim
