// Discrete-event simulator: the clock every EDEN protocol component runs
// against in emulation mode. Events at equal timestamps fire in scheduling
// order (FIFO), which makes every experiment deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace eden::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `cb` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(SimTime t, Callback cb);
  // Schedule `cb` after `delay` (clamped to zero if negative).
  EventId schedule_after(SimDuration delay, Callback cb);

  // Cancel a pending event. Returns false if it already ran or was
  // cancelled before.
  bool cancel(EventId id);

  // Run every event with timestamp <= `t`; afterwards now() == t even if
  // the queue drained early.
  void run_until(SimTime t);
  // Run until the queue is empty (with a runaway guard).
  void run_all(std::size_t max_events = 50'000'000);

  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    bool operator>(const Entry& other) const {
      return time != other.time ? time > other.time : id > other.id;
    }
  };

  bool pop_one(SimTime limit);

  SimTime now_{0};
  EventId next_id_{1};
  std::uint64_t processed_{0};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> live_;
};

// RAII periodic task: fires `fn` every `period` starting at `start` until
// the Periodic object is destroyed or stop() is called. `fn` may stop it
// from inside the callback.
class Periodic {
 public:
  Periodic() = default;
  Periodic(Simulator& simulator, SimTime start, SimDuration period,
           std::function<void()> fn);
  Periodic(const Periodic&) = delete;
  Periodic& operator=(const Periodic&) = delete;
  Periodic(Periodic&&) noexcept = default;
  Periodic& operator=(Periodic&&) noexcept = default;
  ~Periodic();

  void stop();
  [[nodiscard]] bool running() const { return state_ && state_->alive; }

 private:
  struct State {
    Simulator* simulator{nullptr};
    SimDuration period{0};
    std::function<void()> fn;
    bool alive{false};
  };
  static void arm(const std::shared_ptr<State>& state, SimTime at);

  std::shared_ptr<State> state_;
};

}  // namespace eden::sim
