#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace eden::sim {

void Simulator::grow_slab() {
  if (slot_count_ > kSlotMask) {
    throw std::runtime_error(
        "Simulator: more than 2^24 concurrently pending events");
  }
  chunks_.push_back(std::make_unique_for_overwrite<Slot[]>(kChunkSize));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t low = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (low == 0) return false;
  const std::uint32_t index = low - 1;
  if (index >= slot_count_) return false;
  Slot& s = slot(index);
  if (!s.cb || s.generation != static_cast<std::uint32_t>(id >> 32)) {
    return false;
  }
  release_slot(index);
  --live_count_;
  ++dead_in_queue_;
  // Tombstone bound: pops drop dead entries as they surface; once the
  // backlog outnumbers live events, one O(n) sweep amortizes to O(1) per
  // cancel and keeps the queue O(pending()).
  if (dead_in_queue_ > 64 && dead_in_queue_ > live_count_) sweep();
  return true;
}

void Simulator::rebuild(std::uint64_t new_last_min) {
  std::vector<Entry> all;
  all.reserve(live_count_);
  auto collect = [&](std::vector<Entry>& bucket, std::size_t begin) {
    for (std::size_t i = begin; i < bucket.size(); ++i) {
      if (stale(bucket[i])) {
        --dead_in_queue_;
      } else {
        all.push_back(bucket[i]);
      }
    }
    bucket.clear();
  };
  collect(bucket0_, bucket0_cursor_);
  for (auto& bucket : level_buckets_) {
    if (!bucket.empty()) collect(bucket, 0);
  }
  bucket0_cursor_ = 0;
  level_mask_ = 0;
  digit_mask_.fill(0);
  last_min_ = new_last_min;
  // Equal times were co-located in one source bucket, so this per-bucket
  // collection order keeps FIFO ties intact.
  for (const Entry& e : all) push_entry(e.time, e.seq_slot);
}

void Simulator::sweep() {
  auto filter = [&](std::vector<Entry>& bucket, std::size_t begin) {
    std::size_t kept = 0;
    for (std::size_t i = begin; i < bucket.size(); ++i) {
      if (!stale(bucket[i])) bucket[kept++] = bucket[i];
    }
    bucket.resize(kept);
  };
  filter(bucket0_, bucket0_cursor_);
  bucket0_cursor_ = 0;
  std::uint32_t lm = level_mask_;
  while (lm != 0) {
    const int level = std::countr_zero(lm);
    lm &= lm - 1;
    std::uint64_t dm = digit_mask_[level];
    while (dm != 0) {
      const int digit = std::countr_zero(dm);
      dm &= dm - 1;
      std::vector<Entry>& bucket = level_buckets_[level * kDigits + digit];
      filter(bucket, 0);
      if (bucket.empty()) digit_mask_[level] &= ~(1ull << digit);
    }
    if (digit_mask_[level] == 0) level_mask_ &= ~(1u << level);
  }
  dead_in_queue_ = 0;
}

bool Simulator::refill_bucket0() {
  if (level_mask_ == 0) return false;
  const int level = std::countr_zero(level_mask_);
  const int digit = std::countr_zero(digit_mask_[level]);
  std::vector<Entry>& bucket = level_buckets_[level * kDigits + digit];
  digit_mask_[level] &= digit_mask_[level] - 1;
  if (digit_mask_[level] == 0) level_mask_ &= ~(1u << level);
  if (bucket.size() == 1) {
    // Singleton buckets dominate sparse schedules; skip the scan and the
    // vector swap dance entirely, and start pulling the slot's cache line
    // while the pop loop comes back around.
    const Entry e = bucket.front();
    bucket.clear();
    last_min_ = e.time;
    bucket0_.push_back(e);
    __builtin_prefetch(
        &slot(static_cast<std::uint32_t>(e.seq_slot) & kSlotMask));
    return true;
  }
  if (level == 0) {
    // A level-0 bucket differs from last_min_ only in the low digit, so
    // every entry shares one timestamp: refill is a vector swap, and the
    // drained bucket inherits bucket 0's old capacity for reuse.
    last_min_ = bucket.front().time;
    bucket0_.swap(bucket);
    return true;
  }
  // Pass 1: the minimum (time, then schedule order). Tombstones may define
  // it — harmless: redistribution stays correct and the pop loop discards
  // them; skipping the per-entry slab lookup keeps this a sequential scan.
  const Entry* best = &bucket.front();
  for (const Entry& e : bucket) {
    if (e.time < best->time ||
        (e.time == best->time && e.seq_slot < best->seq_slot)) {
      best = &e;
    }
  }
  last_min_ = best->time;
  // Pass 2: redistribute around the new minimum. Every entry lands
  // strictly below this level (the digit-`level` disagreement with the old
  // last_min_ is resolved by the new one); stable appends preserve FIFO
  // order for equal times. The minimum itself lands in bucket 0.
  moving_.swap(bucket);
  for (const Entry& e : moving_) push_entry(e.time, e.seq_slot);
  moving_.clear();
  return true;
}

bool Simulator::pop_one(SimTime limit) {
  for (;;) {
    if (bucket0_cursor_ >= bucket0_.size()) {
      bucket0_.clear();
      bucket0_cursor_ = 0;
      if (!refill_bucket0()) return false;
      continue;
    }
    const Entry e = bucket0_[bucket0_cursor_];
    if (bucket0_cursor_ + 1 < bucket0_.size()) {
      // Equal-time batch: pull the next slot's line while this callback
      // runs.
      __builtin_prefetch(&slot(static_cast<std::uint32_t>(
                                   bucket0_[bucket0_cursor_ + 1].seq_slot) &
                               kSlotMask));
    }
    const std::uint32_t index =
        static_cast<std::uint32_t>(e.seq_slot) & kSlotMask;
    Slot& s = slot(index);
    if (!s.cb || s.generation != static_cast<std::uint32_t>(
                                     e.seq_slot >> kSlotBits)) {  // tombstone
      ++bucket0_cursor_;
      --dead_in_queue_;
      continue;
    }
    if (static_cast<SimTime>(e.time) > limit) return false;
    ++bucket0_cursor_;
    --live_count_;
    now_ = static_cast<SimTime>(e.time);
    ++processed_;
    // Invoke in place (one dispatch, no relocate). The slot reads as empty
    // during the call, and is only freed afterwards, so re-entrant
    // schedules cannot reuse the storage the running callable lives in.
    s.cb.invoke_and_reset();
    release_slot(index);
    return true;
  }
}

void Simulator::schedule_delivery(SimTime t, DeliveryKey key, Callback cb) {
  if (!cb) return;
  if (t < now_) t = now_;
  const std::uint32_t index = allocate_slot();
  Slot& s = slot(index);
  s.generation = static_cast<std::uint32_t>(next_seq_++ & kSeqMask);
  s.cb = std::move(cb);
  ++live_count_;
  delivery_mode_ = true;
  deliveries_.push_back(
      DeliveryEntry{static_cast<std::uint64_t>(t), key.hi, key.lo, index});
  std::push_heap(deliveries_.begin(), deliveries_.end(), DeliveryAfter{});
}

SimTime Simulator::peek_event_time() {
  for (;;) {
    if (bucket0_cursor_ >= bucket0_.size()) {
      bucket0_.clear();
      bucket0_cursor_ = 0;
      if (!refill_bucket0()) return kNoEventTime;
      continue;
    }
    const Entry e = bucket0_[bucket0_cursor_];
    if (stale(e)) {  // tombstone: discard exactly like pop_one would
      ++bucket0_cursor_;
      --dead_in_queue_;
      continue;
    }
    return static_cast<SimTime>(e.time);
  }
}

SimTime Simulator::next_event_time() {
  const SimTime te = peek_event_time();
  if (deliveries_.empty()) return te;
  const auto td = static_cast<SimTime>(deliveries_.front().time);
  return td < te ? td : te;
}

void Simulator::pop_delivery() {
  std::pop_heap(deliveries_.begin(), deliveries_.end(), DeliveryAfter{});
  const DeliveryEntry e = deliveries_.back();
  deliveries_.pop_back();
  Slot& s = slot(e.slot);
  --live_count_;
  now_ = static_cast<SimTime>(e.time);
  ++processed_;
  s.cb.invoke_and_reset();
  release_slot(e.slot);
}

bool Simulator::pop_next(SimTime limit) {
  if (deliveries_.empty()) return pop_one(limit);
  const auto td = static_cast<SimTime>(deliveries_.front().time);
  const SimTime te = peek_event_time();
  if (te < td) return pop_one(limit);  // strictly earlier regular event
  if (td > limit) return false;        // both lanes beyond the limit
  pop_delivery();                      // deliveries win ties (td <= te)
  return true;
}

void Simulator::run_until(SimTime t) {
  // The mode flag is re-checked on every pop: a callback may schedule the
  // run's FIRST delivery mid-loop, and the remainder of this call must then
  // interleave the delivery lane — deferring it to the next run_until call
  // would reorder the delivery past later same-call events (or lose it
  // entirely when this is the only call, as in a windowless run).
  while (!delivery_mode_ && pop_one(t)) {
  }
  if (delivery_mode_) {
    while (pop_next(t)) {
    }
  }
  if (t > now_) now_ = t;
}

void Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  constexpr SimTime kForever = std::numeric_limits<SimTime>::max();
  // Mode re-checked per pop, as in run_until.
  while (!delivery_mode_ && pop_one(kForever)) {
    if (++n > max_events) {
      throw std::runtime_error("Simulator::run_all: event budget exceeded");
    }
  }
  if (delivery_mode_) {
    while (pop_next(kForever)) {
      if (++n > max_events) {
        throw std::runtime_error("Simulator::run_all: event budget exceeded");
      }
    }
  }
}

Periodic::Periodic(Simulator& simulator, SimTime start, SimDuration period,
                   std::function<void()> fn)
    : state_(std::make_shared<State>()) {
  assert(period > 0);
  state_->simulator = &simulator;
  state_->period = period;
  state_->fn = std::move(fn);
  state_->alive = true;
  arm(state_, start < simulator.now() ? simulator.now() : start);
}

Periodic::~Periodic() { stop(); }

void Periodic::stop() {
  if (state_) state_->alive = false;
}

void Periodic::arm(const std::shared_ptr<State>& state, SimTime at) {
  state->simulator->schedule_at(at, [state, at] {
    if (!state->alive) return;
    state->fn();
    if (state->alive) arm(state, at + state->period);
  });
}

}  // namespace eden::sim
