#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace eden::sim {

EventId Simulator::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{t, id});
  live_.emplace(id, std::move(cb));
  return id;
}

EventId Simulator::schedule_after(SimDuration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) { return live_.erase(id) > 0; }

bool Simulator::pop_one(SimTime limit) {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    auto it = live_.find(top.id);
    if (it == live_.end()) {
      heap_.pop();  // cancelled tombstone
      continue;
    }
    if (top.time > limit) return false;
    heap_.pop();
    Callback cb = std::move(it->second);
    live_.erase(it);
    now_ = top.time;
    ++processed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  while (pop_one(t)) {
  }
  if (t > now_) now_ = t;
}

void Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (pop_one(std::numeric_limits<SimTime>::max())) {
    if (++n > max_events) {
      throw std::runtime_error("Simulator::run_all: event budget exceeded");
    }
  }
}

Periodic::Periodic(Simulator& simulator, SimTime start, SimDuration period,
                   std::function<void()> fn)
    : state_(std::make_shared<State>()) {
  assert(period > 0);
  state_->simulator = &simulator;
  state_->period = period;
  state_->fn = std::move(fn);
  state_->alive = true;
  arm(state_, start < simulator.now() ? simulator.now() : start);
}

Periodic::~Periodic() { stop(); }

void Periodic::stop() {
  if (state_) state_->alive = false;
}

void Periodic::arm(const std::shared_ptr<State>& state, SimTime at) {
  state->simulator->schedule_at(at, [state, at] {
    if (!state->alive) return;
    state->fn();
    if (state->alive) arm(state, at + state->period);
  });
}

}  // namespace eden::sim
