// Replaceable operator new/delete with a relaxed atomic counter. Linked
// into bench executables only (see bench/CMakeLists.txt); everything else
// keeps the stock allocator. Counting happens on allocation — deletes are
// forwarded untouched so the hook never changes lifetime behavior.
#include "alloc_hook.h"

#include <execinfo.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_trace{false};

// Dump the caller's backtrace with backtrace_symbols_fd (which writes
// straight to the fd without allocating). A thread-local guard breaks the
// recursion when the unwinder itself allocates on its first use.
void trace_allocation() {
  thread_local bool in_trace = false;
  if (in_trace) return;
  in_trace = true;
  void* frames[16];
  const int depth = backtrace(frames, 16);
  backtrace_symbols_fd(frames, depth, 2);
  static const char kSep[] = "----\n";
  (void)!::write(2, kSep, sizeof(kSep) - 1);
  in_trace = false;
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_allocation();
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_allocation();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
}

}  // namespace

namespace eden::bench {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void set_allocation_trace(bool enabled) {
  g_trace.store(enabled, std::memory_order_relaxed);
}

}  // namespace eden::bench

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
