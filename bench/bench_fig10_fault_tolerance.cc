// Fig 10: fault tolerance under churn.
//   (a) latency around failures: proactive (warm backup) vs reactive
//       (re-connect) connections
//   (b) number of failures experienced by all users vs TopN — drops
//       sharply at TopN=2, reaches 0 by TopN=3
#include <cstdio>

#include "bench_churn_common.h"
#include "common/table.h"

using namespace eden;

int main() {
  bench::print_header(
      "Fig 10 — fault tolerance under churn",
      "(a) proactive backup switching avoids the reactive downtime spike; "
      "(b) failures drop sharply at TopN=2 and reach ~0 by TopN=3");

  print_section("(a) proactive vs reactive connections (TopN = 3)");
  {
    Table table({"mode", "p99 latency (ms)", "max frame gap (ms)",
                 "failovers", "hard failures"});
    for (const bool proactive : {true, false}) {
      auto world = bench::run_churn_world(3, proactive, /*seed=*/2030);
      Samples all;
      SimTime max_gap = 0;
      std::uint64_t failovers = 0;
      std::uint64_t hard = 0;
      for (const auto* c : world.clients) {
        SimTime prev = 0;
        for (const auto& [t, v] : c->latency_series().points()) {
          all.add(v);
          if (prev != 0) max_gap = std::max(max_gap, t - prev);
          prev = t;
        }
        failovers += c->stats().failovers;
        hard += c->stats().hard_failures;
      }
      table.add_row({proactive ? "proactive (ours)" : "reactive re-connect",
                     Table::num(all.percentile(99)),
                     Table::num(to_ms(max_gap), 0),
                     Table::integer(static_cast<long long>(failovers)),
                     Table::integer(static_cast<long long>(hard))});
    }
    table.print();
  }

  print_section("(b) failures vs TopN (proactive)");
  {
    Table table({"TopN", "backup list size", "hard failures (re-connects)",
                 "failovers absorbed"});
    // Churn timelines chosen to keep at least a few nodes alive throughout,
    // matching the paper's Fig 8 staircase (their run never drained the
    // node population).
    const std::uint64_t seeds[] = {2030, 2042, 2047};
    for (int top_n = 1; top_n <= 5; ++top_n) {
      double hard = 0;
      double failovers = 0;
      for (const std::uint64_t seed : seeds) {
        auto world = bench::run_churn_world(top_n, true, seed);
        for (const auto* c : world.clients) {
          hard += static_cast<double>(c->stats().hard_failures);
          failovers += static_cast<double>(c->stats().failovers);
        }
      }
      table.add_row({Table::integer(top_n), Table::integer(top_n - 1),
                     Table::num(hard / std::size(seeds), 1),
                     Table::num(failovers / std::size(seeds), 1)});
    }
    table.print();
  }

  std::printf(
      "\n(paper Fig 10: TopN=1 means zero backups — every node departure is "
      "a visible failure; TopN=2 removes most; TopN>=3 reaches 0 in their "
      "churn model)\n");
  return 0;
}
