// Journal append/commit throughput: records/s and MB/s across group-commit
// batch sizes, for both storage backends. The batch-size sweep shows what
// group commit buys: one flush (and, on the file backend, one fsync)
// amortized over every record that landed inside the window.
//
//   bench_journal [--records N] [--fsync]
#include <chrono>
#include <cstdio>
#include <string>

#include "common/table.h"
#include "journal/backend.h"
#include "journal/manager_journal.h"
#include "net/protocol.h"
#include "tools/flags.h"

using namespace eden;

namespace {

net::NodeStatus sample_status(std::uint32_t id) {
  net::NodeStatus status;
  status.node = NodeId{id};
  status.geohash = "9zvxg";
  status.cores = 4;
  status.base_frame_ms = 25.0;
  status.attached_users = 3;
  status.utilization = 0.42;
  status.network_tag = "isp-a";
  status.endpoint = "192.168.1.40:7100";
  status.queue_depth = 2;
  status.burst_credits = 18.5;
  status.p95_proc_ms = 31.0;
  return status;
}

struct Result {
  double wall_sec{0};
  double records_per_sec{0};
  double mb_per_sec{0};
  std::uint64_t batches{0};
};

// Stage `records` heartbeats in groups of `batch` and flush each group —
// the sim harness's deferred group commit, driven synchronously.
Result run(journal::StorageBackend& backend, std::size_t records,
           std::size_t batch) {
  journal::JournalOptions options;
  options.max_batch_records = batch;
  options.group_commit_interval = SimDuration{0};
  // No scheduler: with interval 0 the flush happens inside commit(); we
  // call commit once per `batch` staged records to model the group.
  journal::ManagerJournal journal(backend, nullptr, options);
  const net::NodeStatus status = sample_status(7);

  const auto start = std::chrono::steady_clock::now();
  SimTime now = 0;
  for (std::size_t i = 0; i < records; ++i) {
    journal.on_heartbeat(status, now);
    now += msec(1.0);
    if ((i + 1) % batch == 0) journal.commit(now);
  }
  journal.flush_now(now);
  const auto stop = std::chrono::steady_clock::now();

  Result result;
  result.wall_sec = std::chrono::duration<double>(stop - start).count();
  result.records_per_sec =
      static_cast<double>(records) / std::max(result.wall_sec, 1e-9);
  result.mb_per_sec = static_cast<double>(journal.stats().bytes) /
                      (1024.0 * 1024.0) / std::max(result.wall_sec, 1e-9);
  result.batches = journal.stats().batches;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  eden::tools::Flags flags(argc, argv,
                           "usage: bench_journal [--records N] [--fsync]");
  const std::size_t records =
      static_cast<std::size_t>(flags.integer("records", 200000));
  const bool fsync = flags.boolean("fsync", false);
  flags.check_unused();

  std::printf("journal group-commit throughput — %zu records/cell%s\n\n",
              records, fsync ? " (file backend fsyncs every commit)" : "");

  const std::size_t batch_sizes[] = {1, 8, 64, 256};
  Table table({"backend", "batch", "batches", "wall (ms)", "records/s",
               "MB/s"});
  for (const std::size_t batch : batch_sizes) {
    journal::MemoryBackend memory;
    const Result r = run(memory, records, batch);
    table.add_row({"memory", Table::num(static_cast<double>(batch), 0),
                   Table::num(static_cast<double>(r.batches), 0),
                   Table::num(r.wall_sec * 1000.0, 2),
                   Table::num(r.records_per_sec, 0),
                   Table::num(r.mb_per_sec, 1)});
  }
  const std::string path = "/tmp/bench_journal.edenlog";
  for (const std::size_t batch : batch_sizes) {
    std::remove(path.c_str());
    journal::FileBackend file(path, fsync);
    if (!file.ok()) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    const Result r = run(file, records, batch);
    table.add_row({fsync ? "file+fsync" : "file",
                   Table::num(static_cast<double>(batch), 0),
                   Table::num(static_cast<double>(r.batches), 0),
                   Table::num(r.wall_sec * 1000.0, 2),
                   Table::num(r.records_per_sec, 0),
                   Table::num(r.mb_per_sec, 1)});
  }
  std::remove(path.c_str());
  table.print();
  return 0;
}
