// Ablation studies for the client-side design choices DESIGN.md calls
// out: LO vs GO local policy, switch hysteresis margin, probing period
// (T_probing) and adaptive rate control. Each sweep holds the world fixed
// and varies one knob.
#include <cstdio>

#include "bench_churn_common.h"
#include "common/table.h"

using namespace eden;
using bench::Fleet;
using bench::Policy;

namespace {

// ---- (a) LO vs GO over the static emulation (Fig 6 world) ----
void ablate_local_policy() {
  print_section("(a) local selection policy: LO vs GO (15 users, 9 nodes)");
  Table table({"policy", "avg latency (ms)", "stddev across users (ms)",
               "worst user (ms)"});
  for (const auto policy :
       {client::LocalPolicy::kLocalOverhead, client::LocalPolicy::kGlobalOverhead}) {
    auto setup = harness::make_emulation_setup(2022, 15);
    auto& scenario = *setup.scenario;
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));

    std::vector<const TimeSeries*> series;
    std::vector<client::EdgeClient*> clients;
    for (int i = 0; i < 15; ++i) {
      client::ClientConfig config;
      config.top_n = 3;
      config.policy = policy;
      // Fixed rates keep contention high — the regime where the policies
      // differ (GO's degradation term only matters near capacity).
      config.app.adaptive_rate = false;
      config.app.max_fps = 15.0;
      auto& c = scenario.add_edge_client(setup.user_spots[i], config);
      setup.wire_client(c.id(), i);
      scenario.simulator().schedule_at(sec(2.0) + sec(10.0) * i,
                                       [&c] { c.start(); });
      series.push_back(&c.latency_series());
      clients.push_back(&c);
    }
    const SimTime end = sec(2.0) + sec(10.0) * 15 + sec(30.0);
    scenario.run_until(end);

    double worst = 0;
    for (const auto* s : series) {
      const auto w = s->window(end - sec(25), end);
      if (w.count()) worst = std::max(worst, w.mean());
    }
    table.add_row(
        {policy == client::LocalPolicy::kLocalOverhead ? "LO (local only)"
                                                       : "GO (paper default)",
         Table::num(harness::fleet_window(series, end - sec(25), end).mean()),
         Table::num(harness::fairness_stddev(series, end - sec(25), end)),
         Table::num(worst)});
  }
  table.print();
  std::printf(
      "expectation: GO trades a touch of individual greed for lower fleet "
      "average and better fairness (the paper's §IV-D argument)\n");
}

// ---- (b) switch-margin sweep under churn ----
void ablate_switch_margin() {
  print_section("(b) switch hysteresis margin under churn (TopN = 3)");
  Table table({"margin", "avg latency (ms)", "voluntary switches",
               "join conflicts"});
  for (const double margin : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    bench::ChurnWorldOptions options;
    options.client.top_n = 3;
    options.client.probing_period = sec(5.0);
    options.client.switch_margin = margin;
    auto world = bench::run_churn_world(options);
    std::uint64_t switches = 0;
    std::uint64_t conflicts = 0;
    for (const auto* c : world.clients) {
      switches += c->stats().switches;
      conflicts += c->stats().join_conflicts;
    }
    table.add_row({Table::num(margin, 2),
                   Table::num(harness::fleet_window(world.series(), sec(30),
                                                    sec(180))
                                  .mean()),
                   Table::integer(static_cast<long long>(switches)),
                   Table::integer(static_cast<long long>(conflicts))});
  }
  table.print();
  std::printf(
      "expectation: margin 0 (bare Algorithm 2) churns through switches; "
      "large margins stop reacting to genuinely better nodes\n");
}

// ---- (c) probing period sweep under churn ----
void ablate_probing_period() {
  print_section("(c) probing period T_probing under churn (TopN = 3)");
  Table table({"T_probing (s)", "avg latency (ms)", "probe requests",
               "failovers", "hard failures"});
  for (const double period : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    bench::ChurnWorldOptions options;
    options.client.top_n = 3;
    options.client.probing_period = sec(period);
    auto world = bench::run_churn_world(options);
    std::uint64_t probes = 0;
    std::uint64_t failovers = 0;
    std::uint64_t hard = 0;
    for (const auto* c : world.clients) {
      probes += c->stats().probes_sent;
      failovers += c->stats().failovers;
      hard += c->stats().hard_failures;
    }
    table.add_row({Table::num(period, 0),
                   Table::num(harness::fleet_window(world.series(), sec(30),
                                                    sec(180))
                                  .mean()),
                   Table::integer(static_cast<long long>(probes)),
                   Table::integer(static_cast<long long>(failovers)),
                   Table::integer(static_cast<long long>(hard))});
  }
  table.print();
  std::printf(
      "finding: probing cost scales ~1/T as §IV-E expects, but the latency "
      "optimum is interior (~5-10 s) — very frequent probing destabilises "
      "selection (re-selection storms), very rare probing leaves stale "
      "backup lists that turn departures into hard failures\n");
}

// ---- (d) adaptive rate control on an overloaded deployment ----
void ablate_adaptive_rate() {
  print_section("(d) adaptive rate control, overloaded world (15 users, 9 nodes)");
  Table table({"rate control", "avg latency (ms)", "avg fps at end",
               "frames failed"});
  for (const bool adaptive : {true, false}) {
    auto setup = harness::make_emulation_setup(2022, 15);
    auto& scenario = *setup.scenario;
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));
    std::vector<const TimeSeries*> series;
    std::vector<client::EdgeClient*> clients;
    for (int i = 0; i < 15; ++i) {
      client::ClientConfig config;
      config.top_n = 3;
      config.app.adaptive_rate = adaptive;
      auto& c = scenario.add_edge_client(setup.user_spots[i], config);
      setup.wire_client(c.id(), i);
      scenario.simulator().schedule_at(sec(2.0) + sec(5.0) * i,
                                       [&c] { c.start(); });
      series.push_back(&c.latency_series());
      clients.push_back(&c);
    }
    const SimTime end = sec(2.0) + sec(5.0) * 15 + sec(30.0);
    scenario.run_until(end);

    double fps = 0;
    std::uint64_t failed = 0;
    for (const auto* c : clients) {
      fps += c->fps();
      failed += c->stats().frames_failed;
    }
    table.add_row(
        {adaptive ? "adaptive (paper)" : "fixed 20 FPS",
         Table::num(harness::fleet_window(series, end - sec(25), end).mean()),
         Table::num(fps / 15.0), Table::integer(static_cast<long long>(failed))});
  }
  table.print();
  std::printf(
      "expectation: without backoff, saturated nodes shed frames and "
      "latency balloons; with it, rates settle near capacity\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Ablations — client-side design choices",
      "each knob isolated on a fixed world: GO beats LO on fairness; "
      "moderate hysteresis beats none; smaller T_probing buys robustness "
      "with linear probe cost; adaptive rates absorb overload");
  ablate_local_policy();
  ablate_switch_margin();
  ablate_probing_period();
  ablate_adaptive_rate();
  return 0;
}
