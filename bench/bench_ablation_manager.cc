// Ablation studies for the manager-side (step 1) design choices: the
// network-affiliation hint, the TopN candidate-list quality, and the
// reliability (reputation) extension under different churn hazard shapes.
#include <cstdio>

#include "bench_common.h"
#include "bench_churn_common.h"
#include "common/table.h"

using namespace eden;

namespace {

// ---- (a) network-affiliation hint in the real-world deployment ----
void ablate_affinity() {
  print_section("(a) network-affiliation weight (real-world world, 10 users)");
  Table table({"w_affinity", "avg latency (ms)", "users on same-ISP node"});
  for (const double weight : {0.0, 0.8}) {
    auto setup = harness::make_realworld_setup(2022);
    auto& scenario = *setup.scenario;
    // Patch the manager policy before any discovery happens.
    manager::GlobalPolicy policy;
    policy.w_affinity = weight;
    scenario.central_manager().set_policy(policy);
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));

    std::vector<const TimeSeries*> series;
    std::vector<client::EdgeClient*> clients;
    for (int i = 0; i < 10; ++i) {
      client::ClientConfig config;
      config.top_n = 3;
      auto& c = scenario.add_edge_client(setup.user_spots[i], config);
      scenario.simulator().schedule_at(sec(2.0 + 3.0 * i), [&c] { c.start(); });
      series.push_back(&c.latency_series());
      clients.push_back(&c);
    }
    const SimTime end = sec(60.0);
    scenario.run_until(end);

    int same_isp = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const auto current = clients[i]->current_node();
      if (!current) continue;
      const auto index = scenario.node_index(*current);
      if (index && scenario.node_spec(*index).network_tag ==
                       setup.user_spots[i].network_tag) {
        ++same_isp;
      }
    }
    table.add_row(
        {Table::num(weight, 1),
         Table::num(harness::fleet_window(series, end - sec(20), end).mean()),
         Table::integer(same_isp) + "/10"});
  }
  table.print();
  std::printf(
      "expectation (§IV-B): the affiliation hint steers candidate lists to "
      "well-peered same-ISP volunteers the manager cannot otherwise see\n");
}

// ---- (b) reliability weighting under two churn hazard shapes ----
void ablate_reliability() {
  print_section("(b) reliability (uptime reputation) weighting under churn");
  Table table({"lifetime hazard", "w_reliability", "failovers", "hard failures",
               "avg latency (ms)"});
  struct Shape {
    const char* label;
    double shape;
  };
  // Weibull shape < 1: most departures happen young, survivors persist
  // (the volunteer-computing regime of [33]); shape > 1: aging machines —
  // uptime is then anti-predictive.
  const Shape shapes[] = {{"decreasing (k=0.7)", 0.7}, {"increasing (k=1.5)", 1.5}};
  for (const auto& hazard : shapes) {
    for (const double weight : {0.0, 2.0}) {
      double failovers = 0;
      double hard = 0;
      StreamingStats latency;
      for (const std::uint64_t seed : {2030ull, 2042ull, 2047ull}) {
        bench::ChurnWorldOptions options;
        options.seed = seed;
        options.client.top_n = 3;
        options.client.probing_period = sec(5.0);
        options.lifetime_shape = hazard.shape;
        options.manager_policy.w_reliability = weight;
        auto world = bench::run_churn_world(options);
        for (const auto* c : world.clients) {
          failovers += static_cast<double>(c->stats().failovers);
          hard += static_cast<double>(c->stats().hard_failures);
        }
        latency.merge(harness::fleet_window(world.series(), sec(30), sec(180)));
      }
      table.add_row({hazard.label, Table::num(weight, 1),
                     Table::num(failovers / 3.0, 1), Table::num(hard / 3.0, 1),
                     Table::num(latency.mean())});
    }
  }
  table.print();
  std::printf(
      "finding: uptime-reputation moves failovers by <10%% in either hazard "
      "regime — with single-shot volunteers the uptime signal is weak; the "
      "reputation systems the paper cites ([33]) rely on nodes returning "
      "across sessions, which a 3-minute churn window cannot exhibit\n");
}

// ---- (c) TopN candidate-list quality in the static real-world setup ----
void ablate_topn_static() {
  print_section("(c) TopN in the static real-world world (no churn, 12 users)");
  Table table({"TopN", "avg latency (ms)", "probes"});
  for (const int top_n : {1, 2, 3, 5, 8}) {
    auto setup = harness::make_realworld_setup(2022);
    auto& scenario = *setup.scenario;
    harness::start_all_nodes(scenario);
    scenario.run_until(sec(2.0));
    std::vector<const TimeSeries*> series;
    std::vector<client::EdgeClient*> clients;
    for (int i = 0; i < 12; ++i) {
      client::ClientConfig config;
      config.top_n = top_n;
      auto& c = scenario.add_edge_client(setup.user_spots[i], config);
      scenario.simulator().schedule_at(sec(2.0 + 3.0 * i), [&c] { c.start(); });
      series.push_back(&c.latency_series());
      clients.push_back(&c);
    }
    const SimTime end = sec(70.0);
    scenario.run_until(end);
    std::uint64_t probes = 0;
    for (const auto* c : clients) probes += c->stats().probes_sent;
    table.add_row(
        {Table::integer(top_n),
         Table::num(harness::fleet_window(series, end - sec(20), end).mean()),
         Table::integer(static_cast<long long>(probes))});
  }
  table.print();
  std::printf(
      "expectation: the manager cannot see per-pair peering, so a larger "
      "candidate list lets client probing find hidden gems — diminishing "
      "returns past TopN~3-5 (the paper's Fig 9c conclusion)\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Ablations — manager-side (step 1) design choices",
      "affiliation hint finds well-peered volunteers; uptime reputation "
      "helps iff the churn hazard decreases with age; TopN trades probing "
      "cost for candidate quality");
  ablate_affinity();
  ablate_reliability();
  ablate_topn_static();
  return 0;
}
