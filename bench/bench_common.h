// Shared machinery for the experiment benches: creating a fleet of clients
// under one of the paper's five selection policies (§V-B) over a Scenario,
// and aggregating their latency series.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/assigners.h"
#include "baselines/static_client.h"
#include "client/edge_client.h"
#include "harness/experiments.h"
#include "harness/metrics.h"
#include "harness/scenario.h"

namespace eden::bench {

enum class Policy {
  kClientCentric,  // our approach (EdgeClient, 2-step selection)
  kGeoProximity,   // closest node geographically
  kResourceAware,  // weighted round robin over all edge nodes
  kDedicatedOnly,  // WRR over the dedicated (Local Zone) nodes only
  kCloud,          // closest cloud
};

inline const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kClientCentric: return "Client-centric";
    case Policy::kGeoProximity: return "Geo-proximity";
    case Policy::kResourceAware: return "Resource-aware";
    case Policy::kDedicatedOnly: return "Dedicated-only";
    case Policy::kCloud: return "Closest cloud";
  }
  return "?";
}

struct FleetOptions {
  int top_n{3};
  SimDuration probing_period{sec(5.0)};
  bool adaptive_rate{true};
  double max_fps{20.0};
  bool proactive{true};
};

// A set of application users running one policy inside a Scenario. For the
// client-centric policy users are EdgeClients; baselines get StaticClients
// with a centrally-computed assignment at join time.
class Fleet {
 public:
  Fleet(harness::Scenario& scenario, Policy policy, FleetOptions options = {})
      : scenario_(&scenario), policy_(policy), options_(options) {
    const auto infos = scenario.node_infos();
    switch (policy) {
      case Policy::kClientCentric:
        break;
      case Policy::kGeoProximity:
        assigner_ = std::make_unique<baselines::GeoProximityAssigner>(infos);
        break;
      case Policy::kResourceAware:
        assigner_ =
            std::make_unique<baselines::WeightedRoundRobinAssigner>(infos);
        break;
      case Policy::kDedicatedOnly:
        assigner_ = std::make_unique<baselines::WeightedRoundRobinAssigner>(
            infos, /*dedicated_only=*/true);
        break;
      case Policy::kCloud:
        assigner_ = std::make_unique<baselines::ClosestCloudAssigner>(infos);
        break;
    }
  }

  // Create user `index` at `spot`, starting at `join_at`. `wire` (optional)
  // installs pairwise RTTs for matrix networks before the client starts.
  void add_user(const harness::ClientSpot& spot, SimTime join_at,
                std::function<void(HostId, std::size_t)> wire = {}) {
    const std::size_t index = users_++;
    workload::AppProfile app;
    app.adaptive_rate = options_.adaptive_rate;
    app.max_fps = options_.max_fps;

    if (policy_ == Policy::kClientCentric) {
      client::ClientConfig config;
      config.top_n = options_.top_n;
      config.probing_period = options_.probing_period;
      config.proactive_connections = options_.proactive;
      config.app = app;
      auto& c = scenario_->add_edge_client(spot, config);
      if (wire) wire(c.id(), index);
      scenario_->simulator().schedule_at(join_at, [&c] { c.start(); });
      edge_clients_.push_back(&c);
    } else {
      auto& c = scenario_->add_static_client(spot, app);
      if (wire) wire(c.id(), index);
      const auto target = assigner_ ? assigner_->assign(spot.position)
                                    : std::nullopt;
      if (target) {
        scenario_->simulator().schedule_at(
            join_at, [&c, node = *target] { c.start(node); });
      }
      static_clients_.push_back(&c);
    }
  }

  [[nodiscard]] std::vector<const TimeSeries*> series() const {
    std::vector<const TimeSeries*> out;
    for (const auto* c : edge_clients_) out.push_back(&c->latency_series());
    for (const auto* c : static_clients_) out.push_back(&c->latency_series());
    return out;
  }

  [[nodiscard]] double window_mean(SimTime begin, SimTime end) const {
    return harness::fleet_window(series(), begin, end).mean();
  }

  [[nodiscard]] double fairness_stddev(SimTime begin, SimTime end) const {
    return harness::fairness_stddev(series(), begin, end);
  }

  [[nodiscard]] const std::vector<client::EdgeClient*>& edge_clients() const {
    return edge_clients_;
  }
  [[nodiscard]] const std::vector<baselines::StaticClient*>& static_clients()
      const {
    return static_clients_;
  }

  [[nodiscard]] std::uint64_t total_probes() const {
    std::uint64_t total = 0;
    for (const auto* c : edge_clients_) total += c->stats().probes_sent;
    return total;
  }
  [[nodiscard]] std::uint64_t total_hard_failures() const {
    std::uint64_t total = 0;
    for (const auto* c : edge_clients_) total += c->stats().hard_failures;
    return total;
  }
  [[nodiscard]] std::uint64_t total_failovers() const {
    std::uint64_t total = 0;
    for (const auto* c : edge_clients_) total += c->stats().failovers;
    return total;
  }

 private:
  harness::Scenario* scenario_;
  Policy policy_;
  FleetOptions options_;
  std::unique_ptr<baselines::Assigner> assigner_;
  std::size_t users_{0};
  std::vector<client::EdgeClient*> edge_clients_;
  std::vector<baselines::StaticClient*> static_clients_;
};

// Sum of test-workload invocations over every node in the scenario.
inline std::uint64_t total_test_invocations(harness::Scenario& scenario) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    total += scenario.node(i).stats().test_invocations;
  }
  return total;
}

// Shared `--trace-out PATH` flag: when present, benches enable scenario
// observability and dump the protocol trace as JSONL for eden_trace.
// Returns empty when the flag is absent.
inline std::string trace_out_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) return arg.substr(12);
    if (arg == "--trace-out" && i + 1 < argc) return argv[i + 1];
  }
  return {};
}

inline void write_trace(harness::Scenario& scenario, const std::string& path) {
  if (path.empty()) return;
  const auto* recorder = scenario.trace_recorder();
  if (recorder == nullptr) return;
  if (recorder->write_jsonl(path)) {
    std::printf("\ntrace: %zu events -> %s\n", recorder->size(), path.c_str());
  } else {
    std::fprintf(stderr, "trace: failed to write %s\n", path.c_str());
  }
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("EDEN reproduction — %s\n", experiment);
  std::printf("paper-shape: %s\n", claim);
  std::printf("==============================================================\n");
}

}  // namespace eden::bench
