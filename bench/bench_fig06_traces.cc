// Fig 6: per-user latency traces in the AWS emulation (9 static
// heterogeneous nodes, 15 users joining every 10 s) for (a) locality-based,
// (b) resource-aware and (c) client-centric selection.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace eden;
using bench::Fleet;
using bench::Policy;

namespace {

constexpr SimDuration kJoinInterval = sec(10.0);
constexpr int kUsers = 15;
constexpr SimTime kEnd = sec(2.0) + kJoinInterval * kUsers + sec(10.0);

struct RunResult {
  std::vector<std::pair<SimTime, double>> fleet_trace;
  std::vector<double> final_user_means;  // per user, last 20 s
  double worst_user{0};
  int users_above_150ms{0};
};

RunResult run_policy(Policy policy) {
  auto setup = harness::make_emulation_setup(/*seed=*/2022, kUsers);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  Fleet fleet(scenario, policy);
  for (int i = 0; i < kUsers; ++i) {
    fleet.add_user(setup.user_spots[i], sec(2.0) + kJoinInterval * i,
                   [&setup](HostId host, std::size_t index) {
                     setup.wire_client(host, index);
                   });
  }
  scenario.run_until(kEnd);

  RunResult result;
  result.fleet_trace =
      harness::fleet_trace(fleet.series(), 0, kEnd, sec(10.0));
  for (const auto* series : fleet.series()) {
    const auto window = series->window(kEnd - sec(20.0), kEnd);
    const double mean = window.count() ? window.mean() : 0.0;
    result.final_user_means.push_back(mean);
    result.worst_user = std::max(result.worst_user, mean);
    if (mean > 150.0) ++result.users_above_150ms;
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 6 — per-user traces, emulation (15 users join every 10 s)",
      "locality overloads popular nearby nodes (users above 150 ms); "
      "resource-aware balances load but ignores network heterogeneity; "
      "client-centric keeps every user low");

  const Policy policies[] = {Policy::kGeoProximity, Policy::kResourceAware,
                             Policy::kClientCentric};
  std::vector<RunResult> results;
  for (const Policy p : policies) results.push_back(run_policy(p));

  print_section("Fleet-average latency trace (ms per 10 s bucket)");
  Table trace({"t (s)", "(a) locality", "(b) resource-aware",
               "(c) client-centric"});
  for (std::size_t i = 0; i < results[0].fleet_trace.size(); ++i) {
    auto fmt = [&](const RunResult& r) {
      const double v =
          i < r.fleet_trace.size() ? r.fleet_trace[i].second : 0.0;
      return v != v ? std::string("-") : Table::num(v);
    };
    trace.add_row({Table::num(to_sec(results[0].fleet_trace[i].first), 0),
                   fmt(results[0]), fmt(results[1]), fmt(results[2])});
  }
  trace.print();

  print_section("Per-user steady-state latency (ms, final 20 s)");
  Table final_table({"user", "(a) locality", "(b) resource-aware",
                     "(c) client-centric"});
  for (int u = 0; u < kUsers; ++u) {
    final_table.add_row({"user-" + std::to_string(u),
                         Table::num(results[0].final_user_means[u]),
                         Table::num(results[1].final_user_means[u]),
                         Table::num(results[2].final_user_means[u])});
  }
  final_table.print();

  print_section("Summary");
  Table summary({"method", "worst user (ms)", "#users > 150 ms"});
  const char* names[] = {"(a) locality", "(b) resource-aware",
                         "(c) client-centric"};
  for (int p = 0; p < 3; ++p) {
    summary.add_row({names[p], Table::num(results[p].worst_user),
                     Table::integer(results[p].users_above_150ms)});
  }
  summary.print();

  std::printf(
      "\n(paper Fig 6: a few locality users exceed 150 ms due to local "
      "overload; client-centric assigns all users a low-latency node and "
      "rebalances dynamically)\n");
  return 0;
}
