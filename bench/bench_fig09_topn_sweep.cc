// Fig 9: influence of TopN (1..5) on the churn experiment:
//   (a) total probing requests sent by all users — linear in TopN
//   (b) test-workload invocations on the nodes — grows much slower
//       (probes hit the what-if cache)
//   (c) average latency over 60-120 s — roughly flat, TopN=3 about best
//   (d) latency stddev across users (fairness) — improves with TopN
#include <cstdio>

#include "bench_churn_common.h"
#include "common/table.h"

using namespace eden;

int main() {
  bench::print_header(
      "Fig 9 — TopN sweep over the churn experiment",
      "(a) probes linear in TopN; (b) test-workload invocations sub-linear; "
      "(c) latency flat, TopN=3 about best; (d) fairness improves with TopN");

  Table table({"TopN", "(a) probe requests", "(b) test invocations",
               "(c) avg latency 60-120s (ms)", "(d) stddev across users (ms)"});

  // Average over several churn timelines: a single 3-minute run is noisy.
  // Churn timelines chosen to keep at least a few nodes alive throughout
  // (see bench_fig10): a drained population measures nothing useful.
  const std::uint64_t seeds[] = {2030, 2042, 2047};
  std::vector<double> probes;
  std::vector<double> invocations;
  for (int top_n = 1; top_n <= 5; ++top_n) {
    double total_probes = 0;
    double tests = 0;
    StreamingStats latency;
    StreamingStats fairness;
    for (const std::uint64_t seed : seeds) {
      auto world = bench::run_churn_world(top_n, /*proactive=*/true, seed);
      for (const auto* c : world.clients) {
        total_probes += static_cast<double>(c->stats().probes_sent);
      }
      tests += static_cast<double>(bench::total_test_invocations(*world.scenario));
      latency.merge(harness::fleet_window(world.series(), sec(60), sec(120)));
      fairness.add(harness::fairness_stddev(world.series(), sec(60), sec(120)));
    }
    total_probes /= std::size(seeds);
    tests /= std::size(seeds);

    probes.push_back(total_probes);
    invocations.push_back(tests);
    table.add_row({Table::integer(top_n), Table::num(total_probes, 0),
                   Table::num(tests, 0), Table::num(latency.mean()),
                   Table::num(fairness.mean())});
  }
  table.print();

  print_section("Scaling check");
  const double probe_ratio =
      static_cast<double>(probes.back()) / static_cast<double>(probes.front());
  const double test_ratio = static_cast<double>(invocations.back()) /
                            static_cast<double>(invocations.front());
  std::printf(
      "probe requests grew %.1fx from TopN=1 to TopN=5 (paper: ~5x, linear)\n"
      "test-workload invocations grew %.1fx (paper: much smaller than the "
      "probe growth — probing hits the cached what-if value)\n",
      probe_ratio, test_ratio);
  return 0;
}
