// Curated overload figure: a flash crowd lands on one geohash cell of
// small burstable volunteers, with and without load-feedback phase
// switching (ScenarioConfig::load_feedback). With feedback on, the manager
// learns about the overload from heartbeat telemetry, steers discovery
// away, fast-fails shed frames and hints attached clients to re-discover —
// so the crowd drains onto the Local Zone / cloud fallbacks instead of
// piling onto throttled nodes. The figure reports burst-window p95 latency
// and total completed frames for both modes on the same seed.
//
// Flags:
//   --smoke            quarter-scale run for CI (tools/check.sh)
//   --assert-improves  exit nonzero unless feedback-on beats feedback-off
//                      on burst p95 with frames_ok identical-or-better
//   --trace-out PATH   dump the feedback-on run's protocol trace (JSONL)
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "harness/parallel_runner.h"

using namespace eden;

namespace {

struct Shape {
  int volunteers{4};        // burstable nodes in the hot cell
  int residents{4};         // clients attached before the crowd
  int crowd{16};            // flash-crowd clients
  SimTime crowd_at{sec(20.0)};
  SimDuration crowd_stagger{msec(250.0)};
  SimTime horizon{sec(90.0)};
  // Burst window for the p95: opens once the crowd is fully joined and
  // closes before the horizon tail.
  SimTime window_begin{sec(25.0)};
  SimTime window_end{sec(80.0)};
  // Credit balance each volunteer starts with; the smoke shape shrinks it
  // so saturation still arrives inside the shorter horizon.
  double volunteer_credits{5.0};
};

Shape smoke_shape() {
  // Quarter the wall-clock but keep the cell saturated: fewer volunteers
  // must absorb a crowd that is only half smaller.
  Shape s;
  s.volunteers = 2;
  s.residents = 2;
  s.crowd = 12;
  s.crowd_at = sec(10.0);
  s.horizon = sec(45.0);
  s.window_begin = sec(14.0);
  s.window_end = sec(40.0);
  s.volunteer_credits = 2.0;
  return s;
}

struct RunResult {
  double p95_ms{0};
  double mean_ms{0};
  std::uint64_t frames_sent{0};
  std::uint64_t frames_ok{0};
  std::uint64_t frames_failed{0};
  std::uint64_t redisc_hints{0};
  std::uint64_t switches{0};
  std::uint64_t failovers{0};
  std::uint64_t overload_enters{0};
  std::uint64_t overload_exits{0};
  std::uint64_t cell_sheds{0};
  std::uint64_t frames_shed{0};  // node-side admission drops
};

client::ClientConfig crowd_client_config() {
  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(5.0);
  // Fixed-rate sources: adaptive rate would hide the overload by slowing
  // every sender down; the point of the figure is what happens when demand
  // does not yield.
  config.app.adaptive_rate = false;
  config.app.max_fps = 12.0;
  return config;
}

RunResult run_flash_crowd(const Shape& shape, bool feedback,
                          const std::string& trace_path) {
  harness::ScenarioConfig config;
  config.seed = 20220706;  // EDEN's ICDCS publication date
  config.load_feedback = feedback;
  config.trace = feedback && !trace_path.empty();
  harness::Scenario scenario(config);

  // The hot cell: small burstable volunteers around the Minneapolis
  // center, close to the crowd, with a credit balance a flash crowd burns
  // through in seconds.
  harness::NodeSpec volunteer;
  volunteer.tier = net::AccessTier::kCable;
  volunteer.cores = 2;
  volunteer.base_frame_ms = 30.0;
  volunteer.burstable = true;
  volunteer.burst_baseline = 0.35;
  volunteer.initial_credits_core_sec = shape.volunteer_credits;
  for (int i = 0; i < shape.volunteers; ++i) {
    volunteer.name = "volunteer-" + std::to_string(i);
    volunteer.position = {44.9778 + 0.004 * i, -93.2650 - 0.003 * i};
    scenario.add_node(volunteer);
  }

  // The shed targets: a dedicated Local Zone box a few ms out, and the
  // cloud region behind a fixed backbone penalty.
  harness::NodeSpec lz;
  lz.name = "local-zone";
  lz.position = {45.02, -93.18};
  lz.tier = net::AccessTier::kFiber;
  lz.cores = 8;
  lz.base_frame_ms = 15.0;
  lz.dedicated = true;
  lz.extra_rtt_ms = 6.0;
  scenario.add_node(lz);

  harness::NodeSpec cloud;
  cloud.name = "cloud-us-east-2";
  cloud.position = {39.9612, -82.9988};  // Columbus, OH
  cloud.tier = net::AccessTier::kFiber;
  cloud.cores = 16;
  cloud.base_frame_ms = 12.0;
  cloud.dedicated = true;
  cloud.is_cloud = true;
  cloud.extra_rtt_ms = 18.0;
  scenario.add_node(cloud);

  harness::start_all_nodes(scenario);

  const auto spot_at = [](int i, const char* prefix) {
    harness::ClientSpot spot;
    spot.name = std::string(prefix) + "-" + std::to_string(i);
    spot.position = {44.9778 + 0.002 * (i % 5), -93.2650 + 0.002 * (i % 7)};
    spot.tier = net::AccessTier::kCable;
    return spot;
  };

  std::vector<client::EdgeClient*> clients;
  for (int i = 0; i < shape.residents; ++i) {
    auto& c = scenario.add_edge_client(spot_at(i, "resident"),
                                       crowd_client_config());
    scenario.simulator().schedule_at(sec(2.0) + msec(100.0) * i,
                                     [&c] { c.start(); });
    clients.push_back(&c);
  }
  for (int i = 0; i < shape.crowd; ++i) {
    auto& c =
        scenario.add_edge_client(spot_at(i, "crowd"), crowd_client_config());
    scenario.simulator().schedule_at(shape.crowd_at + shape.crowd_stagger * i,
                                     [&c] { c.start(); });
    clients.push_back(&c);
  }

  scenario.run_until(shape.horizon);

  RunResult out;
  Samples window;
  for (const auto* c : clients) {
    const auto& stats = c->stats();
    out.frames_sent += stats.frames_sent;
    out.frames_ok += stats.frames_ok;
    out.frames_failed += stats.frames_failed;
    out.redisc_hints += stats.redisc_hints;
    out.switches += stats.switches;
    out.failovers += stats.failovers;
    for (const auto& [t, latency] : c->latency_series().points()) {
      if (t >= shape.window_begin && t < shape.window_end) window.add(latency);
    }
  }
  out.p95_ms = window.count() > 0 ? window.percentile(95.0) : 0.0;
  out.mean_ms = window.count() > 0 ? window.mean() : 0.0;
  const auto& mstats = scenario.central_manager().stats();
  out.overload_enters = mstats.overload_enters;
  out.overload_exits = mstats.overload_exits;
  out.cell_sheds = mstats.cell_sheds;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    out.frames_shed += scenario.node(i).stats().frames_shed;
  }
  if (config.trace) bench::write_trace(scenario, trace_path);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool assert_improves = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--assert-improves") == 0) assert_improves = true;
  }
  const std::string trace_path = bench::trace_out_path(argc, argv);
  const Shape shape = smoke ? smoke_shape() : Shape{};

  bench::print_header(
      "Flash crowd — load-feedback phase switching on vs off",
      "with feedback the manager steers the crowd onto the Local Zone / "
      "cloud: burst-window p95 drops, completed frames do not");
  std::printf(
      "shape: %d volunteers + LZ + cloud; %d residents, crowd of %d at "
      "t=%.0fs; burst window [%.0fs, %.0fs)%s\n",
      shape.volunteers, shape.residents, shape.crowd, to_sec(shape.crowd_at),
      to_sec(shape.window_begin), to_sec(shape.window_end),
      smoke ? " [smoke]" : "");

  // Two independent worlds, same seed, differing only in load_feedback.
  harness::ParallelRunner pool;
  std::vector<std::function<RunResult()>> jobs;
  jobs.emplace_back(
      [&] { return run_flash_crowd(shape, /*feedback=*/false, {}); });
  jobs.emplace_back(
      [&] { return run_flash_crowd(shape, /*feedback=*/true, trace_path); });
  const std::vector<RunResult> results = pool.map<RunResult>(std::move(jobs));
  const RunResult& off = results[0];
  const RunResult& on = results[1];

  print_section("Burst-window latency and frame accounting");
  Table table({"metric", "feedback off", "feedback on"});
  table.add_row({"p95 latency (ms)", Table::num(off.p95_ms),
                 Table::num(on.p95_ms)});
  table.add_row({"mean latency (ms)", Table::num(off.mean_ms),
                 Table::num(on.mean_ms)});
  table.add_row({"frames sent", Table::integer(off.frames_sent),
                 Table::integer(on.frames_sent)});
  table.add_row({"frames ok", Table::integer(off.frames_ok),
                 Table::integer(on.frames_ok)});
  table.add_row({"frames failed", Table::integer(off.frames_failed),
                 Table::integer(on.frames_failed)});
  table.add_row({"node-side sheds", Table::integer(off.frames_shed),
                 Table::integer(on.frames_shed)});
  table.print();

  print_section("Control-loop activity (feedback on)");
  Table loop({"overload enters", "overload exits", "cell sheds",
              "re-disc hints", "switches", "failovers"});
  loop.add_row({Table::integer(on.overload_enters),
                Table::integer(on.overload_exits),
                Table::integer(on.cell_sheds), Table::integer(on.redisc_hints),
                Table::integer(on.switches), Table::integer(on.failovers)});
  loop.print();

  const double reduction =
      off.p95_ms > 0 ? 100.0 * (1.0 - on.p95_ms / off.p95_ms) : 0.0;
  std::printf("\nburst p95: %.1f ms -> %.1f ms (%.1f%% reduction); "
              "frames ok: %llu -> %llu\n",
              off.p95_ms, on.p95_ms, reduction,
              static_cast<unsigned long long>(off.frames_ok),
              static_cast<unsigned long long>(on.frames_ok));

  if (assert_improves) {
    bool pass = true;
    if (!(on.p95_ms < off.p95_ms)) {
      std::fprintf(stderr, "FAIL: feedback-on p95 (%.1f ms) is not below "
                           "feedback-off (%.1f ms)\n", on.p95_ms, off.p95_ms);
      pass = false;
    }
    if (on.frames_ok < off.frames_ok) {
      std::fprintf(stderr, "FAIL: feedback-on completed fewer frames "
                           "(%llu < %llu)\n",
                   static_cast<unsigned long long>(on.frames_ok),
                   static_cast<unsigned long long>(off.frames_ok));
      pass = false;
    }
    if (on.overload_enters == 0 || on.redisc_hints == 0) {
      std::fprintf(stderr, "FAIL: control loop never engaged (enters=%llu, "
                           "hints=%llu)\n",
                   static_cast<unsigned long long>(on.overload_enters),
                   static_cast<unsigned long long>(on.redisc_hints));
      pass = false;
    }
    if (!pass) return 1;
    std::printf("assert-improves: OK\n");
  }
  return 0;
}
