// Fig 1: RTT measurements from 15 metro-area participants to (1) nearby
// volunteer edge nodes, (2) the AWS Local Zone, (3) the closest cloud
// region. Reproduced over the calibrated GeoNetwork model with jitter.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

using namespace eden;

int main() {
  bench::print_header(
      "Fig 1 — network measurements (volunteer vs Local Zone vs cloud)",
      "volunteer RTT < Local Zone RTT < closest-cloud RTT for every user");

  auto setup = harness::make_realworld_setup(/*seed=*/2022);
  auto& scenario = *setup.scenario;
  Rng rng = Rng(2022).fork("fig1-sampling");

  // Register the 15 participants as hosts (no clients needed, just RTTs).
  std::vector<HostId> users;
  for (const auto& spot : setup.user_spots) {
    client::ClientConfig config;
    config.send_frames = false;
    users.push_back(scenario.add_edge_client(spot, config).id());
  }

  const auto& model = scenario.network_model();
  constexpr int kSamples = 200;

  auto sample_rtt = [&](HostId user, NodeId node) {
    Samples samples;
    for (int i = 0; i < kSamples; ++i) {
      samples.add(2.0 * to_ms(model.sample_owd(user, node, rng)));
    }
    return samples;
  };

  Table table({"user", "best volunteer p50", "volunteer p90",
               "Local Zone p50", "Local Zone p90", "cloud p50", "cloud p90"});
  StreamingStats volunteer_p50s;
  StreamingStats lz_p50s;
  StreamingStats cloud_p50s;
  int ordering_holds = 0;

  for (std::size_t u = 0; u < users.size(); ++u) {
    // Best volunteer = the one with the lowest median RTT for this user.
    Samples best_volunteer;
    double best_median = 1e18;
    for (const auto v : setup.volunteers) {
      Samples s = sample_rtt(users[u], scenario.node_id(v));
      if (s.percentile(50) < best_median) {
        best_median = s.percentile(50);
        best_volunteer = std::move(s);
      }
    }
    Samples lz = sample_rtt(users[u], scenario.node_id(setup.dedicated[0]));
    Samples cloud = sample_rtt(users[u], scenario.node_id(setup.cloud));

    volunteer_p50s.add(best_volunteer.percentile(50));
    lz_p50s.add(lz.percentile(50));
    cloud_p50s.add(cloud.percentile(50));
    if (best_volunteer.percentile(50) < lz.percentile(50) &&
        lz.percentile(50) < cloud.percentile(50)) {
      ++ordering_holds;
    }

    table.add_row({setup.user_spots[u].name,
                   Table::num(best_volunteer.percentile(50)),
                   Table::num(best_volunteer.percentile(90)),
                   Table::num(lz.percentile(50)), Table::num(lz.percentile(90)),
                   Table::num(cloud.percentile(50)),
                   Table::num(cloud.percentile(90))});
  }
  table.print();

  print_section("Class averages (median RTT, ms)");
  Table avg({"class", "avg p50 (ms)"});
  avg.add_row({"volunteer edge (best of V1-V5)", Table::num(volunteer_p50s.mean())});
  avg.add_row({"AWS Local Zone (D6-D9)", Table::num(lz_p50s.mean())});
  avg.add_row({"closest cloud (us-east-2)", Table::num(cloud_p50s.mean())});
  avg.print();

  std::printf(
      "\nordering volunteer < LocalZone < cloud holds for %d/15 users\n"
      "(paper Fig 1: volunteer ~5-20 ms, Local Zone ~12-28 ms, cloud ~70-85 ms)\n",
      ordering_holds);
  return 0;
}
