// Fig 5 (+ Table II): real-world elasticity — average end-to-end latency
// as 15 users incrementally join, for the client-centric approach vs the
// four baselines. The paper reports 18-46% latency reduction at 15 users
// and the dedicated-only line crossing above the cloud line.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "common/table.h"
#include "harness/parallel_runner.h"

using namespace eden;
using bench::Fleet;
using bench::Policy;

namespace {

constexpr SimDuration kJoinInterval = sec(10.0);
constexpr SimDuration kWarmup = sec(2.0);
constexpr int kUsers = 15;

// Average fleet latency measured in the second half of each join interval
// (so user counts are stable within each window).
std::vector<double> run_policy(Policy policy) {
  auto setup = harness::make_realworld_setup(/*seed=*/2022);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(kWarmup);

  bench::FleetOptions options;
  options.top_n = 3;  // the paper's Fig 5 uses TopN = 3
  Fleet fleet(scenario, policy, options);
  for (int i = 0; i < kUsers; ++i) {
    fleet.add_user(setup.user_spots[i], kWarmup + kJoinInterval * i);
  }
  scenario.run_until(kWarmup + kJoinInterval * kUsers + sec(5.0));

  std::vector<double> means;
  for (int n = 1; n <= kUsers; ++n) {
    const SimTime window_end = kWarmup + kJoinInterval * n;
    const SimTime window_begin = window_end - kJoinInterval / 2;
    means.push_back(fleet.window_mean(window_begin, window_end));
  }
  return means;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 5 — average e2e latency vs number of users (real-world setup)",
      "client-centric is lowest throughout; 18-46% reduction vs baselines "
      "at 15 users; dedicated-only crosses above the cloud under overload");

  print_section("Table II node inventory (reproduced configuration)");
  {
    auto setup = harness::make_realworld_setup(2022);
    Table inv({"node", "cores", "frame (ms)", "class"});
    for (std::size_t i = 0; i < setup.scenario->node_count(); ++i) {
      const auto& spec = setup.scenario->node_spec(i);
      inv.add_row({spec.name, Table::integer(spec.cores),
                   Table::num(spec.base_frame_ms, 0),
                   spec.is_cloud       ? "cloud (us-east-2)"
                   : spec.dedicated    ? "dedicated (Local Zone, burstable)"
                                       : "volunteer"});
    }
    inv.print();
  }

  const Policy policies[] = {Policy::kClientCentric, Policy::kGeoProximity,
                             Policy::kResourceAware, Policy::kDedicatedOnly,
                             Policy::kCloud};
  // Each policy run owns a fresh world (simulator, network, RNG streams),
  // so the five runs fan out across a thread pool; results land by policy
  // index and are bitwise identical to running them one after another.
  harness::ParallelRunner pool;
  std::vector<std::function<std::vector<double>()>> jobs;
  for (const Policy policy : policies) {
    jobs.emplace_back([policy] { return run_policy(policy); });
  }
  const std::vector<std::vector<double>> results =
      pool.map<std::vector<double>>(std::move(jobs));

  print_section("Average e2e latency (ms) by user count");
  Table table({"#users", "Client-centric", "Geo-proximity", "Resource-aware",
               "Dedicated-only", "Closest cloud"});
  for (int n = 1; n <= kUsers; ++n) {
    std::vector<std::string> row{Table::integer(n)};
    for (const auto& series : results) row.push_back(Table::num(series[n - 1]));
    table.add_row(row);
  }
  table.print();

  print_section("Reduction achieved by client-centric at 15 users");
  Table reduction({"baseline", "latency (ms)", "ours (ms)", "reduction"});
  const double ours = results[0][kUsers - 1];
  for (std::size_t p = 1; p < results.size(); ++p) {
    const double base = results[p][kUsers - 1];
    reduction.add_row({bench::policy_name(policies[p]), Table::num(base),
                       Table::num(ours),
                       Table::num(100.0 * (1.0 - ours / base), 1) + "%"});
  }
  reduction.print();

  const double dedicated15 = results[3][kUsers - 1];
  const double cloud15 = results[4][kUsers - 1];
  std::printf(
      "\ndedicated-only at 15 users: %.1f ms %s closest cloud (%.1f ms)\n"
      "(paper: 18-46%% reduction vs baselines; dedicated-only worse than "
      "cloud at #users = 15)\n",
      dedicated15, dedicated15 > cloud15 ? ">" : "<=", cloud15);
  return 0;
}
