// Fig 8: average latency trace of 10 static users under high node churn
// (TopN = 3), together with the alive-node staircase. Latency steps down
// within seconds of node joins; node departures raise latency but never
// interrupt service.
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_churn_common.h"
#include "common/table.h"
#include "harness/metrics.h"
#include "harness/parallel_runner.h"

using namespace eden;

int main(int argc, char** argv) {
  bench::print_header(
      "Fig 8 — 10 static users under high node churn (TopN = 3)",
      "latency drops within seconds of node joins (dynamic load "
      "balancing); departures raise latency without service disruption");

  const std::string trace_out = bench::trace_out_path(argc, argv);
  auto world = bench::run_churn_world(/*top_n=*/3, /*proactive=*/true,
                                      /*seed=*/2030, sec(180.0), 10,
                                      /*trace=*/!trace_out.empty());

  print_section("Average latency + alive nodes per 5 s bucket");
  Table table({"t (s)", "avg latency (ms)", "alive nodes", "frames completed"});
  const auto trace =
      harness::fleet_trace(world.series(), 0, sec(180), sec(5.0));
  for (const auto& [t, latency] : trace) {
    const auto window = harness::fleet_window(world.series(), t, t + sec(5));
    table.add_row({Table::num(to_sec(t), 0),
                   std::isnan(latency) ? "-" : Table::num(latency),
                   Table::integer(world.schedule.alive_at(t + sec(2.5))),
                   Table::integer(static_cast<long long>(window.count()))});
  }
  table.print();

  print_section("Churn timeline");
  std::printf("total distinct nodes over the run: %zu (paper: 18)\n",
              world.schedule.total_nodes);
  std::printf("join events: ");
  for (const auto& e : world.schedule.events) {
    if (e.kind == churn::ChurnEventKind::kJoin) {
      std::printf("%.0fs ", to_sec(e.at));
    }
  }
  std::printf("\nleave events: ");
  for (const auto& e : world.schedule.events) {
    if (e.kind == churn::ChurnEventKind::kLeave) {
      std::printf("%.0fs ", to_sec(e.at));
    }
  }
  std::printf("\n");

  // Correlation check: buckets right after a join wave should not be worse
  // than the bucket before it.
  print_section("Service continuity");
  std::uint64_t total_frames = 0;
  std::uint64_t hard_failures = 0;
  for (const auto* c : world.clients) {
    total_frames += c->stats().frames_ok;
    hard_failures += c->stats().hard_failures;
  }
  std::printf(
      "frames completed: %llu, hard failures (re-connect events): %llu\n"
      "(paper Fig 8: average latency correlates inversely with alive-node "
      "count; no service downtime on leaves thanks to backup switching)\n",
      static_cast<unsigned long long>(total_frames),
      static_cast<unsigned long long>(hard_failures));

  // The single-seed trace above is one draw of the churn process; replay
  // the experiment across seeds to show the continuity result is not a
  // lucky timeline. Each replicate builds its own world, so the five runs
  // fan out across a thread pool and results are identical to running
  // them sequentially.
  print_section("Replicates across churn seeds (parallel)");
  struct Replicate {
    double mean_latency_ms{0};
    std::uint64_t frames{0};
    std::uint64_t hard_failures{0};
    obs::MetricsSnapshot metrics;
  };
  const bool traced = !trace_out.empty();
  const std::uint64_t replicate_seeds[] = {2030, 2031, 2032, 2033, 2034};
  harness::ParallelRunner pool;
  std::vector<std::function<Replicate()>> jobs;
  for (const std::uint64_t seed : replicate_seeds) {
    jobs.emplace_back([seed, traced] {
      auto replicate_world = bench::run_churn_world(
          /*top_n=*/3, /*proactive=*/true, seed, sec(180.0), 10, traced);
      Replicate r;
      r.mean_latency_ms =
          harness::fleet_window(replicate_world.series(), 0, sec(180)).mean();
      for (const auto* c : replicate_world.clients) {
        r.frames += c->stats().frames_ok;
        r.hard_failures += c->stats().hard_failures;
      }
      r.metrics = replicate_world.scenario->metrics_snapshot();
      return r;
    });
  }
  const std::vector<Replicate> replicates = pool.map<Replicate>(std::move(jobs));

  Table summary({"seed", "mean latency (ms)", "frames", "hard failures"});
  for (std::size_t i = 0; i < replicates.size(); ++i) {
    summary.add_row(
        {Table::integer(static_cast<long long>(replicate_seeds[i])),
         Table::num(replicates[i].mean_latency_ms),
         Table::integer(static_cast<long long>(replicates[i].frames)),
         Table::integer(static_cast<long long>(replicates[i].hard_failures))});
  }
  summary.print();
  std::printf(
      "(service continuity holds across replicates: frames keep completing "
      "under every churn timeline, with hard failures staying rare)\n");

  if (traced) {
    // Per-replicate snapshots merge into one fleet-wide view — identical
    // regardless of how the thread pool scheduled the replicates.
    print_section("Merged metrics across replicates");
    obs::MetricsSnapshot merged;
    for (const auto& r : replicates) merged.merge(r.metrics);
    std::printf("%s\n", merged.to_json().c_str());
    bench::write_trace(*world.scenario, trace_out);
  }
  return 0;
}
