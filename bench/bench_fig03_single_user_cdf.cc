// Fig 3: CDF of end-to-end latency from one user to four edge servers
// (V1, V2, V4, D6) measured separately. Well-connected volunteers beat the
// Local Zone instance end-to-end despite its dedicated hardware.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace eden;

namespace {

// Stream 60 s of frames from a fresh copy of the world to one node and
// collect the latency distribution.
Samples measure_node(std::size_t node_index, const char* /*name*/) {
  auto setup = harness::make_realworld_setup(/*seed=*/2022);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  workload::AppProfile app;
  app.adaptive_rate = false;  // fixed 20 fps, like the paper's probe user
  auto& user = scenario.add_static_client(setup.user_spots[0], app);
  user.start(scenario.node_id(node_index));
  scenario.run_until(sec(62.0));
  return user.latency_samples();
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 3 — single-user end-to-end latency CDF to 4 edge servers",
      "nearby volunteers (V1, V2) deliver lower e2e latency than the Local "
      "Zone node (D6); a weak volunteer (V4) is worse");

  auto setup = harness::make_realworld_setup(2022);
  struct Target {
    const char* name;
    std::size_t index;
  };
  const Target targets[] = {
      {"V1", setup.volunteers[0]},
      {"V2", setup.volunteers[1]},
      {"V4", setup.volunteers[3]},
      {"D6", setup.dedicated[0]},
  };

  Table table({"node", "p10", "p25", "p50", "p75", "p90", "p99", "mean"});
  std::vector<std::pair<const char*, Samples>> results;
  for (const auto& target : targets) {
    Samples s = measure_node(target.index, target.name);
    table.add_row({target.name, Table::num(s.percentile(10)),
                   Table::num(s.percentile(25)), Table::num(s.percentile(50)),
                   Table::num(s.percentile(75)), Table::num(s.percentile(90)),
                   Table::num(s.percentile(99)), Table::num(s.mean())});
    results.emplace_back(target.name, std::move(s));
  }
  print_section("End-to-end latency percentiles (ms), 60 s at 20 FPS");
  table.print();

  print_section("CDF (fraction of frames below threshold)");
  Table cdf({"threshold (ms)", "V1", "V2", "V4", "D6"});
  for (const double threshold : {30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 100.0}) {
    std::vector<std::string> row{Table::num(threshold, 0)};
    for (const auto& [name, samples] : results) {
      int below = 0;
      for (const double v : samples.values()) below += v <= threshold ? 1 : 0;
      row.push_back(
          Table::num(static_cast<double>(below) /
                         static_cast<double>(samples.count()),
                     2));
    }
    cdf.add_row(row);
  }
  cdf.print();

  std::printf(
      "\n(paper Fig 3: V1 median ~38 ms, V2 ~47 ms, D6 ~42 ms, with V1/V2 "
      "curves left of D6)\n");
  return 0;
}
