// Live-socket data-plane bench: drives the real TCP runtimes (manager,
// nodes, clients over 127.0.0.1) through the paper's elasticity (fig 5)
// and churn (fig 8) shapes, and cross-validates the live latency
// distribution against a simulator twin of the same topology.
//
// Four phases:
//
//   1. Discovery storm — a join-storm of volunteer nodes registers with
//      the manager while pipelined raw RpcClients hammer kDiscover.
//      Reported as discovery qps under registration load.
//
//   2. Live elasticity (fig 5 shape) — one congested node serves the whole
//      fleet, then volunteers join mid-run; p50/p99 before vs after
//      measures the elastic win end-to-end over real sockets.
//
//   3. Churn + steady window (fig 8 shape) — nodes join and leave under
//      live clients; churn then pauses and a quiescent mid-run window
//      measures allocs-per-frame with the global operator-new hook (the
//      pooled data plane's headline number) plus SBO-callback heap spills.
//      Every runtime is then torn down and leaked pool chunks counted —
//      nonzero means a buffer escaped the slab.
//
//   4. Sim parity — the steady-state topology of phase 3 rebuilt inside
//      the discrete-event simulator (same protocol classes, LAN access
//      tier, zero jitter). Live-vs-sim p50/p99 deltas must fall inside the
//      tolerance band documented in DESIGN.md §12: |Δp50| <= max(15 ms,
//      0.75 * sim p50), |Δp99| <= max(75 ms, 1.5 * sim p99) — wide enough
//      for CI scheduling noise, tight enough to catch a broken data plane.
//
// `--smoke` shrinks every phase for CI; `--json [path]` writes
// BENCH_live.json at the repo root (or `path`) for tools/check.sh gates.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.h"
#include "bench_common.h"
#include "common/table.h"
#include "harness/scenario.h"
#include "rpc/live_runtime.h"
#include "sim/callback.h"

using namespace eden;
using rpc::LiveClient;
using rpc::LiveManager;
using rpc::LiveNode;

namespace {

constexpr const char* kGeohash = "9zvxvf";

// --trace-allocs: dump a backtrace for every allocation inside the churn
// steady window (diagnostic; resolve with addr2line).
bool g_trace_allocs = false;

void sleep_ms(double ms) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
}

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Linear-interpolated percentile over an unsorted slice (same convention
// as common::Samples::percentile).
double slice_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

node::EdgeNodeConfig node_config(std::uint32_t id, int cores,
                                 double frame_ms) {
  node::EdgeNodeConfig config;
  config.id = NodeId{id};
  config.geohash = kGeohash;
  config.executor.cores = cores;
  config.executor.base_frame_ms = frame_ms;
  config.heartbeat_period = msec(200.0);
  return config;
}

client::ClientConfig client_config(double fps, double probing_ms) {
  client::ClientConfig config;
  config.geohash = kGeohash;
  config.top_n = 3;
  config.probing_period = msec(probing_ms);
  config.keepalive_period = msec(300.0);
  config.app.max_fps = fps;
  config.app.adaptive_rate = false;
  return config;
}

// Per-client latency slice: samples added after `from_count`.
std::vector<double> samples_since(LiveClient& client, std::size_t from_count) {
  const Samples all = client.latency_samples();
  const auto& v = all.values();
  if (from_count >= v.size()) return {};
  return std::vector<double>(v.begin() + static_cast<std::ptrdiff_t>(from_count),
                             v.end());
}

// ---- phase 1: discovery storm -------------------------------------------

struct StormResult {
  int storm_nodes{0};
  int inflight{0};
  double seconds{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  double qps{0};
  double allocs_per_op{0};  // manager select + rpc round-trip, both sides
};

// One self-refiring pipelined discovery call. Lives in a deque (stable
// address) and captures only `this` — the callback stays SBO-inline.
struct DiscoveryPump {
  rpc::RpcClient* client{nullptr};
  const std::vector<std::uint8_t>* payload{nullptr};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  bool stop{false};

  void fire() {
    client->call(rpc::MessageType::kDiscover, payload->data(), payload->size(),
                 msec(500.0), [this](rpc::RpcResult response) {
                   if (response.ok) {
                     ++completed;
                   } else {
                     ++failed;
                   }
                   if (!stop) fire();
                 });
  }
};

StormResult run_discovery_storm(int storm_nodes, int connections,
                                int per_connection, double seconds) {
  StormResult result;
  result.storm_nodes = storm_nodes;
  result.inflight = connections * per_connection;
  result.seconds = seconds;

  LiveManager manager;
  if (!manager.start(0)) return result;

  // Join storm: every volunteer registers at once and keeps heartbeating
  // at 5 Hz while the discovery pipeline runs.
  std::vector<std::unique_ptr<LiveNode>> nodes;
  for (int i = 0; i < storm_nodes; ++i) {
    nodes.push_back(std::make_unique<LiveNode>(
        node_config(static_cast<std::uint32_t>(100 + i), 2, 20.0),
        manager.endpoint()));
    nodes.back()->start(0);
  }

  // Bench-local loop with `connections` sockets, each keeping
  // `per_connection` discovery calls in flight.
  rpc::EventLoop loop;
  rpc::ConnectionPool pool(loop);
  rpc::Writer request_writer;
  {
    net::DiscoveryRequest request;
    request.client = ClientId{1};
    request.geohash = kGeohash;
    request.top_n = 3;
    encode(request_writer, request);
  }
  std::deque<DiscoveryPump> pumps;
  std::deque<rpc::RpcClient> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back(loop, pool, manager.endpoint());
    for (int p = 0; p < per_connection; ++p) {
      pumps.push_back(DiscoveryPump{&clients.back(), &request_writer.data()});
    }
  }
  for (auto& pump : pumps) pump.fire();
  // Warm up connections, slabs and scratch buffers before counting.
  {
    const double warm_end = wall_now() + 0.2;
    while (wall_now() < warm_end) loop.run_for(msec(10.0));
    for (auto& pump : pumps) {
      pump.completed = 0;
      pump.failed = 0;
    }
  }

  const std::uint64_t a0 = bench::allocation_count();
  const double t0 = wall_now();
  while (wall_now() - t0 < seconds) loop.run_for(msec(10.0));
  const double elapsed = wall_now() - t0;
  const std::uint64_t a1 = bench::allocation_count();
  for (auto& pump : pumps) pump.stop = true;
  loop.run_for(msec(50.0));  // drain in-flight tails

  for (const auto& pump : pumps) {
    result.completed += pump.completed;
    result.failed += pump.failed;
  }
  result.qps = static_cast<double>(result.completed) / elapsed;
  result.allocs_per_op = static_cast<double>(a1 - a0) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, result.completed));

  for (auto& node : nodes) node->stop(true);
  manager.stop();
  return result;
}

// ---- phase 2: live elasticity (fig 5 shape) -----------------------------

struct ElasticityResult {
  int clients{0};
  double single_p50_ms{0};
  double single_p99_ms{0};
  double elastic_p50_ms{0};
  double elastic_p99_ms{0};
};

ElasticityResult run_live_elasticity(int client_count, double window_sec) {
  ElasticityResult result;
  result.clients = client_count;

  LiveManager manager;
  if (!manager.start(0)) return result;
  // One undersized node: 1 core at 20 ms/frame caps out at 50 fps while
  // the fleet offers client_count * 10.
  LiveNode congested(node_config(1, 1, 20.0), manager.endpoint());
  congested.start(0);
  sleep_ms(200.0);

  std::vector<std::unique_ptr<LiveClient>> clients;
  for (int i = 0; i < client_count; ++i) {
    clients.push_back(std::make_unique<LiveClient>(
        client_config(/*fps=*/10.0, /*probing_ms=*/700.0),
        manager.endpoint()));
    clients.back()->start();
  }
  sleep_ms(500.0);  // joins land, queues build

  // Window 1: the congested steady state.
  std::vector<std::size_t> marks(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    marks[i] = clients[i]->latency_samples().count();
  }
  sleep_ms(window_sec * 1000.0);
  std::vector<double> single;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto slice = samples_since(*clients[i], marks[i]);
    single.insert(single.end(), slice.begin(), slice.end());
  }
  result.single_p50_ms = slice_percentile(single, 50.0);
  result.single_p99_ms = slice_percentile(single, 99.0);

  // Volunteers join (the elastic event); probing moves the fleet over.
  LiveNode volunteer_a(node_config(2, 4, 8.0), manager.endpoint());
  LiveNode volunteer_b(node_config(3, 4, 8.0), manager.endpoint());
  LiveNode volunteer_c(node_config(4, 2, 12.0), manager.endpoint());
  volunteer_a.start(0);
  volunteer_b.start(0);
  volunteer_c.start(0);
  sleep_ms(1500.0);  // discovery refresh + switch + queue drain

  // Window 2: the elastic steady state.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    marks[i] = clients[i]->latency_samples().count();
  }
  sleep_ms(window_sec * 1000.0);
  std::vector<double> elastic;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto slice = samples_since(*clients[i], marks[i]);
    elastic.insert(elastic.end(), slice.begin(), slice.end());
  }
  result.elastic_p50_ms = slice_percentile(elastic, 50.0);
  result.elastic_p99_ms = slice_percentile(elastic, 99.0);

  for (auto& c : clients) c->stop();
  volunteer_a.stop(true);
  volunteer_b.stop(true);
  volunteer_c.stop(true);
  congested.stop(true);
  manager.stop();
  return result;
}

// ---- phase 3: churn + steady allocation window (fig 8 shape) ------------

struct ChurnResult {
  int clients{0};
  double window_sec{0};
  std::uint64_t frames{0};
  std::uint64_t allocs{0};
  std::uint64_t callback_spills{0};
  double allocs_per_frame{0};
  double live_p50_ms{0};
  double live_p99_ms{0};
  std::size_t leaked_pool_slots{0};
  std::uint64_t discoveries{0};
};

ChurnResult run_live_churn(int client_count, double churn_scale,
                           double window_sec) {
  ChurnResult result;
  result.clients = client_count;
  result.window_sec = window_sec;

  LiveManager manager;
  if (!manager.start(0)) return result;
  // Base fleet (matches the sim twin below): one strong node, two mid
  // nodes; volunteers D/E churn through during the run, with E staying.
  LiveNode node_a(node_config(1, 4, 5.0), manager.endpoint());
  LiveNode node_b(node_config(2, 2, 10.0), manager.endpoint());
  LiveNode node_c(node_config(3, 2, 10.0), manager.endpoint());
  node_a.start(0);
  node_b.start(0);
  node_c.start(0);
  sleep_ms(200.0);

  std::vector<std::unique_ptr<LiveClient>> clients;
  for (int i = 0; i < client_count; ++i) {
    clients.push_back(std::make_unique<LiveClient>(
        client_config(/*fps=*/20.0, /*probing_ms=*/1000.0),
        manager.endpoint()));
    clients.back()->start();
  }

  // Churn: D and E join mid-run, D leaves again (fig 8's join/leave
  // staircase, compressed).
  LiveNode node_d(node_config(4, 2, 15.0), manager.endpoint());
  LiveNode node_e(node_config(5, 2, 15.0), manager.endpoint());
  sleep_ms(300.0 * churn_scale);
  node_d.start(0);
  sleep_ms(600.0 * churn_scale);
  node_e.start(0);
  sleep_ms(600.0 * churn_scale);
  node_d.stop(true);
  sleep_ms(500.0 * churn_scale);

  // Churn paused; let rediscovery and queues settle before measuring.
  sleep_ms(800.0);

  // Steady window. All cross-thread reads (they allocate promise state)
  // happen OUTSIDE the [a0, a1] allocation snapshot.
  std::vector<std::size_t> marks(clients.size());
  std::vector<std::uint64_t> frames_before(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    marks[i] = clients[i]->latency_samples().count();
    frames_before[i] = clients[i]->stats().frames_ok;
  }
  const std::uint64_t spills_before =
      sim::detail::callback_heap_allocs.load(std::memory_order_relaxed);
  const std::uint64_t a0 = bench::allocation_count();
  if (g_trace_allocs) bench::set_allocation_trace(true);
  sleep_ms(window_sec * 1000.0);
  if (g_trace_allocs) bench::set_allocation_trace(false);
  const std::uint64_t a1 = bench::allocation_count();
  const std::uint64_t spills_after =
      sim::detail::callback_heap_allocs.load(std::memory_order_relaxed);

  std::vector<double> window_latency;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto slice = samples_since(*clients[i], marks[i]);
    window_latency.insert(window_latency.end(), slice.begin(), slice.end());
    result.frames += clients[i]->stats().frames_ok - frames_before[i];
    result.discoveries += clients[i]->stats().discoveries;
  }
  result.allocs = a1 - a0;
  result.callback_spills = spills_after - spills_before;
  result.allocs_per_frame =
      static_cast<double>(result.allocs) /
      static_cast<double>(std::max<std::uint64_t>(1, result.frames));
  result.live_p50_ms = slice_percentile(window_latency, 50.0);
  result.live_p99_ms = slice_percentile(window_latency, 99.0);

  // Teardown + leak oracle: every runtime must hand back every chunk.
  for (auto& c : clients) c->stop();
  node_e.stop(true);
  node_a.stop(true);
  node_b.stop(true);
  node_c.stop(true);
  manager.stop();
  for (auto& c : clients) result.leaked_pool_slots += c->leaked_pool_chunks();
  result.leaked_pool_slots += node_a.leaked_pool_chunks();
  result.leaked_pool_slots += node_b.leaked_pool_chunks();
  result.leaked_pool_slots += node_c.leaked_pool_chunks();
  result.leaked_pool_slots += node_d.leaked_pool_chunks();
  result.leaked_pool_slots += node_e.leaked_pool_chunks();
  result.leaked_pool_slots += manager.leaked_pool_chunks();
  return result;
}

// ---- phase 4: simulator twin --------------------------------------------

struct ParityResult {
  double sim_p50_ms{0};
  double sim_p99_ms{0};
  double delta_p50_ms{0};
  double delta_p99_ms{0};
  double tol_p50_ms{0};
  double tol_p99_ms{0};
  bool within_tolerance{false};
};

// Rebuild phase 3's steady-state topology (nodes A/B/C/E, same cores and
// frame times, same client workload) in the discrete-event simulator over
// a LAN-tier zero-jitter fabric, and compare percentile latencies.
ParityResult run_sim_twin(const ChurnResult& live, int client_count,
                          double warm_sec, double window_sec) {
  ParityResult result;

  harness::ScenarioConfig config;
  config.seed = 11;
  harness::Scenario scenario(config, harness::NetKind::kGeo,
                             /*default_rtt_ms=*/0.3, /*default_bw_mbps=*/900.0,
                             /*jitter_sigma=*/0.0);

  const struct {
    int cores;
    double frame_ms;
  } node_shapes[] = {{4, 5.0}, {2, 10.0}, {2, 10.0}, {2, 15.0}};
  std::size_t index = 0;
  for (const auto& shape : node_shapes) {
    harness::NodeSpec spec;
    spec.name = "n" + std::to_string(index++);
    spec.tier = net::AccessTier::kLan;
    spec.cores = shape.cores;
    spec.base_frame_ms = shape.frame_ms;
    spec.heartbeat_period = msec(200.0);
    scenario.start_node(scenario.add_node(spec));
  }

  std::vector<client::EdgeClient*> clients;
  for (int i = 0; i < client_count; ++i) {
    harness::ClientSpot spot;
    spot.name = "u" + std::to_string(i);
    spot.tier = net::AccessTier::kLan;
    auto& c = scenario.add_edge_client(
        spot, client_config(/*fps=*/20.0, /*probing_ms=*/1000.0));
    scenario.simulator().schedule_at(msec(10.0 * i), [&c] { c.start(); });
    clients.push_back(&c);
  }

  scenario.run_until(sec(warm_sec));
  std::vector<std::size_t> marks(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    marks[i] = clients[i]->latency_samples().count();
  }
  scenario.run_until(sec(warm_sec + window_sec));
  std::vector<double> window_latency;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const Samples all = clients[i]->latency_samples();
    const auto& v = all.values();
    if (marks[i] < v.size()) {
      window_latency.insert(window_latency.end(),
                            v.begin() + static_cast<std::ptrdiff_t>(marks[i]),
                            v.end());
    }
  }
  result.sim_p50_ms = slice_percentile(window_latency, 50.0);
  result.sim_p99_ms = slice_percentile(window_latency, 99.0);
  result.delta_p50_ms = live.live_p50_ms - result.sim_p50_ms;
  result.delta_p99_ms = live.live_p99_ms - result.sim_p99_ms;
  // Tolerance band (documented in DESIGN.md §12): absolute floor for
  // scheduler noise plus a relative term for topology-driven variance.
  result.tol_p50_ms = std::max(15.0, 0.75 * result.sim_p50_ms);
  result.tol_p99_ms = std::max(75.0, 1.5 * result.sim_p99_ms);
  result.within_tolerance =
      std::abs(result.delta_p50_ms) <= result.tol_p50_ms &&
      std::abs(result.delta_p99_ms) <= result.tol_p99_ms;
  return result;
}

// ---- reporting ----------------------------------------------------------

void write_json(const std::string& path, const StormResult& storm,
                const ElasticityResult& elastic, const ChurnResult& churn,
                const ParityResult& parity) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_live: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"discovery_storm\": {\"storm_nodes\": %d, \"inflight\": %d, "
               "\"seconds\": %.2f,\n"
               "    \"completed\": %llu, \"failed\": %llu, \"qps\": %.1f, "
               "\"allocs_per_op\": %.3f},\n",
               storm.storm_nodes, storm.inflight, storm.seconds,
               static_cast<unsigned long long>(storm.completed),
               static_cast<unsigned long long>(storm.failed), storm.qps,
               storm.allocs_per_op);
  std::fprintf(f,
               "  \"elasticity\": {\"clients\": %d, "
               "\"single_node_p50_ms\": %.2f, \"single_node_p99_ms\": %.2f,\n"
               "    \"elastic_p50_ms\": %.2f, \"elastic_p99_ms\": %.2f, "
               "\"p50_improvement\": %.2f},\n",
               elastic.clients, elastic.single_p50_ms, elastic.single_p99_ms,
               elastic.elastic_p50_ms, elastic.elastic_p99_ms,
               elastic.elastic_p50_ms > 0
                   ? elastic.single_p50_ms / elastic.elastic_p50_ms
                   : 0.0);
  std::fprintf(f,
               "  \"churn\": {\"clients\": %d, \"window_sec\": %.2f, "
               "\"frames\": %llu, \"allocs\": %llu,\n"
               "    \"callback_spills\": %llu, \"discoveries\": %llu,\n"
               "    \"live_p50_ms\": %.2f, \"live_p99_ms\": %.2f},\n",
               churn.clients, churn.window_sec,
               static_cast<unsigned long long>(churn.frames),
               static_cast<unsigned long long>(churn.allocs),
               static_cast<unsigned long long>(churn.callback_spills),
               static_cast<unsigned long long>(churn.discoveries),
               churn.live_p50_ms, churn.live_p99_ms);
  std::fprintf(f,
               "  \"sim_parity\": {\"sim_p50_ms\": %.2f, \"sim_p99_ms\": %.2f, "
               "\"delta_p50_ms\": %.2f, \"delta_p99_ms\": %.2f,\n"
               "    \"tol_p50_ms\": %.2f, \"tol_p99_ms\": %.2f},\n",
               parity.sim_p50_ms, parity.sim_p99_ms, parity.delta_p50_ms,
               parity.delta_p99_ms, parity.tol_p50_ms, parity.tol_p99_ms);
  // The gate fields check.sh greps, grouped in one flat object.
  std::fprintf(f,
               "  \"smoke\": {\"allocs_per_frame\": %.3f, "
               "\"leaked_pool_slots\": %zu, \"within_tolerance\": %s, "
               "\"discovery_qps\": %.1f}\n",
               churn.allocs_per_frame, churn.leaked_pool_slots,
               parity.within_tolerance ? "true" : "false", storm.qps);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\njson -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool json = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-allocs") == 0) {
      g_trace_allocs = true;
    }
  }
  if (json && json_path.empty()) {
    json_path = std::string(EDEN_SOURCE_DIR) + "/BENCH_live.json";
  }

  bench::print_header(
      "live data plane — loopback sockets through the pooled rpc path",
      "the same protocol state machines the simulator drives, served "
      "allocation-free at steady state over real TCP");

  const int storm_nodes = smoke ? 6 : 12;
  const double storm_sec = smoke ? 1.0 : 3.0;
  const int fleet_clients = smoke ? 6 : 10;
  const double window_sec = smoke ? 1.5 : 3.0;
  const double churn_scale = smoke ? 1.0 : 2.0;

  print_section("discovery qps under join-storm");
  const StormResult storm =
      run_discovery_storm(storm_nodes, /*connections=*/3,
                          /*per_connection=*/8, storm_sec);
  Table storm_table({"storm nodes", "inflight", "completed", "failed", "qps",
                     "allocs/op"});
  storm_table.add_row(
      {Table::integer(storm.storm_nodes), Table::integer(storm.inflight),
       Table::integer(static_cast<std::int64_t>(storm.completed)),
       Table::integer(static_cast<std::int64_t>(storm.failed)),
       Table::num(storm.qps, 0), Table::num(storm.allocs_per_op, 3)});
  storm_table.print();

  print_section("live elasticity (fig 5 shape over sockets)");
  const ElasticityResult elastic =
      run_live_elasticity(fleet_clients, window_sec);
  Table elastic_table({"clients", "single p50", "single p99", "elastic p50",
                       "elastic p99", "p50 gain"});
  elastic_table.add_row(
      {Table::integer(elastic.clients), Table::num(elastic.single_p50_ms, 1),
       Table::num(elastic.single_p99_ms, 1),
       Table::num(elastic.elastic_p50_ms, 1),
       Table::num(elastic.elastic_p99_ms, 1),
       elastic.elastic_p50_ms > 0
           ? Table::num(elastic.single_p50_ms / elastic.elastic_p50_ms, 2) + "x"
           : std::string("-")});
  elastic_table.print();

  print_section("churn + steady-state allocation window (fig 8 shape)");
  const ChurnResult churn =
      run_live_churn(fleet_clients, churn_scale, window_sec);
  Table churn_table({"clients", "frames", "allocs", "allocs/frame", "spills",
                     "p50 (ms)", "p99 (ms)", "leaked slots"});
  churn_table.add_row(
      {Table::integer(churn.clients),
       Table::integer(static_cast<std::int64_t>(churn.frames)),
       Table::integer(static_cast<std::int64_t>(churn.allocs)),
       Table::num(churn.allocs_per_frame, 3),
       Table::integer(static_cast<std::int64_t>(churn.callback_spills)),
       Table::num(churn.live_p50_ms, 1), Table::num(churn.live_p99_ms, 1),
       Table::integer(static_cast<std::int64_t>(churn.leaked_pool_slots))});
  churn_table.print();

  print_section("sim parity (same topology in the discrete-event simulator)");
  const ParityResult parity = run_sim_twin(churn, fleet_clients,
                                           /*warm_sec=*/2.0,
                                           /*window_sec=*/3.0);
  Table parity_table({"live p50", "sim p50", "Δp50", "tol", "live p99",
                      "sim p99", "Δp99", "tol", "within"});
  parity_table.add_row(
      {Table::num(churn.live_p50_ms, 1), Table::num(parity.sim_p50_ms, 1),
       Table::num(parity.delta_p50_ms, 1), Table::num(parity.tol_p50_ms, 1),
       Table::num(churn.live_p99_ms, 1), Table::num(parity.sim_p99_ms, 1),
       Table::num(parity.delta_p99_ms, 1), Table::num(parity.tol_p99_ms, 1),
       parity.within_tolerance ? "yes" : "NO"});
  parity_table.print();

  if (json) write_json(json_path, storm, elastic, churn, parity);
  return 0;
}
