// Scale bench: quantifies the discovery pipeline and fleet-construction
// limits of the central-manager tier. Two phases:
//
//   1. Discovery microbench — a Registry loaded with --disc-nodes synthetic
//      node statuses answers randomized discovery queries through (a) the
//      legacy copying pipeline (Registry::snapshot() + linear widening
//      scan, the pre-refactor manager hot path, kept as a compatibility
//      shim) and (b) the geo-indexed pipeline (bucket-pruned visitation).
//      Reported as queries/sec; the speedup ratio is the refactor's
//      headline number.
//
//   2. Fleet scenario — --nodes edge nodes and --clients EdgeClients in one
//      metro-scale Scenario, run for --seconds of simulated time at a low
//      frame rate. Reported as build/run wall-clock, events processed and
//      peak RSS: the memory- and CPU-bound layer the paper claims is
//      scalable.
//
// `--json [path]` writes machine-readable results to BENCH_scale.json at
// the repo root (or `path`). The smoke configuration (2000 clients / 200
// nodes) is always measured alongside a bigger run so tools/check.sh can
// compare wall-clock against the committed reference.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "bench_common.h"
#include "common/rng.h"
#include "common/table.h"
#include "geo/geohash.h"
#include "harness/experiments.h"
#include "harness/sharded_scenario.h"
#include "manager/central_manager.h"

using namespace eden;

namespace {

constexpr geo::GeoPoint kMetroCenter{44.9778, -93.2650};  // Minneapolis

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

// ---- phase 1: discovery microbench ----

struct DiscoveryResult {
  int nodes{0};
  int queries{0};
  double legacy_qps{0};
  double indexed_qps{0};
  std::uint64_t checksum_legacy{0};
  std::uint64_t checksum_indexed{0};
};

std::uint64_t response_checksum(const net::DiscoveryResponse& response) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& c : response.candidates) {
    h = (h ^ c.node.value) * 1099511628211ull;
  }
  return h;
}

// A registry of `count` nodes scattered over the metro (plus a small tail
// of no-geohash stragglers, which the selector handles via prefix
// fallback).
void fill_registry(manager::Registry& registry, int count, Rng& rng,
                   SimTime now) {
  for (int i = 0; i < count; ++i) {
    net::NodeStatus status;
    status.node = NodeId{static_cast<std::uint32_t>(1000 + i)};
    const auto position =
        harness::random_point_near(kMetroCenter, /*max_km=*/45.0, rng);
    if (i % 64 == 63) {
      status.geohash.clear();  // volunteer without location data
    } else {
      status.geohash = geo::geohash_encode(position, 6);
    }
    status.cores = static_cast<int>(rng.uniform_int(2, 16));
    status.base_frame_ms = rng.uniform(15.0, 60.0);
    status.utilization = rng.uniform(0.0, 0.9);
    status.attached_users = static_cast<int>(rng.uniform_int(0, 12));
    status.network_tag = (i % 3 == 0) ? "isp-a" : "isp-b";
    registry.upsert(status, now);
  }
}

std::vector<net::DiscoveryRequest> make_requests(int count, Rng& rng) {
  std::vector<net::DiscoveryRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    net::DiscoveryRequest request;
    request.client = ClientId{static_cast<std::uint32_t>(i)};
    request.geohash = geo::geohash_encode(
        harness::random_point_near(kMetroCenter, 40.0, rng), 6);
    request.network_tag = (i % 2 == 0) ? "isp-a" : "isp-b";
    request.top_n = 3;
    requests.push_back(std::move(request));
  }
  return requests;
}

DiscoveryResult run_discovery_bench(int nodes, int queries) {
  DiscoveryResult result;
  result.nodes = nodes;
  result.queries = queries;

  Rng rng(2024);
  const SimTime now = sec(100.0);
  manager::Registry registry(sec(3.0));
  fill_registry(registry, nodes, rng, now);
  manager::GlobalSelector selector;
  const auto requests = make_requests(queries, rng);

  // Legacy pipeline: what CentralManager::handle_discover did before the
  // geo index — one full snapshot copy per query, then the linear widening
  // scan over every entry. The deprecated shim is the thing being measured.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const double legacy_sec = wall_seconds([&] {
    for (const auto& request : requests) {
      const auto response =
          selector.select(request, registry.snapshot(now), now);
      result.checksum_legacy =
          (result.checksum_legacy * 31) ^ response_checksum(response);
    }
  });
#pragma GCC diagnostic pop
  result.legacy_qps = queries / legacy_sec;

  // Indexed pipeline: bucket-pruned candidate visitation straight off the
  // registry, no snapshot copy. Checksums must match the legacy run —
  // the selector is byte-identical by construction.
  const double indexed_sec = wall_seconds([&] {
    for (const auto& request : requests) {
      const auto response = selector.select(request, registry, now);
      result.checksum_indexed =
          (result.checksum_indexed * 31) ^ response_checksum(response);
    }
  });
  result.indexed_qps = queries / indexed_sec;
  return result;
}

// ---- phase 2: fleet scenario ----

struct ScaleResult {
  int clients{0};
  int nodes{0};
  double sim_seconds{0};
  double build_sec{0};
  double run_sec{0};
  double peak_rss_mb{0};
  std::uint64_t events{0};
  std::uint64_t frames_ok{0};
  std::uint64_t discoveries{0};
  std::size_t live_nodes{0};
  double latency_p50_ms{0};
  double latency_p99_ms{0};
  // Heap allocations per event over the run phase (steady state: the fleet
  // is built, every message then flows through the pooled rpc path).
  double allocs_per_event{0};
};

harness::NodeSpec fleet_node_spec(std::size_t index, Rng& rng) {
  harness::NodeSpec spec;
  spec.name = "n" + std::to_string(index);
  spec.position = harness::random_point_near(kMetroCenter, 45.0, rng);
  spec.cores = static_cast<int>(rng.uniform_int(2, 8));
  spec.base_frame_ms = rng.uniform(20.0, 45.0);
  spec.network_tag = (index % 3 == 0) ? "isp-a" : "isp-b";
  return spec;
}

ScaleResult run_scale_scenario(int clients, int nodes, double sim_seconds) {
  ScaleResult result;
  result.clients = clients;
  result.nodes = nodes;
  result.sim_seconds = sim_seconds;

  harness::ScenarioConfig config;
  config.seed = 7;
  auto scenario = std::make_unique<harness::Scenario>(config);
  Rng layout = scenario->rng().fork("scale-layout");

  result.build_sec = wall_seconds([&] {
    const std::size_t first_node = scenario->add_nodes(
        harness::NodeSpec{}, static_cast<std::size_t>(nodes),
        [&](std::size_t i, harness::NodeSpec& spec) {
          spec = fleet_node_spec(i, layout);
        });
    for (std::size_t i = 0; i < static_cast<std::size_t>(nodes); ++i) {
      scenario->start_node(first_node + i);
    }
    const std::size_t first_client = scenario->add_edge_clients(
        [&](std::size_t i) {
          harness::ClientSpot spot;
          spot.name = "u" + std::to_string(i);
          spot.position = harness::random_point_near(kMetroCenter, 40.0, layout);
          spot.network_tag = (i % 2 == 0) ? "isp-a" : "isp-b";
          return spot;
        },
        [](std::size_t) {
          client::ClientConfig client_config;
          client_config.top_n = 3;
          client_config.app.max_fps = 2.0;
          client_config.app.min_fps = 0.5;
          client_config.app.adaptive_rate = false;
          return client_config;
        },
        static_cast<std::size_t>(clients));
    for (std::size_t i = 0; i < static_cast<std::size_t>(clients); ++i) {
      auto& c = scenario->edge_client(first_client + i);
      // Stagger joins across the first 5 simulated seconds so discovery
      // load ramps like a real fleet, not one thundering herd.
      const SimTime start_at =
          msec(5000.0 * static_cast<double>(i) / std::max(1, clients));
      scenario->simulator().schedule_at(start_at, [&c] { c.start(); });
    }
  });

  const std::uint64_t allocs_before = bench::allocation_count();
  const std::uint64_t events_before = scenario->simulator().events_processed();
  result.run_sec =
      wall_seconds([&] { scenario->run_until(sec(sim_seconds)); });
  const std::uint64_t run_events =
      scenario->simulator().events_processed() - events_before;
  if (run_events > 0) {
    result.allocs_per_event =
        static_cast<double>(bench::allocation_count() - allocs_before) /
        static_cast<double>(run_events);
  }

  result.events = scenario->simulator().events_processed();
  result.live_nodes = scenario->central_manager().live_nodes();
  result.discoveries = scenario->central_manager().stats().discovery_queries;
  const harness::FleetStats fleet = scenario->fleet_stats();
  result.frames_ok = fleet.totals.frames_ok;
  result.latency_p50_ms = fleet.latency_p50_ms;
  result.latency_p99_ms = fleet.latency_p99_ms;
  result.peak_rss_mb = peak_rss_mb();
  return result;
}

// ---- phase 3: shard sweep ----
//
// The same smoke-scale fleet through harness::ShardedScenario at several
// shard counts. frames_ok and the latency percentiles must be identical in
// every entry (conservative windows change nothing observable); per-shard
// event counts and the barrier-stall fraction quantify the parallel
// headroom a multi-core host would get out of the partition.

struct ShardSweepResult {
  unsigned shards{0};
  unsigned threads{1};
  double build_sec{0};
  double run_sec{0};
  std::uint64_t events{0};
  std::uint64_t frames_ok{0};
  double latency_p50_ms{0};
  double latency_p99_ms{0};
  std::uint64_t windows{0};
  double window_ms{0};
  std::uint64_t cross_shard_messages{0};
  // stalled (domain, window) pairs / (windows * shards): the fraction of
  // per-window domain slots that had nothing to do — idle barrier time a
  // parallel pool cannot recover.
  double stall_fraction{0};
  std::vector<std::uint64_t> events_per_domain;
};

ShardSweepResult run_shard_scenario(int clients, int nodes,
                                    double sim_seconds, unsigned shards,
                                    unsigned threads) {
  ShardSweepResult result;
  result.shards = shards;
  result.threads = threads;

  harness::ShardedConfig config;
  config.base.seed = 7;
  config.shards = shards;
  config.threads = threads;
  // Exercise the window loop even at one shard so every entry measures the
  // same machinery and the stall fraction is comparable.
  config.force_windows = true;
  auto scenario = std::make_unique<harness::ShardedScenario>(config);
  // Same layout stream as run_scale_scenario: fork() is a pure function of
  // (seed, name), so the fleet geometry matches the sequential bench.
  Rng layout = Rng(config.base.seed).fork("scale-layout");

  result.build_sec = wall_seconds([&] {
    const std::size_t first_node = scenario->add_nodes(
        harness::NodeSpec{}, static_cast<std::size_t>(nodes),
        [&](std::size_t i, harness::NodeSpec& spec) {
          spec = fleet_node_spec(i, layout);
        });
    for (std::size_t i = 0; i < static_cast<std::size_t>(nodes); ++i) {
      scenario->start_node(first_node + i);
    }
    const std::size_t first_client = scenario->add_edge_clients(
        [&](std::size_t i) {
          harness::ClientSpot spot;
          spot.name = "u" + std::to_string(i);
          spot.position = harness::random_point_near(kMetroCenter, 40.0, layout);
          spot.network_tag = (i % 2 == 0) ? "isp-a" : "isp-b";
          return spot;
        },
        [](std::size_t) {
          client::ClientConfig client_config;
          client_config.top_n = 3;
          client_config.app.max_fps = 2.0;
          client_config.app.min_fps = 0.5;
          client_config.app.adaptive_rate = false;
          return client_config;
        },
        static_cast<std::size_t>(clients));
    for (std::size_t i = 0; i < static_cast<std::size_t>(clients); ++i) {
      const SimTime start_at =
          msec(5000.0 * static_cast<double>(i) / std::max(1, clients));
      scenario->schedule_at_client(
          first_client + i, start_at,
          [](client::EdgeClient& c) { c.start(); });
    }
  });

  result.run_sec =
      wall_seconds([&] { scenario->run_until(sec(sim_seconds)); });

  const harness::FleetStats fleet = scenario->fleet_stats();
  result.frames_ok = fleet.totals.frames_ok;
  result.latency_p50_ms = fleet.latency_p50_ms;
  result.latency_p99_ms = fleet.latency_p99_ms;
  const harness::ShardStats stats = scenario->shard_stats();
  result.events_per_domain = stats.events_per_domain;
  for (const std::uint64_t e : stats.events_per_domain) result.events += e;
  result.windows = stats.windows;
  result.window_ms = to_ms(stats.window_length);
  result.cross_shard_messages = stats.cross_shard_messages;
  const std::uint64_t slots = stats.windows * shards;
  if (slots > 0) {
    result.stall_fraction =
        static_cast<double>(stats.stalled_domain_windows) /
        static_cast<double>(slots);
  }
  return result;
}

bool sweep_identical(const std::vector<ShardSweepResult>& sweep) {
  for (const ShardSweepResult& r : sweep) {
    if (r.frames_ok != sweep.front().frames_ok ||
        r.latency_p50_ms != sweep.front().latency_p50_ms ||
        r.latency_p99_ms != sweep.front().latency_p99_ms) {
      return false;
    }
  }
  return true;
}

void print_shard_sweep(const std::vector<ShardSweepResult>& sweep) {
  Table table({"shards", "threads", "run (s)", "events", "frames ok",
               "p50 (ms)", "p99 (ms)", "windows", "cross msgs", "stall"});
  for (const ShardSweepResult& r : sweep) {
    table.add_row(
        {Table::integer(static_cast<std::int64_t>(r.shards)),
         Table::integer(static_cast<std::int64_t>(r.threads)),
         Table::num(r.run_sec, 2),
         Table::integer(static_cast<std::int64_t>(r.events)),
         Table::integer(static_cast<std::int64_t>(r.frames_ok)),
         Table::num(r.latency_p50_ms, 1), Table::num(r.latency_p99_ms, 1),
         Table::integer(static_cast<std::int64_t>(r.windows)),
         Table::integer(static_cast<std::int64_t>(r.cross_shard_messages)),
         Table::num(r.stall_fraction, 3)});
  }
  table.print();
  std::printf("observables identical across shard counts: %s\n",
              sweep_identical(sweep) ? "yes" : "NO — DETERMINISM BUG");
}

void print_scale(const ScaleResult& r) {
  Table table({"clients", "nodes", "build (s)", "run (s)", "events", "RSS (MB)",
               "frames ok", "p50 (ms)", "p99 (ms)"});
  table.add_row({Table::integer(r.clients), Table::integer(r.nodes),
                 Table::num(r.build_sec, 2), Table::num(r.run_sec, 2),
                 Table::integer(static_cast<std::int64_t>(r.events)),
                 Table::num(r.peak_rss_mb, 1),
                 Table::integer(static_cast<std::int64_t>(r.frames_ok)),
                 Table::num(r.latency_p50_ms, 1), Table::num(r.latency_p99_ms, 1)});
  table.print();
}

void write_json(const std::string& path, const DiscoveryResult& disc,
                const ScaleResult& main_run, const ScaleResult& smoke,
                const std::vector<ShardSweepResult>& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"discovery\": {\"nodes\": %d, \"queries\": %d,\n"
               "    \"legacy_qps\": %.1f, \"indexed_qps\": %.1f,\n"
               "    \"speedup\": %.2f, \"responses_identical\": %s},\n",
               disc.nodes, disc.queries, disc.legacy_qps, disc.indexed_qps,
               disc.indexed_qps > 0 ? disc.indexed_qps / disc.legacy_qps : 0.0,
               disc.checksum_indexed == disc.checksum_legacy ? "true" : "false");
  const auto scale_json = [&](const char* key, const ScaleResult& r) {
    std::fprintf(f,
                 "  \"%s\": {\"clients\": %d, \"nodes\": %d, "
                 "\"sim_seconds\": %.0f,\n"
                 "    \"build_sec\": %.3f, \"run_sec\": %.3f, "
                 "\"wall_sec\": %.3f,\n"
                 "    \"events\": %llu, \"frames_ok\": %llu, "
                 "\"discoveries\": %llu,\n"
                 "    \"peak_rss_mb\": %.1f, \"latency_p50_ms\": %.1f, "
                 "\"latency_p99_ms\": %.1f,\n"
                 "    \"allocs_per_event\": %.3f}",
                 key, r.clients, r.nodes, r.sim_seconds, r.build_sec, r.run_sec,
                 r.build_sec + r.run_sec,
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.frames_ok),
                 static_cast<unsigned long long>(r.discoveries), r.peak_rss_mb,
                 r.latency_p50_ms, r.latency_p99_ms, r.allocs_per_event);
  };
  scale_json("scale", main_run);
  std::fprintf(f, ",\n");
  scale_json("smoke", smoke);
  if (!sweep.empty()) {
    // One line per entry so shell gates can grep a whole record at once.
    std::fprintf(f, ",\n  \"shard_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const ShardSweepResult& r = sweep[i];
      std::fprintf(f,
                   "    {\"shards\": %u, \"threads\": %u, "
                   "\"build_sec\": %.3f, "
                   "\"run_sec\": %.3f, \"events\": %llu, "
                   "\"frames_ok\": %llu, \"latency_p50_ms\": %.1f, "
                   "\"latency_p99_ms\": %.1f, \"windows\": %llu, "
                   "\"window_ms\": %.3f, \"cross_shard_messages\": %llu, "
                   "\"stall_fraction\": %.4f, \"events_per_domain\": [",
                   r.shards, r.threads, r.build_sec, r.run_sec,
                   static_cast<unsigned long long>(r.events),
                   static_cast<unsigned long long>(r.frames_ok),
                   r.latency_p50_ms, r.latency_p99_ms,
                   static_cast<unsigned long long>(r.windows), r.window_ms,
                   static_cast<unsigned long long>(r.cross_shard_messages),
                   r.stall_fraction);
      for (std::size_t d = 0; d < r.events_per_domain.size(); ++d) {
        std::fprintf(f, "%s%llu", d == 0 ? "" : ", ",
                     static_cast<unsigned long long>(r.events_per_domain[d]));
      }
      std::fprintf(f, "]}%s\n", i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"identical_across_shards\": %s",
                 sweep_identical(sweep) ? "true" : "false");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\njson -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 10'000;
  int nodes = 1'000;
  double seconds = 60.0;
  int disc_nodes = 1'000;
  int disc_queries = 20'000;
  std::string json_path;
  bool json = false;
  std::string shard_list = "1,2,4,8";  // "0" skips the sweep
  int threads = 1;  // WindowPool width for the shard sweep (0 = hardware)
  for (int i = 1; i < argc; ++i) {
    const auto int_flag = [&](const char* flag, int& out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        out = std::atoi(argv[++i]);
        return true;
      }
      return false;
    };
    if (int_flag("--clients", clients) || int_flag("--nodes", nodes) ||
        int_flag("--disc-nodes", disc_nodes) ||
        int_flag("--disc-queries", disc_queries) ||
        int_flag("--threads", threads)) {
      continue;
    }
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_list = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    }
  }
  if (json && json_path.empty()) {
    json_path = std::string(EDEN_SOURCE_DIR) + "/BENCH_scale.json";
  }

  bench::print_header(
      "scale — discovery throughput and 10k-client fleet construction",
      "the central tier answers metro-scale discovery from an index, not a "
      "copy; fleet construction is bulk, not per-entity");

  print_section("discovery microbench (registry -> selector pipeline)");
  const DiscoveryResult disc = run_discovery_bench(disc_nodes, disc_queries);
  Table dtable({"nodes", "queries", "legacy q/s", "indexed q/s", "speedup"});
  dtable.add_row({Table::integer(disc.nodes), Table::integer(disc.queries),
                  Table::num(disc.legacy_qps, 0),
                  Table::num(disc.indexed_qps, 0),
                  disc.indexed_qps > 0
                      ? Table::num(disc.indexed_qps / disc.legacy_qps, 2) + "x"
                      : std::string("-")});
  dtable.print();

  print_section("smoke fleet (2000 clients / 200 nodes)");
  const ScaleResult smoke = run_scale_scenario(2000, 200, seconds);
  print_scale(smoke);

  ScaleResult main_run = smoke;
  if (clients != 2000 || nodes != 200) {
    std::printf("\n");
    print_section("fleet scenario");
    main_run = run_scale_scenario(clients, nodes, seconds);
    print_scale(main_run);
  }

  // Shard sweep at smoke scale: same fleet through the geohash-partitioned
  // simulator; every entry must report identical observables.
  std::vector<ShardSweepResult> sweep;
  {
    const char* p = shard_list.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      const unsigned long v = std::strtoul(p, &end, 10);
      if (end == p) break;
      if (v > 0) {
        sweep.push_back(
            run_shard_scenario(2000, 200, seconds, static_cast<unsigned>(v),
                               static_cast<unsigned>(std::max(0, threads))));
      }
      p = (*end == ',') ? end + 1 : end;
    }
  }
  if (!sweep.empty()) {
    std::printf("\n");
    print_section("shard sweep (2000 clients / 200 nodes, sharded harness)");
    print_shard_sweep(sweep);
  }

  if (json) write_json(json_path, disc, main_run, smoke, sweep);
  return 0;
}
