// Centralized server-centric re-optimization ([13]-[15] style) vs the
// paper's distributed client-centric selection — the §II-B argument made
// quantitative. In a static world the central solver is competitive (it
// literally computes the optimum); under node churn its periodic, stale,
// server-side view loses to per-client probing and immediate failover.
#include <cstdio>

#include "bench_churn_common.h"
#include "churn/churn.h"
#include "common/table.h"
#include "harness/central_controller.h"

using namespace eden;

namespace {

struct RunResult {
  double avg_ms{0};
  double p99_ms{0};
  std::uint64_t moves{0};  // switches+failovers or reassignments
  double frames_per_user{0};
  double avg_max_stall_s{0};  // per-user longest gap between frames
};

// One run over the emulation world; `churning` toggles the §V-D2 node
// schedule; `central_period` <= 0 means "use the distributed protocol".
RunResult run(bool churning, SimDuration central_period, std::uint64_t seed) {
  harness::ScenarioConfig config;
  config.seed = seed;
  harness::Scenario scenario(config, harness::NetKind::kMatrix, 25.0, 50.0,
                             0.05);

  // Node population: 12 nodes; with churn, apply §V-D2 joins/leaves on
  // top of 5 initial nodes; without, all 12 run the whole time.
  Rng layout = Rng(seed).fork("layout");
  const geo::GeoPoint center{44.9778, -93.2650};
  churn::ChurnSchedule schedule;
  if (churning) {
    churn::ChurnConfig churn_config;
    churn_config.horizon = sec(180.0);
    churn_config.initial_nodes = 5;
    churn_config.max_nodes = 12;
    Rng churn_rng = Rng(seed).fork("churn-schedule");
    schedule = churn::generate_churn(churn_config, churn_rng);
  } else {
    schedule.total_nodes = 12;
    for (std::size_t i = 0; i < 12; ++i) {
      schedule.events.push_back(
          churn::ChurnEvent{0, churn::ChurnEventKind::kJoin, i});
    }
  }
  const auto specs =
      harness::churn_node_specs(static_cast<int>(schedule.total_nodes));
  std::vector<geo::GeoPoint> node_positions;
  for (auto spec : specs) {
    spec.position = harness::random_point_near(center, 40.0, layout);
    node_positions.push_back(spec.position);
    scenario.add_node(spec);
  }
  for (const auto& event : schedule.events) {
    if (event.kind == churn::ChurnEventKind::kJoin) {
      scenario.schedule_node_start(event.node_index, event.at);
    } else {
      scenario.schedule_node_stop(event.node_index, event.at, false);
    }
  }

  const int users = 10;
  std::vector<const TimeSeries*> series;
  RunResult result;

  if (central_period <= 0) {
    // Distributed client-centric protocol.
    std::vector<client::EdgeClient*> clients;
    for (int i = 0; i < users; ++i) {
      client::ClientConfig client_config;
      client_config.top_n = 3;
      client_config.probing_period = sec(5.0);
      harness::ClientSpot spot{"u" + std::to_string(i),
                               harness::random_point_near(center, 40.0, layout),
                               net::AccessTier::kCable,
                               ""};
      auto& c = scenario.add_edge_client(spot, client_config);
      for (std::size_t j = 0; j < scenario.node_count(); ++j) {
        scenario.matrix_network()->set_rtt_ms(
            c.id(), scenario.node_id(j),
            harness::emulation_rtt_ms(spot.position, node_positions[j], layout));
      }
      scenario.simulator().schedule_at(msec(300.0), [&c] { c.start(); });
      clients.push_back(&c);
      series.push_back(&c.latency_series());
    }
    scenario.run_until(sec(180.0));
    for (const auto* c : clients) {
      result.moves += c->stats().switches + c->stats().failovers;
    }
  } else {
    // Centralized periodic re-optimization over StaticClients.
    std::vector<baselines::StaticClient*> clients;
    for (int i = 0; i < users; ++i) {
      harness::ClientSpot spot{"u" + std::to_string(i),
                               harness::random_point_near(center, 40.0, layout),
                               net::AccessTier::kCable,
                               ""};
      auto& c = scenario.add_static_client(spot, {});
      for (std::size_t j = 0; j < scenario.node_count(); ++j) {
        scenario.matrix_network()->set_rtt_ms(
            c.id(), scenario.node_id(j),
            harness::emulation_rtt_ms(spot.position, node_positions[j], layout));
      }
      clients.push_back(&c);
      series.push_back(&c.latency_series());
    }
    // StaticClient::start needs a target; the controller assigns everyone
    // in its first round — start them "unattached" by starting the frame
    // loop against the first reassignment.
    harness::CentralController::Options options;
    options.period = central_period;
    auto controller = std::make_shared<harness::CentralController>(
        scenario, clients, options);
    scenario.simulator().schedule_at(msec(400.0), [controller, &clients,
                                                   &scenario] {
      // Prime: attach each client anywhere running so start() has a target,
      // then let the controller optimize.
      for (auto* c : clients) {
        for (std::size_t j = 0; j < scenario.node_count(); ++j) {
          if (scenario.node(j).running()) {
            c->start(scenario.node_id(j));
            break;
          }
        }
      }
      controller->start();
    });
    scenario.run_until(sec(180.0));
    result.moves = controller->reassignments();
    controller->stop();
  }

  const auto window = harness::fleet_window(series, sec(30), sec(180));
  result.avg_ms = window.mean();
  Samples all;
  double stall_total = 0;
  for (const auto* s : series) {
    SimTime prev = sec(30);
    SimTime max_gap = 0;
    for (const auto& [t, v] : s->points()) {
      if (t < sec(30)) continue;
      all.add(v);
      max_gap = std::max(max_gap, t - prev);
      prev = t;
    }
    max_gap = std::max(max_gap, sec(180) - prev);  // stalled to the end
    stall_total += to_sec(max_gap);
  }
  result.p99_ms = all.percentile(99);
  result.frames_per_user = static_cast<double>(all.count()) / users;
  result.avg_max_stall_s = stall_total / users;
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Centralized re-optimization vs distributed client-centric selection",
      "with a static world the central solver is competitive; under churn "
      "its stale periodic server view loses on latency, tail and delivered "
      "frames (§II-B)");

  const struct {
    const char* name;
    SimDuration period;
  } methods[] = {
      {"distributed client-centric (ours)", 0},
      {"centralized, re-opt every 10 s", sec(10.0)},
      {"centralized, re-opt every 30 s", sec(30.0)},
  };

  for (const bool churning : {false, true}) {
    print_section(churning ? "churning world (§V-D2 model, 12 nodes)"
                           : "static world (12 nodes)");
    Table table({"method", "avg e2e (ms)", "p99 (ms)", "frames/user",
                 "max stall (s)", "moves"});
    for (const auto& method : methods) {
      StreamingStats avg;
      StreamingStats p99;
      StreamingStats frames;
      StreamingStats stall;
      std::uint64_t moves = 0;
      for (const std::uint64_t seed : {2030ull, 2042ull, 2047ull}) {
        const auto result = run(churning, method.period, seed);
        avg.add(result.avg_ms);
        p99.add(result.p99_ms);
        frames.add(result.frames_per_user);
        stall.add(result.avg_max_stall_s);
        moves += result.moves;
      }
      table.add_row({method.name, Table::num(avg.mean()),
                     Table::num(p99.mean()), Table::num(frames.mean(), 0),
                     Table::num(stall.mean(), 1),
                     Table::integer(static_cast<long long>(moves / 3))});
    }
    table.print();
  }
  std::printf(
      "\nfinding: statically, the central solver (which here even gets the "
      "TRUE pairwise RTTs) edges out the distributed protocol by a few ms — "
      "it computes the optimum. Under churn its recorded latency still "
      "looks fine, but that is survivorship: users stranded on dead nodes "
      "record nothing until the next re-optimization round. The service "
      "metrics tell the §II-B story — the distributed protocol delivers "
      "~20-25%% more frames than the 30 s controller and roughly halves the "
      "worst-case stall (in this deliberately thin 12-node population even "
      "it occasionally drains its backup list)\n");
  return 0;
}
