// Fig 4: per-frame end-to-end latency trace across a node failure —
// re-connect (reactive) vs immediate connection switch (our approach).
// The reactive client suffers a visible service gap; the proactive one
// fails over to a warm backup within a frame interval or two.
#include <cstdio>

#include "bench_common.h"
#include "common/table.h"

using namespace eden;

namespace {

struct TraceResult {
  std::vector<std::pair<SimTime, double>> trace;  // bucketed latency
  SimTime max_gap{0};                             // widest frame gap
  std::uint64_t failovers{0};
  std::uint64_t hard_failures{0};
};

TraceResult run(bool proactive, const std::string& trace_out = {}) {
  auto setup = harness::make_realworld_setup(/*seed=*/2022);
  auto& scenario = *setup.scenario;
  if (!trace_out.empty()) scenario.enable_observability();
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(5.0);
  config.proactive_connections = proactive;
  config.reconnect_penalty = msec(1500.0);  // TCP + TLS + discovery restart
  auto& client = scenario.add_edge_client(setup.user_spots[0], config);
  client.start();
  scenario.run_until(sec(30.0));

  // Kill whatever node the user is on.
  if (client.current_node()) {
    const auto index = scenario.node_index(*client.current_node());
    if (index) scenario.stop_node(*index, /*graceful=*/false);
  }
  scenario.run_until(sec(45.0));

  TraceResult result;
  result.trace = client.latency_series().bucketed(sec(25), sec(45), msec(500));
  SimTime prev = 0;
  for (const auto& [t, v] : client.latency_series().points()) {
    if (t < sec(25) || t > sec(45)) {
      prev = t;
      continue;
    }
    if (prev != 0) result.max_gap = std::max(result.max_gap, t - prev);
    prev = t;
  }
  result.failovers = client.stats().failovers;
  result.hard_failures = client.stats().hard_failures;
  bench::write_trace(scenario, trace_out);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Fig 4 — failover trace: re-connect vs immediate connection switch",
      "the proactive approach resumes within ~a frame interval; the "
      "re-connect approach shows a multi-second service gap");

  // The proactive (our-approach) run carries the protocol trace.
  const TraceResult proactive = run(true, bench::trace_out_path(argc, argv));
  const TraceResult reactive = run(false);

  print_section("Per-0.5s average latency (ms), node killed at t = 30 s");
  Table table({"t (s)", "immediate switch (ours)", "re-connect"});
  for (std::size_t i = 0; i < proactive.trace.size(); ++i) {
    auto fmt = [](double v) {
      return v != v ? std::string("-") : Table::num(v);  // NaN -> gap
    };
    table.add_row({Table::num(to_sec(proactive.trace[i].first), 1),
                   fmt(proactive.trace[i].second),
                   i < reactive.trace.size() ? fmt(reactive.trace[i].second)
                                             : "-"});
  }
  table.print();

  print_section("Service interruption");
  Table summary({"approach", "max frame gap (ms)", "failovers", "hard failures"});
  summary.add_row({"immediate switch (ours)",
                   Table::num(to_ms(proactive.max_gap), 0),
                   Table::integer(static_cast<long long>(proactive.failovers)),
                   Table::integer(static_cast<long long>(proactive.hard_failures))});
  summary.add_row({"re-connect",
                   Table::num(to_ms(reactive.max_gap), 0),
                   Table::integer(static_cast<long long>(reactive.failovers)),
                   Table::integer(static_cast<long long>(reactive.hard_failures))});
  summary.print();

  std::printf(
      "\n(paper Fig 4: re-connect shows a large downtime spike on failure; "
      "immediate switch keeps serving with only a small bump)\n");
  return 0;
}
