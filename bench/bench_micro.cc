// Micro-benchmarks (google-benchmark) for EDEN's hot paths: the event
// queue, the GeoHash codec, probing-result sorting, the Erlang-C predictor
// and the optimal-assignment solver.
#include <benchmark/benchmark.h>

#include "baselines/latency_model.h"
#include "baselines/optimal.h"
#include "client/selection_policy.h"
#include "common/rng.h"
#include "geo/geohash.h"
#include "sim/simulator.h"

namespace {

using namespace eden;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      simulator.schedule_at(static_cast<SimTime>(rng.uniform_int(0, 1'000'000)),
                            [] {});
    }
    simulator.run_all();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_GeohashEncode(benchmark::State& state) {
  Rng rng(2);
  const geo::GeoPoint p{rng.uniform(-90, 90), rng.uniform(-180, 180)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::geohash_encode(p, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_GeohashEncode)->Arg(6)->Arg(12);

void BM_GeohashDecode(benchmark::State& state) {
  const std::string hash = geo::geohash_encode({44.9778, -93.2650}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::geohash_decode(hash));
  }
}
BENCHMARK(BM_GeohashDecode);

void BM_GeohashNeighbors(benchmark::State& state) {
  const std::string hash = geo::geohash_encode({44.9778, -93.2650}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::geohash_neighbors(hash));
  }
}
BENCHMARK(BM_GeohashNeighbors);

void BM_SortCandidates(benchmark::State& state) {
  Rng rng(3);
  std::vector<client::ProbeResult> results;
  for (int i = 0; i < state.range(0); ++i) {
    client::ProbeResult r;
    r.node = NodeId{static_cast<std::uint32_t>(i)};
    r.d_prop_ms = rng.uniform(5, 50);
    r.process.whatif_ms = rng.uniform(20, 80);
    r.process.current_ms = rng.uniform(20, 80);
    r.process.attached_users = static_cast<int>(rng.uniform_int(0, 8));
    results.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client::sort_candidates(
        results, client::LocalPolicy::kGlobalOverhead, {}, 12345));
  }
}
BENCHMARK(BM_SortCandidates)->Arg(5)->Arg(50);

void BM_ErlangC(benchmark::State& state) {
  for (auto _ : state) {
    for (int c = 1; c <= 16; ++c) {
      benchmark::DoNotOptimize(baselines::erlang_c(c, 0.8 * c));
    }
  }
}
BENCHMARK(BM_ErlangC);

baselines::PredictInput make_input(int users, int nodes, std::uint64_t seed) {
  Rng rng(seed);
  baselines::PredictInput input;
  for (int j = 0; j < nodes; ++j) {
    baselines::NodeInfo info;
    info.id = NodeId{static_cast<std::uint32_t>(j)};
    info.cores = static_cast<int>(rng.uniform_int(1, 8));
    info.base_frame_ms = rng.uniform(15, 60);
    input.nodes.push_back(info);
  }
  for (int i = 0; i < users; ++i) {
    std::vector<double> rtt;
    std::vector<double> trans;
    for (int j = 0; j < nodes; ++j) {
      rtt.push_back(rng.uniform(5, 55));
      trans.push_back(rng.uniform(1, 5));
    }
    input.rtt_ms.push_back(std::move(rtt));
    input.trans_ms.push_back(std::move(trans));
  }
  return input;
}

void BM_AverageLatency(benchmark::State& state) {
  const auto input = make_input(15, 9, 7);
  std::vector<int> assignment(15);
  Rng rng(8);
  for (auto& a : assignment) a = static_cast<int>(rng.uniform_int(0, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::average_latency_ms(input, assignment));
  }
}
BENCHMARK(BM_AverageLatency);

void BM_OptimalSolver(benchmark::State& state) {
  const auto input = make_input(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 9);
  for (auto _ : state) {
    Rng rng(10);
    benchmark::DoNotOptimize(baselines::solve_optimal(input, rng));
  }
}
BENCHMARK(BM_OptimalSolver)->Args({6, 4})->Args({15, 9});

}  // namespace

BENCHMARK_MAIN();
