// Micro-benchmarks (google-benchmark) for EDEN's hot paths: the event
// queue, the GeoHash codec, probing-result sorting, the Erlang-C predictor
// and the optimal-assignment solver.
//
// `bench_micro --json [path]` skips google-benchmark and instead runs the
// event-engine + network hot-path suite with a hand-rolled timer, writing
// machine-readable results (events/sec, callback allocs/event, base_rtt
// ns/call) to BENCH_micro.json at the repo root (or `path`). The JSON also
// carries the seed-engine numbers measured on the same machine when the
// event-engine overhaul landed, so the speedup claim is reproducible.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "alloc_hook.h"
#include "baselines/latency_model.h"
#include "baselines/optimal.h"
#include "client/selection_policy.h"
#include "common/rng.h"
#include "geo/geohash.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

namespace {

using namespace eden;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    Rng rng(1);
    for (int i = 0; i < events; ++i) {
      simulator.schedule_at(static_cast<SimTime>(rng.uniform_int(0, 1'000'000)),
                            [] {});
    }
    simulator.run_all();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000);

// The timeout pattern EDEN protocol code leans on: a pool of pending
// timeouts where each operation cancels one and schedules a replacement,
// with the clock advancing enough for a fraction to fire.
void BM_SimulatorCancelChurn(benchmark::State& state) {
  sim::Simulator simulator;
  Rng rng(2);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(simulator.schedule_at(
        static_cast<SimTime>(1000 + rng.uniform_int(0, 50'000)), [] {}));
  }
  int i = 0;
  for (auto _ : state) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    simulator.cancel(ids[j]);
    ids[j] = simulator.schedule_at(
        simulator.now() + 1000 + static_cast<SimTime>(rng.uniform_int(0, 50'000)),
        [] {});
    if ((i++ & 15) == 0) simulator.run_until(simulator.now() + 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCancelChurn);

net::GeoNetwork make_geo_world(int hosts) {
  net::GeoNetwork world(/*jitter_sigma=*/0.0);
  Rng rng(11);
  for (int i = 0; i < hosts; ++i) {
    const auto tier = static_cast<net::AccessTier>(rng.uniform_int(0, 5));
    world.add_host(HostId{static_cast<std::uint32_t>(i + 1)},
                   {rng.uniform(-60, 60), rng.uniform(-180, 180)}, tier,
                   static_cast<int>(rng.uniform_int(0, 4)));
  }
  return world;
}

// Steady-state sampling: after warmup every ordered pair is memoized.
void BM_GeoBaseRttCached(benchmark::State& state) {
  auto world = make_geo_world(40);
  Rng rng(12);
  std::uint32_t a = 1, b = 2;
  for (auto _ : state) {
    a = a % 40 + 1;
    b = (b + 7) % 40 + 1;
    benchmark::DoNotOptimize(world.base_rtt(HostId{a}, HostId{b}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GeoBaseRttCached);

// First-touch cost: a fresh world per pass, every pair computed once.
void BM_GeoBaseRttCold(benchmark::State& state) {
  for (auto _ : state) {
    auto world = make_geo_world(40);
    for (std::uint32_t a = 1; a <= 40; ++a) {
      for (std::uint32_t b = 1; b <= 40; ++b) {
        if (a != b) benchmark::DoNotOptimize(world.base_rtt(HostId{a}, HostId{b}));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 40 * 39);
}
BENCHMARK(BM_GeoBaseRttCold);

void BM_GeohashEncode(benchmark::State& state) {
  Rng rng(2);
  const geo::GeoPoint p{rng.uniform(-90, 90), rng.uniform(-180, 180)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geo::geohash_encode(p, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_GeohashEncode)->Arg(6)->Arg(12);

void BM_GeohashDecode(benchmark::State& state) {
  const std::string hash = geo::geohash_encode({44.9778, -93.2650}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::geohash_decode(hash));
  }
}
BENCHMARK(BM_GeohashDecode);

void BM_GeohashNeighbors(benchmark::State& state) {
  const std::string hash = geo::geohash_encode({44.9778, -93.2650}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::geohash_neighbors(hash));
  }
}
BENCHMARK(BM_GeohashNeighbors);

void BM_SortCandidates(benchmark::State& state) {
  Rng rng(3);
  std::vector<client::ProbeResult> results;
  for (int i = 0; i < state.range(0); ++i) {
    client::ProbeResult r;
    r.node = NodeId{static_cast<std::uint32_t>(i)};
    r.d_prop_ms = rng.uniform(5, 50);
    r.process.whatif_ms = rng.uniform(20, 80);
    r.process.current_ms = rng.uniform(20, 80);
    r.process.attached_users = static_cast<int>(rng.uniform_int(0, 8));
    results.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client::sort_candidates(
        results, client::LocalPolicy::kGlobalOverhead, {}, 12345));
  }
}
BENCHMARK(BM_SortCandidates)->Arg(5)->Arg(50);

void BM_ErlangC(benchmark::State& state) {
  for (auto _ : state) {
    for (int c = 1; c <= 16; ++c) {
      benchmark::DoNotOptimize(baselines::erlang_c(c, 0.8 * c));
    }
  }
}
BENCHMARK(BM_ErlangC);

baselines::PredictInput make_input(int users, int nodes, std::uint64_t seed) {
  Rng rng(seed);
  baselines::PredictInput input;
  for (int j = 0; j < nodes; ++j) {
    baselines::NodeInfo info;
    info.id = NodeId{static_cast<std::uint32_t>(j)};
    info.cores = static_cast<int>(rng.uniform_int(1, 8));
    info.base_frame_ms = rng.uniform(15, 60);
    input.nodes.push_back(info);
  }
  for (int i = 0; i < users; ++i) {
    std::vector<double> rtt;
    std::vector<double> trans;
    for (int j = 0; j < nodes; ++j) {
      rtt.push_back(rng.uniform(5, 55));
      trans.push_back(rng.uniform(1, 5));
    }
    input.rtt_ms.push_back(std::move(rtt));
    input.trans_ms.push_back(std::move(trans));
  }
  return input;
}

void BM_AverageLatency(benchmark::State& state) {
  const auto input = make_input(15, 9, 7);
  std::vector<int> assignment(15);
  Rng rng(8);
  for (auto& a : assignment) a = static_cast<int>(rng.uniform_int(0, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::average_latency_ms(input, assignment));
  }
}
BENCHMARK(BM_AverageLatency);

void BM_OptimalSolver(benchmark::State& state) {
  const auto input = make_input(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)), 9);
  for (auto _ : state) {
    Rng rng(10);
    benchmark::DoNotOptimize(baselines::solve_optimal(input, rng));
  }
}
BENCHMARK(BM_OptimalSolver)->Args({6, 4})->Args({15, 9});

// ---------------------------------------------------------------------------
// --json mode: hand-rolled timing of the hot-path suite, best of `kRounds`.

using JsonClock = std::chrono::steady_clock;

double best_of(int rounds, double (*fn)(int), int arg) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const double v = fn(arg);
    if (v < best) best = v;
  }
  return best;
}

double time_schedule_run_ns(int events) {
  sim::Simulator simulator;
  Rng rng(1);
  const auto t0 = JsonClock::now();
  for (int i = 0; i < events; ++i) {
    simulator.schedule_at(static_cast<SimTime>(rng.uniform_int(0, 1'000'000)),
                          [] {});
  }
  simulator.run_all();
  const auto t1 = JsonClock::now();
  benchmark::DoNotOptimize(simulator.events_processed());
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / events;
}

double time_cancel_churn_ns(int ops) {
  sim::Simulator simulator;
  Rng rng(2);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(simulator.schedule_at(
        static_cast<SimTime>(1000 + rng.uniform_int(0, 50'000)), [] {}));
  }
  const auto t0 = JsonClock::now();
  for (int i = 0; i < ops; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    simulator.cancel(ids[j]);
    ids[j] = simulator.schedule_at(
        simulator.now() + 1000 +
            static_cast<SimTime>(rng.uniform_int(0, 50'000)),
        [] {});
    if ((i & 15) == 0) simulator.run_until(simulator.now() + 20);
  }
  const auto t1 = JsonClock::now();
  benchmark::DoNotOptimize(simulator.events_processed());
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
}

double time_base_rtt_cached_ns(int calls) {
  auto world = make_geo_world(40);
  // Warm every pair so the steady-state number excludes first-touch cost.
  for (std::uint32_t a = 1; a <= 40; ++a) {
    for (std::uint32_t b = 1; b <= 40; ++b) {
      if (a != b) benchmark::DoNotOptimize(world.base_rtt(HostId{a}, HostId{b}));
    }
  }
  std::uint32_t a = 1, b = 2;
  const auto t0 = JsonClock::now();
  for (int i = 0; i < calls; ++i) {
    a = a % 40 + 1;
    b = (b + 7) % 40 + 1;
    benchmark::DoNotOptimize(world.base_rtt(HostId{a}, HostId{b}));
  }
  const auto t1 = JsonClock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / calls;
}

// Full request/response round trips over the simulated fabric on a 2-host
// matrix world (no jitter: this isolates the rpc machinery itself — state
// bookkeeping, callback storage, timeout schedule/cancel — from the delay
// model). Replies are immediate so the 400 ms timeout never fires and every
// rpc completes.
double time_rpc_async_ns(int rpcs) {
  sim::Simulator simulator;
  net::MatrixNetwork model(20.0, 100.0, /*jitter_sigma=*/0.0);
  net::HostTable hosts;
  hosts.set_alive(HostId{1}, true);
  hosts.set_alive(HostId{2}, true);
  net::SimNetwork network(simulator, model, hosts, Rng(7));
  int completed = 0;
  const auto issue = [&](int count) {
    for (int i = 0; i < count; ++i) {
      network.rpc_async<int>(
          HostId{1}, HostId{2}, 200.0, 200.0, msec(400.0),
          [](auto reply) { reply(42); },
          [&completed](std::optional<int> response) {
            completed += response.has_value() ? 1 : 0;
          });
      // Keep a bounded number of rpcs in flight, like a probing client.
      if ((i & 63) == 63) simulator.run_all();
    }
    simulator.run_all();
  };
  issue(2'000);  // warm the event arena / rpc pool / allocator
  const auto t0 = JsonClock::now();
  issue(rpcs);
  const auto t1 = JsonClock::now();
  benchmark::DoNotOptimize(completed);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / rpcs;
}

// One-way delay sampling through SimNetwork::sample_delay on a jittered
// GeoNetwork (sigma 0.08, the fleet-bench configuration): pair-metric
// lookup + log-normal jitter draw + transfer delay.
double time_sample_owd_ns(int samples) {
  sim::Simulator simulator;
  net::GeoNetwork model(/*jitter_sigma=*/0.08);
  Rng layout(11);
  constexpr std::uint32_t kHosts = 256;
  for (std::uint32_t i = 0; i < kHosts; ++i) {
    const auto tier = static_cast<net::AccessTier>(layout.uniform_int(0, 5));
    model.add_host(HostId{i + 1},
                   {layout.uniform(-60, 60), layout.uniform(-180, 180)}, tier,
                   static_cast<int>(layout.uniform_int(0, 4)));
  }
  net::HostTable hosts;
  net::SimNetwork network(simulator, model, hosts, Rng(9));
  SimDuration acc = 0;
  std::uint32_t a = 1, b = 2;
  const auto walk = [&](int count, SimDuration& sum) {
    for (int i = 0; i < count; ++i) {
      a = a % kHosts + 1;
      b = (b + 7) % kHosts + 1;
      sum += network.sample_delay(HostId{a}, HostId{b}, 1500.0);
    }
  };
  SimDuration warm_sum = 0;
  walk(70'000, warm_sum);  // memoize every pair the walk visits
  benchmark::DoNotOptimize(warm_sum);
  const auto t0 = JsonClock::now();
  walk(samples, acc);
  const auto t1 = JsonClock::now();
  benchmark::DoNotOptimize(acc);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / samples;
}

// dropped() + delay_factor() under a realistic churn scenario: hundreds of
// cut/slow windows plus host isolations, queried with a monotonically
// advancing clock (the only access pattern the simulator produces).
double time_fault_lookup_ns(int queries) {
  net::FaultInjector faults;
  Rng rng(13);
  constexpr std::uint32_t kHosts = 64;
  const auto random_host = [&] {
    return HostId{static_cast<std::uint32_t>(rng.uniform_int(1, kHosts))};
  };
  for (int i = 0; i < 256; ++i) {
    HostId a = random_host();
    HostId b = random_host();
    if (a == b) b = HostId{a.value % kHosts + 1};
    const SimTime begin = sec(rng.uniform(0.0, 50.0));
    faults.cut_link(a, b, begin, begin + sec(rng.uniform(0.5, 10.0)));
    HostId c = random_host();
    HostId d = random_host();
    if (c == d) d = HostId{c.value % kHosts + 1};
    const SimTime begin2 = sec(rng.uniform(0.0, 50.0));
    faults.slow_link(c, d, 2.0, begin2, begin2 + sec(rng.uniform(0.5, 10.0)));
  }
  for (std::uint32_t i = 0; i < 16; ++i) {
    const SimTime begin = sec(rng.uniform(0.0, 50.0));
    faults.isolate_host(HostId{i * 4 + 1}, begin,
                        begin + sec(rng.uniform(0.5, 5.0)));
  }
  unsigned drops = 0;
  double factor_acc = 0.0;
  const auto t0 = JsonClock::now();
  for (int i = 0; i < queries; ++i) {
    const HostId a{static_cast<std::uint32_t>(i * 7 % kHosts + 1)};
    const HostId b{static_cast<std::uint32_t>(i * 13 % kHosts + 1)};
    const SimTime now =
        sec(60.0) * static_cast<SimTime>(i) / static_cast<SimTime>(queries);
    drops += faults.dropped(a, b, now) ? 1u : 0u;
    factor_acc += faults.delay_factor(a, b, now);
  }
  const auto t1 = JsonClock::now();
  benchmark::DoNotOptimize(drops);
  benchmark::DoNotOptimize(factor_acc);
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / queries;
}

int run_json(const std::string& path) {
  // Seed-engine numbers (std::priority_queue + unordered_map simulator,
  // unmemoized GeoNetwork) measured with this same harness, same machine,
  // same session the overhaul landed in. They make speedup_vs_seed
  // reproducible without rebuilding the old engine.
  struct SeedRef {
    int events;
    double ns_per_event;
  };
  const SeedRef seed_sched[] = {
      {1'000, 110.3}, {10'000, 160.2}, {100'000, 359.8}, {1'000'000, 1523.1}};
  const double seed_churn_ns = 239.7;
  const double seed_base_rtt_ns = 48.7;
  // Messaging-layer numbers of the shared_ptr/std::function rpc path, the
  // un-hoisted sample_delay and the linear-scan FaultInjector, measured with
  // this same harness on the same machine just before the messaging-hot-path
  // overhaul landed.
  const double seed_rpc_async_ns = 383.4;
  const double seed_rpc_allocs = 7.020;
  const double seed_sample_owd_ns = 50.6;
  const double seed_fault_lookup_ns = 573.1;

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"schema\": \"eden-bench-micro-v1\",\n");
  std::fprintf(out, "  \"simulator_schedule_run\": [\n");
  double ratio_product = 1.0;
  int ratio_count = 0;
  for (std::size_t i = 0; i < std::size(seed_sched); ++i) {
    const int events = seed_sched[i].events;
    const int rounds = events >= 1'000'000 ? 3 : 7;
    const std::uint64_t allocs0 = sim::Callback::heap_allocations();
    const double ns = best_of(rounds, time_schedule_run_ns, events);
    const double allocs_per_event =
        static_cast<double>(sim::Callback::heap_allocations() - allocs0) /
        (static_cast<double>(events) * rounds);
    const double speedup = seed_sched[i].ns_per_event / ns;
    ratio_product *= speedup;
    ++ratio_count;
    std::fprintf(out,
                 "    {\"events\": %d, \"ns_per_event\": %.1f, "
                 "\"events_per_sec\": %.0f, \"callback_allocs_per_event\": "
                 "%.4f, \"seed_ns_per_event\": %.1f, \"speedup_vs_seed\": "
                 "%.2f}%s\n",
                 events, ns, 1e9 / ns, allocs_per_event,
                 seed_sched[i].ns_per_event, speedup,
                 i + 1 < std::size(seed_sched) ? "," : "");
    std::printf("schedule_run %7d: %.1f ns/ev (%.2fM ev/s, %.2fx seed)\n",
                events, ns, 1e3 / ns, speedup);
  }
  std::fprintf(out, "  ],\n");

  const double churn_ns = best_of(5, time_cancel_churn_ns, 1'000'000);
  ratio_product *= seed_churn_ns / churn_ns;
  ++ratio_count;
  std::fprintf(out,
               "  \"simulator_cancel_churn\": {\"ns_per_op\": %.1f, "
               "\"ops_per_sec\": %.0f, \"seed_ns_per_op\": %.1f, "
               "\"speedup_vs_seed\": %.2f},\n",
               churn_ns, 1e9 / churn_ns, seed_churn_ns,
               seed_churn_ns / churn_ns);
  std::printf("cancel_churn: %.1f ns/op (%.2fx seed)\n", churn_ns,
              seed_churn_ns / churn_ns);

  const double rtt_ns = best_of(5, [](int calls) {
    return time_base_rtt_cached_ns(calls);
  }, 2'000'000);
  std::fprintf(out,
               "  \"geo_base_rtt\": {\"cached_ns_per_call\": %.2f, "
               "\"seed_ns_per_call\": %.1f, \"speedup_vs_seed\": %.2f},\n",
               rtt_ns, seed_base_rtt_ns, seed_base_rtt_ns / rtt_ns);
  std::printf("geo_base_rtt: %.2f ns/call (%.2fx seed)\n", rtt_ns,
              seed_base_rtt_ns / rtt_ns);

  // ---- messaging hot path (rpc_async / sample_owd / fault_lookup) ----
  const auto safe_ratio = [](double seed, double measured) {
    return seed > 0.0 && measured > 0.0 ? seed / measured : 1.0;
  };
  double messaging_product = 1.0;
  int messaging_count = 0;

  const std::uint64_t rpc_allocs0 = eden::bench::allocation_count();
  constexpr int kRpcRounds = 5;
  constexpr int kRpcCount = 200'000;
  const double rpc_ns = best_of(kRpcRounds, time_rpc_async_ns, kRpcCount);
  // Warmup issues 2'000 extra rpcs per round; fold them into the divisor so
  // the alloc figure cannot flatter the steady state.
  const double rpc_allocs =
      static_cast<double>(eden::bench::allocation_count() - rpc_allocs0) /
      (static_cast<double>(kRpcRounds) * (kRpcCount + 2'000));
  messaging_product *= safe_ratio(seed_rpc_async_ns, rpc_ns);
  ++messaging_count;
  std::fprintf(out,
               "  \"rpc_async\": {\"ns_per_rpc\": %.1f, \"allocs_per_rpc\": "
               "%.3f,\n    \"seed_ns_per_rpc\": %.1f, \"seed_allocs_per_rpc\": "
               "%.3f, \"speedup_vs_seed\": %.2f},\n",
               rpc_ns, rpc_allocs, seed_rpc_async_ns, seed_rpc_allocs,
               safe_ratio(seed_rpc_async_ns, rpc_ns));
  std::printf("rpc_async: %.1f ns/rpc, %.3f allocs/rpc (%.2fx seed)\n", rpc_ns,
              rpc_allocs, safe_ratio(seed_rpc_async_ns, rpc_ns));

  const double owd_ns = best_of(5, time_sample_owd_ns, 2'000'000);
  messaging_product *= safe_ratio(seed_sample_owd_ns, owd_ns);
  ++messaging_count;
  std::fprintf(out,
               "  \"sample_owd\": {\"ns_per_sample\": %.1f, "
               "\"seed_ns_per_sample\": %.1f, \"speedup_vs_seed\": %.2f},\n",
               owd_ns, seed_sample_owd_ns, safe_ratio(seed_sample_owd_ns, owd_ns));
  std::printf("sample_owd: %.1f ns/sample (%.2fx seed)\n", owd_ns,
              safe_ratio(seed_sample_owd_ns, owd_ns));

  const double fault_ns = best_of(7, time_fault_lookup_ns, 500'000);
  messaging_product *= safe_ratio(seed_fault_lookup_ns, fault_ns);
  ++messaging_count;
  std::fprintf(out,
               "  \"fault_lookup\": {\"ns_per_query\": %.1f, "
               "\"seed_ns_per_query\": %.1f, \"speedup_vs_seed\": %.2f},\n",
               fault_ns, seed_fault_lookup_ns,
               safe_ratio(seed_fault_lookup_ns, fault_ns));
  std::printf("fault_lookup: %.1f ns/query (%.2fx seed)\n", fault_ns,
              safe_ratio(seed_fault_lookup_ns, fault_ns));

  const double messaging_geomean =
      std::pow(messaging_product, 1.0 / messaging_count);
  std::fprintf(out, "  \"messaging_speedup_geomean\": %.2f,\n",
               messaging_geomean);
  std::printf("messaging speedup geomean: %.2fx\n", messaging_geomean);

  double geomean = 1.0;
  if (ratio_count > 0) {
    geomean = std::pow(ratio_product, 1.0 / ratio_count);
  }
  std::fprintf(out,
               "  \"event_loop_speedup_geomean\": %.2f\n}\n", geomean);
  std::printf("event-loop speedup geomean: %.2fx\n", geomean);
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::string path;
      if (i + 1 < argc && argv[i + 1][0] != '-') path = argv[i + 1];
      if (path.empty()) {
#ifdef EDEN_SOURCE_DIR
        path = std::string(EDEN_SOURCE_DIR) + "/BENCH_micro.json";
#else
        path = "BENCH_micro.json";
#endif
      }
      return run_json(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
