// Global allocation counter for benchmarks. alloc_hook.cc overrides the
// replaceable operator new/delete family and counts every allocation; the
// TU is linked into the bench executables only, so production binaries and
// tests keep the stock allocator path. The counter is how BENCH_scale.json
// reports allocs_per_event and how bench_micro attributes heap traffic to
// the messaging hot path.
#pragma once

#include <cstdint>

namespace eden::bench {

// Number of operator-new calls (all forms) since process start.
std::uint64_t allocation_count();

// Diagnostic: while enabled, every operator-new call dumps a raw return
// address backtrace to stderr (resolve offline with addr2line -e <bin>).
// Used by bench_live --trace-allocs to attribute steady-state allocations
// to their call sites. Off by default; has no cost when off.
void set_allocation_trace(bool enabled);

}  // namespace eden::bench
