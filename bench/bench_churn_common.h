// Shared world builder for the churn experiments (Figs 8, 9, 10): the
// §V-D2 configuration — 18 nodes arriving as a Poisson process with
// Weibull lifetimes over a 3-minute timeline, 10 static users, TopN and
// proactive-connection knobs.
#pragma once

#include <memory>
#include <vector>

#include "bench_common.h"
#include "churn/churn.h"

namespace eden::bench {

struct ChurnWorld {
  std::unique_ptr<harness::Scenario> scenario;
  std::vector<client::EdgeClient*> clients;
  churn::ChurnSchedule schedule;

  [[nodiscard]] std::vector<const TimeSeries*> series() const {
    std::vector<const TimeSeries*> out;
    for (const auto* c : clients) out.push_back(&c->latency_series());
    return out;
  }
};

// Knobs for the churn experiments; defaults reproduce §V-D2.
struct ChurnWorldOptions {
  std::uint64_t seed{2030};
  SimDuration horizon{sec(180.0)};
  int users{10};
  // Client configuration template (id/geohash filled per user).
  client::ClientConfig client;
  // Manager-side selection policy (reliability ablations etc.).
  manager::GlobalPolicy manager_policy{};
  // Churn model overrides.
  double lifetime_shape{1.5};
  double lifetime_mean_sec{50.0};
  // Enable scenario observability (TraceRecorder + MetricsRegistry).
  bool trace{false};
};

// Build and run the churn world to the horizon. The node schedule, layout
// and RTTs depend only on the seed, so different client/manager settings
// are compared on an identical timeline — as in the paper's Fig 9/10
// sweeps.
inline ChurnWorld run_churn_world(const ChurnWorldOptions& options) {
  ChurnWorld world;
  harness::ScenarioConfig config;
  config.seed = options.seed;
  config.manager_policy = options.manager_policy;
  config.trace = options.trace;
  world.scenario = std::make_unique<harness::Scenario>(
      config, harness::NetKind::kMatrix, 25.0, 50.0, 0.05);
  auto& scenario = *world.scenario;
  const std::uint64_t seed = options.seed;
  const SimDuration horizon = options.horizon;
  const int users = options.users;

  // §V-D2 churn model: Poisson(k = 4 per 30 s) joins, Weibull(mean 50 s)
  // lifetimes, 18 total nodes over 3 minutes. A few initial nodes let the
  // static users attach at t = 0.
  churn::ChurnConfig churn_config;
  churn_config.horizon = horizon;
  churn_config.joins_per_period = 4.0;
  churn_config.lifetime_mean_sec = options.lifetime_mean_sec;
  churn_config.lifetime_shape = options.lifetime_shape;
  churn_config.initial_nodes = 5;
  churn_config.max_nodes = 18;
  Rng churn_rng = Rng(seed).fork("churn-schedule");
  world.schedule = churn::generate_churn(churn_config, churn_rng);

  Rng layout_rng = Rng(seed).fork("churn-layout");
  const geo::GeoPoint center{44.9778, -93.2650};
  const auto specs =
      harness::churn_node_specs(static_cast<int>(world.schedule.total_nodes));
  std::vector<geo::GeoPoint> node_positions;
  for (auto spec : specs) {
    spec.position = harness::random_point_near(center, 40.0, layout_rng);
    node_positions.push_back(spec.position);
    scenario.add_node(spec);
  }
  for (const auto& event : world.schedule.events) {
    if (event.kind == churn::ChurnEventKind::kJoin) {
      scenario.schedule_node_start(event.node_index, event.at);
    } else {
      scenario.schedule_node_stop(event.node_index, event.at,
                                  /*graceful=*/false);
    }
  }

  for (int i = 0; i < users; ++i) {
    client::ClientConfig client_config = options.client;
    harness::ClientSpot spot;
    spot.name = "user-" + std::to_string(i);
    spot.position = harness::random_point_near(center, 40.0, layout_rng);
    auto& client = scenario.add_edge_client(spot, client_config);
    // Distance-derived pairwise RTTs, same recipe as the static emulation.
    for (std::size_t j = 0; j < scenario.node_count(); ++j) {
      scenario.matrix_network()->set_rtt_ms(
          client.id(), scenario.node_id(j),
          harness::emulation_rtt_ms(spot.position, node_positions[j],
                                    layout_rng));
    }
    scenario.simulator().schedule_at(msec(200.0), [&client] { client.start(); });
    world.clients.push_back(&client);
  }

  scenario.run_until(horizon);
  return world;
}

// Back-compat convenience used by the Fig 8/9/10 benches.
inline ChurnWorld run_churn_world(int top_n, bool proactive,
                                  std::uint64_t seed,
                                  SimDuration horizon = sec(180.0),
                                  int users = 10, bool trace = false) {
  ChurnWorldOptions options;
  options.seed = seed;
  options.horizon = horizon;
  options.users = users;
  options.client.top_n = top_n;
  options.client.probing_period = sec(5.0);
  options.client.proactive_connections = proactive;
  options.trace = trace;
  return run_churn_world(options);
}

}  // namespace eden::bench
