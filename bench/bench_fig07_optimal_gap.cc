// Fig 7: average latency after all 15 emulated users joined, for the three
// selection methods, against the optimal edge assignment computed from the
// application/network profile. Paper: ours ~+12% over optimal vs +51%
// (resource-aware) and +102% (locality).
#include <cstdio>

#include "baselines/optimal.h"
#include "bench_common.h"
#include "common/table.h"

using namespace eden;
using bench::Fleet;
using bench::Policy;

namespace {

constexpr SimDuration kJoinInterval = sec(10.0);
constexpr int kUsers = 15;
constexpr double kFps = 20.0;

// Users run the normal adaptive-rate application (same as Fig 6); the
// analytic optimum is computed at the nominal 20 fps, which is what users
// actually sustain under a non-overloaded (i.e. optimal) assignment.
double run_policy(Policy policy, std::vector<HostId>* client_hosts_out,
                  harness::EmulationSetup* setup_out) {
  auto setup = harness::make_emulation_setup(/*seed=*/2022, kUsers);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  bench::FleetOptions options;
  options.adaptive_rate = true;
  options.max_fps = kFps;
  Fleet fleet(scenario, policy, options);
  for (int i = 0; i < kUsers; ++i) {
    fleet.add_user(setup.user_spots[i], sec(2.0) + kJoinInterval * i,
                   [&setup](HostId host, std::size_t index) {
                     setup.wire_client(host, index);
                   });
  }
  const SimTime end = sec(2.0) + kJoinInterval * kUsers + sec(30.0);
  scenario.run_until(end);

  if (client_hosts_out != nullptr) {
    client_hosts_out->clear();
    for (const auto* c : fleet.edge_clients()) {
      client_hosts_out->push_back(c->id());
    }
    for (const auto* c : fleet.static_clients()) {
      client_hosts_out->push_back(c->id());
    }
    *setup_out = std::move(setup);
  }
  return fleet.window_mean(end - sec(25.0), end);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig 7 — measured latency vs optimal assignment (emulation, 15 users)",
      "gap over optimal: client-centric smallest (paper ~12%), then "
      "resource-aware (~51%), locality worst (~102%)");

  std::vector<HostId> client_hosts;
  harness::EmulationSetup kept_setup;
  const double ours =
      run_policy(Policy::kClientCentric, &client_hosts, &kept_setup);
  const double resource = run_policy(Policy::kResourceAware, nullptr, nullptr);
  const double locality = run_policy(Policy::kGeoProximity, nullptr, nullptr);

  // Optimal assignment over the same profile (base RTTs, nominal rate).
  auto input = kept_setup.scenario->predict_input(client_hosts, kFps, 20'000);
  Rng rng(2022);
  const auto optimal = baselines::solve_optimal(input, rng);

  print_section("Average end-to-end latency after all users joined");
  Table table({"method", "latency (ms)", "vs optimal"});
  auto gap = [&](double v) {
    return "+" + Table::num(100.0 * (v / optimal.avg_latency_ms - 1.0), 0) + "%";
  };
  table.add_row({"Optimal (solver)", Table::num(optimal.avg_latency_ms), "-"});
  table.add_row({"Client-centric (ours)", Table::num(ours), gap(ours)});
  table.add_row({"Resource-aware", Table::num(resource), gap(resource)});
  table.add_row({"Locality-based", Table::num(locality), gap(locality)});
  table.print();

  print_section("Optimal assignment (user -> node)");
  Table assignment({"user", "node", "node type"});
  for (std::size_t i = 0; i < optimal.assignment.size(); ++i) {
    const auto& node = input.nodes[optimal.assignment[i]];
    assignment.add_row({"user-" + std::to_string(i), node.name,
                        Table::integer(node.cores) + " cores / " +
                            Table::num(node.base_frame_ms, 0) + " ms"});
  }
  assignment.print();

  std::printf(
      "\nsolver: %s, %llu objective evaluations\n"
      "(paper Fig 7: ours ~12%% above optimal; resource-aware ~51%%; "
      "locality ~102%%)\n",
      optimal.exact ? "exhaustive" : "greedy + local search",
      static_cast<unsigned long long>(optimal.evaluations));
  return 0;
}
