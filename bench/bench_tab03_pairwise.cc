// Table III: pairwise predicted end-to-end latency (D_prop + what-if
// D_proc) between 3 users and all edge nodes, with the node each user's
// local selection picks (TopN = 6 so every node is probed). Experiments
// run per-user on a fresh world to avoid interference, as in the paper.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "common/table.h"

using namespace eden;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;
  bench::print_header(
      "Table III — pairwise user/node latency with selection (TopN = 6+)",
      "each user selects the node minimising its probed D_prop + D_proc; "
      "selections differ per user because connectivity differs");

  const char* node_names[] = {"V1", "V2", "V3", "V4", "V5",
                              "D6", "D7", "D8", "D9", "Cloud"};

  Table table({"client", "V1", "V2", "V3", "V4", "V5", "D6", "D7", "D8", "D9",
               "Cloud", "selected"});

  // One world, three users probed sequentially (each stops before the next
  // starts) so results do not interfere but per-pair network heterogeneity
  // is preserved.
  auto setup = harness::make_realworld_setup(seed);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  for (int user_index = 0; user_index < 3; ++user_index) {
    client::ClientConfig config;
    config.top_n = static_cast<int>(scenario.node_count());
    config.send_frames = false;  // selection-only, like the paper's table
    auto& client =
        scenario.add_edge_client(setup.user_spots[user_index], config);
    client.start();
    scenario.run_until(scenario.simulator().now() + sec(3.0));

    const auto& results = client.last_probe_results();
    std::vector<std::string> row{"U" + std::to_string(user_index + 1)};
    row.resize(12);
    for (const auto& r : results) {
      const auto index = scenario.node_index(r.node);
      if (index) row[1 + *index] = Table::num(r.lo(), 0);
    }
    std::string selected = "-";
    if (client.current_node()) {
      const auto index = scenario.node_index(*client.current_node());
      if (index) selected = node_names[*index];
    }
    row[11] = selected;  // last column
    table.add_row(row);

    client.stop();  // detach before the next user probes
    scenario.run_until(scenario.simulator().now() + sec(1.0));
  }

  print_section("Predicted e2e latency (ms): D_prop + what-if D_proc");
  table.print();
  std::printf(
      "\n(paper Table III: U1 selects V1 at 38 ms, U2 selects V2 at 35 ms, "
      "U3 selects D6 at 42 ms — selection tracks per-user connectivity, "
      "not a global ranking; cloud is ~100+ ms for everyone)\n");
  return 0;
}
