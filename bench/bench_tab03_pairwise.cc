// Table III: pairwise predicted end-to-end latency (D_prop + what-if
// D_proc) between 3 users and all edge nodes, with the node each user's
// local selection picks (TopN = 6 so every node is probed). Each user
// probes a fresh world built from the same seed — identical layout and
// RTT heterogeneity, zero cross-user interference — which also lets the
// three probing runs fan out across a thread pool (ParallelRunner); each
// job owns its world, so results are independent of thread count.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "harness/parallel_runner.h"

using namespace eden;

namespace {

struct UserRow {
  // Predicted latency cell per node index; empty when not probed.
  std::vector<std::string> prediction;
  int selected_node{-1};
};

UserRow probe_user(std::uint64_t seed, int user_index) {
  auto setup = harness::make_realworld_setup(seed);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = static_cast<int>(scenario.node_count());
  config.send_frames = false;  // selection-only, like the paper's table
  // Create clients in the same order as a sequential run so HostId
  // allocation — and with it each client's derived RNG streams — matches;
  // only this job's user actually starts probing.
  client::EdgeClient* me = nullptr;
  for (int u = 0; u <= user_index; ++u) {
    auto& c = scenario.add_edge_client(setup.user_spots[u], config);
    if (u == user_index) me = &c;
  }
  me->start();
  scenario.run_until(scenario.simulator().now() + sec(3.0));

  UserRow row;
  row.prediction.resize(scenario.node_count());
  for (const auto& r : me->last_probe_results()) {
    const auto index = scenario.node_index(r.node);
    if (index) row.prediction[*index] = Table::num(r.lo(), 0);
  }
  if (me->current_node()) {
    const auto index = scenario.node_index(*me->current_node());
    if (index) row.selected_node = static_cast<int>(*index);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;
  bench::print_header(
      "Table III — pairwise user/node latency with selection (TopN = 6+)",
      "each user selects the node minimising its probed D_prop + D_proc; "
      "selections differ per user because connectivity differs");

  const char* node_names[] = {"V1", "V2", "V3", "V4", "V5",
                              "D6", "D7", "D8", "D9", "Cloud"};

  Table table({"client", "V1", "V2", "V3", "V4", "V5", "D6", "D7", "D8", "D9",
               "Cloud", "selected"});

  harness::ParallelRunner pool;
  std::vector<std::function<UserRow()>> jobs;
  for (int user_index = 0; user_index < 3; ++user_index) {
    jobs.emplace_back(
        [seed, user_index] { return probe_user(seed, user_index); });
  }
  const std::vector<UserRow> rows = pool.map<UserRow>(std::move(jobs));

  for (int user_index = 0; user_index < 3; ++user_index) {
    const UserRow& user = rows[user_index];
    std::vector<std::string> row{"U" + std::to_string(user_index + 1)};
    row.resize(12);
    for (std::size_t j = 0; j < user.prediction.size() && j < 10; ++j) {
      row[1 + j] = user.prediction[j];
    }
    row[11] = user.selected_node >= 0 ? node_names[user.selected_node] : "-";
    table.add_row(row);
  }

  print_section("Predicted e2e latency (ms): D_prop + what-if D_proc");
  table.print();
  std::printf(
      "\n(paper Table III: U1 selects V1 at 38 ms, U2 selects V2 at 35 ms, "
      "U3 selects D6 at 42 ms — selection tracks per-user connectivity, "
      "not a global ranking; cloud is ~100+ ms for everyone)\n");
  return 0;
}
