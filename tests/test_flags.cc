// Tests for the tools' flag parser.
#include "tools/flags.h"

#include <gtest/gtest.h>

namespace eden::tools {
namespace {

Flags make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data(), "usage");
}

TEST(Flags, SpaceSeparatedValues) {
  auto flags = make({"--port", "7000", "--name", "alpha"});
  EXPECT_EQ(flags.integer("port", 1), 7000);
  EXPECT_EQ(flags.str("name", ""), "alpha");
  flags.check_unused();
}

TEST(Flags, EqualsSeparatedValues) {
  auto flags = make({"--port=8080", "--ratio=0.25"});
  EXPECT_EQ(flags.integer("port", 1), 8080);
  EXPECT_DOUBLE_EQ(flags.real("ratio", 1.0), 0.25);
  flags.check_unused();
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  auto flags = make({});
  EXPECT_EQ(flags.integer("port", 7000), 7000);
  EXPECT_EQ(flags.str("name", "fallback"), "fallback");
  EXPECT_TRUE(flags.boolean("verbose", true));
  EXPECT_FALSE(flags.boolean("verbose2", false));
}

TEST(Flags, BareBooleanFlag) {
  auto flags = make({"--dedicated", "--burstable", "--cores", "4"});
  EXPECT_TRUE(flags.boolean("dedicated", false));
  EXPECT_TRUE(flags.boolean("burstable", false));
  EXPECT_EQ(flags.integer("cores", 1), 4);
  flags.check_unused();
}

TEST(Flags, BooleanSpellings) {
  auto flags = make({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(flags.boolean("a", false));
  EXPECT_TRUE(flags.boolean("b", false));
  EXPECT_TRUE(flags.boolean("c", false));
  EXPECT_FALSE(flags.boolean("d", true));
  EXPECT_FALSE(flags.boolean("e", true));
}

TEST(FlagsDeath, UnknownFlagAborts) {
  EXPECT_EXIT(
      {
        auto flags = make({"--typo", "7"});
        flags.check_unused();
      },
      ::testing::ExitedWithCode(2), "unknown flag: --typo");
}

TEST(FlagsDeath, PositionalArgumentAborts) {
  EXPECT_EXIT({ make({"positional"}); }, ::testing::ExitedWithCode(2),
              "unexpected positional argument");
}

}  // namespace
}  // namespace eden::tools
