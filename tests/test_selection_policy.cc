// Unit tests for the LO/GO local selection policies of §IV-D.
#include "client/selection_policy.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace eden::client {
namespace {

ProbeResult make_result(std::uint32_t node, double d_prop, double whatif,
                        double current = 0, int users = 0) {
  ProbeResult r;
  r.node = NodeId{node};
  r.d_prop_ms = d_prop;
  r.process.whatif_ms = whatif;
  r.process.current_ms = current == 0 ? whatif : current;
  r.process.attached_users = users;
  return r;
}

TEST(ProbeResult, LoIsPropPlusWhatIf) {
  const auto r = make_result(1, 12.0, 30.0);
  EXPECT_DOUBLE_EQ(r.lo(), 42.0);
}

TEST(ProbeResult, GoAddsDegradationOfExistingUsers) {
  // 3 existing users, each degraded by (40 - 34) = 6 ms.
  const auto r = make_result(1, 10.0, 40.0, 34.0, 3);
  EXPECT_DOUBLE_EQ(r.go(), 3 * 6.0 + 50.0);
}

TEST(ProbeResult, GoEqualsLoOnIdleNode) {
  const auto r = make_result(1, 10.0, 30.0, 30.0, 0);
  EXPECT_DOUBLE_EQ(r.go(), r.lo());
}

TEST(SortCandidates, LocalOverheadPicksLowestLo) {
  auto sorted = sort_candidates(
      {make_result(1, 30.0, 30.0), make_result(2, 5.0, 35.0),
       make_result(3, 10.0, 45.0)},
      LocalPolicy::kLocalOverhead);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].node, NodeId{2});  // LO = 40
  EXPECT_EQ(sorted[1].node, NodeId{3});  // LO = 55
  EXPECT_EQ(sorted[2].node, NodeId{1});  // LO = 60
}

TEST(SortCandidates, GlobalOverheadPenalisesInterference) {
  // Node 1 looks best locally but would degrade 5 existing users by 8 ms
  // each; node 2 is idle and slightly slower for this client.
  const auto busy = make_result(1, 5.0, 40.0, 32.0, 5);   // LO 45, GO 85
  const auto idle = make_result(2, 10.0, 40.0, 40.0, 0);  // LO 50, GO 50
  auto lo_sorted = sort_candidates({busy, idle}, LocalPolicy::kLocalOverhead);
  auto go_sorted = sort_candidates({busy, idle}, LocalPolicy::kGlobalOverhead);
  EXPECT_EQ(lo_sorted[0].node, NodeId{1});
  EXPECT_EQ(go_sorted[0].node, NodeId{2});
}

TEST(SortCandidates, EmptyInput) {
  EXPECT_TRUE(sort_candidates({}, LocalPolicy::kGlobalOverhead).empty());
}

TEST(SortCandidates, TieBreaksOnNodeId) {
  auto sorted = sort_candidates(
      {make_result(9, 10.0, 30.0), make_result(3, 10.0, 30.0)},
      LocalPolicy::kLocalOverhead);
  EXPECT_EQ(sorted[0].node, NodeId{3});
}

TEST(SortCandidates, QosFilterDropsViolators) {
  QosFilter qos;
  qos.max_lo_ms = 50.0;
  auto sorted = sort_candidates(
      {make_result(1, 40.0, 30.0), make_result(2, 10.0, 30.0)},
      LocalPolicy::kGlobalOverhead, qos);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].node, NodeId{2});
}

TEST(SortCandidates, QosFallsBackWhenNothingQualifies) {
  QosFilter qos;
  qos.max_lo_ms = 10.0;  // nobody qualifies
  auto sorted = sort_candidates(
      {make_result(1, 40.0, 30.0), make_result(2, 10.0, 30.0)},
      LocalPolicy::kGlobalOverhead, qos);
  EXPECT_EQ(sorted.size(), 2u);  // non-strict: keep the best effort list
}

TEST(SortCandidates, StrictQosRejectsUser) {
  QosFilter qos;
  qos.max_lo_ms = 10.0;
  qos.strict = true;
  auto sorted = sort_candidates(
      {make_result(1, 40.0, 30.0), make_result(2, 10.0, 30.0)},
      LocalPolicy::kGlobalOverhead, qos);
  EXPECT_TRUE(sorted.empty());
}

TEST(SortCandidates, QosFilterUsesLoNotGo) {
  // GO may exceed the QoS bound as long as LO satisfies it — the bound is
  // about this user's own latency.
  QosFilter qos;
  qos.max_lo_ms = 50.0;
  auto sorted = sort_candidates({make_result(1, 5.0, 40.0, 20.0, 10)},
                                LocalPolicy::kGlobalOverhead, qos);
  EXPECT_EQ(sorted.size(), 1u);
}

// Property: for any candidate set, the GO winner never has higher GO than
// any other candidate, and sorting is a permutation.
class SortProperty : public ::testing::TestWithParam<int> {};

TEST_P(SortProperty, WinnerMinimisesKeyAndNothingIsLost) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ProbeResult> results;
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < n; ++i) {
      results.push_back(make_result(
          static_cast<std::uint32_t>(i), rng.uniform(1, 80), rng.uniform(10, 90),
          rng.uniform(10, 90), static_cast<int>(rng.uniform_int(0, 6))));
    }
    for (const auto policy :
         {LocalPolicy::kLocalOverhead, LocalPolicy::kGlobalOverhead}) {
      const auto sorted = sort_candidates(results, policy);
      ASSERT_EQ(sorted.size(), results.size());
      const auto key = [&](const ProbeResult& r) {
        return policy == LocalPolicy::kLocalOverhead ? r.lo() : r.go();
      };
      for (std::size_t i = 1; i < sorted.size(); ++i) {
        EXPECT_LE(key(sorted[i - 1]), key(sorted[i]) + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace eden::client
