// End-to-end integration tests asserting the paper's qualitative results
// at reduced scale (so the suite stays fast): client-centric selection
// beats the static baselines, load spreads across heterogeneous nodes, and
// churn does not interrupt service.
#include <gtest/gtest.h>

#include "baselines/assigners.h"
#include "baselines/static_client.h"
#include "churn/churn.h"
#include "harness/experiments.h"
#include "harness/metrics.h"
#include "harness/scenario.h"

namespace eden {
namespace {

using harness::ClientSpot;
using harness::Scenario;

client::ClientConfig default_client_config() {
  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(2.0);
  return config;
}

double run_realworld_policy(const std::string& policy, int users,
                            std::uint64_t seed) {
  auto setup = harness::make_realworld_setup(seed);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  std::vector<const TimeSeries*> series;
  const auto infos = scenario.node_infos();

  if (policy == "client-centric") {
    for (int i = 0; i < users; ++i) {
      auto& c = scenario.add_edge_client(setup.user_spots[i],
                                         default_client_config());
      scenario.simulator().schedule_at(sec(2.0 + i), [&c] { c.start(); });
      series.push_back(&c.latency_series());
    }
  } else {
    std::unique_ptr<baselines::Assigner> assigner;
    if (policy == "geo") {
      assigner = std::make_unique<baselines::GeoProximityAssigner>(infos);
    } else if (policy == "cloud") {
      assigner = std::make_unique<baselines::ClosestCloudAssigner>(infos);
    } else if (policy == "dedicated") {
      assigner =
          std::make_unique<baselines::WeightedRoundRobinAssigner>(infos, true);
    } else {
      assigner =
          std::make_unique<baselines::WeightedRoundRobinAssigner>(infos, false);
    }
    for (int i = 0; i < users; ++i) {
      auto& c = scenario.add_static_client(setup.user_spots[i], {});
      const auto target = assigner->assign(setup.user_spots[i].position);
      scenario.simulator().schedule_at(
          sec(2.0 + i), [&c, target] { c.start(*target); });
      series.push_back(&c.latency_series());
    }
  }

  const SimTime end = sec(2.0 + users + 20.0);
  scenario.run_until(end);
  return harness::fleet_window(series, sec(2.0 + users + 5.0), end).mean();
}

TEST(Integration, ClientCentricBeatsCloudAtModerateLoad) {
  const double ours = run_realworld_policy("client-centric", 6, 5);
  const double cloud = run_realworld_policy("cloud", 6, 5);
  ASSERT_GT(ours, 0.0);
  ASSERT_GT(cloud, 0.0);
  EXPECT_LT(ours, cloud);
}

TEST(Integration, ClientCentricBeatsGeoProximityUnderLoad) {
  const double ours = run_realworld_policy("client-centric", 10, 5);
  const double geo = run_realworld_policy("geo", 10, 5);
  EXPECT_LT(ours, geo * 1.02);  // at minimum never meaningfully worse
}

TEST(Integration, ClientCentricSpreadsUsersAcrossNodes) {
  auto setup = harness::make_realworld_setup(5);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));
  for (int i = 0; i < 10; ++i) {
    auto config = default_client_config();
    // Fixed rates make the capacity math deterministic: 10 users x 20 fps
    // cannot fit on any single Table II node.
    config.app.adaptive_rate = false;
    auto& c = scenario.add_edge_client(setup.user_spots[i], config);
    scenario.simulator().schedule_at(sec(2.0 + i), [&c] { c.start(); });
  }
  scenario.run_until(sec(40.0));
  int used_nodes = 0;
  int attached_total = 0;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    const int users = scenario.node(i).attached_users();
    attached_total += users;
    if (users > 0) ++used_nodes;
    // The GO heuristic must not pile everyone onto one machine.
    EXPECT_LE(users, 6);
  }
  EXPECT_EQ(attached_total, 10);
  EXPECT_GE(used_nodes, 3);
}

TEST(Integration, ChurnDoesNotInterruptService) {
  // 4 clients over a churning node population: every client keeps
  // completing frames through joins and leaves.
  harness::ScenarioConfig config;
  config.seed = 77;
  Scenario scenario(config, harness::NetKind::kMatrix, 25.0, 50.0, 0.05);

  churn::ChurnConfig churn_config;
  churn_config.horizon = sec(90.0);
  churn_config.initial_nodes = 3;
  churn_config.lifetime_mean_sec = 40.0;
  Rng churn_rng = Rng(config.seed).fork("churn");
  const auto schedule = churn::generate_churn(churn_config, churn_rng);

  const auto specs = harness::churn_node_specs(
      static_cast<int>(schedule.total_nodes));
  for (const auto& spec : specs) scenario.add_node(spec);
  for (const auto& event : schedule.events) {
    const std::size_t index = event.node_index;
    if (event.kind == churn::ChurnEventKind::kJoin) {
      scenario.schedule_node_start(index, event.at);
    } else {
      scenario.schedule_node_stop(index, event.at, false);
    }
  }

  std::vector<client::EdgeClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto cfg = default_client_config();
    cfg.probing_period = sec(2.0);
    auto& c = scenario.add_edge_client(
        ClientSpot{"u" + std::to_string(i)}, cfg);
    scenario.simulator().schedule_at(sec(1.0), [&c] { c.start(); });
    clients.push_back(&c);
  }
  scenario.run_until(sec(90.0));

  for (const auto* c : clients) {
    // Service continuity: frames completed in every 15-second slice after
    // warmup.
    for (SimTime t = sec(15); t < sec(90); t += sec(15)) {
      EXPECT_GT(c->latency_series().window(t, t + sec(15)).count(), 0u)
          << "gap at " << to_sec(t);
    }
  }
}

TEST(Integration, DedicatedOnlyDegradesUnderHighDemand) {
  // The Fig 5 crossover ingredient: 4 burstable Local Zone instances
  // serving 15 users throttle and end up slower than at light load.
  const double light = run_realworld_policy("dedicated", 4, 5);
  const double heavy = run_realworld_policy("dedicated", 15, 5);
  EXPECT_GT(heavy, light);
}

TEST(Integration, ManagerSeesWholePopulation) {
  auto setup = harness::make_realworld_setup(9);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(3.0));
  EXPECT_EQ(scenario.central_manager().live_nodes(), 10u);
}

}  // namespace
}  // namespace eden
