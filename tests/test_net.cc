// Unit tests for network models and the simulated message fabric.
#include <gtest/gtest.h>

#include <optional>

#include "common/rng.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

namespace eden::net {
namespace {

const HostId kA{1};
const HostId kB{2};
const HostId kC{3};

TEST(MatrixNetwork, DefaultsApply) {
  MatrixNetwork net(25.0, 100.0, 0.0);
  EXPECT_EQ(net.base_rtt(kA, kB), msec(25.0));
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(kA, kB), 100.0);
}

TEST(MatrixNetwork, ExplicitPairIsSymmetric) {
  MatrixNetwork net(25.0, 100.0, 0.0);
  net.set_rtt_ms(kA, kB, 8.0);
  EXPECT_EQ(net.base_rtt(kA, kB), msec(8.0));
  EXPECT_EQ(net.base_rtt(kB, kA), msec(8.0));
  EXPECT_EQ(net.base_rtt(kA, kC), msec(25.0));
}

TEST(MatrixNetwork, LoopbackIsTiny) {
  MatrixNetwork net(25.0, 100.0, 0.0);
  EXPECT_LT(net.base_rtt(kA, kA), msec(1.0));
}

TEST(MatrixNetwork, UplinkCapsSenderBandwidth) {
  MatrixNetwork net(25.0, 100.0, 0.0);
  net.set_uplink_mbps(kA, 10.0);
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(kA, kB), 10.0);
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(kB, kA), 100.0);  // cap is directional
}

TEST(NetworkModel, TransferDelayMatchesBandwidth) {
  MatrixNetwork net(25.0, 100.0, 0.0);
  // 20 KB at 100 Mbps = 1.6 ms.
  EXPECT_NEAR(to_ms(net.transfer_delay(kA, kB, 20'000)), 1.6, 0.01);
  EXPECT_EQ(net.transfer_delay(kA, kB, 0), 0);
}

TEST(NetworkModel, SampleOwdIsHalfRttWithoutJitter) {
  MatrixNetwork net(30.0, 100.0, 0.0);
  Rng rng(1);
  EXPECT_EQ(net.sample_owd(kA, kB, rng), msec(15.0));
}

TEST(NetworkModel, JitterSpreadsSamples) {
  MatrixNetwork net(30.0, 100.0, 0.2);
  Rng rng(1);
  SimDuration lo = msec(1000);
  SimDuration hi = 0;
  for (int i = 0; i < 200; ++i) {
    const SimDuration d = net.sample_owd(kA, kB, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    EXPECT_GT(d, 0);
  }
  EXPECT_LT(lo, msec(15.0));
  EXPECT_GT(hi, msec(15.0));
}

TEST(GeoNetwork, CloserIsFaster) {
  GeoNetwork net(0.0);
  net.add_host(kA, {44.9778, -93.2650}, AccessTier::kCable);
  net.add_host(kB, {44.9900, -93.2700}, AccessTier::kCable);  // ~1.5 km
  net.add_host(kC, {44.5000, -92.9000}, AccessTier::kCable);  // ~60 km
  EXPECT_LT(net.base_rtt(kA, kB), net.base_rtt(kA, kC));
}

TEST(GeoNetwork, TierOrderingMatchesFig1) {
  // From a cable home: the BEST of several nearby volunteers < Local Zone
  // < cloud. Individual volunteer pairs vary (per-pair peering), which is
  // exactly the heterogeneity the paper measures, so the ordering is
  // asserted on the best volunteer as in Fig 1.
  GeoNetwork net(0.0);
  const HostId user{10};
  const HostId local_zone{30};
  const HostId cloud{31};
  net.add_host(user, {44.9778, -93.2650}, AccessTier::kCable);
  net.add_host(local_zone, {44.8848, -93.2223}, AccessTier::kLocalZone);
  net.add_host(cloud, {39.9612, -82.9988}, AccessTier::kCloud);
  net.set_extra_rtt_ms(cloud, 18.0);

  SimDuration best_volunteer = msec(10'000);
  for (std::uint32_t i = 11; i < 21; ++i) {
    const HostId volunteer{i};
    net.add_host(volunteer, {44.9800, -93.2600}, AccessTier::kFiber);
    best_volunteer = std::min(best_volunteer, net.base_rtt(user, volunteer));
  }
  const auto lz = net.base_rtt(user, local_zone);
  const auto c = net.base_rtt(user, cloud);
  EXPECT_LT(best_volunteer, lz);
  EXPECT_LT(lz, c);
  EXPECT_GT(c, msec(60.0));  // regional cloud is tens of ms away
  EXPECT_LT(best_volunteer, msec(25.0));
}

TEST(GeoNetwork, SameIspResidentialPairsAreWellPeered) {
  // Same-ISP metro residential pairs collapse to near-LAN last-mile cost —
  // the paper's same-local-loop volunteers; other pairs pay full last-mile
  // plus peering variation.
  GeoNetwork net(0.0);
  const HostId user{1};
  const HostId same_isp{2};
  const HostId other_isp{3};
  const HostId no_isp{4};
  const HostId same_isp_far{5};
  net.add_host(user, {44.9778, -93.2650}, AccessTier::kCable, /*isp=*/7);
  net.add_host(same_isp, {44.9800, -93.2600}, AccessTier::kCable, 7);
  net.add_host(other_isp, {44.9800, -93.2600}, AccessTier::kCable, 8);
  net.add_host(no_isp, {44.9800, -93.2600}, AccessTier::kCable);
  net.add_host(same_isp_far, {40.0, -93.2600}, AccessTier::kCable, 7);

  EXPECT_LT(net.base_rtt(user, same_isp), msec(8.0));
  EXPECT_GT(net.base_rtt(user, other_isp), msec(15.0));
  EXPECT_GT(net.base_rtt(user, no_isp), msec(15.0));
  // Well-peering only applies inside the metro.
  EXPECT_GT(net.base_rtt(user, same_isp_far), msec(15.0));
}

TEST(GeoNetwork, PeeringOffsetIsDeterministicPerPair) {
  GeoNetwork net(0.0);
  net.add_host(HostId{1}, {44.98, -93.26}, AccessTier::kCable, 1);
  net.add_host(HostId{2}, {44.99, -93.27}, AccessTier::kCable, 2);
  net.add_host(HostId{3}, {44.99, -93.27}, AccessTier::kCable, 3);
  const auto r12 = net.base_rtt(HostId{1}, HostId{2});
  EXPECT_EQ(net.base_rtt(HostId{1}, HostId{2}), r12);  // stable
  EXPECT_EQ(net.base_rtt(HostId{2}, HostId{1}), r12);  // symmetric
  // Different pairs (same geometry) usually differ: routing diversity.
  EXPECT_NE(net.base_rtt(HostId{1}, HostId{3}), r12);
}

TEST(GeoNetwork, CachedLookupsMatchFreshInstance) {
  // The pair-metrics memo must be invisible: a network that has served
  // thousands of (possibly repeated) queries answers identically to a
  // fresh instance computing each pair for the first time.
  auto build = [] {
    GeoNetwork net(0.0);
    Rng rng(42);
    for (std::uint32_t i = 1; i <= 20; ++i) {
      net.add_host(HostId{i}, {rng.uniform(-60, 60), rng.uniform(-180, 180)},
                   static_cast<AccessTier>(rng.uniform_int(0, 5)),
                   static_cast<int>(rng.uniform_int(0, 3)));
    }
    return net;
  };
  GeoNetwork hot = build();
  for (int pass = 0; pass < 3; ++pass) {  // repeated = served from cache
    for (std::uint32_t a = 1; a <= 20; ++a) {
      for (std::uint32_t b = 1; b <= 20; ++b) {
        (void)hot.base_rtt(HostId{a}, HostId{b});
        (void)hot.bandwidth_mbps(HostId{a}, HostId{b});
      }
    }
  }
  GeoNetwork cold = build();
  for (std::uint32_t a = 1; a <= 20; ++a) {
    for (std::uint32_t b = 1; b <= 20; ++b) {
      EXPECT_EQ(hot.base_rtt(HostId{a}, HostId{b}),
                cold.base_rtt(HostId{a}, HostId{b}));
      EXPECT_DOUBLE_EQ(hot.bandwidth_mbps(HostId{a}, HostId{b}),
                       cold.bandwidth_mbps(HostId{a}, HostId{b}));
    }
  }
}

TEST(GeoNetwork, SetExtraRttInvalidatesCache) {
  GeoNetwork net(0.0);
  net.add_host(kA, {44.98, -93.26}, AccessTier::kCable);
  net.add_host(kB, {44.99, -93.27}, AccessTier::kCable);
  const auto before = net.base_rtt(kA, kB);  // caches the pair
  net.set_extra_rtt_ms(kB, 25.0);
  const auto after = net.base_rtt(kA, kB);
  EXPECT_EQ(after - before, msec(25.0));  // kB's fixed penalty now applies
  net.set_extra_rtt_ms(kB, 0.0);
  EXPECT_EQ(net.base_rtt(kA, kB), before);
}

TEST(GeoNetwork, AddHostInvalidatesCache) {
  // Adding a host must not leave stale metrics for existing pairs — in
  // particular a previously-unknown host that was answered with the
  // fallback RTT must get real metrics once registered.
  GeoNetwork net(0.0);
  net.add_host(kA, {44.98, -93.26}, AccessTier::kCable);
  EXPECT_EQ(net.base_rtt(kA, kB), msec(50.0));  // fallback, now cached
  net.add_host(kB, {44.99, -93.27}, AccessTier::kCable);
  EXPECT_NE(net.base_rtt(kA, kB), msec(50.0));
  EXPECT_LT(net.base_rtt(kA, kB), msec(45.0));
}

TEST(GeoNetwork, UnknownHostGetsFallback) {
  GeoNetwork net(0.0);
  net.add_host(kA, {44.98, -93.26}, AccessTier::kCable);
  EXPECT_EQ(net.base_rtt(kA, HostId{99}), msec(50.0));
  EXPECT_FALSE(net.position(HostId{99}).has_value());
}

TEST(GeoNetwork, BandwidthIsMinOfTiers) {
  GeoNetwork net(0.0);
  net.add_host(kA, {44.98, -93.26}, AccessTier::kDsl);
  net.add_host(kB, {44.99, -93.27}, AccessTier::kFiber);
  EXPECT_DOUBLE_EQ(net.bandwidth_mbps(kA, kB),
                   GeoNetwork::tier_uplink_mbps(AccessTier::kDsl));
}

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest()
      : model_(20.0, 100.0, 0.0),
        fabric_(simulator_, model_, hosts_, Rng(7)) {
    hosts_.set_alive(kA, true);
    hosts_.set_alive(kB, true);
  }

  sim::Simulator simulator_;
  MatrixNetwork model_;
  HostTable hosts_;
  SimNetwork fabric_;
};

TEST_F(SimNetworkTest, DeliverAfterOneWayDelay) {
  SimTime arrived = -1;
  fabric_.deliver(kA, kB, 0, [&] { arrived = simulator_.now(); });
  simulator_.run_all();
  EXPECT_EQ(arrived, msec(10.0));  // half of 20 ms RTT
}

TEST_F(SimNetworkTest, DeliverDropsToDeadHost) {
  hosts_.set_alive(kB, false);
  bool arrived = false;
  fabric_.deliver(kA, kB, 0, [&] { arrived = true; });
  simulator_.run_all();
  EXPECT_FALSE(arrived);
}

TEST_F(SimNetworkTest, DeliverChecksLivenessAtArrivalTime) {
  bool arrived = false;
  fabric_.deliver(kA, kB, 0, [&] { arrived = true; });
  // Host dies while the message is in flight.
  simulator_.schedule_at(msec(5.0), [&] { hosts_.set_alive(kB, false); });
  simulator_.run_all();
  EXPECT_FALSE(arrived);
}

TEST_F(SimNetworkTest, RpcRoundTrip) {
  std::optional<int> result;
  fabric_.rpc<int>(
      kA, kB, 100, 100, sec(1), [] { return 42; },
      [&](std::optional<int> r) { result = r; });
  simulator_.run_all();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(simulator_.now(), msec(20.0) + 2 * msec(0.008));  // rtt + transfer
}

TEST_F(SimNetworkTest, RpcTimesOutWhenServerDead) {
  hosts_.set_alive(kB, false);
  bool done_called = false;
  std::optional<int> result = 1;
  fabric_.rpc<int>(
      kA, kB, 0, 0, msec(100), [] { return 42; },
      [&](std::optional<int> r) {
        done_called = true;
        result = r;
      });
  simulator_.run_all();
  EXPECT_TRUE(done_called);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(simulator_.now(), msec(100));  // fired at the timeout
}

TEST_F(SimNetworkTest, RpcCallbackExactlyOnce) {
  int calls = 0;
  // Response arrives before the timeout: the timeout must not double-fire.
  fabric_.rpc<int>(
      kA, kB, 0, 0, sec(10), [] { return 1; },
      [&](std::optional<int>) { ++calls; });
  simulator_.run_all();
  EXPECT_EQ(calls, 1);
}

TEST_F(SimNetworkTest, RpcAsyncServerRepliesLater) {
  std::function<void(int)> reply;
  std::optional<int> result;
  fabric_.rpc_async<int>(
      kA, kB, 0, 0, sec(5),
      [&](std::function<void(int)> r) { reply = std::move(r); },
      [&](std::optional<int> r) { result = r; });
  simulator_.run_until(msec(50));
  ASSERT_TRUE(reply);  // request arrived, response pending
  EXPECT_FALSE(result.has_value());
  reply(7);
  simulator_.run_all();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 7);
}

TEST_F(SimNetworkTest, RpcAsyncLateReplyAfterTimeoutIgnored) {
  std::function<void(int)> reply;
  int calls = 0;
  std::optional<int> result;
  fabric_.rpc_async<int>(
      kA, kB, 0, 0, msec(50),
      [&](std::function<void(int)> r) { reply = std::move(r); },
      [&](std::optional<int> r) {
        ++calls;
        result = r;
      });
  simulator_.run_until(msec(200));  // timeout fired
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(result.has_value());
  reply(9);  // server finally answers
  simulator_.run_all();
  EXPECT_EQ(calls, 1);  // still exactly once
}

TEST(HostTable, DefaultsToDead) {
  HostTable hosts;
  EXPECT_FALSE(hosts.alive(kA));
  hosts.set_alive(kA, true);
  EXPECT_TRUE(hosts.alive(kA));
  hosts.set_alive(kA, false);
  EXPECT_FALSE(hosts.alive(kA));
}

}  // namespace
}  // namespace eden::net
