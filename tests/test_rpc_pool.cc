// Tests for the pooled rpc-slot machinery in SimNetwork: slot reuse,
// timeout/response races, mid-flight host death, generation checks on
// stale completions, fault-window expiry, and the determinism contract the
// figure benches rely on (bitwise-identical traces under ParallelRunner).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "client/edge_client.h"
#include "common/rng.h"
#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "net/host_table.h"
#include "net/network_model.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

namespace eden::net {
namespace {

const HostId kA{1};
const HostId kB{2};

class RpcPoolTest : public ::testing::Test {
 protected:
  RpcPoolTest()
      : model_(20.0, 100.0, 0.0),
        fabric_(simulator_, model_, hosts_, Rng(7)) {
    hosts_.set_alive(kA, true);
    hosts_.set_alive(kB, true);
  }

  sim::Simulator simulator_;
  MatrixNetwork model_;
  HostTable hosts_;
  SimNetwork fabric_;
};

TEST_F(RpcPoolTest, SlotHeldInFlightReleasedOnCompletion) {
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
  std::optional<int> result;
  fabric_.rpc<int>(
      kA, kB, 0, 0, sec(1), [] { return 42; },
      [&](std::optional<int> r) { result = r; });
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 1u);
  simulator_.run_all();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST_F(RpcPoolTest, SequentialRpcsReuseOneChunk) {
  const std::size_t chunk = fabric_.rpc_slot_capacity() == 0
                                ? 256u
                                : fabric_.rpc_slot_capacity();
  int completions = 0;
  for (int i = 0; i < 1000; ++i) {
    fabric_.rpc<int>(
        kA, kB, 0, 0, sec(1), [i] { return i; },
        [&](std::optional<int> r) {
          ASSERT_TRUE(r.has_value());
          ++completions;
        });
    simulator_.run_all();
  }
  EXPECT_EQ(completions, 1000);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
  // Steady-state reuse: a thousand sequential rpcs never grow the pool
  // beyond what the first one allocated.
  EXPECT_LE(fabric_.rpc_slot_capacity(), std::max<std::size_t>(chunk, 256u));
}

TEST_F(RpcPoolTest, ConcurrentRpcsGrowPoolThenDrainToZero) {
  int completions = 0;
  for (int i = 0; i < 600; ++i) {
    fabric_.rpc<int>(
        kA, kB, 0, 0, sec(5), [] { return 1; },
        [&](std::optional<int>) { ++completions; });
  }
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 600u);
  EXPECT_GE(fabric_.rpc_slot_capacity(), 600u);
  simulator_.run_all();
  EXPECT_EQ(completions, 600);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST_F(RpcPoolTest, TimeoutReleasesSlotAndLateReplyIsRejected) {
  std::function<void(int)> reply;
  int calls = 0;
  std::optional<int> result;
  fabric_.rpc_async<int>(
      kA, kB, 0, 0, msec(50),
      [&](std::function<void(int)> r) { reply = std::move(r); },
      [&](std::optional<int> r) {
        ++calls;
        result = r;
      });
  simulator_.run_until(msec(200));  // request arrived at 10 ms, timeout at 50
  ASSERT_TRUE(reply);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(result.has_value());
  // The timeout settled the rpc and the request leg already landed: the
  // slot must be free even though the server still holds the Reply.
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
  reply(9);  // stale: generation check drops the completion on arrival
  simulator_.run_all();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST_F(RpcPoolTest, StaleReplyCannotTouchAReusedSlot) {
  std::function<void(int)> stale_reply;
  int first_calls = 0;
  fabric_.rpc_async<int>(
      kA, kB, 0, 0, msec(50),
      [&](std::function<void(int)> r) { stale_reply = std::move(r); },
      [&](std::optional<int>) { ++first_calls; });
  simulator_.run_until(msec(200));  // first rpc timed out, slot released
  ASSERT_TRUE(stale_reply);
  ASSERT_EQ(first_calls, 1);
  ASSERT_EQ(fabric_.rpc_slots_in_use(), 0u);

  // The second rpc reuses the same pooled slot under a bumped generation.
  std::function<void(int)> fresh_reply;
  std::optional<int> second_result;
  int second_calls = 0;
  fabric_.rpc_async<int>(
      kA, kB, 0, 0, sec(10),
      [&](std::function<void(int)> r) { fresh_reply = std::move(r); },
      [&](std::optional<int> r) {
        ++second_calls;
        second_result = r;
      });
  simulator_.run_until(msec(250));
  ASSERT_TRUE(fresh_reply);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 1u);

  // The first rpc's reply carries a handle whose generation is stale; it
  // must not complete (or corrupt) the rpc now occupying the slot.
  stale_reply(99);
  simulator_.run_until(msec(300));
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(second_calls, 0);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 1u);

  fresh_reply(7);
  simulator_.run_all();
  EXPECT_EQ(second_calls, 1);
  ASSERT_TRUE(second_result.has_value());
  EXPECT_EQ(*second_result, 7);
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST_F(RpcPoolTest, ServerDeathMidFlightTimesOutAndReleases) {
  bool server_ran = false;
  int calls = 0;
  std::optional<int> result = 1;
  fabric_.rpc<int>(
      kA, kB, 0, 0, msec(100),
      [&] {
        server_ran = true;
        return 42;
      },
      [&](std::optional<int> r) {
        ++calls;
        result = r;
      });
  // The server dies while the request is on the wire (arrival at 10 ms).
  simulator_.schedule_at(msec(5.0), [&] { hosts_.set_alive(kB, false); });
  simulator_.run_all();
  EXPECT_FALSE(server_ran);
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(simulator_.now(), msec(100));  // settled by the timeout
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST_F(RpcPoolTest, CallerDeathDropsResponseThenTimeoutSettles) {
  int calls = 0;
  std::optional<int> result = 1;
  fabric_.rpc<int>(
      kA, kB, 0, 0, msec(100), [] { return 42; },
      [&](std::optional<int> r) {
        ++calls;
        result = r;
      });
  // The caller dies after the request arrives (10 ms) but before the
  // response lands (20 ms): the response is dropped at arrival, and the
  // timeout — local bookkeeping, fired regardless of liveness — settles
  // the rpc and frees the slot.
  simulator_.schedule_at(msec(15.0), [&] { hosts_.set_alive(kA, false); });
  simulator_.run_all();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(simulator_.now(), msec(100));
  EXPECT_EQ(fabric_.rpc_slots_in_use(), 0u);
}

TEST(RpcPoolTeardown, DestructorAbandonsPendingDoneWithoutInvoking) {
  int calls = 0;
  {
    sim::Simulator simulator;
    MatrixNetwork model(20.0, 100.0, 0.0);
    HostTable hosts;
    hosts.set_alive(kA, true);
    hosts.set_alive(kB, true);
    SimNetwork fabric(simulator, model, hosts, Rng(7));
    fabric.rpc<int>(
        kA, kB, 0, 0, sec(1), [] { return 42; },
        [&](std::optional<int>) { ++calls; });
    EXPECT_EQ(fabric.rpc_slots_in_use(), 1u);
    // Tear the world down with the rpc still pending: the pooled done
    // callback is destroyed, never invoked (leaks surface under ASan).
  }
  EXPECT_EQ(calls, 0);
}

// ---- fault-window expiry ----

TEST(FaultInjectorExpiry, CutWindowsArePurgedOnceElapsed) {
  FaultInjector faults;
  faults.cut_link(HostId{1}, HostId{2}, msec(100), msec(200));
  faults.isolate_host(HostId{5}, msec(100), msec(300));
  EXPECT_EQ(faults.cut_window_count(), 3u);  // pair + from-wildcard + to-wildcard

  EXPECT_TRUE(faults.dropped(HostId{1}, HostId{2}, msec(150)));
  EXPECT_EQ(faults.cut_window_count(), 3u);  // still active, nothing purged

  // Past the pair window's end: the lookup both misses and retires it.
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{2}, msec(250)));
  EXPECT_EQ(faults.cut_window_count(), 2u);

  // The isolation windows expire at 300 ms; queries against the isolated
  // host purge both directions.
  EXPECT_FALSE(faults.dropped(HostId{5}, HostId{1}, msec(350)));
  EXPECT_FALSE(faults.dropped(HostId{1}, HostId{5}, msec(350)));
  EXPECT_EQ(faults.cut_window_count(), 0u);
}

TEST(FaultInjectorExpiry, SlowWindowsArePurgedOnceElapsed) {
  FaultInjector faults;
  faults.slow_link(HostId{1}, HostId{2}, 4.0, msec(0), msec(100));
  faults.slow_link(HostId{1}, HostId{2}, 2.0, msec(50), msec(400));
  EXPECT_EQ(faults.slow_window_count(), 2u);

  // Both active: factors compound in insertion order.
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, msec(60)), 8.0);
  EXPECT_EQ(faults.slow_window_count(), 2u);

  // First window elapsed: purged by the lookup, second still applies.
  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, msec(200)), 2.0);
  EXPECT_EQ(faults.slow_window_count(), 1u);

  EXPECT_DOUBLE_EQ(faults.delay_factor(HostId{1}, HostId{2}, msec(500)), 1.0);
  EXPECT_EQ(faults.slow_window_count(), 0u);
}

// ---- figure-trace determinism across ParallelRunner thread counts ----
//
// Scaled-down versions of the Fig 4 (failover trace) and Fig 8 (churn
// trace) worlds, digested over every per-frame latency sample and the
// protocol counters. Any divergence in event order, jitter draws, or rpc
// settlement under the pooled messaging layer changes the digest.

void mix(std::uint64_t& digest, std::uint64_t v) {
  digest = (digest ^ v) * 0x100000001b3ull;
}

void mix_series(std::uint64_t& digest, const TimeSeries& series,
                const client::ClientStats& stats) {
  for (const auto& [t, v] : series.points()) {
    mix(digest, static_cast<std::uint64_t>(t));
    mix(digest, std::bit_cast<std::uint64_t>(v));
  }
  mix(digest, stats.frames_ok);
  mix(digest, stats.failovers);
  mix(digest, stats.hard_failures);
  mix(digest, stats.switches);
  mix(digest, stats.discoveries);
}

// Fig 4 shape: one proactive user, its node killed mid-run.
std::uint64_t fig04_digest(std::uint64_t seed) {
  auto setup = harness::make_realworld_setup(seed);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(2.0);
  config.proactive_connections = true;
  config.reconnect_penalty = msec(1500.0);
  auto& client = scenario.add_edge_client(setup.user_spots[0], config);
  client.start();
  scenario.run_until(sec(8.0));
  if (client.current_node()) {
    const auto index = scenario.node_index(*client.current_node());
    if (index) scenario.stop_node(*index, /*graceful=*/false);
  }
  scenario.run_until(sec(14.0));

  std::uint64_t digest = 0xcbf29ce484222325ull;
  mix_series(digest, client.latency_series(), client.stats());
  return digest;
}

// Fig 8 shape: several users riding out node churn (leave + rejoin).
std::uint64_t fig08_digest(std::uint64_t seed) {
  auto setup = harness::make_realworld_setup(seed);
  auto& scenario = *setup.scenario;
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(1.0));

  client::ClientConfig config;
  config.top_n = 3;
  config.probing_period = sec(2.0);
  config.proactive_connections = true;
  std::vector<client::EdgeClient*> clients;
  for (std::size_t u = 0; u < 3; ++u) {
    auto& client = scenario.add_edge_client(setup.user_spots[u], config);
    client.start();
    clients.push_back(&client);
  }
  scenario.run_until(sec(5.0));
  scenario.stop_node(setup.volunteers[0], /*graceful=*/false);
  scenario.run_until(sec(7.0));
  scenario.stop_node(setup.volunteers[1], /*graceful=*/true);
  scenario.start_node(setup.volunteers[0]);
  scenario.run_until(sec(12.0));

  std::uint64_t digest = 0xcbf29ce484222325ull;
  for (const auto* client : clients) {
    mix_series(digest, client->latency_series(), client->stats());
  }
  return digest;
}

TEST(FigureTraceDeterminism, Fig04AndFig08BitIdenticalAcrossThreadCounts) {
  constexpr std::uint64_t kSeeds[] = {2022, 2023, 2030};
  std::vector<std::uint64_t> sequential;
  for (const std::uint64_t seed : kSeeds) {
    sequential.push_back(fig04_digest(seed));
    sequential.push_back(fig08_digest(seed));
  }
  // Re-running sequentially reproduces the digests (baseline determinism).
  EXPECT_EQ(sequential[0], fig04_digest(kSeeds[0]));
  EXPECT_EQ(sequential[1], fig08_digest(kSeeds[0]));

  for (const unsigned threads : {2u, 7u}) {
    harness::ParallelRunner pool(threads);
    std::vector<std::function<std::uint64_t()>> jobs;
    for (const std::uint64_t seed : kSeeds) {
      jobs.emplace_back([seed] { return fig04_digest(seed); });
      jobs.emplace_back([seed] { return fig08_digest(seed); });
    }
    const auto parallel = pool.map<std::uint64_t>(std::move(jobs));
    EXPECT_EQ(parallel, sequential) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace eden::net
