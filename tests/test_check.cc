// eden::check end-to-end: generator determinism, repro round-trips, a
// clean fuzz sweep, bitwise determinism across ParallelRunner thread
// counts, the seeded-bug -> shrink -> replay pipeline, and the vacuous-run
// guard.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "check/fuzzer.h"
#include "check/repro.h"
#include "check/shrink.h"
#include "check/spec.h"
#include "harness/parallel_runner.h"

namespace eden::check {
namespace {

ScenarioSpec tiny_chaos_spec() {
  ScenarioSpec spec;
  spec.seed = 99;
  spec.horizon_sec = 24.0;
  spec.cooldown_sec = 10.0;
  spec.chaos = kChaosFreezeSeqNum;
  spec.nodes.resize(2);
  spec.nodes[1].lat += 0.05;
  spec.clients.resize(2);
  spec.clients[1].lon += 0.04;
  spec.clients[1].start_sec = 1.0;
  return spec;
}

TEST(CheckGenerator, DeterministicAndWithinLimits) {
  const FuzzLimits limits;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const ScenarioSpec a = generate_spec(seed, limits);
    const ScenarioSpec b = generate_spec(seed, limits);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_GE(a.clients.size(), 1u);
    EXPECT_LE(a.clients.size(), limits.max_clients);
    // The cloud fallback may ride on top of the volunteer cap.
    EXPECT_LE(a.nodes.size(), limits.max_nodes + 1);
    EXPECT_LE(a.faults.size(), limits.max_faults);
    EXPECT_GE(a.horizon_sec, a.cooldown_sec + 12.0);
    // Quiet-tail contract: no churn or fault inside the cooldown.
    const double quiet = a.horizon_sec - a.cooldown_sec;
    for (const FuzzNode& n : a.nodes) {
      if (n.stop_sec >= 0.0) {
        EXPECT_LE(n.stop_sec, quiet);
      }
    }
    for (const FuzzFault& f : a.faults) EXPECT_LE(f.until_sec, quiet);
  }
  EXPECT_NE(generate_spec(1), generate_spec(2));
}

TEST(CheckRepro, JsonRoundTripIsExactAndByteStable) {
  ReproFile repro;
  repro.target_oracle = "seqnum";
  repro.spec = generate_spec(17);
  const std::string json = to_json(repro);
  const auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, repro);
  // write -> parse -> write is byte-identical (%.17g doubles).
  EXPECT_EQ(to_json(*parsed), json);
}

TEST(CheckRepro, RejectsGarbage) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{\"eden_repro\": 1").has_value());
  EXPECT_FALSE(parse_json("not json at all").has_value());
  const std::string valid = to_json(ReproFile{1, "x", generate_spec(3)});
  EXPECT_FALSE(parse_json(valid + "trailing").has_value());
}

TEST(CheckFuzz, SweepHoldsAllInvariants) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const RunReport report = run_spec(generate_spec(seed));
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": "
                             << (report.violations.empty()
                                     ? ""
                                     : report.violations.front().oracle + ": " +
                                           report.violations.front().message);
    EXPECT_GT(report.trace_events, 0u);
  }
}

// The acceptance pin for the whole subsystem: the same spec run on a
// 1-thread and a 4-thread pool (and twice within each pool) produces
// bitwise-identical traces.
TEST(CheckFuzz, DeterministicAcrossThreadCounts) {
  const ScenarioSpec spec = generate_spec(11);
  const std::uint64_t reference = run_spec(spec).trace_digest;
  for (const unsigned threads : {1u, 4u}) {
    harness::ParallelRunner runner(threads);
    std::vector<std::function<std::uint64_t()>> jobs;
    for (int i = 0; i < 4; ++i) {
      jobs.emplace_back([&spec] { return run_spec(spec).trace_digest; });
    }
    for (const std::uint64_t digest : runner.map(std::move(jobs))) {
      EXPECT_EQ(digest, reference) << threads << " threads";
    }
  }
}

TEST(CheckFuzz, SeededSeqNumFreezeIsCaughtAndShrunk) {
  const ScenarioSpec spec = tiny_chaos_spec();
  const RunReport seeded = run_spec(spec);
  ASSERT_FALSE(seeded.ok());
  bool seqnum_fired = false;
  for (const Violation& v : seeded.violations) {
    seqnum_fired = seqnum_fired || v.oracle == "seqnum";
  }
  EXPECT_TRUE(seqnum_fired);

  const ShrinkResult shrunk = shrink(spec, "seqnum");
  ASSERT_TRUE(shrunk.accepted);
  EXPECT_LE(shrunk.spec.nodes.size(), 3u);
  EXPECT_LE(shrunk.spec.clients.size(), 2u);

  // The minimized spec survives a repro round trip and replays to the
  // same oracle with the same digest.
  ReproFile repro{1, "seqnum", shrunk.spec};
  const auto reloaded = parse_json(to_json(repro));
  ASSERT_TRUE(reloaded.has_value());
  const RunReport replayed = run_spec(reloaded->spec);
  EXPECT_EQ(replayed.trace_digest, shrunk.report.trace_digest);
  bool reproduced = false;
  for (const Violation& v : replayed.violations) {
    reproduced = reproduced || v.oracle == "seqnum";
  }
  EXPECT_TRUE(reproduced);
}

TEST(CheckFuzz, CleanRunOfChaosSpecWithoutChaosBit) {
  ScenarioSpec spec = tiny_chaos_spec();
  spec.chaos = 0;
  EXPECT_TRUE(run_spec(spec).ok());
}

TEST(CheckFuzz, VacuousSpecIsFlagged) {
  ScenarioSpec spec = tiny_chaos_spec();
  spec.chaos = 0;
  spec.clients.clear();
  const RunReport report = run_spec(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().oracle, "vacuous-run");
}

TEST(CheckShrink, RejectsSpecThatDoesNotViolate) {
  ScenarioSpec spec = tiny_chaos_spec();
  spec.chaos = 0;
  const ShrinkResult result = shrink(spec, "seqnum", /*max_attempts=*/3);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.spec, spec);
  EXPECT_EQ(result.attempts, 1);
}

}  // namespace
}  // namespace eden::check
