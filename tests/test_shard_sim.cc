// Sharded-simulator tests: the delivery lane's canonical ordering, the
// ShardRouter window-barrier contract, the WindowPool fork-join primitive
// and the resolve_thread_count() contract, conservative lookahead
// derivation — and the tentpole witness: run_spec_sharded() produces a
// bit-identical canonical trace digest at every shard count, pinned
// against the windowless one-shard sequential reference.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "check/fuzzer.h"
#include "check/shard_witness.h"
#include "harness/sharded_scenario.h"
#include "harness/window_pool.h"
#include "net/shard_router.h"
#include "sim/simulator.h"

namespace eden {
namespace {

// ---- delivery lane ----

TEST(DeliveryLane, DeliveriesBeatEventsAtEqualTimestamps) {
  sim::Simulator sim;
  std::string order;
  sim.schedule_at(msec(10), [&order] { order += 'E'; });
  sim.schedule_delivery(msec(10), sim::Simulator::DeliveryKey{1, 0},
                        sim::Callback([&order] { order += 'D'; }));
  sim.run_until(msec(10));
  EXPECT_EQ(order, "DE");
}

TEST(DeliveryLane, OrdersByCanonicalKeyNotInsertion) {
  sim::Simulator sim;
  std::string order;
  // Insert in scrambled order; the lane must execute by (time, hi, lo).
  sim.schedule_delivery(msec(5), sim::Simulator::DeliveryKey{2, 0},
                        sim::Callback([&order] { order += 'c'; }));
  sim.schedule_delivery(msec(5), sim::Simulator::DeliveryKey{1, 7},
                        sim::Callback([&order] { order += 'b'; }));
  sim.schedule_delivery(msec(5), sim::Simulator::DeliveryKey{1, 2},
                        sim::Callback([&order] { order += 'a'; }));
  sim.schedule_delivery(msec(3), sim::Simulator::DeliveryKey{9, 9},
                        sim::Callback([&order] { order += '0'; }));
  sim.run_all();
  EXPECT_EQ(order, "0abc");
}

TEST(DeliveryLane, CountsTowardPendingAndNextEventTime) {
  sim::Simulator sim;
  sim.schedule_delivery(msec(4), sim::Simulator::DeliveryKey{1, 0},
                        sim::Callback([] {}));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.next_event_time(), msec(4));
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.next_event_time(), sim::Simulator::kNoEventTime);
}

// ---- ShardRouter ----

TEST(ShardRouter, FlushInjectsIntoDestinationDeliveryLane) {
  sim::Simulator sa;
  sim::Simulator sb;
  net::ShardRouter router;
  const auto s0 = router.add_shard(nullptr, &sa);
  const auto s1 = router.add_shard(nullptr, &sb);
  router.set_shard(HostId{10}, s0);
  router.set_shard(HostId{20}, s1);
  EXPECT_EQ(router.shard_of(HostId{10}), s0);
  EXPECT_EQ(router.shard_of(HostId{20}), s1);
  EXPECT_EQ(router.shard_of(HostId{999}), 0u);  // unmapped -> shard 0

  bool delivered = false;
  router.post(s0, s1, msec(12), /*key_hi=*/42, /*key_lo=*/0,
              sim::Callback([&delivered] { delivered = true; }));
  EXPECT_FALSE(router.idle());
  EXPECT_EQ(router.flush(msec(10)), 1u);
  EXPECT_TRUE(router.idle());
  EXPECT_EQ(router.messages_routed(), 1u);
  EXPECT_FALSE(delivered);  // buffered into sb, not executed yet
  sb.run_until(msec(12));
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sa.events_processed(), 0u);
}

TEST(ShardRouter, FlushThrowsWhenArrivalPrecedesWindowStart) {
  sim::Simulator sa;
  sim::Simulator sb;
  net::ShardRouter router;
  const auto s0 = router.add_shard(nullptr, &sa);
  const auto s1 = router.add_shard(nullptr, &sb);
  router.post(s0, s1, msec(5), 1, 0, sim::Callback([] {}));
  EXPECT_THROW(router.flush(msec(6)), std::runtime_error);
}

// ---- resolve_thread_count (shared harness contract) ----

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(harness::resolve_thread_count(4, 8), 4u);
  EXPECT_EQ(harness::resolve_thread_count(1, 8), 1u);
  // An explicit request is honored even when hardware reports nothing.
  EXPECT_EQ(harness::resolve_thread_count(3, 0), 3u);
}

TEST(ResolveThreadCount, ZeroPicksHardwareClampedToOne) {
  EXPECT_EQ(harness::resolve_thread_count(0, 8), 8u);
  // hardware_concurrency() == 0 means "unknown" — never 0 threads.
  EXPECT_EQ(harness::resolve_thread_count(0, 0), 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(harness::resolve_thread_count(0), hw == 0 ? 1u : hw);
  EXPECT_GE(harness::resolve_thread_count(0), 1u);
}

// ---- WindowPool ----

TEST(WindowPool, InlineWhenSingleThreaded) {
  harness::WindowPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::atomic<int> sum{0};
  pool.for_each(100, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(WindowPool, PooledRunsEveryIndexExactlyOnce) {
  harness::WindowPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  for (int round = 0; round < 5; ++round) {  // reusable across barriers
    pool.for_each(hits.size(), [&hits](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 5);
}

TEST(WindowPool, PropagatesExceptionsAndSurvives) {
  harness::WindowPool pool(2);
  EXPECT_THROW(
      pool.for_each(8,
                    [](std::size_t i) {
                      if (i == 3) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // The pool must stay usable after a failed window.
  std::atomic<int> ran{0};
  pool.for_each(8, [&ran](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

// ---- lookahead ----

TEST(ShardedScenario, LookaheadHasPositiveFloorAndBoundsWindows) {
  harness::ShardedConfig config;
  config.base.seed = 5;
  config.shards = 2;
  config.force_windows = true;
  harness::ShardedScenario scenario(config);
  harness::NodeSpec spec;
  spec.position = {44.9778, -93.2650};
  scenario.add_node(spec);
  spec.position = {45.2, -93.5};
  scenario.add_node(spec);
  const SimDuration lookahead = scenario.lookahead();
  EXPECT_GT(lookahead, 0);
  // The conservative bound can never exceed the smallest base one-way
  // delay between the two hosts (jitter/slow floors only shrink it).
  const SimDuration owd =
      scenario.network_model().base_rtt(HostId{1}, HostId{2}) / 2;
  EXPECT_LE(lookahead, owd);
}

TEST(ShardedScenario, WindowlessSingleShardUsesOneGiantWindow) {
  harness::ShardedConfig config;
  config.base.seed = 5;
  config.shards = 1;
  harness::ShardedScenario scenario(config);
  harness::NodeSpec spec;
  scenario.add_node(spec);
  scenario.run_until(sec(5.0));
  EXPECT_EQ(scenario.shard_stats().windows, 1u);
}

// ---- the witness ----

void expect_identical_reports(const check::ShardRunReport& ref,
                              const check::ShardRunReport& got,
                              const std::string& what) {
  EXPECT_EQ(got.trace_digest, ref.trace_digest) << what;
  EXPECT_EQ(got.trace_events, ref.trace_events) << what;
  EXPECT_EQ(got.frames_sent, ref.frames_sent) << what;
  EXPECT_EQ(got.frames_ok, ref.frames_ok) << what;
  EXPECT_EQ(got.frames_failed, ref.frames_failed) << what;
  EXPECT_EQ(got.joins, ref.joins) << what;
  EXPECT_EQ(got.switches, ref.switches) << what;
  EXPECT_EQ(got.failovers, ref.failovers) << what;
}

TEST(ShardWitness, ShardedMatchesSequentialAcrossShardCounts) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    const check::ScenarioSpec spec = check::generate_spec(seed);
    const check::ShardRunReport ref = check::run_spec_sharded(spec, 0);
    EXPECT_TRUE(ref.ok()) << "seed " << seed << ": "
                          << (ref.violations.empty()
                                  ? ""
                                  : ref.violations.front().message);
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
      const check::ShardRunReport got = check::run_spec_sharded(spec, shards);
      expect_identical_reports(
          ref, got,
          "seed " + std::to_string(seed) + " shards " +
              std::to_string(shards));
      EXPECT_TRUE(got.ok()) << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardWitness, OverloadFamilySpecsMatchToo) {
  check::FuzzLimits limits;
  limits.overload_families = true;
  const check::ScenarioSpec spec = check::generate_spec(11, limits);
  const check::ShardRunReport ref = check::run_spec_sharded(spec, 0);
  const check::ShardRunReport got = check::run_spec_sharded(spec, 4);
  expect_identical_reports(ref, got, "overload seed 11");
}

TEST(ShardWitness, ThreadCountDoesNotChangeTheDigest) {
  const check::ScenarioSpec spec = check::generate_spec(3);
  const check::ShardRunReport ref = check::run_spec_sharded(spec, 4);
  check::ShardRunOptions wide;
  wide.threads = 4;
  const check::ShardRunReport got = check::run_spec_sharded(spec, 4, wide);
  expect_identical_reports(ref, got, "threads 1 vs 4");
}

TEST(ShardWitness, ShorterForcedWindowsDoNotChangeTheDigest) {
  const check::ScenarioSpec spec = check::generate_spec(5);
  const check::ShardRunReport ref = check::run_spec_sharded(spec, 2);
  ASSERT_GT(ref.shards.window_length, 1);
  check::ShardRunOptions tight;
  tight.window = ref.shards.window_length / 2;
  const check::ShardRunReport got = check::run_spec_sharded(spec, 2, tight);
  expect_identical_reports(ref, got, "half-length windows");
  EXPECT_GE(got.shards.windows, ref.shards.windows);
}

TEST(ShardWitness, ReportsShardStats) {
  const check::ScenarioSpec spec = check::generate_spec(1);
  const check::ShardRunReport rep = check::run_spec_sharded(spec, 4);
  EXPECT_EQ(rep.shards.events_per_domain.size(), 4u);
  std::uint64_t total = 0;
  for (const std::uint64_t e : rep.shards.events_per_domain) total += e;
  EXPECT_GT(total, 0u);
  EXPECT_GT(rep.shards.windows, 0u);
  EXPECT_GT(rep.shards.window_length, 0);
}

}  // namespace
}  // namespace eden
