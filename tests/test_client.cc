// Integration-level tests for the EdgeClient: the Algorithm 2 probing
// cycle, join synchronization under conflicts, backup lists, switching, and
// adaptive offloading — all through the simulated fabric via Scenario.
#include "client/edge_client.h"

#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/scenario.h"

namespace eden::client {
namespace {

using harness::ClientSpot;
using harness::NodeSpec;
using harness::Scenario;
using harness::ScenarioConfig;

NodeSpec volunteer(const std::string& name, double lat, double lon, int cores,
                   double frame_ms) {
  NodeSpec spec;
  spec.name = name;
  spec.position = {lat, lon};
  spec.tier = net::AccessTier::kFiber;
  spec.cores = cores;
  spec.base_frame_ms = frame_ms;
  return spec;
}

ClientConfig fast_probing_config(int top_n = 3) {
  ClientConfig config;
  config.top_n = top_n;
  config.probing_period = sec(1.0);
  return config;
}

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : scenario_(ScenarioConfig{.seed = 11}, harness::NetKind::kGeo) {}

  Scenario scenario_;
};

TEST_F(ClientTest, DiscoversProbesAndJoinsBestNode) {
  // Fast nearby node vs slow distant node: client must land on the former.
  const auto fast = scenario_.add_node(volunteer("fast", 44.98, -93.26, 4, 20.0));
  const auto slow = scenario_.add_node(volunteer("slow", 45.4, -92.8, 1, 80.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));

  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  client.start();
  scenario_.run_until(sec(5.0));

  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), scenario_.node_id(fast));
  EXPECT_NE(*client.current_node(), scenario_.node_id(slow));
  EXPECT_EQ(scenario_.node(fast).attached_users(), 1);
  EXPECT_GT(client.stats().probes_sent, 0u);
  EXPECT_EQ(client.stats().joins, 1u);
}

TEST_F(ClientTest, BackupListHoldsRemainingCandidates) {
  for (int i = 0; i < 4; ++i) {
    scenario_.add_node(
        volunteer("n" + std::to_string(i), 44.97 + 0.01 * i, -93.26, 2, 30.0));
  }
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));

  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config(/*top_n=*/3));
  client.start();
  scenario_.run_until(sec(5.0));

  ASSERT_TRUE(client.current_node().has_value());
  // TopN = 3 -> current + 2 backups; the backup list never contains the
  // current node.
  EXPECT_EQ(client.backup_nodes().size(), 2u);
  for (const NodeId backup : client.backup_nodes()) {
    EXPECT_NE(backup, *client.current_node());
  }
}

TEST_F(ClientTest, FramesFlowAndLatencyIsRecorded) {
  scenario_.add_node(volunteer("n0", 44.98, -93.26, 4, 25.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));

  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config(1));
  client.start();
  scenario_.run_until(sec(12.0));

  EXPECT_GT(client.stats().frames_ok, 100u);  // ~20 fps for ~10 s
  const auto window = client.latency_series().window(sec(3), sec(12));
  ASSERT_GT(window.count(), 0u);
  // e2e ~ RTT (~15 ms) + transfer (~5 ms) + proc (25 ms).
  EXPECT_GT(window.mean(), 25.0);
  EXPECT_LT(window.mean(), 90.0);
}

TEST_F(ClientTest, SelectionOnlyClientSendsNoFrames) {
  scenario_.add_node(volunteer("n0", 44.98, -93.26, 4, 25.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));
  auto config = fast_probing_config(1);
  config.send_frames = false;
  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      config);
  client.start();
  scenario_.run_until(sec(5.0));
  EXPECT_TRUE(client.current_node().has_value());
  EXPECT_EQ(client.stats().frames_sent, 0u);
}

TEST_F(ClientTest, JoinConflictResolvedByRetry) {
  // Two clients start simultaneously with one clearly-best node (uniform
  // matrix network, so both prefer it): both probe the same seqNum;
  // exactly one join wins and the loser re-runs discovery (Algorithm 2
  // line 14) and still ends up attached somewhere.
  Scenario scenario(ScenarioConfig{.seed = 12}, harness::NetKind::kMatrix,
                    /*default_rtt_ms=*/20.0, /*default_bw_mbps=*/100.0,
                    /*jitter_sigma=*/0.0);
  const auto best = scenario.add_node(volunteer("best", 44.98, -93.26, 8, 15.0));
  scenario.add_node(volunteer("spare", 44.99, -93.20, 2, 45.0));
  harness::start_all_nodes(scenario);
  scenario.run_until(sec(2.0));

  auto& c1 = scenario.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  auto& c2 = scenario.add_edge_client(
      ClientSpot{"u2", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  c1.start();
  c2.start();
  scenario.run_until(sec(8.0));

  ASSERT_TRUE(c1.current_node().has_value());
  ASSERT_TRUE(c2.current_node().has_value());
  EXPECT_GE(c1.stats().join_conflicts + c2.stats().join_conflicts, 1u);
  // Both ultimately attached; the big node can hold both users.
  EXPECT_GE(scenario.node(best).attached_users(), 1);
}

TEST_F(ClientTest, SwitchesWhenBetterNodeAppears) {
  // Client settles on a mediocre node, then a much better one joins: the
  // periodic probing must discover it and switch, with Leave() on the old.
  const auto mediocre =
      scenario_.add_node(volunteer("mediocre", 44.99, -93.25, 1, 60.0));
  const auto better = scenario_.add_node(volunteer("better", 44.98, -93.26, 8, 15.0));
  scenario_.start_node(mediocre);
  scenario_.run_until(sec(1.0));

  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  client.start();
  scenario_.run_until(sec(4.0));
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), scenario_.node_id(mediocre));

  scenario_.schedule_node_start(better, sec(5.0));
  scenario_.run_until(sec(12.0));
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), scenario_.node_id(better));
  EXPECT_GE(client.stats().switches, 1u);
  EXPECT_EQ(scenario_.node(mediocre).attached_users(), 0);  // Leave() arrived
}

TEST_F(ClientTest, GoPolicySpreadsLoadAcrossEqualNodes) {
  // Two identical 1-core nodes, four fixed-rate 10 fps clients (total
  // demand 1.2 cores): the only stable state is a 2/2 split, and the GO
  // policy must find it instead of piling everybody onto one node.
  const auto a = scenario_.add_node(volunteer("a", 44.98, -93.26, 1, 30.0));
  const auto b = scenario_.add_node(volunteer("b", 44.98, -93.27, 1, 30.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));

  std::vector<EdgeClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto config = fast_probing_config(2);
    config.app.adaptive_rate = false;
    config.app.max_fps = 10.0;
    auto& client = scenario_.add_edge_client(
        ClientSpot{"u" + std::to_string(i),
                   {44.9778, -93.2650},
                   net::AccessTier::kCable,
                   ""},
        config);
    scenario_.simulator().schedule_at(sec(2.0 + 2.0 * i),
                                      [&client] { client.start(); });
    clients.push_back(&client);
  }
  scenario_.run_until(sec(25.0));

  const int on_a = scenario_.node(a).attached_users();
  const int on_b = scenario_.node(b).attached_users();
  EXPECT_EQ(on_a, 2);
  EXPECT_EQ(on_b, 2);
  // And the split delivers bounded latency for everyone (transient switch
  // spikes allowed, sustained overload not).
  for (const auto* c : clients) {
    const auto window = c->latency_series().window(sec(15), sec(25));
    ASSERT_GT(window.count(), 0u);
    EXPECT_LT(window.mean(), 200.0);
  }
}

TEST_F(ClientTest, AdaptiveRateBacksOffOnOverload) {
  // One weak node, several aggressive clients: rate controllers must end
  // below the max rate.
  scenario_.add_node(volunteer("weak", 44.98, -93.26, 1, 45.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));

  std::vector<client::EdgeClient*> clients;
  for (int i = 0; i < 3; ++i) {
    auto config = fast_probing_config(1);
    config.app.target_latency_ms = 120.0;
    auto& c = scenario_.add_edge_client(
        ClientSpot{"u" + std::to_string(i),
                   {44.9778, -93.2650},
                   net::AccessTier::kCable,
                   ""},
        config);
    c.start();
    clients.push_back(&c);
  }
  scenario_.run_until(sec(20.0));
  double total_fps = 0;
  for (const auto* c : clients) total_fps += c->fps();
  EXPECT_LT(total_fps, 3 * 20.0);
}

TEST_F(ClientTest, StopLeavesCurrentNode) {
  const auto n = scenario_.add_node(volunteer("n", 44.98, -93.26, 2, 30.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));
  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config(1));
  client.start();
  scenario_.run_until(sec(4.0));
  ASSERT_EQ(scenario_.node(n).attached_users(), 1);
  client.stop();
  scenario_.run_until(sec(6.0));
  EXPECT_EQ(scenario_.node(n).attached_users(), 0);
}

TEST_F(ClientTest, StopMidProbeThenRestartRecovers) {
  // Regression: stop() used to leave cycle_in_flight_ (and the keepalive
  // latch / miss count) set when it interrupted a cycle — the in-flight
  // callbacks bail on !running_ without clearing them — so after a restart
  // every probing_cycle() returned immediately and the client never
  // attached again.
  scenario_.enable_observability();
  const auto n = scenario_.add_node(volunteer("n", 44.98, -93.26, 2, 30.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));
  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config(1));
  // start() kicks off a discovery immediately; stopping in the same instant
  // catches the cycle mid-flight.
  client.start();
  client.stop();
  scenario_.run_until(sec(4.0));
  EXPECT_FALSE(client.current_node().has_value());

  client.start();
  scenario_.run_until(sec(8.0));
  ASSERT_TRUE(client.current_node().has_value());
  EXPECT_EQ(*client.current_node(), scenario_.node_id(n));
  EXPECT_GE(client.stats().discoveries, 2u);
  // The restarted runtime really ran fresh probing cycles end to end.
  auto* trace = scenario_.trace_recorder();
  ASSERT_NE(trace, nullptr);
  EXPECT_GE(trace->count(obs::EventKind::kProbeCycleBegin), 2u);
  EXPECT_GE(trace->count(obs::EventKind::kJoinAccept), 1u);
}

TEST_F(ClientTest, NoNodesMeansNoAttachmentButNoCrash) {
  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  client.start();
  scenario_.run_until(sec(10.0));
  EXPECT_FALSE(client.current_node().has_value());
  EXPECT_EQ(client.stats().frames_sent, 0u);
  EXPECT_GE(client.stats().discoveries, 2u);  // it kept trying
}

TEST_F(ClientTest, ManagerUnreachableIsSurvivable) {
  scenario_.add_node(volunteer("n", 44.98, -93.26, 2, 30.0));
  harness::start_all_nodes(scenario_);
  scenario_.run_until(sec(2.0));
  // Kill the manager host: discovery RPCs now time out.
  scenario_.hosts().set_alive(HostId{0}, false);
  auto& client = scenario_.add_edge_client(
      ClientSpot{"u1", {44.9778, -93.2650}, net::AccessTier::kCable, ""},
      fast_probing_config());
  client.start();
  scenario_.run_until(sec(8.0));
  EXPECT_FALSE(client.current_node().has_value());
  // Manager comes back: the next periodic cycle succeeds.
  scenario_.hosts().set_alive(HostId{0}, true);
  scenario_.run_until(sec(16.0));
  EXPECT_TRUE(client.current_node().has_value());
}

}  // namespace
}  // namespace eden::client
