// Unit tests for the EdgeNode runtime: Table I handlers, Algorithm 1 join
// synchronization, the what-if cache triggers, the performance monitor and
// heartbeats.
#include "node/edge_node.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.h"
#include "sim/simulator.h"

namespace eden::node {
namespace {

// Captures manager-bound traffic.
class FakeManagerLink final : public net::ManagerLink {
 public:
  void register_node(const net::NodeStatus& status) override {
    registrations.push_back(status);
  }
  void heartbeat(const net::NodeStatus& status) override {
    heartbeats.push_back(status);
  }
  void deregister(NodeId node) override { deregistrations.push_back(node); }

  std::vector<net::NodeStatus> registrations;
  std::vector<net::NodeStatus> heartbeats;
  std::vector<NodeId> deregistrations;
};

class EdgeNodeTest : public ::testing::Test {
 protected:
  EdgeNodeConfig make_config(int cores = 2, double frame_ms = 30.0) {
    EdgeNodeConfig config;
    config.id = NodeId{7};
    config.geohash = "9zvxvf";
    config.executor.cores = cores;
    config.executor.base_frame_ms = frame_ms;
    config.executor.contention_alpha = 0.0;
    config.test_workload_delay = msec(20.0);
    return config;
  }

  sim::Simulator simulator_;
  sim::SimScheduler scheduler_{simulator_};
  FakeManagerLink manager_;
};

TEST_F(EdgeNodeTest, StartRegistersAndMeasuresInitialWhatIf) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  EXPECT_EQ(manager_.registrations.size(), 1u);
  EXPECT_EQ(manager_.registrations[0].node, NodeId{7});
  simulator_.run_until(sec(0.5));
  // Initial test workload ran on an idle node: what-if == base frame time.
  EXPECT_NEAR(node.whatif_ms(), 30.0, 1e-6);
  EXPECT_EQ(node.stats().test_invocations, 1u);
}

TEST_F(EdgeNodeTest, HeartbeatsArePeriodic) {
  auto config = make_config();
  config.heartbeat_period = sec(1.0);
  EdgeNode node(scheduler_, config, &manager_);
  node.start();
  simulator_.run_until(sec(5.5));
  EXPECT_EQ(manager_.heartbeats.size(), 5u);
}

TEST_F(EdgeNodeTest, GracefulStopDeregistersAbruptDoesNot) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  node.stop(/*graceful=*/true);
  EXPECT_EQ(manager_.deregistrations.size(), 1u);

  EdgeNode node2(scheduler_, make_config(), &manager_);
  node2.start();
  node2.stop(/*graceful=*/false);
  EXPECT_EQ(manager_.deregistrations.size(), 1u);  // unchanged
}

TEST_F(EdgeNodeTest, StopHaltsHeartbeats) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(2.5));
  const auto count = manager_.heartbeats.size();
  node.stop(false);
  simulator_.run_until(sec(10));
  EXPECT_EQ(manager_.heartbeats.size(), count);
}

TEST_F(EdgeNodeTest, ProcessProbeReturnsCachedStateAndCounts) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto probe = node.handle_process_probe();
  EXPECT_NEAR(probe.whatif_ms, 30.0, 1e-6);
  EXPECT_EQ(probe.attached_users, 0);
  EXPECT_EQ(probe.seq_num, node.seq_num());
  EXPECT_EQ(node.stats().probes_received, 1u);
}

TEST_F(EdgeNodeTest, JoinAcceptsMatchingSeqNum) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto probe = node.handle_process_probe();
  const auto response =
      node.handle_join(net::JoinRequest{ClientId{1}, probe.seq_num, 20.0});
  EXPECT_TRUE(response.accepted);
  EXPECT_EQ(response.seq_num, probe.seq_num + 1);  // state changed
  EXPECT_EQ(node.attached_users(), 1);
  EXPECT_EQ(node.stats().joins_accepted, 1u);
}

TEST_F(EdgeNodeTest, JoinRejectsStaleSeqNum) {
  // Algorithm 1: two users probing the same state — the second join must
  // be rejected because the first join bumped the sequence number.
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto probe = node.handle_process_probe();
  EXPECT_TRUE(
      node.handle_join(net::JoinRequest{ClientId{1}, probe.seq_num, 20.0})
          .accepted);
  const auto second =
      node.handle_join(net::JoinRequest{ClientId{2}, probe.seq_num, 20.0});
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(node.attached_users(), 1);
  EXPECT_EQ(node.stats().joins_rejected, 1u);
  // The rejected user can retry with the fresh seqNum.
  EXPECT_TRUE(
      node.handle_join(net::JoinRequest{ClientId{2}, second.seq_num, 20.0})
          .accepted);
}

TEST_F(EdgeNodeTest, JoinSchedulesDelayedTestWorkload) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto before = node.stats().test_invocations;
  const auto probe = node.handle_process_probe();
  (void)node.handle_join(net::JoinRequest{ClientId{1}, probe.seq_num, 20.0});
  // Algorithm 1 line 5: invoked asynchronously after ~2x common RTT.
  EXPECT_EQ(node.stats().test_invocations, before);
  simulator_.run_until(simulator_.now() + msec(100.0));
  EXPECT_EQ(node.stats().test_invocations, before + 1);
}

TEST_F(EdgeNodeTest, UnexpectedJoinNeverRejected) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  // Stale/zero seq num would fail a normal Join; Unexpected_join must pass.
  EXPECT_TRUE(node.handle_unexpected_join(
      net::JoinRequest{ClientId{1}, 12345, 20.0}));
  EXPECT_TRUE(node.handle_unexpected_join(
      net::JoinRequest{ClientId{2}, 0, 20.0}));
  EXPECT_EQ(node.attached_users(), 2);
  EXPECT_EQ(node.stats().unexpected_joins, 2u);
}

TEST_F(EdgeNodeTest, LeaveDetachesAndBumpsState) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto probe = node.handle_process_probe();
  (void)node.handle_join(net::JoinRequest{ClientId{1}, probe.seq_num, 20.0});
  const auto seq_after_join = node.seq_num();
  node.handle_leave(ClientId{1});
  EXPECT_EQ(node.attached_users(), 0);
  EXPECT_EQ(node.seq_num(), seq_after_join + 1);
  EXPECT_EQ(node.stats().leaves, 1u);
}

TEST_F(EdgeNodeTest, LeaveOfUnknownClientIgnored) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  const auto seq = node.seq_num();
  node.handle_leave(ClientId{42});
  EXPECT_EQ(node.seq_num(), seq);
  EXPECT_EQ(node.stats().leaves, 0u);
}

TEST_F(EdgeNodeTest, OffloadProcessesFrameAndRecordsStats) {
  EdgeNode node(scheduler_, make_config(1, 25.0), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  net::FrameResponse response;
  node.handle_offload(net::FrameRequest{ClientId{1}, 99, 20'000},
                      [&](net::FrameResponse r) { response = r; });
  simulator_.run_until(simulator_.now() + sec(5.0));
  EXPECT_EQ(response.frame_id, 99u);
  EXPECT_NEAR(response.proc_ms, 25.0, 1e-6);
  EXPECT_EQ(node.stats().frames_processed, 1u);
}

TEST_F(EdgeNodeTest, WhatIfReflectsLoadFromAttachedUsers) {
  // With one core busy processing real frames, a later what-if measurement
  // must exceed the idle baseline (the test frame queues).
  EdgeNode node(scheduler_, make_config(1, 30.0), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const double idle_whatif = node.whatif_ms();

  // Saturate with back-to-back frames and trigger a state change.
  for (int i = 0; i < 6; ++i) {
    node.handle_offload(net::FrameRequest{ClientId{1}, 1, 20'000},
                        [](net::FrameResponse) {});
  }
  const auto probe = node.handle_process_probe();
  (void)node.handle_join(net::JoinRequest{ClientId{1}, probe.seq_num, 20.0});
  simulator_.run_until(simulator_.now() + sec(5.0));
  EXPECT_GT(node.whatif_ms(), idle_whatif);
}

TEST_F(EdgeNodeTest, PerfMonitorTriggersTestOnDrift) {
  auto config = make_config(1, 30.0);
  config.perf_change_threshold = 0.25;
  config.min_perf_test_interval = msec(100.0);
  EdgeNode node(scheduler_, config, &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto tests_before = node.stats().test_invocations;

  // Host workload makes frames 2x slower: live EMA drifts 100% above the
  // cached what-if, so the monitor must re-measure.
  node.executor().set_background_load(0.5);
  for (int i = 0; i < 10; ++i) {
    simulator_.schedule_at(simulator_.now() + msec(200.0 * (i + 1)),
                           [&node] {
                             node.handle_offload(
                                 net::FrameRequest{ClientId{1}, 1, 20'000},
                                 [](net::FrameResponse) {});
                           });
  }
  simulator_.run_until(simulator_.now() + sec(5.0));
  EXPECT_GT(node.stats().test_invocations, tests_before);
  // And the refreshed what-if reflects the slower machine.
  EXPECT_GT(node.whatif_ms(), 45.0);
}

TEST_F(EdgeNodeTest, StoppedNodeDropsWork) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  node.stop(false);
  bool replied = false;
  node.handle_offload(net::FrameRequest{ClientId{1}, 1, 20'000},
                      [&](net::FrameResponse) { replied = true; });
  simulator_.run_until(simulator_.now() + sec(5.0));
  EXPECT_FALSE(replied);
  EXPECT_FALSE(node.handle_join(net::JoinRequest{ClientId{1}, 0, 20.0}).accepted);
  EXPECT_FALSE(node.handle_unexpected_join(net::JoinRequest{ClientId{1}, 0, 20.0}));
}

TEST_F(EdgeNodeTest, StatusSnapshotMatchesConfig) {
  auto config = make_config(4, 45.0);
  config.dedicated = true;
  config.network_tag = "isp-x";
  EdgeNode node(scheduler_, config, &manager_);
  node.start();
  const auto status = node.status();
  EXPECT_EQ(status.node, NodeId{7});
  EXPECT_EQ(status.cores, 4);
  EXPECT_DOUBLE_EQ(status.base_frame_ms, 45.0);
  EXPECT_TRUE(status.dedicated);
  EXPECT_FALSE(status.is_cloud);
  EXPECT_EQ(status.network_tag, "isp-x");
  EXPECT_EQ(status.geohash, "9zvxvf");
}

TEST_F(EdgeNodeTest, SetBackgroundLoadBumpsSeq) {
  EdgeNode node(scheduler_, make_config(), &manager_);
  node.start();
  simulator_.run_until(sec(0.5));
  const auto seq = node.seq_num();
  node.set_background_load(0.3);
  EXPECT_EQ(node.seq_num(), seq + 1);
}

}  // namespace
}  // namespace eden::node
